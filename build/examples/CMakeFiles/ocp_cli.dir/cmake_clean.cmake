file(REMOVE_RECURSE
  "CMakeFiles/ocp_cli.dir/ocp_cli.cpp.o"
  "CMakeFiles/ocp_cli.dir/ocp_cli.cpp.o.d"
  "ocp_cli"
  "ocp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
