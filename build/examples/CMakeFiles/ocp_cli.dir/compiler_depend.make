# Empty compiler generated dependencies file for ocp_cli.
# This may be replaced when dependencies are built.
