file(REMOVE_RECURSE
  "CMakeFiles/torus_demo.dir/torus_demo.cpp.o"
  "CMakeFiles/torus_demo.dir/torus_demo.cpp.o.d"
  "torus_demo"
  "torus_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
