# Empty dependencies file for torus_demo.
# This may be replaced when dependencies are built.
