# Empty dependencies file for region_viewer.
# This may be replaced when dependencies are built.
