file(REMOVE_RECURSE
  "CMakeFiles/region_viewer.dir/region_viewer.cpp.o"
  "CMakeFiles/region_viewer.dir/region_viewer.cpp.o.d"
  "region_viewer"
  "region_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
