file(REMOVE_RECURSE
  "CMakeFiles/wormhole_demo.dir/wormhole_demo.cpp.o"
  "CMakeFiles/wormhole_demo.dir/wormhole_demo.cpp.o.d"
  "wormhole_demo"
  "wormhole_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
