# Empty dependencies file for wormhole_demo.
# This may be replaced when dependencies are built.
