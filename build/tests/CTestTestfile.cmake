# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mesh_tests[1]_include.cmake")
include("/root/repo/build/tests/grid_tests[1]_include.cmake")
include("/root/repo/build/tests/geometry_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/fault_tests[1]_include.cmake")
include("/root/repo/build/tests/simkernel_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/theorem_tests[1]_include.cmake")
include("/root/repo/build/tests/routing_tests[1]_include.cmake")
include("/root/repo/build/tests/netsim_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
