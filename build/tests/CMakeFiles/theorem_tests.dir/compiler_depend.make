# Empty compiler generated dependencies file for theorem_tests.
# This may be replaced when dependencies are built.
