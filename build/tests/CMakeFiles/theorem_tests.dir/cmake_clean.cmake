file(REMOVE_RECURSE
  "CMakeFiles/theorem_tests.dir/core/theorems_property_test.cpp.o"
  "CMakeFiles/theorem_tests.dir/core/theorems_property_test.cpp.o.d"
  "theorem_tests"
  "theorem_tests.pdb"
  "theorem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
