file(REMOVE_RECURSE
  "CMakeFiles/fault_tests.dir/fault/fixtures_test.cpp.o"
  "CMakeFiles/fault_tests.dir/fault/fixtures_test.cpp.o.d"
  "CMakeFiles/fault_tests.dir/fault/generators_test.cpp.o"
  "CMakeFiles/fault_tests.dir/fault/generators_test.cpp.o.d"
  "CMakeFiles/fault_tests.dir/fault/link_faults_test.cpp.o"
  "CMakeFiles/fault_tests.dir/fault/link_faults_test.cpp.o.d"
  "CMakeFiles/fault_tests.dir/fault/shapes_test.cpp.o"
  "CMakeFiles/fault_tests.dir/fault/shapes_test.cpp.o.d"
  "CMakeFiles/fault_tests.dir/fault/trace_test.cpp.o"
  "CMakeFiles/fault_tests.dir/fault/trace_test.cpp.o.d"
  "fault_tests"
  "fault_tests.pdb"
  "fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
