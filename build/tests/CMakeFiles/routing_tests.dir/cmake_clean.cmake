file(REMOVE_RECURSE
  "CMakeFiles/routing_tests.dir/routing/adaptive_router_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/adaptive_router_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/channel_graph_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/channel_graph_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/minimal_router_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/minimal_router_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/multicast_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/multicast_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/ring_router_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/ring_router_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/torus_routing_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/torus_routing_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/traffic_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/traffic_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/xy_router_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/xy_router_test.cpp.o.d"
  "routing_tests"
  "routing_tests.pdb"
  "routing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
