
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing/adaptive_router_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/adaptive_router_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/adaptive_router_test.cpp.o.d"
  "/root/repo/tests/routing/channel_graph_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/channel_graph_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/channel_graph_test.cpp.o.d"
  "/root/repo/tests/routing/minimal_router_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/minimal_router_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/minimal_router_test.cpp.o.d"
  "/root/repo/tests/routing/multicast_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/multicast_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/multicast_test.cpp.o.d"
  "/root/repo/tests/routing/ring_router_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/ring_router_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/ring_router_test.cpp.o.d"
  "/root/repo/tests/routing/torus_routing_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/torus_routing_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/torus_routing_test.cpp.o.d"
  "/root/repo/tests/routing/traffic_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/traffic_test.cpp.o.d"
  "/root/repo/tests/routing/xy_router_test.cpp" "tests/CMakeFiles/routing_tests.dir/routing/xy_router_test.cpp.o" "gcc" "tests/CMakeFiles/routing_tests.dir/routing/xy_router_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
