file(REMOVE_RECURSE
  "CMakeFiles/mesh_tests.dir/mesh/coord_test.cpp.o"
  "CMakeFiles/mesh_tests.dir/mesh/coord_test.cpp.o.d"
  "CMakeFiles/mesh_tests.dir/mesh/mesh2d_test.cpp.o"
  "CMakeFiles/mesh_tests.dir/mesh/mesh2d_test.cpp.o.d"
  "mesh_tests"
  "mesh_tests.pdb"
  "mesh_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
