# Empty dependencies file for mesh_tests.
# This may be replaced when dependencies are built.
