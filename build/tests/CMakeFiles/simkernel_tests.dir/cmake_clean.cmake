file(REMOVE_RECURSE
  "CMakeFiles/simkernel_tests.dir/simkernel/async_runner_test.cpp.o"
  "CMakeFiles/simkernel_tests.dir/simkernel/async_runner_test.cpp.o.d"
  "CMakeFiles/simkernel_tests.dir/simkernel/sync_runner_test.cpp.o"
  "CMakeFiles/simkernel_tests.dir/simkernel/sync_runner_test.cpp.o.d"
  "simkernel_tests"
  "simkernel_tests.pdb"
  "simkernel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
