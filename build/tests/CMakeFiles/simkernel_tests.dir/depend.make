# Empty dependencies file for simkernel_tests.
# This may be replaced when dependencies are built.
