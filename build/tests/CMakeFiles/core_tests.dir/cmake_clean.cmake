file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/activation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/activation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/double_status_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/double_status_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/exhaustive_small_mesh_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/exhaustive_small_mesh_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/fault_distance_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/fault_distance_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/maintenance_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/maintenance_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/paper_examples_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/paper_examples_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/partition_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/partition_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/regions_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/regions_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/safety_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/safety_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
