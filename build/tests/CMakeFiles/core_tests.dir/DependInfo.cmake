
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/activation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/activation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/activation_test.cpp.o.d"
  "/root/repo/tests/core/double_status_test.cpp" "tests/CMakeFiles/core_tests.dir/core/double_status_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/double_status_test.cpp.o.d"
  "/root/repo/tests/core/exhaustive_small_mesh_test.cpp" "tests/CMakeFiles/core_tests.dir/core/exhaustive_small_mesh_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/exhaustive_small_mesh_test.cpp.o.d"
  "/root/repo/tests/core/fault_distance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fault_distance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fault_distance_test.cpp.o.d"
  "/root/repo/tests/core/maintenance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/maintenance_test.cpp.o.d"
  "/root/repo/tests/core/paper_examples_test.cpp" "tests/CMakeFiles/core_tests.dir/core/paper_examples_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/paper_examples_test.cpp.o.d"
  "/root/repo/tests/core/partition_test.cpp" "tests/CMakeFiles/core_tests.dir/core/partition_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/partition_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/regions_test.cpp" "tests/CMakeFiles/core_tests.dir/core/regions_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/regions_test.cpp.o.d"
  "/root/repo/tests/core/safety_test.cpp" "tests/CMakeFiles/core_tests.dir/core/safety_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/safety_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
