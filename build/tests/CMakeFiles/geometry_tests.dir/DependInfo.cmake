
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geometry/boundary_test.cpp" "tests/CMakeFiles/geometry_tests.dir/geometry/boundary_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_tests.dir/geometry/boundary_test.cpp.o.d"
  "/root/repo/tests/geometry/closure_test.cpp" "tests/CMakeFiles/geometry_tests.dir/geometry/closure_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_tests.dir/geometry/closure_test.cpp.o.d"
  "/root/repo/tests/geometry/convexity_test.cpp" "tests/CMakeFiles/geometry_tests.dir/geometry/convexity_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_tests.dir/geometry/convexity_test.cpp.o.d"
  "/root/repo/tests/geometry/rect_test.cpp" "tests/CMakeFiles/geometry_tests.dir/geometry/rect_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_tests.dir/geometry/rect_test.cpp.o.d"
  "/root/repo/tests/geometry/region_test.cpp" "tests/CMakeFiles/geometry_tests.dir/geometry/region_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_tests.dir/geometry/region_test.cpp.o.d"
  "/root/repo/tests/geometry/staircase_test.cpp" "tests/CMakeFiles/geometry_tests.dir/geometry/staircase_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_tests.dir/geometry/staircase_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
