file(REMOVE_RECURSE
  "CMakeFiles/geometry_tests.dir/geometry/boundary_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/boundary_test.cpp.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/closure_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/closure_test.cpp.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/convexity_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/convexity_test.cpp.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/rect_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/rect_test.cpp.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/region_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/region_test.cpp.o.d"
  "CMakeFiles/geometry_tests.dir/geometry/staircase_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/staircase_test.cpp.o.d"
  "geometry_tests"
  "geometry_tests.pdb"
  "geometry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
