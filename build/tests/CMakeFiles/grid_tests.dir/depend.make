# Empty dependencies file for grid_tests.
# This may be replaced when dependencies are built.
