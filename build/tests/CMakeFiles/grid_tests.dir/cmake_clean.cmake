file(REMOVE_RECURSE
  "CMakeFiles/grid_tests.dir/grid/cell_set_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/cell_set_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/connectivity_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/connectivity_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/node_grid_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/node_grid_test.cpp.o.d"
  "grid_tests"
  "grid_tests.pdb"
  "grid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
