file(REMOVE_RECURSE
  "CMakeFiles/ocp_geometry.dir/geometry/boundary.cpp.o"
  "CMakeFiles/ocp_geometry.dir/geometry/boundary.cpp.o.d"
  "CMakeFiles/ocp_geometry.dir/geometry/convexity.cpp.o"
  "CMakeFiles/ocp_geometry.dir/geometry/convexity.cpp.o.d"
  "CMakeFiles/ocp_geometry.dir/geometry/region.cpp.o"
  "CMakeFiles/ocp_geometry.dir/geometry/region.cpp.o.d"
  "CMakeFiles/ocp_geometry.dir/geometry/staircase.cpp.o"
  "CMakeFiles/ocp_geometry.dir/geometry/staircase.cpp.o.d"
  "libocp_geometry.a"
  "libocp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
