file(REMOVE_RECURSE
  "libocp_geometry.a"
)
