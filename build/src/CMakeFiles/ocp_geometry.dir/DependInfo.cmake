
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/boundary.cpp" "src/CMakeFiles/ocp_geometry.dir/geometry/boundary.cpp.o" "gcc" "src/CMakeFiles/ocp_geometry.dir/geometry/boundary.cpp.o.d"
  "/root/repo/src/geometry/convexity.cpp" "src/CMakeFiles/ocp_geometry.dir/geometry/convexity.cpp.o" "gcc" "src/CMakeFiles/ocp_geometry.dir/geometry/convexity.cpp.o.d"
  "/root/repo/src/geometry/region.cpp" "src/CMakeFiles/ocp_geometry.dir/geometry/region.cpp.o" "gcc" "src/CMakeFiles/ocp_geometry.dir/geometry/region.cpp.o.d"
  "/root/repo/src/geometry/staircase.cpp" "src/CMakeFiles/ocp_geometry.dir/geometry/staircase.cpp.o" "gcc" "src/CMakeFiles/ocp_geometry.dir/geometry/staircase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
