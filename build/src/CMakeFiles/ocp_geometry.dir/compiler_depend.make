# Empty compiler generated dependencies file for ocp_geometry.
# This may be replaced when dependencies are built.
