file(REMOVE_RECURSE
  "libocp_fault.a"
)
