file(REMOVE_RECURSE
  "CMakeFiles/ocp_fault.dir/fault/fixtures.cpp.o"
  "CMakeFiles/ocp_fault.dir/fault/fixtures.cpp.o.d"
  "CMakeFiles/ocp_fault.dir/fault/generators.cpp.o"
  "CMakeFiles/ocp_fault.dir/fault/generators.cpp.o.d"
  "CMakeFiles/ocp_fault.dir/fault/link_faults.cpp.o"
  "CMakeFiles/ocp_fault.dir/fault/link_faults.cpp.o.d"
  "CMakeFiles/ocp_fault.dir/fault/shapes.cpp.o"
  "CMakeFiles/ocp_fault.dir/fault/shapes.cpp.o.d"
  "CMakeFiles/ocp_fault.dir/fault/trace.cpp.o"
  "CMakeFiles/ocp_fault.dir/fault/trace.cpp.o.d"
  "libocp_fault.a"
  "libocp_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
