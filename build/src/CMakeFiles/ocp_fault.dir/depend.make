# Empty dependencies file for ocp_fault.
# This may be replaced when dependencies are built.
