
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/fixtures.cpp" "src/CMakeFiles/ocp_fault.dir/fault/fixtures.cpp.o" "gcc" "src/CMakeFiles/ocp_fault.dir/fault/fixtures.cpp.o.d"
  "/root/repo/src/fault/generators.cpp" "src/CMakeFiles/ocp_fault.dir/fault/generators.cpp.o" "gcc" "src/CMakeFiles/ocp_fault.dir/fault/generators.cpp.o.d"
  "/root/repo/src/fault/link_faults.cpp" "src/CMakeFiles/ocp_fault.dir/fault/link_faults.cpp.o" "gcc" "src/CMakeFiles/ocp_fault.dir/fault/link_faults.cpp.o.d"
  "/root/repo/src/fault/shapes.cpp" "src/CMakeFiles/ocp_fault.dir/fault/shapes.cpp.o" "gcc" "src/CMakeFiles/ocp_fault.dir/fault/shapes.cpp.o.d"
  "/root/repo/src/fault/trace.cpp" "src/CMakeFiles/ocp_fault.dir/fault/trace.cpp.o" "gcc" "src/CMakeFiles/ocp_fault.dir/fault/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
