file(REMOVE_RECURSE
  "libocp_mesh.a"
)
