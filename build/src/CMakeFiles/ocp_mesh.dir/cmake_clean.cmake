file(REMOVE_RECURSE
  "CMakeFiles/ocp_mesh.dir/mesh/coord.cpp.o"
  "CMakeFiles/ocp_mesh.dir/mesh/coord.cpp.o.d"
  "CMakeFiles/ocp_mesh.dir/mesh/mesh2d.cpp.o"
  "CMakeFiles/ocp_mesh.dir/mesh/mesh2d.cpp.o.d"
  "libocp_mesh.a"
  "libocp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
