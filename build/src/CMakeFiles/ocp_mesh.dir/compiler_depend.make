# Empty compiler generated dependencies file for ocp_mesh.
# This may be replaced when dependencies are built.
