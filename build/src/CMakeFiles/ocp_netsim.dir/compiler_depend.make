# Empty compiler generated dependencies file for ocp_netsim.
# This may be replaced when dependencies are built.
