file(REMOVE_RECURSE
  "libocp_netsim.a"
)
