file(REMOVE_RECURSE
  "CMakeFiles/ocp_netsim.dir/netsim/traffic_sim.cpp.o"
  "CMakeFiles/ocp_netsim.dir/netsim/traffic_sim.cpp.o.d"
  "CMakeFiles/ocp_netsim.dir/netsim/wormhole.cpp.o"
  "CMakeFiles/ocp_netsim.dir/netsim/wormhole.cpp.o.d"
  "libocp_netsim.a"
  "libocp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
