# Empty dependencies file for ocp_grid.
# This may be replaced when dependencies are built.
