
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/cell_set.cpp" "src/CMakeFiles/ocp_grid.dir/grid/cell_set.cpp.o" "gcc" "src/CMakeFiles/ocp_grid.dir/grid/cell_set.cpp.o.d"
  "/root/repo/src/grid/connectivity.cpp" "src/CMakeFiles/ocp_grid.dir/grid/connectivity.cpp.o" "gcc" "src/CMakeFiles/ocp_grid.dir/grid/connectivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
