file(REMOVE_RECURSE
  "CMakeFiles/ocp_grid.dir/grid/cell_set.cpp.o"
  "CMakeFiles/ocp_grid.dir/grid/cell_set.cpp.o.d"
  "CMakeFiles/ocp_grid.dir/grid/connectivity.cpp.o"
  "CMakeFiles/ocp_grid.dir/grid/connectivity.cpp.o.d"
  "libocp_grid.a"
  "libocp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
