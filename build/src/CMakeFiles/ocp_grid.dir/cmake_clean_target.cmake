file(REMOVE_RECURSE
  "libocp_grid.a"
)
