file(REMOVE_RECURSE
  "libocp_stats.a"
)
