# Empty compiler generated dependencies file for ocp_stats.
# This may be replaced when dependencies are built.
