file(REMOVE_RECURSE
  "CMakeFiles/ocp_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/ocp_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/ocp_stats.dir/stats/rng.cpp.o"
  "CMakeFiles/ocp_stats.dir/stats/rng.cpp.o.d"
  "CMakeFiles/ocp_stats.dir/stats/table.cpp.o"
  "CMakeFiles/ocp_stats.dir/stats/table.cpp.o.d"
  "libocp_stats.a"
  "libocp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
