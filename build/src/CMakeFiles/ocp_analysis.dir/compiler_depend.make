# Empty compiler generated dependencies file for ocp_analysis.
# This may be replaced when dependencies are built.
