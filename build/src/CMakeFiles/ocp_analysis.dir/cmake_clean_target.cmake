file(REMOVE_RECURSE
  "libocp_analysis.a"
)
