file(REMOVE_RECURSE
  "CMakeFiles/ocp_analysis.dir/analysis/ablation.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/ablation.cpp.o.d"
  "CMakeFiles/ocp_analysis.dir/analysis/async_study.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/async_study.cpp.o.d"
  "CMakeFiles/ocp_analysis.dir/analysis/block_stats.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/block_stats.cpp.o.d"
  "CMakeFiles/ocp_analysis.dir/analysis/fig5.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/fig5.cpp.o.d"
  "CMakeFiles/ocp_analysis.dir/analysis/partition_study.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/partition_study.cpp.o.d"
  "CMakeFiles/ocp_analysis.dir/analysis/render.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/render.cpp.o.d"
  "CMakeFiles/ocp_analysis.dir/analysis/svg.cpp.o"
  "CMakeFiles/ocp_analysis.dir/analysis/svg.cpp.o.d"
  "libocp_analysis.a"
  "libocp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
