
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ablation.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/ablation.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/ablation.cpp.o.d"
  "/root/repo/src/analysis/async_study.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/async_study.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/async_study.cpp.o.d"
  "/root/repo/src/analysis/block_stats.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/block_stats.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/block_stats.cpp.o.d"
  "/root/repo/src/analysis/fig5.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/fig5.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/fig5.cpp.o.d"
  "/root/repo/src/analysis/partition_study.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/partition_study.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/partition_study.cpp.o.d"
  "/root/repo/src/analysis/render.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/render.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/render.cpp.o.d"
  "/root/repo/src/analysis/svg.cpp" "src/CMakeFiles/ocp_analysis.dir/analysis/svg.cpp.o" "gcc" "src/CMakeFiles/ocp_analysis.dir/analysis/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
