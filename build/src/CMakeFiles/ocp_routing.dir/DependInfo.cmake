
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/adaptive_router.cpp" "src/CMakeFiles/ocp_routing.dir/routing/adaptive_router.cpp.o" "gcc" "src/CMakeFiles/ocp_routing.dir/routing/adaptive_router.cpp.o.d"
  "/root/repo/src/routing/channel_graph.cpp" "src/CMakeFiles/ocp_routing.dir/routing/channel_graph.cpp.o" "gcc" "src/CMakeFiles/ocp_routing.dir/routing/channel_graph.cpp.o.d"
  "/root/repo/src/routing/minimal_router.cpp" "src/CMakeFiles/ocp_routing.dir/routing/minimal_router.cpp.o" "gcc" "src/CMakeFiles/ocp_routing.dir/routing/minimal_router.cpp.o.d"
  "/root/repo/src/routing/multicast.cpp" "src/CMakeFiles/ocp_routing.dir/routing/multicast.cpp.o" "gcc" "src/CMakeFiles/ocp_routing.dir/routing/multicast.cpp.o.d"
  "/root/repo/src/routing/router.cpp" "src/CMakeFiles/ocp_routing.dir/routing/router.cpp.o" "gcc" "src/CMakeFiles/ocp_routing.dir/routing/router.cpp.o.d"
  "/root/repo/src/routing/traffic.cpp" "src/CMakeFiles/ocp_routing.dir/routing/traffic.cpp.o" "gcc" "src/CMakeFiles/ocp_routing.dir/routing/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
