file(REMOVE_RECURSE
  "CMakeFiles/ocp_routing.dir/routing/adaptive_router.cpp.o"
  "CMakeFiles/ocp_routing.dir/routing/adaptive_router.cpp.o.d"
  "CMakeFiles/ocp_routing.dir/routing/channel_graph.cpp.o"
  "CMakeFiles/ocp_routing.dir/routing/channel_graph.cpp.o.d"
  "CMakeFiles/ocp_routing.dir/routing/minimal_router.cpp.o"
  "CMakeFiles/ocp_routing.dir/routing/minimal_router.cpp.o.d"
  "CMakeFiles/ocp_routing.dir/routing/multicast.cpp.o"
  "CMakeFiles/ocp_routing.dir/routing/multicast.cpp.o.d"
  "CMakeFiles/ocp_routing.dir/routing/router.cpp.o"
  "CMakeFiles/ocp_routing.dir/routing/router.cpp.o.d"
  "CMakeFiles/ocp_routing.dir/routing/traffic.cpp.o"
  "CMakeFiles/ocp_routing.dir/routing/traffic.cpp.o.d"
  "libocp_routing.a"
  "libocp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
