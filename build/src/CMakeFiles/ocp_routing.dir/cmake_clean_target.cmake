file(REMOVE_RECURSE
  "libocp_routing.a"
)
