# Empty compiler generated dependencies file for ocp_routing.
# This may be replaced when dependencies are built.
