file(REMOVE_RECURSE
  "libocp_core.a"
)
