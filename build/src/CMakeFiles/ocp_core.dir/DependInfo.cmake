
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fault_distance.cpp" "src/CMakeFiles/ocp_core.dir/core/fault_distance.cpp.o" "gcc" "src/CMakeFiles/ocp_core.dir/core/fault_distance.cpp.o.d"
  "/root/repo/src/core/maintenance.cpp" "src/CMakeFiles/ocp_core.dir/core/maintenance.cpp.o" "gcc" "src/CMakeFiles/ocp_core.dir/core/maintenance.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/ocp_core.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/ocp_core.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/ocp_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/ocp_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/CMakeFiles/ocp_core.dir/core/reference.cpp.o" "gcc" "src/CMakeFiles/ocp_core.dir/core/reference.cpp.o.d"
  "/root/repo/src/core/regions.cpp" "src/CMakeFiles/ocp_core.dir/core/regions.cpp.o" "gcc" "src/CMakeFiles/ocp_core.dir/core/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
