file(REMOVE_RECURSE
  "CMakeFiles/ocp_core.dir/core/fault_distance.cpp.o"
  "CMakeFiles/ocp_core.dir/core/fault_distance.cpp.o.d"
  "CMakeFiles/ocp_core.dir/core/maintenance.cpp.o"
  "CMakeFiles/ocp_core.dir/core/maintenance.cpp.o.d"
  "CMakeFiles/ocp_core.dir/core/partition.cpp.o"
  "CMakeFiles/ocp_core.dir/core/partition.cpp.o.d"
  "CMakeFiles/ocp_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/ocp_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/ocp_core.dir/core/reference.cpp.o"
  "CMakeFiles/ocp_core.dir/core/reference.cpp.o.d"
  "CMakeFiles/ocp_core.dir/core/regions.cpp.o"
  "CMakeFiles/ocp_core.dir/core/regions.cpp.o.d"
  "libocp_core.a"
  "libocp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
