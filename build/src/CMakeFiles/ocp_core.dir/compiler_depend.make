# Empty compiler generated dependencies file for ocp_core.
# This may be replaced when dependencies are built.
