file(REMOVE_RECURSE
  "CMakeFiles/netsim_saturation.dir/netsim_saturation.cpp.o"
  "CMakeFiles/netsim_saturation.dir/netsim_saturation.cpp.o.d"
  "netsim_saturation"
  "netsim_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
