# Empty compiler generated dependencies file for netsim_saturation.
# This may be replaced when dependencies are built.
