
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/netsim_saturation.cpp" "bench/CMakeFiles/netsim_saturation.dir/netsim_saturation.cpp.o" "gcc" "bench/CMakeFiles/netsim_saturation.dir/netsim_saturation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
