file(REMOVE_RECURSE
  "CMakeFiles/perf_routing.dir/perf_routing.cpp.o"
  "CMakeFiles/perf_routing.dir/perf_routing.cpp.o.d"
  "perf_routing"
  "perf_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
