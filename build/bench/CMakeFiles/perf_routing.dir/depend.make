# Empty dependencies file for perf_routing.
# This may be replaced when dependencies are built.
