# Empty compiler generated dependencies file for block_statistics.
# This may be replaced when dependencies are built.
