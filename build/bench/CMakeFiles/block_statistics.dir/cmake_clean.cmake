file(REMOVE_RECURSE
  "CMakeFiles/block_statistics.dir/block_statistics.cpp.o"
  "CMakeFiles/block_statistics.dir/block_statistics.cpp.o.d"
  "block_statistics"
  "block_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
