# Empty compiler generated dependencies file for ablation_defs.
# This may be replaced when dependencies are built.
