file(REMOVE_RECURSE
  "CMakeFiles/ablation_defs.dir/ablation_defs.cpp.o"
  "CMakeFiles/ablation_defs.dir/ablation_defs.cpp.o.d"
  "ablation_defs"
  "ablation_defs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
