file(REMOVE_RECURSE
  "CMakeFiles/ablation_torus.dir/ablation_torus.cpp.o"
  "CMakeFiles/ablation_torus.dir/ablation_torus.cpp.o.d"
  "ablation_torus"
  "ablation_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
