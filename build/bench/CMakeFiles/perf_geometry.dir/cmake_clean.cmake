file(REMOVE_RECURSE
  "CMakeFiles/perf_geometry.dir/perf_geometry.cpp.o"
  "CMakeFiles/perf_geometry.dir/perf_geometry.cpp.o.d"
  "perf_geometry"
  "perf_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
