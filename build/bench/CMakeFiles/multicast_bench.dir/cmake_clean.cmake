file(REMOVE_RECURSE
  "CMakeFiles/multicast_bench.dir/multicast_bench.cpp.o"
  "CMakeFiles/multicast_bench.dir/multicast_bench.cpp.o.d"
  "multicast_bench"
  "multicast_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
