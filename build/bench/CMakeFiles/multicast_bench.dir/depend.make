# Empty dependencies file for multicast_bench.
# This may be replaced when dependencies are built.
