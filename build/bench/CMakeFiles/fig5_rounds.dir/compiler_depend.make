# Empty compiler generated dependencies file for fig5_rounds.
# This may be replaced when dependencies are built.
