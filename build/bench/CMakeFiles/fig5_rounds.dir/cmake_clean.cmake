file(REMOVE_RECURSE
  "CMakeFiles/fig5_rounds.dir/fig5_rounds.cpp.o"
  "CMakeFiles/fig5_rounds.dir/fig5_rounds.cpp.o.d"
  "fig5_rounds"
  "fig5_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
