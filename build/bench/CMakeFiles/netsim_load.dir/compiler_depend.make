# Empty compiler generated dependencies file for netsim_load.
# This may be replaced when dependencies are built.
