file(REMOVE_RECURSE
  "CMakeFiles/netsim_load.dir/netsim_load.cpp.o"
  "CMakeFiles/netsim_load.dir/netsim_load.cpp.o.d"
  "netsim_load"
  "netsim_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
