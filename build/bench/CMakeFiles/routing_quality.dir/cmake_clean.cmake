file(REMOVE_RECURSE
  "CMakeFiles/routing_quality.dir/routing_quality.cpp.o"
  "CMakeFiles/routing_quality.dir/routing_quality.cpp.o.d"
  "routing_quality"
  "routing_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
