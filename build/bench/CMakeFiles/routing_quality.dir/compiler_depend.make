# Empty compiler generated dependencies file for routing_quality.
# This may be replaced when dependencies are built.
