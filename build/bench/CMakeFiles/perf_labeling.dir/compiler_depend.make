# Empty compiler generated dependencies file for perf_labeling.
# This may be replaced when dependencies are built.
