file(REMOVE_RECURSE
  "CMakeFiles/perf_labeling.dir/perf_labeling.cpp.o"
  "CMakeFiles/perf_labeling.dir/perf_labeling.cpp.o.d"
  "perf_labeling"
  "perf_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
