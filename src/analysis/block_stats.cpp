#include "analysis/block_stats.hpp"

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::analysis {

std::vector<BlockStatsRow> run_block_stats(const BlockStatsConfig& config) {
  const mesh::Mesh2D machine = mesh::Mesh2D::square(config.n);
  std::vector<BlockStatsRow> rows(config.fault_counts.size());

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    BlockStatsRow& row = rows[fi];
    row.f = config.fault_counts[fi];
    stats::Rng seeder(config.seed + 0x40 * static_cast<std::uint64_t>(fi));

    for (std::size_t t = 0; t < config.trials; ++t) {
      stats::Rng rng(seeder.fork_seed());
      const auto faults = fault::uniform_random(
          machine, static_cast<std::size_t>(row.f), rng);
      labeling::PipelineOptions opts;
      opts.engine = labeling::Engine::Reference;
      const auto result = labeling::run_pipeline(faults, opts);

      std::size_t singletons = 0;
      std::size_t multi_fault = 0;
      for (const auto& block : result.blocks) {
        row.block_size.add(static_cast<double>(block.size()));
        row.block_diameter.add(block.region().diameter());
        row.size_hist.add(static_cast<double>(block.size()));
        if (block.size() == 1) ++singletons;
        if (block.fault_count > 1) ++multi_fault;
      }
      for (const auto& region : result.regions) {
        row.region_size.add(static_cast<double>(region.size()));
      }
      if (!result.blocks.empty()) {
        const auto blocks = static_cast<double>(result.blocks.size());
        row.singleton_pct.add(100.0 * static_cast<double>(singletons) /
                              blocks);
        row.multi_fault_pct.add(100.0 * static_cast<double>(multi_fault) /
                                blocks);
      }
    }
  }
  return rows;
}

stats::Table block_stats_table(const std::vector<BlockStatsRow>& rows) {
  stats::Table table({"f", "block size", "block d(B)", "region size",
                      "singleton %", "multi-fault %", "p99 size",
                      "size distribution"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        stats::format_double(r.block_size.mean(), 2),
        stats::format_double(r.block_diameter.mean(), 2),
        stats::format_double(r.region_size.mean(), 2),
        r.singleton_pct.empty()
            ? "n/a"
            : stats::format_double(r.singleton_pct.mean(), 1),
        r.multi_fault_pct.empty()
            ? "n/a"
            : stats::format_double(r.multi_fault_pct.mean(), 1),
        stats::format_double(r.size_hist.p99(), 1),
        r.size_hist.sparkline(),
    });
  }
  return table;
}

}  // namespace ocp::analysis
