// Ablation experiments for the design choices DESIGN.md calls out:
// Definition 2a vs 2b, and rectangle model vs orthogonal convex polygons as
// the unit a router must avoid.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "mesh/mesh2d.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ocp::analysis {

/// ---- Definition ablation (Def 2a vs Def 2b) -------------------------------

struct DefinitionAblationConfig {
  std::int32_t n = 100;
  mesh::Topology topology = mesh::Topology::Mesh;
  std::vector<std::int32_t> fault_counts;
  std::size_t trials = 100;
  std::uint64_t seed = 7;
};

struct DefinitionAblationRow {
  std::int32_t f = 0;
  /// Nonfaulty nodes swallowed into faulty blocks, per definition.
  stats::Summary unsafe_nonfaulty_2a;
  stats::Summary unsafe_nonfaulty_2b;
  /// Nonfaulty nodes still disabled after phase two, per definition.
  stats::Summary disabled_nonfaulty_2a;
  stats::Summary disabled_nonfaulty_2b;
  /// Block counts, per definition.
  stats::Summary blocks_2a;
  stats::Summary blocks_2b;
};

[[nodiscard]] std::vector<DefinitionAblationRow> run_definition_ablation(
    const DefinitionAblationConfig& config);
[[nodiscard]] stats::Table definition_ablation_table(
    const std::vector<DefinitionAblationRow>& rows);

/// ---- Region-model routing ablation ----------------------------------------

/// Which cells a router must treat as impassable.
enum class BlockModel : std::uint8_t {
  /// Only the faulty nodes themselves (no labeling; regions can be any
  /// shape, including concave).
  RawFaults = 0,
  /// The rectangular faulty blocks (the classic model).
  FaultyBlocks = 1,
  /// The orthogonal convex disabled regions (this paper's model).
  DisabledRegions = 2,
};

[[nodiscard]] const char* to_string(BlockModel m) noexcept;

struct RoutingAblationConfig {
  std::int32_t n = 32;
  std::vector<std::int32_t> fault_counts;
  std::size_t trials = 20;
  /// Routed source/destination pairs per trial and model.
  std::size_t pairs = 400;
  labeling::SafeUnsafeDef definition = labeling::SafeUnsafeDef::Def2b;
  std::uint64_t seed = 11;
};

struct RoutingAblationRow {
  std::int32_t f = 0;
  BlockModel model = BlockModel::RawFaults;
  /// Nonfaulty nodes the model takes away from the application.
  stats::Summary sacrificed_nonfaulty;
  stats::Summary delivery_rate;  // percent
  stats::Summary stretch;        // delivered packets, hops over minimal
  stats::Summary detour_hops;
};

[[nodiscard]] std::vector<RoutingAblationRow> run_routing_ablation(
    const RoutingAblationConfig& config);
[[nodiscard]] stats::Table routing_ablation_table(
    const std::vector<RoutingAblationRow>& rows);

}  // namespace ocp::analysis
