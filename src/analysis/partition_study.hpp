// Study of the paper's open problem: how much does partitioning disabled
// regions into several orthogonal convex polygons improve on the one-region
// cover, and how close does the greedy heuristic get to the exhaustive
// optimum?
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ocp::analysis {

struct PartitionStudyConfig {
  std::int32_t n = 100;
  std::vector<std::int32_t> fault_counts;
  std::size_t trials = 100;
  /// Exhaustive search only for regions with at most this many faults.
  std::size_t exhaustive_limit = 9;
  /// When true, faults arrive in random-walk clusters of `cluster_size`
  /// (fault_counts then counts clusters x cluster_size approximately);
  /// clustered faults produce the large irregular regions where
  /// partitioning actually pays off.
  bool clustered = false;
  std::size_t cluster_size = 8;
  std::uint64_t seed = 31;
};

struct PartitionStudyRow {
  std::int32_t f = 0;
  /// Nonfaulty cells per machine under each cover strategy.
  stats::Summary nonfaulty_regions;     // disabled regions as-is
  stats::Summary nonfaulty_separated;   // greedy gap cover (Separated rule)
  stats::Summary nonfaulty_touching;    // greedy cut cover (Touching rule)
  stats::Summary nonfaulty_optimal;     // exhaustive Touching where feasible
  /// Polygons per machine for the region model and the touching cover.
  stats::Summary polygons_regions;
  stats::Summary polygons_touching;
  /// Fraction (%) of regions the Touching rule managed to split further.
  stats::Summary regions_split_pct;
};

[[nodiscard]] std::vector<PartitionStudyRow> run_partition_study(
    const PartitionStudyConfig& config);

[[nodiscard]] stats::Table partition_study_table(
    const std::vector<PartitionStudyRow>& rows);

}  // namespace ocp::analysis
