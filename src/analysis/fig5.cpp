#include "analysis/fig5.hpp"

#include <vector>

#include "analysis/trial_pool.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::analysis {

std::vector<std::int32_t> Fig5Config::default_fault_counts(std::int32_t step,
                                                           std::int32_t max_f) {
  std::vector<std::int32_t> out;
  for (std::int32_t f = 0; f <= max_f; f += step) out.push_back(f);
  return out;
}

namespace {

/// Enabled count per faulty block: unsafe-nonfaulty minus the nonfaulty
/// cells its child disabled regions still hold.
std::vector<std::size_t> enabled_per_block(
    const labeling::PipelineResult& result) {
  std::vector<std::size_t> enabled(result.blocks.size());
  for (std::size_t b = 0; b < result.blocks.size(); ++b) {
    enabled[b] = result.blocks[b].unsafe_nonfaulty_count;
  }
  for (const auto& region : result.regions) {
    enabled[region.parent_block] -= region.disabled_nonfaulty_count;
  }
  return enabled;
}

void accumulate_trial(Fig5Row& row, const labeling::PipelineResult& result,
                      std::int64_t node_count) {
  row.rounds_blocks.add(result.safety_stats.rounds_to_quiesce);
  row.rounds_regions.add(result.activation_stats.rounds_to_quiesce);
  row.block_count.add(static_cast<double>(result.blocks.size()));
  row.region_count.add(static_cast<double>(result.regions.size()));
  row.messages_per_node.add(
      static_cast<double>(result.safety_stats.messages_event_driven +
                          result.activation_stats.messages_event_driven) /
      static_cast<double>(node_count));

  std::int32_t max_diam = 0;
  for (const auto& block : result.blocks) {
    max_diam = std::max(max_diam, block.region().diameter());
  }
  row.max_block_diameter.add(max_diam);

  const std::vector<std::size_t> enabled = enabled_per_block(result);
  stats::Summary per_block;
  std::size_t enabled_total = 0;
  std::size_t unsafe_nonfaulty_total = 0;
  for (std::size_t b = 0; b < result.blocks.size(); ++b) {
    const std::size_t denom = result.blocks[b].unsafe_nonfaulty_count;
    if (denom == 0) continue;  // nothing to reduce in this block
    per_block.add(100.0 * static_cast<double>(enabled[b]) /
                  static_cast<double>(denom));
    enabled_total += enabled[b];
    unsafe_nonfaulty_total += denom;
  }
  if (!per_block.empty()) {
    row.enabled_ratio_per_block.add(per_block.mean());
    row.enabled_ratio_pooled.add(100.0 *
                                 static_cast<double>(enabled_total) /
                                 static_cast<double>(unsafe_nonfaulty_total));
  }
}

}  // namespace

std::vector<Fig5Row> run_fig5(const Fig5Config& config) {
  const mesh::Mesh2D machine =
      mesh::Mesh2D::square(config.n, config.topology);
  std::vector<Fig5Row> rows(config.fault_counts.size());

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    Fig5Row& row = rows[fi];
    row.f = config.fault_counts[fi];

    // Per-trial seeds are derived deterministically so results do not
    // depend on sweep order or parallel scheduling.
    stats::Rng seeder(config.seed + 0x1000 * static_cast<std::uint64_t>(fi));
    const auto trial_seeds = fork_trial_seeds(seeder, config.trials);

    std::vector<Fig5Row> trial_rows(config.trials);
    for_each_trial(config.trials, [&](std::size_t t) {
      stats::Rng rng(trial_seeds[t]);
      const grid::CellSet faults = fault::uniform_random(
          machine, static_cast<std::size_t>(row.f), rng);
      labeling::PipelineOptions opts;
      opts.definition = config.definition;
      accumulate_trial(trial_rows[t], labeling::run_pipeline(faults, opts),
                       machine.node_count());
    });
    // Serial, trial-ordered reduction: bit-identical for any thread count.
    for (const Fig5Row& tr : trial_rows) {
      row.rounds_blocks.merge(tr.rounds_blocks);
      row.rounds_regions.merge(tr.rounds_regions);
      row.enabled_ratio_per_block.merge(tr.enabled_ratio_per_block);
      row.enabled_ratio_pooled.merge(tr.enabled_ratio_pooled);
      row.block_count.merge(tr.block_count);
      row.region_count.merge(tr.region_count);
      row.max_block_diameter.merge(tr.max_block_diameter);
      row.messages_per_node.merge(tr.messages_per_node);
    }
  }
  return rows;
}

stats::Table fig5_table(const std::vector<Fig5Row>& rows) {
  stats::Table table({"f", "rounds(FB)", "rounds(DR)", "enabled/unsafe-nf %",
                      "pooled %", "#FB", "#DR", "max d(B)", "msgs/node"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        stats::format_mean_ci(r.rounds_blocks.mean(), r.rounds_blocks.ci95(),
                              2),
        stats::format_mean_ci(r.rounds_regions.mean(),
                              r.rounds_regions.ci95(), 2),
        r.enabled_ratio_per_block.empty()
            ? "n/a"
            : stats::format_mean_ci(r.enabled_ratio_per_block.mean(),
                                    r.enabled_ratio_per_block.ci95(), 1),
        r.enabled_ratio_pooled.empty()
            ? "n/a"
            : stats::format_double(r.enabled_ratio_pooled.mean(), 1),
        stats::format_double(r.block_count.mean(), 1),
        stats::format_double(r.region_count.mean(), 1),
        stats::format_double(r.max_block_diameter.mean(), 2),
        stats::format_double(r.messages_per_node.mean(), 2),
    });
  }
  return table;
}

}  // namespace ocp::analysis
