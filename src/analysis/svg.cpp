#include "analysis/svg.hpp"

#include <sstream>

namespace ocp::analysis {

namespace {

/// Pixel center of a cell (y flipped: row 0 at the bottom).
struct PixelMapper {
  const mesh::Mesh2D& m;
  int cell;

  [[nodiscard]] int x(mesh::Coord c) const { return c.x * cell; }
  [[nodiscard]] int y(mesh::Coord c) const {
    return (m.height() - 1 - c.y) * cell;
  }
  [[nodiscard]] double cx(mesh::Coord c) const { return x(c) + cell / 2.0; }
  [[nodiscard]] double cy(mesh::Coord c) const { return y(c) + cell / 2.0; }
};

void open_svg(std::ostringstream& os, const mesh::Mesh2D& m,
              const SvgStyle& style) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << m.width() * style.cell_px << "\" height=\""
     << m.height() * style.cell_px << "\" viewBox=\"0 0 "
     << m.width() * style.cell_px << " " << m.height() * style.cell_px
     << "\">\n";
}

void emit_cells(std::ostringstream& os, const grid::CellSet& faults,
                const labeling::PipelineResult& result,
                const SvgStyle& style) {
  const mesh::Mesh2D& m = faults.topology();
  const PixelMapper px{m, style.cell_px};
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
       ++i) {
    const mesh::Coord c = m.coord(i);
    const std::string* fill = &style.safe;
    if (faults.contains(c)) {
      fill = &style.faulty;
    } else if (result.activation[c] == labeling::Activation::Disabled) {
      fill = &style.disabled_nonfaulty;
    } else if (result.safety[c] == labeling::Safety::Unsafe) {
      fill = &style.enabled_unsafe;
    }
    os << "  <rect x=\"" << px.x(c) << "\" y=\"" << px.y(c) << "\" width=\""
       << style.cell_px << "\" height=\"" << style.cell_px << "\" fill=\""
       << *fill << "\" stroke=\"" << style.grid_line
       << "\" stroke-width=\"1\"/>\n";
  }
}

}  // namespace

std::string render_labeling_svg(const grid::CellSet& faults,
                                const labeling::PipelineResult& result,
                                const SvgStyle& style) {
  std::ostringstream os;
  open_svg(os, faults.topology(), style);
  emit_cells(os, faults, result, style);
  os << "</svg>\n";
  return os.str();
}

std::string render_route_svg(const grid::CellSet& faults,
                             const labeling::PipelineResult& result,
                             const routing::Route& route,
                             const SvgStyle& style) {
  std::ostringstream os;
  const mesh::Mesh2D& m = faults.topology();
  const PixelMapper px{m, style.cell_px};
  open_svg(os, m, style);
  emit_cells(os, faults, result, style);

  // Hop segments, colored by phase. Seam-crossing torus hops are skipped
  // (they would smear across the whole image).
  for (std::size_t h = 0; h + 1 < route.path.size(); ++h) {
    const mesh::Coord a = route.path[h];
    const mesh::Coord b = route.path[h + 1];
    if (mesh::manhattan(a, b) != 1) continue;  // wrap hop
    const std::string& color =
        route.phase[h] == 0 ? style.route : style.detour;
    os << "  <line x1=\"" << px.cx(a) << "\" y1=\"" << px.cy(a)
       << "\" x2=\"" << px.cx(b) << "\" y2=\"" << px.cy(b) << "\" stroke=\""
       << color << "\" stroke-width=\"" << style.cell_px / 4.0
       << "\" stroke-linecap=\"round\"/>\n";
  }
  if (!route.path.empty()) {
    os << "  <circle cx=\"" << px.cx(route.path.front()) << "\" cy=\""
       << px.cy(route.path.front()) << "\" r=\"" << style.cell_px / 3.0
       << "\" fill=\"" << style.route << "\"/>\n";
    os << "  <circle cx=\"" << px.cx(route.path.back()) << "\" cy=\""
       << px.cy(route.path.back()) << "\" r=\"" << style.cell_px / 3.0
       << "\" fill=\"" << style.detour << "\"/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace ocp::analysis
