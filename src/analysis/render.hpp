// ASCII rendering of labeled machines, for examples and debugging.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "grid/cell_set.hpp"

namespace ocp::analysis {

/// One character per node, top row = highest y:
///   'X' faulty, 'd' nonfaulty but disabled, 'e' unsafe but enabled
///   (the nodes phase two won back), '.' safe.
[[nodiscard]] std::string render_labeling(
    const grid::CellSet& faults, const labeling::PipelineResult& result);

/// Renders only the safety labeling: 'X' faulty, 'u' unsafe nonfaulty,
/// '.' safe.
[[nodiscard]] std::string render_safety(const grid::CellSet& faults,
                                        const grid::NodeGrid<labeling::Safety>& safety);

}  // namespace ocp::analysis
