// Deterministic trial-level parallelism for the Monte-Carlo sweep drivers.
//
// Contract: every trial gets its own `stats::Rng` stream keyed by trial
// index (seeds are forked up-front, in order, from the sweep-point seeder),
// each worker writes only trial-indexed slots of a preallocated record
// vector, and the records are reduced serially in trial order afterwards.
// That makes every driver's output bit-identical for any thread count —
// including a no-OpenMP build, which runs the same code single-threaded.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace ocp::analysis {

/// One independent RNG seed per trial, forked in trial order.
inline std::vector<std::uint64_t> fork_trial_seeds(stats::Rng& seeder,
                                                   std::size_t trials) {
  std::vector<std::uint64_t> seeds(trials);
  for (auto& s : seeds) s = seeder.fork_seed();
  return seeds;
}

/// Runs `fn(t)` for every trial, across OpenMP threads when available.
/// `fn` must be safe to call concurrently for distinct `t` (write only
/// trial-indexed state).
template <typename Fn>
void for_each_trial(std::size_t trials, Fn&& fn) {
#ifdef OCP_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(trials); ++t) {
    fn(static_cast<std::size_t>(t));
  }
#else
  for (std::size_t t = 0; t < trials; ++t) fn(t);
#endif
}

}  // namespace ocp::analysis
