// Structural statistics of faulty blocks and disabled regions: size and
// diameter distributions across fault densities. Backs the paper's
// section-5 explanation that "a random distribution tends to generate a set
// of small faulty blocks and nonfaulty nodes in small blocks are easy to be
// enabled".
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ocp::analysis {

struct BlockStatsConfig {
  std::int32_t n = 100;
  std::vector<std::int32_t> fault_counts;
  std::size_t trials = 100;
  std::uint64_t seed = 17;
};

struct BlockStatsRow {
  std::int32_t f = 0;
  stats::Summary block_size;
  stats::Summary block_diameter;
  stats::Summary region_size;
  /// Fraction (%) of blocks that are singletons (one faulty node).
  stats::Summary singleton_pct;
  /// Fraction (%) of blocks containing more than one fault.
  stats::Summary multi_fault_pct;
  /// Block-size distribution pooled over trials (buckets of 1, up to 32).
  stats::Histogram size_hist{0.5, 32.5, 32};
};

[[nodiscard]] std::vector<BlockStatsRow> run_block_stats(
    const BlockStatsConfig& config);

[[nodiscard]] stats::Table block_stats_table(
    const std::vector<BlockStatsRow>& rows);

}  // namespace ocp::analysis
