#include "analysis/ablation.hpp"

#include "analysis/trial_pool.hpp"
#include "fault/generators.hpp"
#include "routing/router.hpp"
#include "routing/traffic.hpp"
#include "stats/rng.hpp"

namespace ocp::analysis {

namespace {

/// Per-trial measurements of the definition ablation, reduced in trial
/// order after the parallel sweep.
struct DefTrialRecord {
  double unsafe_2a = 0, unsafe_2b = 0;
  double disabled_2a = 0, disabled_2b = 0;
  double blocks_2a = 0, blocks_2b = 0;
};

}  // namespace

std::vector<DefinitionAblationRow> run_definition_ablation(
    const DefinitionAblationConfig& config) {
  const mesh::Mesh2D machine =
      mesh::Mesh2D::square(config.n, config.topology);
  std::vector<DefinitionAblationRow> rows(config.fault_counts.size());

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    DefinitionAblationRow& row = rows[fi];
    row.f = config.fault_counts[fi];
    stats::Rng seeder(config.seed + 0x1000 * static_cast<std::uint64_t>(fi));
    const auto trial_seeds = fork_trial_seeds(seeder, config.trials);

    std::vector<DefTrialRecord> records(config.trials);
    for_each_trial(config.trials, [&](std::size_t t) {
      stats::Rng rng(trial_seeds[t]);
      const grid::CellSet faults = fault::uniform_random(
          machine, static_cast<std::size_t>(row.f), rng);
      // The same fault pattern goes through both definitions so the
      // comparison is paired.
      labeling::PipelineOptions opts;
      opts.engine = labeling::Engine::Reference;  // labels only, no rounds
      opts.definition = labeling::SafeUnsafeDef::Def2a;
      const auto res_2a = labeling::run_pipeline(faults, opts);
      opts.definition = labeling::SafeUnsafeDef::Def2b;
      const auto res_2b = labeling::run_pipeline(faults, opts);

      DefTrialRecord& rec = records[t];
      rec.unsafe_2a = static_cast<double>(res_2a.unsafe_nonfaulty_total());
      rec.unsafe_2b = static_cast<double>(res_2b.unsafe_nonfaulty_total());
      rec.disabled_2a =
          static_cast<double>(res_2a.disabled_nonfaulty_total());
      rec.disabled_2b =
          static_cast<double>(res_2b.disabled_nonfaulty_total());
      rec.blocks_2a = static_cast<double>(res_2a.blocks.size());
      rec.blocks_2b = static_cast<double>(res_2b.blocks.size());
    });
    for (const DefTrialRecord& rec : records) {
      row.unsafe_nonfaulty_2a.add(rec.unsafe_2a);
      row.unsafe_nonfaulty_2b.add(rec.unsafe_2b);
      row.disabled_nonfaulty_2a.add(rec.disabled_2a);
      row.disabled_nonfaulty_2b.add(rec.disabled_2b);
      row.blocks_2a.add(rec.blocks_2a);
      row.blocks_2b.add(rec.blocks_2b);
    }
  }
  return rows;
}

stats::Table definition_ablation_table(
    const std::vector<DefinitionAblationRow>& rows) {
  stats::Table table({"f", "unsafe-nf(2a)", "unsafe-nf(2b)", "disabled-nf(2a)",
                      "disabled-nf(2b)", "#FB(2a)", "#FB(2b)"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        stats::format_double(r.unsafe_nonfaulty_2a.mean(), 1),
        stats::format_double(r.unsafe_nonfaulty_2b.mean(), 1),
        stats::format_double(r.disabled_nonfaulty_2a.mean(), 1),
        stats::format_double(r.disabled_nonfaulty_2b.mean(), 1),
        stats::format_double(r.blocks_2a.mean(), 1),
        stats::format_double(r.blocks_2b.mean(), 1),
    });
  }
  return table;
}

const char* to_string(BlockModel m) noexcept {
  switch (m) {
    case BlockModel::RawFaults: return "raw-faults";
    case BlockModel::FaultyBlocks: return "faulty-blocks";
    case BlockModel::DisabledRegions: return "disabled-regions";
  }
  return "?";
}

namespace {

/// The impassable cell set induced by a block model.
grid::CellSet blocked_for_model(const grid::CellSet& faults,
                                const labeling::PipelineResult& result,
                                BlockModel model) {
  const mesh::Mesh2D& m = faults.topology();
  switch (model) {
    case BlockModel::RawFaults:
      return faults;
    case BlockModel::FaultyBlocks:
      return labeling::unsafe_cells(result.safety);
    case BlockModel::DisabledRegions:
      return labeling::disabled_cells(result.activation);
  }
  return grid::CellSet(m);  // unreachable
}

/// Per-trial, per-model measurements of the routing ablation.
struct RoutingTrialRecord {
  double sacrificed = 0;
  double delivery = 0;
  bool has_stretch = false;
  double stretch = 0;
  double detour = 0;
};

}  // namespace

std::vector<RoutingAblationRow> run_routing_ablation(
    const RoutingAblationConfig& config) {
  const mesh::Mesh2D machine = mesh::Mesh2D::square(config.n);
  constexpr std::array<BlockModel, 3> kModels = {BlockModel::RawFaults,
                                                 BlockModel::FaultyBlocks,
                                                 BlockModel::DisabledRegions};

  std::vector<RoutingAblationRow> rows;
  for (std::int32_t f : config.fault_counts) {
    for (BlockModel model : kModels) {
      RoutingAblationRow row;
      row.f = f;
      row.model = model;
      rows.push_back(row);
    }
  }

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    stats::Rng seeder(config.seed + 0x1000 * static_cast<std::uint64_t>(fi));
    const auto trial_seeds = fork_trial_seeds(seeder, config.trials);

    std::vector<RoutingTrialRecord> records(config.trials * kModels.size());
    for_each_trial(config.trials, [&](std::size_t t) {
      stats::Rng rng(trial_seeds[t]);
      const grid::CellSet faults = fault::uniform_random(
          machine, static_cast<std::size_t>(config.fault_counts[fi]), rng);
      labeling::PipelineOptions opts;
      opts.definition = config.definition;
      opts.engine = labeling::Engine::Reference;
      const auto result = labeling::run_pipeline(faults, opts);

      for (std::size_t mi = 0; mi < kModels.size(); ++mi) {
        const grid::CellSet blocked =
            blocked_for_model(faults, result, kModels[mi]);
        const routing::FaultRingRouter router(machine, blocked);
        stats::Rng traffic_rng(rng.fork_seed());
        const auto traffic = routing::run_uniform_traffic(
            router, blocked, config.pairs, traffic_rng);

        RoutingTrialRecord& rec = records[t * kModels.size() + mi];
        rec.sacrificed =
            static_cast<double>(blocked.size() - faults.size());
        rec.delivery = 100.0 * traffic.delivery_rate();
        if (!traffic.stretch.empty()) {
          rec.has_stretch = true;
          rec.stretch = traffic.stretch.mean();
          rec.detour = traffic.detour_hops.mean();
        }
      }
    });
    for (std::size_t t = 0; t < config.trials; ++t) {
      for (std::size_t mi = 0; mi < kModels.size(); ++mi) {
        RoutingAblationRow& row = rows[fi * kModels.size() + mi];
        const RoutingTrialRecord& rec = records[t * kModels.size() + mi];
        row.sacrificed_nonfaulty.add(rec.sacrificed);
        row.delivery_rate.add(rec.delivery);
        if (rec.has_stretch) {
          row.stretch.add(rec.stretch);
          row.detour_hops.add(rec.detour);
        }
      }
    }
  }
  return rows;
}

stats::Table routing_ablation_table(
    const std::vector<RoutingAblationRow>& rows) {
  stats::Table table({"f", "model", "sacrificed nonfaulty", "delivery %",
                      "stretch", "detour hops"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        to_string(r.model),
        stats::format_double(r.sacrificed_nonfaulty.mean(), 1),
        stats::format_double(r.delivery_rate.mean(), 2),
        r.stretch.empty() ? "n/a"
                          : stats::format_double(r.stretch.mean(), 3),
        r.detour_hops.empty()
            ? "n/a"
            : stats::format_double(r.detour_hops.mean(), 3),
    });
  }
  return table;
}

}  // namespace ocp::analysis
