#include "analysis/async_study.hpp"

#include "analysis/trial_pool.hpp"
#include "core/safety_protocol.hpp"
#include "fault/generators.hpp"
#include "simkernel/async_runner.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::analysis {

namespace {

/// Per-trial measurements of the async study, reduced in trial order.
struct AsyncTrialRecord {
  double sync_rounds = 0;
  double async_sweeps = 0;
  double msgs_broadcast_per_node = 0;
  double msgs_event_per_node = 0;
  double match = 0;
};

}  // namespace

std::vector<AsyncStudyRow> run_async_study(const AsyncStudyConfig& config) {
  const mesh::Mesh2D machine = mesh::Mesh2D::square(config.n);
  const mesh::AdjacencyTable adj(machine);
  std::vector<AsyncStudyRow> rows(config.fault_counts.size());

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    AsyncStudyRow& row = rows[fi];
    row.f = config.fault_counts[fi];
    stats::Rng seeder(config.seed + 0x10 * static_cast<std::uint64_t>(fi));
    const auto trial_seeds = fork_trial_seeds(seeder, config.trials);

    std::vector<AsyncTrialRecord> records(config.trials);
    for_each_trial(config.trials, [&](std::size_t t) {
      stats::Rng rng(trial_seeds[t]);
      const auto faults = fault::uniform_random(
          machine, static_cast<std::size_t>(row.f), rng);
      const labeling::SafetyProtocol proto(faults,
                                           labeling::SafeUnsafeDef::Def2b);

      const auto sync = sim::run_sync(adj, proto);
      stats::Rng sched(rng.fork_seed());
      const auto async = sim::run_async(adj, proto, sched);

      AsyncTrialRecord& rec = records[t];
      rec.sync_rounds = sync.stats.rounds_to_quiesce;
      rec.async_sweeps = async.stats.sweeps;
      const auto per_node = static_cast<double>(machine.node_count());
      rec.msgs_broadcast_per_node =
          static_cast<double>(sync.stats.messages_broadcast) / per_node;
      rec.msgs_event_per_node =
          static_cast<double>(sync.stats.messages_event_driven) / per_node;
      rec.match = sync.states == async.states ? 100.0 : 0.0;
    });
    for (const AsyncTrialRecord& rec : records) {
      row.sync_rounds.add(rec.sync_rounds);
      row.async_sweeps.add(rec.async_sweeps);
      row.msgs_broadcast_per_node.add(rec.msgs_broadcast_per_node);
      row.msgs_event_per_node.add(rec.msgs_event_per_node);
      row.fixpoint_match_pct.add(rec.match);
    }
  }
  return rows;
}

stats::Table async_study_table(const std::vector<AsyncStudyRow>& rows) {
  stats::Table table({"f", "sync rounds", "async sweeps",
                      "msgs/node (broadcast)", "msgs/node (event)",
                      "fixpoint match %"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        stats::format_mean_ci(r.sync_rounds.mean(), r.sync_rounds.ci95(), 2),
        stats::format_mean_ci(r.async_sweeps.mean(), r.async_sweeps.ci95(),
                              2),
        stats::format_double(r.msgs_broadcast_per_node.mean(), 2),
        stats::format_double(r.msgs_event_per_node.mean(), 2),
        stats::format_double(r.fixpoint_match_pct.mean(), 1),
    });
  }
  return table;
}

}  // namespace ocp::analysis
