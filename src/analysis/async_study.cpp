#include "analysis/async_study.hpp"

#include "core/safety_protocol.hpp"
#include "fault/generators.hpp"
#include "simkernel/async_runner.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::analysis {

std::vector<AsyncStudyRow> run_async_study(const AsyncStudyConfig& config) {
  const mesh::Mesh2D machine = mesh::Mesh2D::square(config.n);
  std::vector<AsyncStudyRow> rows(config.fault_counts.size());

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    AsyncStudyRow& row = rows[fi];
    row.f = config.fault_counts[fi];
    stats::Rng seeder(config.seed + 0x10 * static_cast<std::uint64_t>(fi));

    for (std::size_t t = 0; t < config.trials; ++t) {
      stats::Rng rng(seeder.fork_seed());
      const auto faults = fault::uniform_random(
          machine, static_cast<std::size_t>(row.f), rng);
      const labeling::SafetyProtocol proto(faults,
                                           labeling::SafeUnsafeDef::Def2b);

      const auto sync = sim::run_sync(machine, proto);
      stats::Rng sched(rng.fork_seed());
      const auto async = sim::run_async(machine, proto, sched);

      row.sync_rounds.add(sync.stats.rounds_to_quiesce);
      row.async_sweeps.add(async.stats.sweeps);
      const auto per_node = static_cast<double>(machine.node_count());
      row.msgs_broadcast_per_node.add(
          static_cast<double>(sync.stats.messages_broadcast) / per_node);
      row.msgs_event_per_node.add(
          static_cast<double>(sync.stats.messages_event_driven) / per_node);
      row.fixpoint_match_pct.add(sync.states == async.states ? 100.0 : 0.0);
    }
  }
  return rows;
}

stats::Table async_study_table(const std::vector<AsyncStudyRow>& rows) {
  stats::Table table({"f", "sync rounds", "async sweeps",
                      "msgs/node (broadcast)", "msgs/node (event)",
                      "fixpoint match %"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        stats::format_mean_ci(r.sync_rounds.mean(), r.sync_rounds.ci95(), 2),
        stats::format_mean_ci(r.async_sweeps.mean(), r.async_sweeps.ci95(),
                              2),
        stats::format_double(r.msgs_broadcast_per_node.mean(), 2),
        stats::format_double(r.msgs_event_per_node.mean(), 2),
        stats::format_double(r.fixpoint_match_pct.mean(), 1),
    });
  }
  return table;
}

}  // namespace ocp::analysis
