// The paper's simulation study (section 5, Figure 5).
//
// For an n x n machine and each fault count f, sample f uniform random
// faults, run both labeling phases with the distributed engine, and record
//  * the number of rounds to form the faulty blocks (Fig 5 a/b), and to
//    form the disabled regions afterwards,
//  * the percentage of enabled nodes among unsafe-but-nonfaulty nodes of
//    each reducible faulty block (Fig 5 c/d),
// averaged over `trials` independent fault patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "mesh/mesh2d.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ocp::analysis {

struct Fig5Config {
  std::int32_t n = 100;
  mesh::Topology topology = mesh::Topology::Mesh;
  labeling::SafeUnsafeDef definition = labeling::SafeUnsafeDef::Def2b;
  /// Fault counts to sweep (the paper uses 0..100 on a 100x100 mesh).
  std::vector<std::int32_t> fault_counts;
  std::size_t trials = 200;
  std::uint64_t seed = 20010423;  // IPPS 2001 :-)

  /// The paper's sweep: f = 0, step, 2*step, ..., 100.
  [[nodiscard]] static std::vector<std::int32_t> default_fault_counts(
      std::int32_t step = 5, std::int32_t max_f = 100);
};

/// Aggregates for one fault count.
struct Fig5Row {
  std::int32_t f = 0;
  /// Rounds to quiesce, phase one (faulty blocks) / phase two (disabled
  /// regions), one sample per trial — the paper's "maximum number of rounds
  /// needed to determine" each region family.
  stats::Summary rounds_blocks;
  stats::Summary rounds_regions;
  /// Per-block enabled percentage among unsafe-but-nonfaulty nodes, averaged
  /// within each trial over blocks that have at least one such node
  /// (Fig 5 c/d). One sample per trial that has any reducible block.
  stats::Summary enabled_ratio_per_block;
  /// Pooled percentage: total enabled / total unsafe-nonfaulty per trial.
  stats::Summary enabled_ratio_pooled;
  /// Structural context: block/region counts and the largest block diameter.
  stats::Summary block_count;
  stats::Summary region_count;
  stats::Summary max_block_diameter;
  /// Messages per node under the event-driven refinement (both phases).
  stats::Summary messages_per_node;
};

/// Runs the sweep. Deterministic for a fixed config (per-trial seeds are
/// derived from config.seed).
[[nodiscard]] std::vector<Fig5Row> run_fig5(const Fig5Config& config);

/// Renders rows as the printable table the bench binary emits.
[[nodiscard]] stats::Table fig5_table(const std::vector<Fig5Row>& rows);

}  // namespace ocp::analysis
