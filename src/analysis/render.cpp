#include "analysis/render.hpp"

namespace ocp::analysis {

std::string render_labeling(const grid::CellSet& faults,
                            const labeling::PipelineResult& result) {
  const mesh::Mesh2D& m = faults.topology();
  std::string out;
  out.reserve(static_cast<std::size_t>(m.node_count()) +
              static_cast<std::size_t>(m.height()));
  for (std::int32_t y = m.height() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < m.width(); ++x) {
      const mesh::Coord c{x, y};
      char glyph = '.';
      if (faults.contains(c)) {
        glyph = 'X';
      } else if (result.activation[c] == labeling::Activation::Disabled) {
        glyph = 'd';
      } else if (result.safety[c] == labeling::Safety::Unsafe) {
        glyph = 'e';
      }
      out += glyph;
    }
    out += '\n';
  }
  return out;
}

std::string render_safety(const grid::CellSet& faults,
                          const grid::NodeGrid<labeling::Safety>& safety) {
  const mesh::Mesh2D& m = faults.topology();
  std::string out;
  out.reserve(static_cast<std::size_t>(m.node_count()) +
              static_cast<std::size_t>(m.height()));
  for (std::int32_t y = m.height() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < m.width(); ++x) {
      const mesh::Coord c{x, y};
      char glyph = '.';
      if (faults.contains(c)) {
        glyph = 'X';
      } else if (safety[c] == labeling::Safety::Unsafe) {
        glyph = 'u';
      }
      out += glyph;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ocp::analysis
