// SVG rendering of labeled machines and routes — publication-quality
// companions to the ASCII renders.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "routing/router.hpp"

namespace ocp::analysis {

/// Appearance knobs for the SVG renders.
struct SvgStyle {
  int cell_px = 16;
  std::string faulty = "#1f2430";            // near-black
  std::string disabled_nonfaulty = "#c65b4e";  // red: sacrificed
  std::string enabled_unsafe = "#68a357";      // green: won back
  std::string safe = "#e9e4da";                // background
  std::string grid_line = "#ffffff";
  std::string route = "#2b6cb0";
  std::string detour = "#b7791f";
};

/// One rect per node, colored by its final status (faulty / still disabled
/// / re-enabled / safe). y is flipped so row 0 is at the bottom, matching
/// the coordinate convention.
[[nodiscard]] std::string render_labeling_svg(
    const grid::CellSet& faults, const labeling::PipelineResult& result,
    const SvgStyle& style = {});

/// The labeling plus one route drawn as a polyline (dimension-order hops in
/// the route color, detour hops in the detour color).
[[nodiscard]] std::string render_route_svg(
    const grid::CellSet& faults, const labeling::PipelineResult& result,
    const routing::Route& route, const SvgStyle& style = {});

}  // namespace ocp::analysis
