#include "analysis/partition_study.hpp"

#include "analysis/trial_pool.hpp"
#include "core/partition.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::analysis {

namespace {

/// Per-trial measurements of the partition study, reduced in trial order.
struct PartitionTrialRecord {
  double nf_regions = 0, nf_separated = 0, nf_touching = 0, nf_optimal = 0;
  double polys_regions = 0, polys_touching = 0;
  bool has_split = false;
  double split_pct = 0;
};

}  // namespace

std::vector<PartitionStudyRow> run_partition_study(
    const PartitionStudyConfig& config) {
  const mesh::Mesh2D machine = mesh::Mesh2D::square(config.n);
  std::vector<PartitionStudyRow> rows(config.fault_counts.size());

  for (std::size_t fi = 0; fi < config.fault_counts.size(); ++fi) {
    PartitionStudyRow& row = rows[fi];
    row.f = config.fault_counts[fi];
    stats::Rng seeder(config.seed + 0x100 * static_cast<std::uint64_t>(fi));
    const auto trial_seeds = fork_trial_seeds(seeder, config.trials);

    std::vector<PartitionTrialRecord> records(config.trials);
    for_each_trial(config.trials, [&](std::size_t t) {
      stats::Rng rng(trial_seeds[t]);
      const auto faults =
          config.clustered
              ? fault::clustered(machine,
                                 std::max<std::size_t>(
                                     1, static_cast<std::size_t>(row.f) /
                                            config.cluster_size),
                                 config.cluster_size, rng)
              : fault::uniform_random(machine,
                                      static_cast<std::size_t>(row.f), rng);
      labeling::PipelineOptions opts;
      opts.engine = labeling::Engine::Reference;
      const auto result = labeling::run_pipeline(faults, opts);

      std::size_t nf_regions = 0;
      std::size_t nf_separated = 0;
      std::size_t nf_touching = 0;
      std::size_t nf_optimal = 0;
      std::size_t polys_regions = 0;
      std::size_t polys_touching = 0;
      std::size_t splittable = 0;
      for (const auto& region : result.regions) {
        // Faults of this region, in its planar frame.
        std::vector<mesh::Coord> fcells;
        const auto frame_cells = region.region().cells();
        const auto phys_cells = region.component.cells();
        for (std::size_t i = 0; i < frame_cells.size(); ++i) {
          if (faults.contains(phys_cells[i])) {
            fcells.push_back(frame_cells[i]);
          }
        }
        const geom::Region region_faults(std::move(fcells));

        nf_regions += region.disabled_nonfaulty_count;
        ++polys_regions;

        nf_separated +=
            labeling::greedy_gap_cover(region_faults).nonfaulty_cells;
        const auto touching = labeling::greedy_cut_cover(region_faults);
        nf_touching += touching.nonfaulty_cells;
        polys_touching += touching.polygon_count();
        if (touching.polygon_count() > 1) ++splittable;

        if (region_faults.size() <= config.exhaustive_limit) {
          nf_optimal += labeling::optimal_cover_exhaustive(
                            region_faults, labeling::CoverRule::Touching)
                            .nonfaulty_cells;
        } else {
          nf_optimal += touching.nonfaulty_cells;
        }
      }
      PartitionTrialRecord& rec = records[t];
      rec.nf_regions = static_cast<double>(nf_regions);
      rec.nf_separated = static_cast<double>(nf_separated);
      rec.nf_touching = static_cast<double>(nf_touching);
      rec.nf_optimal = static_cast<double>(nf_optimal);
      rec.polys_regions = static_cast<double>(polys_regions);
      rec.polys_touching = static_cast<double>(polys_touching);
      if (polys_regions > 0) {
        rec.has_split = true;
        rec.split_pct = 100.0 * static_cast<double>(splittable) /
                        static_cast<double>(polys_regions);
      }
    });
    for (const PartitionTrialRecord& rec : records) {
      row.nonfaulty_regions.add(rec.nf_regions);
      row.nonfaulty_separated.add(rec.nf_separated);
      row.nonfaulty_touching.add(rec.nf_touching);
      row.nonfaulty_optimal.add(rec.nf_optimal);
      row.polygons_regions.add(rec.polys_regions);
      row.polygons_touching.add(rec.polys_touching);
      if (rec.has_split) row.regions_split_pct.add(rec.split_pct);
    }
  }
  return rows;
}

stats::Table partition_study_table(
    const std::vector<PartitionStudyRow>& rows) {
  stats::Table table({"f", "nonfaulty(DR)", "nonfaulty(separated)",
                      "nonfaulty(touching)", "nonfaulty(optimal*)",
                      "#poly(DR)", "#poly(touching)", "regions split %"});
  for (const auto& r : rows) {
    table.add_row({
        std::to_string(r.f),
        stats::format_double(r.nonfaulty_regions.mean(), 2),
        stats::format_double(r.nonfaulty_separated.mean(), 2),
        stats::format_double(r.nonfaulty_touching.mean(), 2),
        stats::format_double(r.nonfaulty_optimal.mean(), 2),
        stats::format_double(r.polygons_regions.mean(), 1),
        stats::format_double(r.polygons_touching.mean(), 1),
        r.regions_split_pct.empty()
            ? "n/a"
            : stats::format_double(r.regions_split_pct.mean(), 2),
    });
  }
  return table;
}

}  // namespace ocp::analysis
