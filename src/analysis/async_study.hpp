// Synchrony ablation: the paper assumes lock-step rounds "to simplify the
// discussion". This study quantifies what asynchrony costs/saves — sweeps
// until quiescence under randomized schedules vs synchronous rounds — and
// compares the two message-cost models of the synchronous kernel
// (broadcast-every-round vs announce-on-change).
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace ocp::analysis {

struct AsyncStudyConfig {
  std::int32_t n = 100;
  std::vector<std::int32_t> fault_counts;
  std::size_t trials = 50;
  std::uint64_t seed = 97;
};

struct AsyncStudyRow {
  std::int32_t f = 0;
  /// Phase-one convergence: synchronous rounds vs asynchronous sweeps.
  stats::Summary sync_rounds;
  stats::Summary async_sweeps;
  /// Messages per node: broadcast model vs event-driven model (both phases).
  stats::Summary msgs_broadcast_per_node;
  stats::Summary msgs_event_per_node;
  /// Sanity counter: fraction (%) of trials whose async fixpoint equaled
  /// the synchronous one (must be 100).
  stats::Summary fixpoint_match_pct;
};

[[nodiscard]] std::vector<AsyncStudyRow> run_async_study(
    const AsyncStudyConfig& config);

[[nodiscard]] stats::Table async_study_table(
    const std::vector<AsyncStudyRow>& rows);

}  // namespace ocp::analysis
