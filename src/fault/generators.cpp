#include "fault/generators.hpp"

#include <cassert>

namespace ocp::fault {

grid::CellSet uniform_random(const mesh::Mesh2D& m, std::size_t f,
                             stats::Rng& rng) {
  assert(f <= static_cast<std::size_t>(m.node_count()));
  grid::CellSet out(m);
  for (std::size_t i : rng.sample_without_replacement(
           static_cast<std::size_t>(m.node_count()), f)) {
    out.insert(m.coord(i));
  }
  return out;
}

grid::CellSet bernoulli(const mesh::Mesh2D& m, double p, stats::Rng& rng) {
  grid::CellSet out(m);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    if (rng.bernoulli(p)) out.insert(m.coord(i));
  }
  return out;
}

grid::CellSet clustered(const mesh::Mesh2D& m, std::size_t clusters,
                        std::size_t per_cluster, stats::Rng& rng) {
  grid::CellSet out(m);
  for (std::size_t c = 0; c < clusters; ++c) {
    mesh::Coord cur = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    out.insert(cur);
    // Random walk from the center; each step either marks the current node or
    // moves, so clusters are connected blobs of roughly `per_cluster` cells.
    std::size_t placed = 1;
    std::size_t guard = 0;
    while (placed < per_cluster && guard < per_cluster * 64) {
      ++guard;
      const auto d = static_cast<mesh::Dir>(rng.uniform_int(0, 3));
      if (auto next = m.neighbor(cur, d)) {
        cur = *next;
        if (!out.contains(cur)) {
          out.insert(cur);
          ++placed;
        }
      }
    }
  }
  return out;
}

}  // namespace ocp::fault
