// Pinned fault configurations reconstructing the paper's worked examples
// (section 3 and Figures 1-3). The published figures are partially lost to
// OCR, so each fixture is built to exhibit exactly the property the text
// ascribes to its figure; the expected outcomes are asserted in
// tests/core/paper_examples_test.cpp.
#pragma once

#include <string>

#include "grid/cell_set.hpp"
#include "mesh/mesh2d.hpp"

namespace ocp::fault {

/// A named machine + fault pattern.
struct Fixture {
  std::string name;
  std::string description;
  grid::CellSet faults;
};

/// Section 3 worked example: faults (1,3), (2,1), (3,2) on a small mesh.
/// Expected: Definition 2b yields the single faulty block {1,2,3}x{1,2,3};
/// Definition 3 enables every nonfaulty node of the block, splitting it into
/// the disabled regions {(1,3)} and {(2,1),(3,2)} (8-connected grouping).
[[nodiscard]] Fixture worked_example();

/// Figure 1 style: two 2x1 fault clusters one row apart. Definition 2a
/// bridges them into one 2x3 faulty block; Definition 2b keeps two 2x1
/// blocks at distance 2.
[[nodiscard]] Fixture figure1();

/// Figure 2 (a): a 4x4 faulty block whose upper-right 2x2 sub-block is
/// nonfaulty. The enabled/disabled rule activates the whole pocket from the
/// corner inward.
[[nodiscard]] Fixture figure2a();

/// Figure 2 (b): a 5x4 faulty block with a 1x2 nonfaulty pocket at the upper
/// center. The pocket touches the outside with only one link per node, so
/// under Definition 3 it stays entirely disabled (the configuration whose
/// recursive formulation would have double status).
[[nodiscard]] Fixture figure2b();

}  // namespace ocp::fault
