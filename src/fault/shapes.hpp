// Deterministic fault-pattern builders for the region shapes discussed in
// the paper's section 2: L-, T-, +-shapes (orthogonal convex) and U-, H-
// shapes (non-orthogonal-convex).
#pragma once

#include <vector>

#include "geometry/region.hpp"
#include "grid/cell_set.hpp"
#include "mesh/coord.hpp"

namespace ocp::fault {

/// Solid `w x h` rectangle anchored at `at` (lower-left corner).
[[nodiscard]] geom::Region make_rectangle(mesh::Coord at, std::int32_t w,
                                          std::int32_t h);

/// L-shape: a vertical arm (`arm x len`) plus a horizontal arm along the
/// bottom. Orthogonal convex.
[[nodiscard]] geom::Region make_l_shape(mesh::Coord at, std::int32_t len,
                                        std::int32_t arm);

/// T-shape: a horizontal top bar with a centered vertical stem below.
/// Orthogonal convex.
[[nodiscard]] geom::Region make_t_shape(mesh::Coord at, std::int32_t bar,
                                        std::int32_t stem);

/// +-shape: centered cross with arms of length `arm` and thickness 1.
/// Orthogonal convex.
[[nodiscard]] geom::Region make_plus_shape(mesh::Coord center,
                                           std::int32_t arm);

/// U-shape: two vertical towers joined by a bottom bar. Rows between the
/// towers are split into two runs -> NOT orthogonal convex.
[[nodiscard]] geom::Region make_u_shape(mesh::Coord at, std::int32_t width,
                                        std::int32_t height);

/// H-shape: two vertical towers joined by a middle bar. Columns are split ->
/// NOT orthogonal convex.
[[nodiscard]] geom::Region make_h_shape(mesh::Coord at, std::int32_t width,
                                        std::int32_t height);

/// Marks every cell of `r` faulty in a fresh fault set on machine `m`.
/// All cells must lie inside the machine.
[[nodiscard]] grid::CellSet to_fault_set(const mesh::Mesh2D& m,
                                         const geom::Region& r);

/// Union of several regions as one fault set.
[[nodiscard]] grid::CellSet to_fault_set(
    const mesh::Mesh2D& m, const std::vector<geom::Region>& regions);

}  // namespace ocp::fault
