#include "fault/fixtures.hpp"

#include "fault/shapes.hpp"

namespace ocp::fault {

Fixture worked_example() {
  const mesh::Mesh2D m(6, 6);
  grid::CellSet faults(m, {{1, 3}, {2, 1}, {3, 2}});
  return {"worked-example",
          "Section 3: three faults forming one 3x3 faulty block that phase "
          "two splits into the disabled regions {(1,3)} and {(2,1),(3,2)}",
          std::move(faults)};
}

Fixture figure1() {
  const mesh::Mesh2D m(8, 8);
  grid::CellSet faults(m, {{2, 2}, {3, 2}, {2, 4}, {3, 4}});
  return {"figure1",
          "Two 2x1 fault clusters one row apart: one 2x3 block under "
          "Definition 2a, two 2x1 blocks under Definition 2b",
          std::move(faults)};
}

Fixture figure2a() {
  const mesh::Mesh2D m(9, 9);
  // 4x4 block footprint at (2,2)..(5,5); the upper-right 2x2 stays healthy.
  grid::CellSet faults(m);
  const geom::Region footprint = make_rectangle({2, 2}, 4, 4);
  for (mesh::Coord c : footprint.cells()) {
    if (c.x >= 4 && c.y >= 4) continue;
    faults.insert(c);
  }
  return {"figure2a",
          "4x4 block, healthy upper-right 2x2 pocket: the pocket is fully "
          "enabled from its outside corner",
          std::move(faults)};
}

Fixture figure2b() {
  const mesh::Mesh2D m(10, 9);
  // 5x4 block footprint at (2,2)..(6,5); a 1x2 healthy pocket at the top
  // center column x = 4, y in {4, 5}.
  grid::CellSet faults(m);
  const geom::Region footprint = make_rectangle({2, 2}, 5, 4);
  for (mesh::Coord c : footprint.cells()) {
    if (c.x == 4 && c.y >= 4) continue;
    faults.insert(c);
  }
  return {"figure2b",
          "5x4 block, healthy 1x2 pocket at the top center: the pocket has "
          "only single-link contact with the outside and stays disabled",
          std::move(faults)};
}

}  // namespace ocp::fault
