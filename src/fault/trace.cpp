#include "fault/trace.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace ocp::fault {

namespace {

constexpr const char* kHeader = "ocpmesh-trace v1";

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("trace line " + std::to_string(line_no) + ": " +
                              what);
}

}  // namespace

void write_trace(std::ostream& os, const grid::CellSet& faults) {
  const mesh::Mesh2D& m = faults.topology();
  os << kHeader << "\n";
  os << "machine " << m.width() << " " << m.height() << " "
     << mesh::to_string(m.topology()) << "\n";
  faults.for_each(
      [&](mesh::Coord c) { os << "fault " << c.x << " " << c.y << "\n"; });
}

std::string to_trace_string(const grid::CellSet& faults) {
  std::ostringstream os;
  write_trace(os, faults);
  return os.str();
}

grid::CellSet read_trace(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  std::optional<grid::CellSet> faults;
  bool saw_header = false;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);

    if (!saw_header) {
      if (line != kHeader) fail(line_no, "expected header '" + std::string(kHeader) + "'");
      saw_header = true;
      continue;
    }

    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "machine") {
      if (faults) fail(line_no, "duplicate machine line");
      std::int32_t w = 0;
      std::int32_t h = 0;
      std::string topo;
      if (!(ss >> w >> h >> topo) || w <= 0 || h <= 0) {
        fail(line_no, "malformed machine line");
      }
      if (topo != "mesh" && topo != "torus") {
        fail(line_no, "unknown topology '" + topo + "'");
      }
      faults.emplace(mesh::Mesh2D(
          w, h, topo == "torus" ? mesh::Topology::Torus
                                : mesh::Topology::Mesh));
    } else if (keyword == "fault") {
      if (!faults) fail(line_no, "fault before machine line");
      mesh::Coord c;
      if (!(ss >> c.x >> c.y)) fail(line_no, "malformed fault line");
      if (!faults->topology().contains(c)) {
        fail(line_no, "fault " + mesh::to_string(c) + " outside the machine");
      }
      if (faults->contains(c)) {
        fail(line_no, "duplicate fault " + mesh::to_string(c));
      }
      faults->insert(c);
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_header) throw std::invalid_argument("trace: missing header");
  if (!faults) throw std::invalid_argument("trace: missing machine line");
  return *std::move(faults);
}

grid::CellSet from_trace_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

void save_trace(const std::string& path, const grid::CellSet& faults) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_trace(f, faults);
  if (!f) throw std::runtime_error("failed writing " + path);
}

grid::CellSet load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_trace(f);
}

}  // namespace ocp::fault
