#include "fault/link_faults.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace ocp::fault {

namespace {

std::uint64_t link_key(const mesh::Mesh2D& m, const Link& l) {
  return (static_cast<std::uint64_t>(m.index(l.a)) << 32) |
         static_cast<std::uint64_t>(m.index(l.b));
}

}  // namespace

Link make_link(mesh::Coord a, mesh::Coord b) {
  if (b < a) std::swap(a, b);
  return {a, b};
}

void LinkSet::insert(mesh::Coord a, mesh::Coord b) {
  if (!mesh_.contains(a) || !mesh_.contains(b) || !mesh_.linked(a, b)) {
    throw std::invalid_argument("LinkSet::insert: not a machine link");
  }
  const Link l = make_link(a, b);
  if (keys_.insert(link_key(mesh_, l)).second) {
    links_.push_back(l);
  }
}

bool LinkSet::contains(mesh::Coord a, mesh::Coord b) const {
  if (!mesh_.contains(a) || !mesh_.contains(b)) return false;
  return keys_.count(link_key(mesh_, make_link(a, b))) != 0;
}

grid::CellSet reduce_to_node_faults(const LinkSet& failed_links,
                                    const grid::CellSet& node_faults,
                                    LinkReduction policy) {
  const mesh::Mesh2D& m = failed_links.topology();
  grid::CellSet out = node_faults;

  // Links already covered by an existing faulty endpoint need nothing.
  std::vector<Link> open;
  for (const Link& l : failed_links.links()) {
    if (!out.contains(l.a) && !out.contains(l.b)) open.push_back(l);
  }

  if (policy == LinkReduction::FirstEndpoint) {
    for (const Link& l : open) out.insert(l.a);
    return out;
  }

  // Greedy vertex cover: repeatedly fail the node incident to the most
  // uncovered links.
  while (!open.empty()) {
    std::unordered_map<std::size_t, std::size_t> incidence;
    for (const Link& l : open) {
      ++incidence[m.index(l.a)];
      ++incidence[m.index(l.b)];
    }
    mesh::Coord best{0, 0};
    std::size_t best_count = 0;
    for (const Link& l : open) {
      for (mesh::Coord c : {l.a, l.b}) {
        const std::size_t count = incidence[m.index(c)];
        if (count > best_count ||
            (count == best_count && c < best)) {
          best_count = count;
          best = c;
        }
      }
    }
    out.insert(best);
    std::erase_if(open, [&](const Link& l) {
      return l.a == best || l.b == best;
    });
  }
  return out;
}

LinkSet random_link_faults(const mesh::Mesh2D& m, std::size_t count,
                           stats::Rng& rng) {
  // Enumerate all links (east and north from each node) and sample.
  std::vector<Link> all;
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count());
       ++i) {
    const mesh::Coord c = m.coord(i);
    for (mesh::Dir d : {mesh::Dir::East, mesh::Dir::North}) {
      if (auto n = m.neighbor(c, d)) {
        // On small tori the east/north neighbor can coincide across the
        // wrap; make_link canonicalizes so the sample stays unbiased.
        all.push_back(make_link(c, *n));
      }
    }
  }
  LinkSet out(m);
  for (std::size_t i :
       rng.sample_without_replacement(all.size(), std::min(count, all.size()))) {
    out.insert(all[i].a, all[i].b);
  }
  return out;
}

}  // namespace ocp::fault
