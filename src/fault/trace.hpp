// Plain-text fault traces: record a machine + fault pattern, replay it
// later. Lets users archive the exact instances behind a result and feed
// external fault logs into the pipeline.
//
// Format (line oriented, '#' comments, stable under round-trip):
//
//   ocpmesh-trace v1
//   machine <width> <height> <mesh|torus>
//   fault <x> <y>
//   fault <x> <y>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "grid/cell_set.hpp"

namespace ocp::fault {

/// Serializes a fault set (with its machine header) to the trace format.
void write_trace(std::ostream& os, const grid::CellSet& faults);
[[nodiscard]] std::string to_trace_string(const grid::CellSet& faults);

/// Parses a trace. Throws std::invalid_argument on malformed input
/// (unknown header, bad machine line, fault outside the machine,
/// duplicate fault).
[[nodiscard]] grid::CellSet read_trace(std::istream& is);
[[nodiscard]] grid::CellSet from_trace_string(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const grid::CellSet& faults);
[[nodiscard]] grid::CellSet load_trace(const std::string& path);

}  // namespace ocp::fault
