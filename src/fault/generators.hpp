// Fault injection models (Wu, IPPS 2001, section 5 uses uniform random node
// faults; clustered and shaped injectors are provided for wider coverage).
#pragma once

#include <cstddef>

#include "grid/cell_set.hpp"
#include "stats/rng.hpp"

namespace ocp::fault {

/// The paper's simulation model: exactly `f` faulty nodes chosen uniformly at
/// random without replacement among all nodes of the machine.
[[nodiscard]] grid::CellSet uniform_random(const mesh::Mesh2D& m,
                                           std::size_t f, stats::Rng& rng);

/// Each node fails independently with probability `p` (alternative model for
/// sensitivity studies).
[[nodiscard]] grid::CellSet bernoulli(const mesh::Mesh2D& m, double p,
                                      stats::Rng& rng);

/// Clustered faults: `clusters` cluster centers chosen uniformly; around each
/// center, `per_cluster` faults placed by a random walk (stays within the
/// machine). Models spatially-correlated failures (e.g. a failing board).
[[nodiscard]] grid::CellSet clustered(const mesh::Mesh2D& m,
                                      std::size_t clusters,
                                      std::size_t per_cluster,
                                      stats::Rng& rng);

}  // namespace ocp::fault
