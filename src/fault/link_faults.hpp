// Link faults and their reduction to node faults (paper, section 2: "link
// faults can be treated as node faults").
//
// A `LinkSet` records failed bidirectional links. `reduce_to_node_faults`
// converts them into the node-fault model the labeling consumes by
// sacrificing one healthy endpoint per failed link. Several policies are
// provided; all are sound (after reduction, no route over non-faulty nodes
// can use a failed link), differing only in how many nodes they sacrifice.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "grid/cell_set.hpp"
#include "mesh/mesh2d.hpp"
#include "stats/rng.hpp"

namespace ocp::fault {

/// An undirected mesh link, stored in canonical (smaller endpoint first)
/// form.
struct Link {
  mesh::Coord a;
  mesh::Coord b;

  friend constexpr bool operator==(const Link&, const Link&) = default;
};

/// Canonicalizes endpoints (sorted lexicographically).
[[nodiscard]] Link make_link(mesh::Coord a, mesh::Coord b);

/// A set of failed links on one machine.
class LinkSet {
 public:
  explicit LinkSet(const mesh::Mesh2D& m) : mesh_(m) {}

  [[nodiscard]] const mesh::Mesh2D& topology() const noexcept {
    return mesh_;
  }

  /// Inserts a failed link; both endpoints must be machine nodes joined by
  /// a physical link (throws std::invalid_argument otherwise).
  void insert(mesh::Coord a, mesh::Coord b);

  [[nodiscard]] bool contains(mesh::Coord a, mesh::Coord b) const;
  [[nodiscard]] std::size_t size() const noexcept { return links_.size(); }
  [[nodiscard]] bool empty() const noexcept { return links_.empty(); }
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }

 private:
  mesh::Mesh2D mesh_;
  std::vector<Link> links_;
  std::unordered_set<std::uint64_t> keys_;
};

/// How the reduction picks the endpoint to sacrifice for each failed link.
enum class LinkReduction : std::uint8_t {
  /// The lexicographically smaller endpoint — deterministic and simple.
  FirstEndpoint = 0,
  /// The endpoint incident to more failed links, so one sacrificed node
  /// covers several failures (greedy vertex cover of the failed-link
  /// graph); ties pick the smaller endpoint.
  MostIncident = 1,
};

/// Reduces link faults to node faults: returns `node_faults` (already
/// failed nodes) extended so every failed link has at least one faulty
/// endpoint. Links between two already-faulty nodes add nothing.
[[nodiscard]] grid::CellSet reduce_to_node_faults(
    const LinkSet& failed_links, const grid::CellSet& node_faults,
    LinkReduction policy = LinkReduction::MostIncident);

/// Random link faults: `count` distinct links chosen uniformly among all
/// machine links.
[[nodiscard]] LinkSet random_link_faults(const mesh::Mesh2D& m,
                                         std::size_t count, stats::Rng& rng);

}  // namespace ocp::fault
