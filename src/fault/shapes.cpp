#include "fault/shapes.hpp"

#include <cassert>

namespace ocp::fault {

namespace {

/// Collects the cells of a `w x h` rectangle anchored at `at` into `out`.
void fill_rect(std::vector<mesh::Coord>& out, mesh::Coord at, std::int32_t w,
               std::int32_t h) {
  assert(w > 0 && h > 0);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      out.push_back({at.x + x, at.y + y});
    }
  }
}

}  // namespace

geom::Region make_rectangle(mesh::Coord at, std::int32_t w, std::int32_t h) {
  std::vector<mesh::Coord> cells;
  fill_rect(cells, at, w, h);
  return geom::Region(std::move(cells));
}

geom::Region make_l_shape(mesh::Coord at, std::int32_t len, std::int32_t arm) {
  assert(len > arm && arm >= 1);
  std::vector<mesh::Coord> cells;
  fill_rect(cells, at, arm, len);                  // vertical arm
  fill_rect(cells, {at.x + arm, at.y}, len - arm, arm);  // horizontal arm
  return geom::Region(std::move(cells));
}

geom::Region make_t_shape(mesh::Coord at, std::int32_t bar,
                          std::int32_t stem) {
  assert(bar >= 3 && stem >= 1);
  std::vector<mesh::Coord> cells;
  fill_rect(cells, {at.x, at.y + stem}, bar, 1);  // top bar
  fill_rect(cells, {at.x + bar / 2, at.y}, 1, stem);  // stem below center
  return geom::Region(std::move(cells));
}

geom::Region make_plus_shape(mesh::Coord center, std::int32_t arm) {
  assert(arm >= 1);
  std::vector<mesh::Coord> cells;
  fill_rect(cells, {center.x - arm, center.y}, 2 * arm + 1, 1);
  fill_rect(cells, {center.x, center.y - arm}, 1, 2 * arm + 1);
  return geom::Region(std::move(cells));
}

geom::Region make_u_shape(mesh::Coord at, std::int32_t width,
                          std::int32_t height) {
  assert(width >= 3 && height >= 2);
  std::vector<mesh::Coord> cells;
  fill_rect(cells, at, width, 1);                          // bottom bar
  fill_rect(cells, {at.x, at.y + 1}, 1, height - 1);       // left tower
  fill_rect(cells, {at.x + width - 1, at.y + 1}, 1, height - 1);  // right
  return geom::Region(std::move(cells));
}

geom::Region make_h_shape(mesh::Coord at, std::int32_t width,
                          std::int32_t height) {
  assert(width >= 3 && height >= 3);
  std::vector<mesh::Coord> cells;
  fill_rect(cells, at, 1, height);                         // left tower
  fill_rect(cells, {at.x + width - 1, at.y}, 1, height);   // right tower
  fill_rect(cells, {at.x + 1, at.y + height / 2}, width - 2, 1);  // bar
  return geom::Region(std::move(cells));
}

grid::CellSet to_fault_set(const mesh::Mesh2D& m, const geom::Region& r) {
  grid::CellSet out(m);
  for (mesh::Coord c : r.cells()) {
    assert(m.contains(c));
    out.insert(c);
  }
  return out;
}

grid::CellSet to_fault_set(const mesh::Mesh2D& m,
                           const std::vector<geom::Region>& regions) {
  grid::CellSet out(m);
  for (const auto& r : regions) {
    for (mesh::Coord c : r.cells()) {
      assert(m.contains(c));
      out.insert(c);
    }
  }
  return out;
}

}  // namespace ocp::fault
