#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

namespace ocp::obs {

namespace {

/// JSON string escaping for event/counter names. Instrumentation names are
/// dotted identifiers in practice, but exporters must not emit broken JSON
/// for any input.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Dense round-robin stripe assignment, one id per thread for its lifetime
/// (hashing std::thread::id clusters badly on some libstdc++ versions, and
/// a dense sequence spreads any number of query threads evenly). The id is
/// process-global, not per-sink: a thread keeps the same home stripe in
/// every sink it touches.
std::uint32_t this_thread_stripe_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

}  // namespace

LatencyRecorder::LatencyRecorder(double lo_ms, double hi_ms, std::size_t bins)
    : lo_(lo_ms), hi_(hi_ms), bins_(bins) {}

void LatencyRecorder::record(std::string_view name, double ms) {
  const std::scoped_lock lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), stats::Histogram(lo_, hi_, bins_))
             .first;
  }
  it->second.add(ms);
}

std::vector<std::pair<std::string, stats::Histogram>>
LatencyRecorder::snapshot() const {
  const std::scoped_lock lock(mu_);
  return {hists_.begin(), hists_.end()};
}

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t TraceSink::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceSink::ThreadState& TraceSink::thread_state() {
  const auto [it, inserted] =
      threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.tid = static_cast<std::uint32_t>(threads_.size() - 1);
  return it->second;
}

void TraceSink::span_begin(const char* name) {
  const std::int64_t ts = now_ns();
  const std::scoped_lock lock(events_mu_);
  ThreadState& st = thread_state();
  events_.push_back({EventKind::SpanBegin, name, ts, st.tid,
                     static_cast<std::uint32_t>(st.open.size()), 0});
  st.open.emplace_back(name, ts);
}

void TraceSink::span_end(const char* name) {
  const std::int64_t ts = now_ns();
  std::int64_t duration = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  {
    const std::scoped_lock lock(events_mu_);
    ThreadState& st = thread_state();
    tid = st.tid;
    // Pop the matching begin. Mismatched ends (a bug in instrumented code)
    // still record an event rather than corrupting the stack: unwind to the
    // matching name if present, else treat as depth-0 with zero duration.
    std::int64_t begin_ts = ts;
    auto it = std::find_if(st.open.rbegin(), st.open.rend(),
                           [&](const auto& p) { return p.first == name ||
                                 std::string_view(p.first) == name; });
    if (it != st.open.rend()) {
      begin_ts = it->second;
      st.open.erase(std::prev(it.base()), st.open.end());
    }
    depth = static_cast<std::uint32_t>(st.open.size());
    duration = ts - begin_ts;
    events_.push_back({EventKind::SpanEnd, name, ts, tid, depth, duration});
  }
  durations_.record(name, static_cast<double>(duration) / 1e6);
}

void TraceSink::instant(const char* name, std::int64_t value) {
  const std::int64_t ts = now_ns();
  const std::scoped_lock lock(events_mu_);
  ThreadState& st = thread_state();
  events_.push_back({EventKind::Instant, name, ts, st.tid,
                     static_cast<std::uint32_t>(st.open.size()), value});
}

void TraceSink::counter_add(const char* name, std::int64_t delta) {
  CounterStripe& stripe =
      counter_stripes_[this_thread_stripe_id() % kCounterStripes];
  {
    const std::shared_lock lock(stripe.mu);
    if (const auto it = stripe.values.find(name); it != stripe.values.end()) {
      it->second.fetch_add(delta, std::memory_order_relaxed);
      return;
    }
  }
  const std::unique_lock lock(stripe.mu);
  // try_emplace: another thread of this stripe may have created the entry
  // between locks.
  stripe.values.try_emplace(name).first->second.fetch_add(
      delta, std::memory_order_relaxed);
}

std::vector<Event> TraceSink::events() const {
  const std::scoped_lock lock(events_mu_);
  return events_;
}

std::vector<std::pair<std::string, std::int64_t>> TraceSink::counters()
    const {
  // Aggregate-on-read: sum each name across the per-thread stripes.
  std::map<std::string, std::int64_t, std::less<>> sums;
  for (const CounterStripe& stripe : counter_stripes_) {
    const std::shared_lock lock(stripe.mu);
    for (const auto& [name, value] : stripe.values) {
      sums[name] += value.load(std::memory_order_relaxed);
    }
  }
  return {sums.begin(), sums.end()};
}

std::int64_t TraceSink::counter_value(std::string_view name) const {
  std::int64_t sum = 0;
  for (const CounterStripe& stripe : counter_stripes_) {
    const std::shared_lock lock(stripe.mu);
    if (const auto it = stripe.values.find(std::string(name));
        it != stripe.values.end()) {
      sum += it->second.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

void TraceSink::write_jsonl(std::ostream& os) const {
  os << "{\"ev\":\"meta\",\"schema\":\"ocpmesh-trace-v1\","
        "\"clock\":\"steady_ns\"}\n";
  for (const Event& e : events()) {
    switch (e.kind) {
      case EventKind::SpanBegin:
        os << "{\"ev\":\"b\",\"name\":\"" << escape(e.name)
           << "\",\"ts_ns\":" << e.ts_ns << ",\"tid\":" << e.tid
           << ",\"depth\":" << e.depth << "}\n";
        break;
      case EventKind::SpanEnd:
        os << "{\"ev\":\"e\",\"name\":\"" << escape(e.name)
           << "\",\"ts_ns\":" << e.ts_ns << ",\"tid\":" << e.tid
           << ",\"depth\":" << e.depth << ",\"dur_ns\":" << e.value << "}\n";
        break;
      case EventKind::Instant:
        os << "{\"ev\":\"i\",\"name\":\"" << escape(e.name)
           << "\",\"ts_ns\":" << e.ts_ns << ",\"tid\":" << e.tid
           << ",\"depth\":" << e.depth << ",\"value\":" << e.value << "}\n";
        break;
    }
  }
  for (const auto& [name, value] : counters()) {
    os << "{\"ev\":\"c\",\"name\":\"" << escape(name) << "\",\"value\":"
       << value << "}\n";
  }
  for (const auto& [name, hist] : durations_.snapshot()) {
    os << "{\"ev\":\"h\",\"name\":\"" << escape(name) << "\",\"count\":"
       << hist.count() << ",\"p50_ms\":" << hist.median()
       << ",\"p99_ms\":" << hist.p99() << ",\"overflow\":" << hist.overflow()
       << "}\n";
  }
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  std::int64_t last_ts = 0;
  for (const Event& e : events()) {
    last_ts = std::max(last_ts, e.ts_ns);
    const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
    switch (e.kind) {
      case EventKind::SpanBegin:
        sep();
        os << "{\"ph\":\"B\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":"
           << ts_us << ",\"name\":\"" << escape(e.name) << "\"}";
        break;
      case EventKind::SpanEnd:
        sep();
        os << "{\"ph\":\"E\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":"
           << ts_us << ",\"name\":\"" << escape(e.name) << "\"}";
        break;
      case EventKind::Instant:
        sep();
        os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":"
           << ts_us << ",\"name\":\"" << escape(e.name)
           << "\",\"s\":\"t\",\"args\":{\"value\":" << e.value << "}}";
        break;
    }
  }
  // Final counter values as one Chrome counter sample each, stamped at the
  // last event so they render at the end of the timeline.
  for (const auto& [name, value] : counters()) {
    sep();
    os << "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":"
       << static_cast<double>(last_ts) / 1e3 << ",\"name\":\""
       << escape(name) << "\",\"args\":{\"value\":" << value << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace ocp::obs
