// Always-available observability: scoped spans, aggregate counters and
// per-round instant events over one thread-safe in-memory sink, exported as
// JSON-lines or Chrome trace-event JSON ("chrome://tracing" / Perfetto).
//
// The layer is gated twice:
//
//  * runtime — every instrumented call site holds an `obs::TraceConfig`
//    whose sink pointer is null by default; the disabled path is a single
//    branch-on-null (verified against the committed bench baselines, which
//    are produced with tracing off);
//  * compile time — configuring with -DOCP_OBS=OFF defines OCP_OBS_DISABLE,
//    which turns `TraceConfig::enabled()` into `constexpr false` so the
//    instrumentation folds away entirely (the sink/report classes still
//    compile; only the hooks go quiet).
//
// Event names are `const char*` and must point at static-duration strings
// (every call site passes a literal); this keeps recording allocation-free
// on the event path. Counters aggregate by name with atomic adds under a
// shared lock, so OpenMP regions can bump the same counter concurrently
// without losing increments. Span begin/end pairing is tracked per thread,
// which yields nesting depth and exact durations without any matching pass
// in the exporters.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "stats/histogram.hpp"

namespace ocp::obs {

/// What one recorded event is.
enum class EventKind : std::uint8_t {
  SpanBegin = 0,
  /// `value` holds the span duration in nanoseconds.
  SpanEnd = 1,
  /// A point-in-time observation; `value` holds the payload (e.g. the
  /// frontier size of the round being reported).
  Instant = 2,
};

/// One trace event. Timestamps are nanoseconds since the sink's creation
/// (steady clock); `tid` is a dense sink-local thread id; `depth` is the
/// number of spans open on that thread when the event fired.
struct Event {
  EventKind kind = EventKind::Instant;
  const char* name = "";
  std::int64_t ts_ns = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::int64_t value = 0;
};

/// How much detail instrumented code emits.
enum class TraceLevel : std::uint8_t {
  /// Phase-level spans and aggregate counters only.
  Phase = 0,
  /// Additionally per-round / per-instance / per-trial events — more
  /// volume, full convergence timelines.
  Round = 1,
};

/// Thread-safe histogram-per-name duration recorder (stats::Histogram
/// underneath). The sink feeds it every span completion; it is also usable
/// standalone for any latency-shaped measurement.
class LatencyRecorder {
 public:
  /// Histogram shape applied to every name: [lo_ms, hi_ms) over `bins`
  /// equal-width buckets (overflow is tracked explicitly, see Histogram).
  explicit LatencyRecorder(double lo_ms = 0.0, double hi_ms = 1000.0,
                           std::size_t bins = 64);

  void record(std::string_view name, double ms);

  /// Copies of the per-name histograms, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, stats::Histogram>>
  snapshot() const;

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
  mutable std::mutex mu_;
  std::map<std::string, stats::Histogram, std::less<>> hists_;
};

/// Collects events and counters from any number of threads. One sink spans
/// one traced run; exporters snapshot under the same locks the recorders
/// take, so exporting mid-run is safe (if rarely useful).
class TraceSink {
 public:
  TraceSink();

  /// Nanoseconds since construction (steady clock).
  [[nodiscard]] std::int64_t now_ns() const;

  void span_begin(const char* name);
  void span_end(const char* name);
  void instant(const char* name, std::int64_t value);
  /// Atomic aggregate add; concurrent adds to one name never lose counts.
  /// The add lands in the calling thread's stripe (see `CounterStripe`), so
  /// query threads hammering the same counter name never contend on one
  /// map, one lock, or one cache line; reads aggregate across stripes.
  void counter_add(const char* name, std::int64_t delta);

  [[nodiscard]] std::vector<Event> events() const;
  /// Final counter values, sorted by name, each summed across all stripes.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> counters()
      const;
  [[nodiscard]] std::int64_t counter_value(std::string_view name) const;
  /// Span-duration histograms (milliseconds), one per span name.
  [[nodiscard]] const LatencyRecorder& span_durations() const {
    return durations_;
  }

  /// One JSON object per line: a meta header, then b/e/i event lines in
  /// record order, then c (counter) and h (histogram) aggregate lines.
  /// Schema: "ocpmesh-trace-v1" (parsed back by obs/report.hpp).
  void write_jsonl(std::ostream& os) const;
  /// Chrome trace-event JSON object format: {"traceEvents": [...]}; loads
  /// in chrome://tracing and Perfetto.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct ThreadState {
    std::uint32_t tid = 0;
    /// Open spans on this thread: (name, begin ts_ns).
    std::vector<std::pair<const char*, std::int64_t>> open;
  };

  ThreadState& thread_state();  // callers hold events_mu_

  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex events_mu_;
  std::vector<Event> events_;
  std::unordered_map<std::thread::id, ThreadState> threads_;

  /// One stripe of the counter aggregation: a name→atomic map under its own
  /// shared_mutex, padded to a cache line so neighboring stripes' lock words
  /// never false-share. Each thread picks a home stripe by thread-id hash
  /// (cached thread-locally) and only ever writes there; the steady-state
  /// add is a shared-lock + relaxed fetch_add against state no other stripe
  /// touches. Readers take every stripe's shared lock and sum — counters
  /// are read per run/report, written per event, so the aggregation cost
  /// sits on the cold side.
  struct alignas(64) CounterStripe {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::atomic<std::int64_t>> values;
  };
  static constexpr std::size_t kCounterStripes = 8;
  mutable std::array<CounterStripe, kCounterStripes> counter_stripes_;

  LatencyRecorder durations_{0.0, 10000.0, 64};
};

/// The value-type handle instrumented code holds: a sink pointer (null =
/// disabled) plus the verbosity. Copy freely; default construction is the
/// disabled state.
struct TraceConfig {
  TraceSink* sink = nullptr;
  TraceLevel level = TraceLevel::Phase;

#ifdef OCP_OBS_DISABLE
  [[nodiscard]] constexpr bool enabled() const noexcept { return false; }
#else
  [[nodiscard]] bool enabled() const noexcept { return sink != nullptr; }
#endif
  /// True when per-round detail should be emitted.
  [[nodiscard]] bool rounds() const noexcept {
    return enabled() && level >= TraceLevel::Round;
  }

  void counter(const char* name, std::int64_t delta) const {
    if (enabled()) sink->counter_add(name, delta);
  }
  void instant(const char* name, std::int64_t value) const {
    if (enabled()) sink->instant(name, value);
  }
};

/// RAII scoped span. Records begin on construction and end (with duration)
/// on destruction when the trace is enabled — otherwise both are a null
/// check. The optional `enable` gate lets call sites condition a span on
/// verbosity without an #if at every use: `Span s(trace, "x", trace.rounds())`.
class Span {
 public:
  Span(const TraceConfig& trace, const char* name, bool enable = true)
      : sink_(enable && trace.enabled() ? trace.sink : nullptr), name_(name) {
    if (sink_ != nullptr) sink_->span_begin(name_);
  }
  ~Span() {
    if (sink_ != nullptr) sink_->span_end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
};

}  // namespace ocp::obs
