// Trace post-processing: parse the JSON-lines export back into aggregate
// statistics (what the `obs_report` CLI prints) and validate exported JSON.
//
// The parser is line-oriented and schema-specific — each line of the v1
// export is one flat object with known keys — it is not a general JSON
// parser. `json_valid` on the other hand IS a full (structural) JSON
// checker, used by tests to assert the Chrome trace-event export is
// loadable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "stats/table.hpp"

namespace ocp::obs {

/// Aggregate of all completed spans with one name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;

  [[nodiscard]] double mean_ms() const noexcept {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
  /// Completions per second of wall time spent inside the span (e.g. fuzz
  /// cases/sec from "fuzz.instance" spans).
  [[nodiscard]] double per_second() const noexcept {
    return total_ms <= 0.0 ? 0.0
                           : static_cast<double>(count) / (total_ms / 1e3);
  }
};

/// Aggregate of all instant events with one name (value-carrying).
struct InstantStat {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
};

struct TraceReport {
  std::string schema;
  std::vector<SpanStat> spans;        // sorted by total_ms, descending
  std::vector<InstantStat> instants;  // sorted by name
  std::vector<std::pair<std::string, std::int64_t>> counters;  // by name
  /// Lines that were not valid v1 records (blank lines are not counted).
  std::size_t malformed_lines = 0;

  [[nodiscard]] const SpanStat* span(std::string_view name) const;
  [[nodiscard]] const InstantStat* instant(std::string_view name) const;
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
};

/// Parses a JSON-lines trace (the TraceSink::write_jsonl format) into
/// aggregates. Unknown `ev` kinds are skipped, broken lines are counted.
[[nodiscard]] TraceReport summarize_jsonl(std::istream& in);

/// The three summary tables (spans, instants, counters) as printable
/// `stats::Table`s; empty sections are omitted.
[[nodiscard]] std::vector<stats::Table> report_tables(
    const TraceReport& report);

/// Renders `report_tables` to `os` with section spacing.
void print_report(const TraceReport& report, std::ostream& os);

/// Structural JSON validity (objects, arrays, strings, numbers, booleans,
/// null; exact RFC 8259 grammar minus \u surrogate pairing). True iff the
/// whole text is one valid JSON value.
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace ocp::obs
