#include "obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <map>
#include <optional>
#include <ostream>

namespace ocp::obs {

namespace {

/// Raw value of `"key":` on a flat one-object line, or nullopt. String
/// values are returned unquoted (with escapes left as-is — v1 names rarely
/// contain any; consumers only compare them).
std::optional<std::string> field(const std::string& line,
                                 std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::string value = line.substr(pos + needle.size());
  if (!value.empty() && value.front() == '"') {
    // String value: scan to the closing unescaped quote.
    std::string out;
    for (std::size_t i = 1; i < value.size(); ++i) {
      if (value[i] == '\\' && i + 1 < value.size()) {
        out.push_back(value[++i]);
      } else if (value[i] == '"') {
        return out;
      } else {
        out.push_back(value[i]);
      }
    }
    return std::nullopt;  // unterminated string
  }
  const auto end = value.find_first_of(",}");
  if (end != std::string::npos) value = value.substr(0, end);
  while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
    value.pop_back();
  }
  return value;
}

std::optional<std::int64_t> int_field(const std::string& line,
                                      std::string_view key) {
  const auto v = field(line, key);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str()) return std::nullopt;
  return parsed;
}

std::string format_count(std::uint64_t n) { return std::to_string(n); }

}  // namespace

const SpanStat* TraceReport::span(std::string_view name) const {
  for (const SpanStat& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const InstantStat* TraceReport::instant(std::string_view name) const {
  for (const InstantStat& s : instants) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::int64_t TraceReport::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

TraceReport summarize_jsonl(std::istream& in) {
  TraceReport report;
  std::map<std::string, SpanStat> spans;
  std::map<std::string, InstantStat> instants;
  std::map<std::string, std::int64_t> counters;

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto ev = field(line, "ev");
    const auto name = field(line, "name");
    if (!ev) {
      ++report.malformed_lines;
      continue;
    }
    if (*ev == "meta") {
      if (const auto schema = field(line, "schema")) report.schema = *schema;
      continue;
    }
    if (!name) {
      ++report.malformed_lines;
      continue;
    }
    if (*ev == "b") {
      continue;  // durations come from the matching "e" line
    }
    if (*ev == "e") {
      const auto dur = int_field(line, "dur_ns");
      if (!dur) {
        ++report.malformed_lines;
        continue;
      }
      SpanStat& s = spans[*name];
      const double ms = static_cast<double>(*dur) / 1e6;
      if (s.count == 0) {
        s.name = *name;
        s.min_ms = s.max_ms = ms;
      }
      ++s.count;
      s.total_ms += ms;
      s.min_ms = std::min(s.min_ms, ms);
      s.max_ms = std::max(s.max_ms, ms);
    } else if (*ev == "i") {
      const auto value = int_field(line, "value");
      if (!value) {
        ++report.malformed_lines;
        continue;
      }
      InstantStat& s = instants[*name];
      if (s.count == 0) {
        s.name = *name;
        s.min = s.max = *value;
      }
      ++s.count;
      s.sum += *value;
      s.min = std::min(s.min, *value);
      s.max = std::max(s.max, *value);
    } else if (*ev == "c") {
      const auto value = int_field(line, "value");
      if (!value) {
        ++report.malformed_lines;
        continue;
      }
      counters[*name] += *value;
    } else if (*ev != "h") {
      // "h" histogram lines are derivable from "e" lines; other kinds are
      // from a future schema.
      ++report.malformed_lines;
    }
  }

  for (auto& [_, s] : spans) report.spans.push_back(std::move(s));
  std::sort(report.spans.begin(), report.spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.total_ms > b.total_ms;
            });
  for (auto& [_, s] : instants) report.instants.push_back(std::move(s));
  report.counters.assign(counters.begin(), counters.end());
  return report;
}

std::vector<stats::Table> report_tables(const TraceReport& report) {
  std::vector<stats::Table> tables;
  if (!report.spans.empty()) {
    stats::Table spans({"span", "count", "total ms", "mean ms", "min ms",
                        "max ms", "count/s"});
    for (const SpanStat& s : report.spans) {
      spans.add_row({s.name, format_count(s.count),
                     stats::format_double(s.total_ms, 3),
                     stats::format_double(s.mean_ms(), 3),
                     stats::format_double(s.min_ms, 3),
                     stats::format_double(s.max_ms, 3),
                     stats::format_double(s.per_second(), 1)});
    }
    tables.push_back(std::move(spans));
  }
  if (!report.instants.empty()) {
    stats::Table instants({"instant", "count", "sum", "min", "max"});
    for (const InstantStat& s : report.instants) {
      instants.add_row({s.name, format_count(s.count),
                        std::to_string(s.sum), std::to_string(s.min),
                        std::to_string(s.max)});
    }
    tables.push_back(std::move(instants));
  }
  if (!report.counters.empty()) {
    stats::Table counters({"counter", "value"});
    for (const auto& [name, value] : report.counters) {
      counters.add_row({name, std::to_string(value)});
    }
    tables.push_back(std::move(counters));
  }
  return tables;
}

void print_report(const TraceReport& report, std::ostream& os) {
  bool first = true;
  for (const stats::Table& t : report_tables(report)) {
    if (!first) os << "\n";
    first = false;
    t.print(os);
  }
  if (report.malformed_lines > 0) {
    os << "\n(" << report.malformed_lines << " malformed line(s) skipped)\n";
  }
}

// ---------------------------------------------------------------------------
// Structural JSON validation (recursive descent over RFC 8259).

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (depth_ > 256 || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  [[nodiscard]] bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) {
  return JsonChecker(text).valid();
}

}  // namespace ocp::obs
