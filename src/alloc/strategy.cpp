#include "alloc/strategy.hpp"

namespace ocp::alloc {

namespace {

/// True when `c` is outside the machine or busy in the index — the
/// "contact" predicate of the boundary-hugging score. The machine edge
/// counts as contact: cornering a job against the mesh boundary preserves
/// interior free rectangles exactly like cornering it against a DR.
bool contact_at(const FreeRegionIndex& index, mesh::Coord c) {
  const auto& m = index.machine();
  if (c.x < 0 || c.y < 0 || c.x >= m.width() || c.y >= m.height()) return true;
  return index.busy(c);
}

class FirstFitStrategy final : public PlacementStrategy {
 public:
  StrategyKind kind() const noexcept override {
    return StrategyKind::FirstFit;
  }
  std::optional<mesh::Coord> choose(const FreeRegionIndex& index,
                                    std::int32_t w,
                                    std::int32_t h) const override {
    return index.first_anchor(w, h);
  }
};

class BestFitStrategy final : public PlacementStrategy {
 public:
  StrategyKind kind() const noexcept override { return StrategyKind::BestFit; }
  std::optional<mesh::Coord> choose(const FreeRegionIndex& index,
                                    std::int32_t w,
                                    std::int32_t h) const override {
    std::optional<mesh::Coord> best;
    std::int64_t best_score = 0;
    index.for_each_anchor(w, h, [&](mesh::Coord a) {
      const std::int64_t score = best_fit_score(index, a, w, h);
      // Strict < keeps the first (row-major smallest) anchor on ties.
      if (!best || score < best_score) {
        best = a;
        best_score = score;
      }
      return true;
    });
    return best;
  }
};

class BoundaryFitStrategy final : public PlacementStrategy {
 public:
  StrategyKind kind() const noexcept override {
    return StrategyKind::BoundaryFit;
  }
  std::optional<mesh::Coord> choose(const FreeRegionIndex& index,
                                    std::int32_t w,
                                    std::int32_t h) const override {
    std::optional<mesh::Coord> best;
    BoundaryContact best_contact;
    index.for_each_anchor(w, h, [&](mesh::Coord a) {
      const BoundaryContact c = boundary_contact(index, a, w, h);
      const bool better =
          !best || c.corners > best_contact.corners ||
          (c.corners == best_contact.corners && c.ring > best_contact.ring);
      if (better) {
        best = a;
        best_contact = c;
      }
      return true;
    });
    return best;
  }
};

}  // namespace

std::unique_ptr<PlacementStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::FirstFit: return std::make_unique<FirstFitStrategy>();
    case StrategyKind::BestFit: return std::make_unique<BestFitStrategy>();
    case StrategyKind::BoundaryFit:
      return std::make_unique<BoundaryFitStrategy>();
  }
  return std::make_unique<FirstFitStrategy>();
}

std::int64_t best_fit_score(const FreeRegionIndex& index, mesh::Coord anchor,
                            std::int32_t w, std::int32_t h) {
  // Slack of the free slab extending the placement right (width beyond w at
  // the anchor row) and down (height beyond h at the anchor column). The
  // extents are measured at the anchor, so the score is the area a tighter
  // hole would not waste.
  const std::int32_t we = index.row_extent_right(anchor);
  const std::int32_t he = index.col_extent_down(anchor);
  return static_cast<std::int64_t>(we - w) * h +
         static_cast<std::int64_t>(he - h) * w;
}

BoundaryContact boundary_contact(const FreeRegionIndex& index,
                                 mesh::Coord anchor, std::int32_t w,
                                 std::int32_t h) {
  const std::int32_t x0 = anchor.x;
  const std::int32_t y0 = anchor.y;
  const std::int32_t x1 = anchor.x + w - 1;
  const std::int32_t y1 = anchor.y + h - 1;
  BoundaryContact out;
  // Anchored corner: both orthogonal outside neighbors of a rect corner are
  // busy or off-machine — the placement is wedged into a concave pocket.
  const mesh::Coord corners[4] = {{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}};
  const std::int32_t dx[4] = {-1, 1, -1, 1};
  const std::int32_t dy[4] = {-1, -1, 1, 1};
  for (int i = 0; i < 4; ++i) {
    const bool side = contact_at(index, {corners[i].x + dx[i], corners[i].y});
    const bool vert = contact_at(index, {corners[i].x, corners[i].y + dy[i]});
    if (side && vert) ++out.corners;
  }
  for (std::int32_t x = x0; x <= x1; ++x) {
    if (contact_at(index, {x, y0 - 1})) ++out.ring;
    if (contact_at(index, {x, y1 + 1})) ++out.ring;
  }
  for (std::int32_t y = y0; y <= y1; ++y) {
    if (contact_at(index, {x0 - 1, y})) ++out.ring;
    if (contact_at(index, {x1 + 1, y})) ++out.ring;
  }
  return out;
}

}  // namespace ocp::alloc
