#include "alloc/engine.hpp"

#include <algorithm>

namespace ocp::alloc {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t pack_coord(mesh::Coord c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
         static_cast<std::uint32_t>(c.y);
}

geom::Rect rect_at(mesh::Coord anchor, std::int32_t w, std::int32_t h) {
  return geom::Rect{anchor, {anchor.x + w - 1, anchor.y + h - 1}};
}

}  // namespace

AllocEngine::AllocEngine(const svc::Snapshot& snap, AllocConfig config)
    : config_(std::move(config)),
      machine_(snap.machine()),
      strategy_(make_strategy(config_.strategy)),
      index_(machine_),
      blocked_(static_cast<std::size_t>(machine_.node_count()), 0),
      occupant_(static_cast<std::size_t>(machine_.node_count()), -1),
      digest_(kFnvOffset) {
  for (std::int32_t y = 0; y < machine_.height(); ++y) {
    for (std::int32_t x = 0; x < machine_.width(); ++x) {
      const mesh::Coord c{x, y};
      if (snap.status_of(c) != svc::NodeStatus::Enabled) {
        blocked_[cell_index(c)] = 1;
        ++blocked_count_;
      }
    }
  }
  // Baseline via from-scratch build: the incremental patch counter starts
  // at zero, so it measures epoch turnovers only.
  index_ = FreeRegionIndex::build(
      machine_, [&](mesh::Coord c) { return blocked_[cell_index(c)] != 0; });
  epoch_ = snap.epoch();
  publish_view();
}

void AllocEngine::note(Note code, std::uint64_t id, geom::Rect rect,
                       std::uint64_t extra) {
  const std::uint64_t vals[5] = {static_cast<std::uint64_t>(code), id,
                                 pack_coord(rect.lo), pack_coord(rect.hi),
                                 extra};
  for (const std::uint64_t v : vals) {
    for (int b = 0; b < 8; ++b) {
      digest_ ^= (v >> (8 * b)) & 0xffu;
      digest_ *= kFnvPrime;
    }
  }
}

void AllocEngine::place_live(const JobRequest& request, mesh::Coord anchor,
                             std::uint32_t evictions) {
  const geom::Rect rect = rect_at(anchor, request.width, request.height);
  for (std::int32_t y = rect.lo.y; y <= rect.hi.y; ++y) {
    for (std::int32_t x = rect.lo.x; x <= rect.hi.x; ++x) {
      const mesh::Coord c{x, y};
      occupant_[cell_index(c)] = static_cast<std::int64_t>(request.id);
      index_.set_busy(c, true);
    }
  }
  occupied_count_ += static_cast<std::size_t>(rect.area());
  live_.emplace(request.id, LiveJob{request, rect, request.lifetime_ticks,
                                    evictions});
}

void AllocEngine::free_cells_of(const geom::Rect& rect) {
  for (std::int32_t y = rect.lo.y; y <= rect.hi.y; ++y) {
    for (std::int32_t x = rect.lo.x; x <= rect.hi.x; ++x) {
      const mesh::Coord c{x, y};
      const std::size_t i = cell_index(c);
      occupant_[i] = -1;
      index_.set_busy(c, blocked_[i] != 0);
    }
  }
  occupied_count_ -= static_cast<std::size_t>(rect.area());
}

SubmitResult AllocEngine::submit(const JobRequest& request) {
  ++stats_.submitted;
  config_.trace.counter("alloc.submitted", 1);
  const bool bad_dims = request.width <= 0 || request.height <= 0 ||
                        request.width > machine_.width() ||
                        request.height > machine_.height();
  const bool duplicate =
      live_.count(request.id) != 0 ||
      std::any_of(pending_.begin(), pending_.end(), [&](const PendingJob& p) {
        return p.request.id == request.id;
      });
  if (bad_dims || duplicate) {
    ++stats_.rejected;
    config_.trace.counter("alloc.rejected", 1);
    note(Note::kRejected, request.id, geom::Rect{}, bad_dims ? 1 : 2);
    publish_view();
    return {SubmitOutcome::Rejected, {}};
  }
  if (const auto anchor =
          strategy_->choose(index_, request.width, request.height)) {
    place_live(request, *anchor, 0);
    ++stats_.placed;
    config_.trace.counter("alloc.placed", 1);
    const geom::Rect rect = live_.at(request.id).rect;
    note(Note::kPlaced, request.id, rect, 0);
    publish_view();
    return {SubmitOutcome::Placed, rect};
  }
  if (pending_.size() < config_.queue_capacity) {
    pending_.push_back(PendingJob{request, 0, 0});
    ++stats_.queued;
    config_.trace.counter("alloc.queued", 1);
    note(Note::kQueued, request.id, geom::Rect{}, 0);
    publish_view();
    return {SubmitOutcome::Queued, {}};
  }
  ++stats_.rejected;
  config_.trace.counter("alloc.rejected", 1);
  note(Note::kRejected, request.id, geom::Rect{}, 3);
  publish_view();
  return {SubmitOutcome::Rejected, {}};
}

bool AllocEngine::release(std::uint64_t id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  const geom::Rect rect = it->second.rect;
  free_cells_of(rect);
  live_.erase(it);
  ++stats_.released;
  config_.trace.counter("alloc.released", 1);
  note(Note::kReleased, id, rect, 0);
  drain_pending();
  publish_view();
  return true;
}

std::size_t AllocEngine::tick() {
  ++tick_;
  // Expiry pass: collect first (ascending id order is the map order), then
  // complete — completing frees cells, which must not perturb the scan.
  std::vector<std::uint64_t> expiring;
  for (auto& [id, job] : live_) {
    if (job.request.lifetime_ticks == 0) continue;
    if (job.remaining_ticks > 0) --job.remaining_ticks;
    if (job.remaining_ticks == 0) expiring.push_back(id);
  }
  for (const std::uint64_t id : expiring) {
    const auto it = live_.find(id);
    const geom::Rect rect = it->second.rect;
    free_cells_of(rect);
    live_.erase(it);
    ++stats_.completed;
    config_.trace.counter("alloc.completed", 1);
    note(Note::kCompleted, id, rect, 0);
  }
  drain_pending();
  publish_view();
  return expiring.size();
}

EpochOutcome AllocEngine::observe_epoch(const svc::Snapshot& snap,
                                        std::span<const mesh::Coord> dirty) {
  obs::Span span(config_.trace, "alloc.observe_epoch");
  EpochOutcome out;
  out.epoch = snap.epoch();
  // Pass 1: refresh the blocked plane over the dirty cells (idempotent, so
  // duplicate dirty entries are harmless) and collect hit jobs.
  std::vector<std::uint64_t> evict_ids;
  for (const mesh::Coord c : dirty) {
    if (!machine_.contains(c)) continue;
    const std::size_t i = cell_index(c);
    const bool now_blocked = snap.status_of(c) != svc::NodeStatus::Enabled;
    if ((blocked_[i] != 0) == now_blocked) continue;
    blocked_[i] = now_blocked ? 1 : 0;
    if (now_blocked) {
      ++blocked_count_;
      ++out.newly_blocked;
      if (occupant_[i] >= 0) {
        evict_ids.push_back(static_cast<std::uint64_t>(occupant_[i]));
      }
      index_.set_busy(c, true);
    } else {
      --blocked_count_;
      ++out.newly_unblocked;
      // An unblocked cell can have no occupant; it is free now.
      index_.set_busy(c, false);
    }
  }
  std::sort(evict_ids.begin(), evict_ids.end());
  evict_ids.erase(std::unique(evict_ids.begin(), evict_ids.end()),
                  evict_ids.end());
  // Pass 2: evict hit jobs in ascending id order, then recover each —
  // immediate re-place, backed-off re-queue, or shed.
  for (const std::uint64_t id : evict_ids) {
    const auto it = live_.find(id);
    LiveJob job = it->second;
    free_cells_of(job.rect);
    live_.erase(it);
    ++stats_.evicted;
    ++out.evicted;
    config_.trace.counter("alloc.evicted", 1);
    note(Note::kEvicted, id, job.rect, out.epoch);
    recover_evicted(std::move(job), out);
  }
  drain_pending();
  epoch_ = out.epoch;
  ++stats_.epochs_observed;
  config_.trace.counter("alloc.epochs", 1);
  note(Note::kEpoch, out.epoch, geom::Rect{}, out.evicted);
  publish_view();
  return out;
}

void AllocEngine::recover_evicted(LiveJob job, EpochOutcome& out) {
  ++job.evictions;
  const JobRequest& request = job.request;
  if (const auto anchor =
          strategy_->choose(index_, request.width, request.height)) {
    place_live(request, *anchor, job.evictions);
    ++stats_.replaced;
    ++out.replaced;
    config_.trace.counter("alloc.replaced", 1);
    note(Note::kReplaced, request.id, live_.at(request.id).rect,
         job.evictions);
    return;
  }
  const bool retries_left = job.evictions <= config_.max_retries;
  if (retries_left && pending_.size() < config_.queue_capacity) {
    const std::uint32_t delay_us =
        svc::backoff_delay_us(config_.retry_backoff, job.evictions - 1);
    stats_.backoff_us += delay_us;
    // The hold is virtual: one tick per eviction survived keeps the engine
    // clock-free while the microsecond schedule lands in the stats.
    pending_.push_front(
        PendingJob{request, job.evictions, tick_ + job.evictions});
    ++stats_.requeued;
    ++out.requeued;
    config_.trace.counter("alloc.requeued", 1);
    note(Note::kRequeued, request.id, geom::Rect{}, job.evictions);
    return;
  }
  ++stats_.shed;
  ++out.shed;
  config_.trace.counter("alloc.shed", 1);
  note(Note::kShed, request.id, geom::Rect{}, job.evictions);
}

std::size_t AllocEngine::drain_pending() {
  std::size_t placed = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->not_before_tick > tick_) {
      ++it;
      continue;
    }
    const auto anchor =
        strategy_->choose(index_, it->request.width, it->request.height);
    if (!anchor) {
      // Backfill: a blocked head does not starve placeable jobs behind it.
      ++it;
      continue;
    }
    const JobRequest request = it->request;
    place_live(request, *anchor, it->evictions);
    ++stats_.placed;
    config_.trace.counter("alloc.placed", 1);
    note(Note::kPlaced, request.id, live_.at(request.id).rect, 1);
    it = pending_.erase(it);
    ++placed;
  }
  return placed;
}

double AllocEngine::utilization() const {
  const std::size_t usable =
      static_cast<std::size_t>(machine_.node_count()) - blocked_count_;
  if (usable == 0) return 0.0;
  return static_cast<double>(occupied_count_) / static_cast<double>(usable);
}

double AllocEngine::fragmentation() const {
  const std::size_t free = index_.free_cells();
  if (free == 0) return 1.0;
  return static_cast<double>(index_.largest_free_rect_area()) /
         static_cast<double>(free);
}

void AllocEngine::publish_view() {
  auto next = std::make_shared<AllocView>();
  next->epoch = epoch_;
  next->tick = tick_;
  next->placement_digest = digest_;
  next->live = live_.size();
  next->pending = pending_.size();
  next->free_cells = index_.free_cells();
  next->largest_free_rect = index_.largest_free_rect_area();
  next->submitted = stats_.submitted;
  next->completed = stats_.completed;
  next->shed = stats_.shed;
  next->utilization = utilization();
  next->fragmentation = fragmentation();
  std::unique_lock lock(view_mu_);
  view_ = std::move(next);
}

}  // namespace ocp::alloc
