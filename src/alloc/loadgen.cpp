#include "alloc/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "alloc/oracle.hpp"
#include "analysis/trial_pool.hpp"
#include "fault/generators.hpp"
#include "stats/histogram.hpp"
#include "svc/ingest.hpp"
#include "svc/loadgen.hpp"

namespace ocp::alloc {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Per-reader outcome, written only by its own thread.
struct ReaderRecord {
  std::size_t views = 0;
  bool monotone = true;
};

/// True when no queue entry is an eviction survivor — the storm-recovery
/// quiescence predicate.
bool queue_clear_of_evicted(const AllocEngine& engine) {
  return std::none_of(
      engine.pending().begin(), engine.pending().end(),
      [](const PendingJob& p) { return p.evictions > 0; });
}

}  // namespace

std::vector<JobRequest> generate_job_stream(const mesh::Mesh2D& machine,
                                            std::size_t count,
                                            std::int32_t max_side,
                                            std::uint32_t min_lifetime,
                                            std::uint32_t max_lifetime,
                                            std::uint64_t seed,
                                            std::uint64_t first_id) {
  stats::Rng rng(seed);
  const std::int32_t cap = std::max<std::int32_t>(
      1, std::min({max_side, machine.width(), machine.height()}));
  std::vector<JobRequest> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // u^2 skews the draw toward small jobs: many 1x1..2x2, a long tail of
    // larger submeshes — the mix that exercises fragmentation.
    const double uw = rng.uniform();
    const double uh = rng.uniform();
    JobRequest job;
    job.id = first_id + i;
    job.width =
        1 + static_cast<std::int32_t>(uw * uw * static_cast<double>(cap - 1) +
                                      0.5);
    job.height =
        1 + static_cast<std::int32_t>(uh * uh * static_cast<double>(cap - 1) +
                                      0.5);
    job.lifetime_ticks = static_cast<std::uint32_t>(rng.uniform_int(
        static_cast<std::int64_t>(std::max(1u, min_lifetime)),
        static_cast<std::int64_t>(std::max(min_lifetime, max_lifetime))));
    jobs.push_back(job);
  }
  return jobs;
}

std::uint64_t job_stream_digest(const std::vector<JobRequest>& jobs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const JobRequest& j : jobs) {
    mix(j.id + 1);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(j.width)) + 1);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(j.height)) + 1);
    mix(static_cast<std::uint64_t>(j.lifetime_ticks) + 1);
  }
  return h;
}

std::vector<svc::FaultEvent> storm_events(const mesh::Mesh2D& machine,
                                          mesh::Coord center,
                                          std::int32_t side) {
  std::vector<svc::FaultEvent> events;
  if (side <= 0) return events;
  const std::int32_t s = std::min({side, machine.width(), machine.height()});
  std::int32_t x0 = std::clamp(center.x - s / 2, 0, machine.width() - s);
  std::int32_t y0 = std::clamp(center.y - s / 2, 0, machine.height() - s);
  events.reserve(static_cast<std::size_t>(s) * static_cast<std::size_t>(s));
  for (std::int32_t y = y0; y < y0 + s; ++y) {
    for (std::int32_t x = x0; x < x0 + s; ++x) {
      events.push_back({svc::EventKind::Fault, {x, y}});
    }
  }
  return events;
}

AllocLoadResult run_alloc_load(const AllocLoadConfig& config) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             config.topology);
  // Fork order is part of the replay contract: faults, churn stream, jobs,
  // storm, then one seed per reader.
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const std::uint64_t job_seed = master.fork_seed();
  stats::Rng storm_rng(master.fork_seed());
  const auto reader_seeds =
      analysis::fork_trial_seeds(master, config.reader_threads);
  static_cast<void>(reader_seeds);

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<svc::FaultEvent> stream = svc::generate_event_stream(
      machine, initial, config.fault_events, config.repair_fraction,
      stream_seed);
  const std::vector<JobRequest> jobs = generate_job_stream(
      machine, config.jobs, config.max_job_side, config.min_lifetime,
      config.max_lifetime, job_seed);
  const mesh::Coord storm_center{
      static_cast<std::int32_t>(storm_rng.uniform_int(0, machine.width() - 1)),
      static_cast<std::int32_t>(storm_rng.uniform_int(0, machine.height() - 1))};

  AllocLoadResult result;
  result.stream_digest = svc::event_stream_digest(stream);
  result.job_digest = job_stream_digest(jobs);

  // The ingest engine feeds every published epoch into the alloc engine
  // through the on_publish hook — the writer thread is the only caller of
  // apply, so the hook runs single-writer too.
  std::unique_ptr<AllocEngine> alloc;
  svc::IngestConfig ingest_config;
  ingest_config.on_publish = [&alloc](const svc::Snapshot& snap,
                                      std::span<const mesh::Coord> dirty) {
    if (alloc) alloc->observe_epoch(snap, dirty);
  };
  svc::IngestEngine ingest(initial, ingest_config);

  AllocConfig alloc_config;
  alloc_config.strategy = config.strategy;
  alloc_config.queue_capacity = config.queue_capacity;
  alloc_config.max_retries = config.max_retries;
  alloc = std::make_unique<AllocEngine>(*ingest.snapshot(), alloc_config);

  // Readers: hammer the published view until the writer finishes, checking
  // (epoch, tick) monotonicity. They touch nothing the writer reads, so
  // every replay-identity output is reader-count independent.
  std::atomic<bool> stop{false};
  std::vector<ReaderRecord> records(config.reader_threads);
  std::vector<std::thread> readers;
  readers.reserve(config.reader_threads);
  for (std::size_t t = 0; t < config.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      ReaderRecord& rec = records[t];
      std::uint64_t last_epoch = 0;
      std::uint64_t last_tick = 0;
      // Every reader observes at least one view even when the writer
      // finishes before the thread spins up (single-core schedulers).
      while (rec.views < config.reads_per_thread &&
             (rec.views == 0 || !stop.load(std::memory_order_relaxed))) {
        const auto view = alloc->view();
        if (view->epoch < last_epoch || view->tick < last_tick ||
            view->utilization < 0.0 || view->utilization > 1.0) {
          rec.monotone = false;
        }
        last_epoch = view->epoch;
        last_tick = view->tick;
        ++rec.views;
      }
    });
  }

  stats::Histogram place_us(0.0, 1000.0, 2000);
  const auto t0 = Clock::now();
  std::size_t stream_pos = 0;
  const std::size_t storm_at = config.storm_side > 0 ? config.jobs / 2
                                                     : config.jobs + 1;
  const auto apply_batch = [&](std::size_t n) {
    if (stream_pos >= stream.size()) return;
    const std::size_t take = std::min(n, stream.size() - stream_pos);
    static_cast<void>(ingest.apply(
        std::span<const svc::FaultEvent>(stream.data() + stream_pos, take)));
    stream_pos += take;
  };
  // Peak utilization (and the fragmentation at the step that set it) is
  // sampled after every state-changing step; both are pure functions of
  // engine state, so they replay bit-identically.
  const auto note_peak = [&] {
    const double util = alloc->utilization();
    if (util > result.peak_utilization) {
      result.peak_utilization = util;
      result.fragmentation_at_peak = alloc->fragmentation();
    }
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == storm_at) {
      // Eviction storm: one clustered batch, one epoch, mass eviction.
      const std::uint64_t evicted_before = alloc->stats().evicted;
      const auto storm = storm_events(machine, storm_center,
                                      config.storm_side);
      static_cast<void>(ingest.apply(storm));
      result.storm_evicted = static_cast<std::size_t>(
          alloc->stats().evicted - evicted_before);
      const auto storm_t0 = Clock::now();
      std::uint64_t ticks = 0;
      while (!queue_clear_of_evicted(*alloc) &&
             ticks < config.storm_recovery_cap) {
        static_cast<void>(alloc->tick());
        note_peak();
        ++ticks;
      }
      result.storm_recovery_ticks = ticks;
      result.storm_recovered = queue_clear_of_evicted(*alloc);
      result.storm_recovery_seconds =
          us_between(storm_t0, Clock::now()) / 1e6;
    }
    const auto s0 = Clock::now();
    static_cast<void>(alloc->submit(jobs[i]));
    place_us.add(us_between(s0, Clock::now()));
    note_peak();
    if (config.fault_every > 0 && (i + 1) % config.fault_every == 0) {
      apply_batch(config.fault_batch);
      static_cast<void>(alloc->tick());
      note_peak();
    }
  }
  // Drain: remaining churn, then run the clock until every finite lifetime
  // has expired and the queue has had that long to place or hold.
  while (stream_pos < stream.size()) {
    apply_batch(config.fault_batch);
    static_cast<void>(alloc->tick());
  }
  for (std::uint32_t t = 0; t < config.max_lifetime + 64; ++t) {
    if (alloc->live().empty() && alloc->pending().empty()) break;
    static_cast<void>(alloc->tick());
  }
  result.wall_seconds = us_between(t0, Clock::now()) / 1e6;

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  for (const ReaderRecord& rec : records) {
    result.reader_views += rec.views;
    result.views_monotone = result.views_monotone && rec.monotone;
  }

  const auto final_snapshot = ingest.snapshot();
  result.final_label_digest = final_snapshot->label_digest();
  result.epochs_published = ingest.stats().epochs_published;
  result.placement_digest = alloc->placement_digest();
  result.stats = alloc->stats();
  result.live_final = alloc->live().size();
  result.pending_final = alloc->pending().size();
  result.utilization = alloc->utilization();
  result.fragmentation = alloc->fragmentation();
  result.oracle_ok = check_engine(*alloc, *final_snapshot).ok();
  const std::uint64_t decisions =
      result.stats.placed + result.stats.replaced + result.stats.rejected;
  result.placements_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(decisions) / result.wall_seconds
          : 0.0;
  result.p50_place_us = place_us.percentile(0.50);
  result.p99_place_us = place_us.percentile(0.99);
  result.place_overflow = place_us.overflow();
  return result;
}

}  // namespace ocp::alloc
