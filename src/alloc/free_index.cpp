#include "alloc/free_index.hpp"

#include <algorithm>

namespace ocp::alloc {

FreeRegionIndex::FreeRegionIndex(const mesh::Mesh2D& machine)
    : machine_(machine),
      busy_(static_cast<std::size_t>(machine.node_count()), 0),
      run_(static_cast<std::size_t>(machine.node_count()), 0),
      free_cells_(static_cast<std::size_t>(machine.node_count())) {
  for (std::int32_t y = 0; y < machine_.height(); ++y) {
    for (std::int32_t x = 0; x < machine_.width(); ++x) {
      run_[cell_index({x, y})] = x + 1;
    }
  }
}

void FreeRegionIndex::set_busy(mesh::Coord c, bool busy) {
  const std::size_t i = cell_index(c);
  if ((busy_[i] != 0) == busy) return;
  busy_[i] = busy ? 1 : 0;
  if (busy) {
    --free_cells_;
  } else {
    ++free_cells_;
  }
  // Runs right of a busy cell restart from 0, so the patch ends at the next
  // busy cell (its run is 0 and stays 0; cells beyond it derive from that 0).
  const std::size_t row_base =
      static_cast<std::size_t>(c.y) * static_cast<std::size_t>(machine_.width());
  std::int32_t run = c.x > 0 ? run_[row_base + static_cast<std::size_t>(c.x) -
                                    1]
                             : 0;
  for (std::int32_t x = c.x; x < machine_.width(); ++x) {
    const std::size_t j = row_base + static_cast<std::size_t>(x);
    if (busy_[j] != 0) {
      if (x > c.x) break;
      run = 0;
    } else {
      ++run;
    }
    run_[j] = run;
    ++cells_patched_;
  }
}

std::optional<mesh::Coord> FreeRegionIndex::first_anchor(std::int32_t w,
                                                         std::int32_t h) const {
  std::optional<mesh::Coord> found;
  for_each_anchor(w, h, [&](mesh::Coord a) {
    found = a;
    return false;
  });
  return found;
}

std::int32_t FreeRegionIndex::row_extent_right(mesh::Coord c) const {
  if (busy_[cell_index(c)] != 0) return 0;
  std::int32_t n = 0;
  for (std::int32_t x = c.x; x < machine_.width() && busy_[cell_index({x, c.y})] == 0;
       ++x) {
    ++n;
  }
  return n;
}

std::int32_t FreeRegionIndex::col_extent_down(mesh::Coord c) const {
  if (busy_[cell_index(c)] != 0) return 0;
  std::int32_t n = 0;
  for (std::int32_t y = c.y;
       y < machine_.height() && busy_[cell_index({c.x, y})] == 0; ++y) {
    ++n;
  }
  return n;
}

std::int64_t FreeRegionIndex::largest_free_rect_area() const {
  // Largest rectangle under a histogram, one histogram per row: heights[x]
  // counts consecutive free cells upward ending at the current row.
  std::vector<std::int32_t> heights(static_cast<std::size_t>(machine_.width()),
                                    0);
  std::vector<std::int32_t> stack;
  stack.reserve(static_cast<std::size_t>(machine_.width()) + 1);
  std::int64_t best = 0;
  for (std::int32_t y = 0; y < machine_.height(); ++y) {
    for (std::int32_t x = 0; x < machine_.width(); ++x) {
      heights[static_cast<std::size_t>(x)] =
          busy_[cell_index({x, y})] != 0
              ? 0
              : heights[static_cast<std::size_t>(x)] + 1;
    }
    stack.clear();
    for (std::int32_t x = 0; x <= machine_.width(); ++x) {
      const std::int32_t h =
          x < machine_.width() ? heights[static_cast<std::size_t>(x)] : 0;
      while (!stack.empty() &&
             heights[static_cast<std::size_t>(stack.back())] >= h) {
        const std::int32_t xs = stack.back();
        stack.pop_back();
        const std::int32_t width = stack.empty() ? x : x - stack.back() - 1;
        best = std::max(
            best, static_cast<std::int64_t>(width) *
                      heights[static_cast<std::size_t>(xs)]);
      }
      if (x < machine_.width()) stack.push_back(x);
    }
  }
  return best;
}

bool FreeRegionIndex::equivalent_to(const FreeRegionIndex& other) const {
  return machine_.width() == other.machine_.width() &&
         machine_.height() == other.machine_.height() && busy_ == other.busy_ &&
         run_ == other.run_ && free_cells_ == other.free_cells_;
}

}  // namespace ocp::alloc
