// The job lifecycle engine: submits, places, evicts and re-places
// rectangular submesh jobs against `svc::Snapshot` epochs.
//
// Deliberately thread-free and single-writer, like `svc::IngestEngine`: one
// driver thread calls `submit` / `release` / `tick` / `observe_epoch`;
// reader threads poll the RCU-published `AllocView` (a shared_ptr handle
// behind a shared_mutex, same publish discipline as the snapshot slot).
// Every state transition is appended to an FNV-1a placement digest, so two
// drivers fed the same call sequence produce bit-identical digests — the
// replay-identity property the load generator and the chaos harness assert.
//
// Placement state is three planes plus the free-region index:
//  * blocked_  — cells unusable per the observed snapshot (status_of !=
//                Enabled: disabled regions and faulty blocks alike);
//  * occupant_ — live-job id per cell (-1 when unoccupied);
//  * index_    — busy = blocked OR occupied, maintained incrementally.
//
// Epoch turnover (`observe_epoch`) is O(dirty): only the caller-provided
// dirty cells are re-read from the snapshot. A live job whose footprint
// gains a blocked cell is *evicted*: its cells are freed (except the newly
// blocked ones), then — in ascending job id order for determinism — the
// engine re-places it immediately if the strategy finds room, else re-queues
// it with a bounded-retry backoff (`svc::backoff_delay_us` accounts the
// retry schedule in microseconds; the hold is expressed in virtual ticks so
// the engine itself stays clock-free), else sheds it once the eviction
// count exceeds `max_retries` or the queue is full. The admission queue
// backfills: a blocked queue head never starves smaller placeable jobs
// behind it (scan order is deterministic, so replay identity holds).
//
// Conservation invariant (checked by `alloc::check_engine`):
//   submitted == live + pending + completed + released + rejected + shed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "alloc/free_index.hpp"
#include "alloc/strategy.hpp"
#include "geometry/rect.hpp"
#include "obs/trace.hpp"
#include "svc/backoff.hpp"
#include "svc/snapshot.hpp"

namespace ocp::alloc {

struct AllocConfig {
  StrategyKind strategy = StrategyKind::FirstFit;
  /// Bounded admission queue for jobs that do not fit right now.
  std::size_t queue_capacity = 64;
  /// Evictions a job survives (each with one immediate re-place attempt and
  /// a backed-off queue residency) before it is shed.
  std::uint32_t max_retries = 3;
  /// Accounts the eviction-retry schedule (stats_.backoff_us) and shapes the
  /// virtual-tick hold of a re-queued job.
  svc::BackoffPolicy retry_backoff{};
  /// Observability: alloc.* counters and epoch spans.
  obs::TraceConfig trace;
};

struct JobRequest {
  /// Caller-assigned, unique among non-finished jobs; must be < 2^63 (the
  /// occupant plane stores ids in int64 with -1 as "empty").
  std::uint64_t id = 0;
  std::int32_t width = 1;
  std::int32_t height = 1;
  /// Ticks the job runs once placed; 0 = runs until released.
  std::uint32_t lifetime_ticks = 0;
};

enum class SubmitOutcome : std::uint8_t { Placed = 0, Queued = 1, Rejected = 2 };

[[nodiscard]] constexpr const char* to_string(SubmitOutcome o) noexcept {
  switch (o) {
    case SubmitOutcome::Placed: return "placed";
    case SubmitOutcome::Queued: return "queued";
    case SubmitOutcome::Rejected: return "rejected";
  }
  return "?";
}

struct SubmitResult {
  SubmitOutcome outcome = SubmitOutcome::Rejected;
  /// Footprint when Placed.
  geom::Rect rect{};
};

struct LiveJob {
  JobRequest request;
  geom::Rect rect{};
  /// Ticks left (meaningful when request.lifetime_ticks > 0).
  std::uint32_t remaining_ticks = 0;
  /// Times this job has been evicted so far.
  std::uint32_t evictions = 0;
};

struct PendingJob {
  JobRequest request;
  std::uint32_t evictions = 0;
  /// Earliest tick a drain may retry this job (eviction backoff hold).
  std::uint64_t not_before_tick = 0;
};

/// Monotone counters; `submit`/`observe_epoch`/`tick` transitions only.
struct AllocStats {
  std::uint64_t submitted = 0;
  std::uint64_t placed = 0;   // immediate + drained placements
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;  // admission rejections (full queue, bad dims)
  std::uint64_t released = 0;
  std::uint64_t completed = 0;  // lifetime expiries
  std::uint64_t evicted = 0;
  std::uint64_t replaced = 0;  // evictions recovered by immediate re-place
  std::uint64_t requeued = 0;  // evictions parked back in the queue
  std::uint64_t shed = 0;      // dropped after bounded retries / full queue
  std::uint64_t epochs_observed = 0;
  /// Sum of `svc::backoff_delay_us` over every eviction retry hold.
  std::uint64_t backoff_us = 0;
};

/// What one `observe_epoch` call did.
struct EpochOutcome {
  std::uint64_t epoch = 0;
  std::size_t newly_blocked = 0;
  std::size_t newly_unblocked = 0;
  std::size_t evicted = 0;
  std::size_t replaced = 0;
  std::size_t requeued = 0;
  std::size_t shed = 0;
};

/// Immutable published view for reader threads (RCU slot, copied whole).
struct AllocView {
  std::uint64_t epoch = 0;
  std::uint64_t tick = 0;
  std::uint64_t placement_digest = 0;
  std::size_t live = 0;
  std::size_t pending = 0;
  std::size_t free_cells = 0;
  std::int64_t largest_free_rect = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double utilization = 0.0;
  double fragmentation = 0.0;
};

class AllocEngine {
 public:
  /// Reads the full blocked plane from `snap` (epoch baseline); later
  /// epochs arrive incrementally via `observe_epoch`.
  explicit AllocEngine(const svc::Snapshot& snap, AllocConfig config = {});

  AllocEngine(const AllocEngine&) = delete;
  AllocEngine& operator=(const AllocEngine&) = delete;

  /// Admission: place now, queue, or reject (bad dims / duplicate id /
  /// full queue). Single-writer.
  SubmitResult submit(const JobRequest& request);

  /// Frees a live job's cells and drains the queue into the freed space.
  /// False when `id` is not live.
  bool release(std::uint64_t id);

  /// Advances virtual time: expires lifetimes (ascending id), then drains
  /// the queue. Returns jobs completed this tick.
  std::size_t tick();

  /// Applies one epoch turnover from the snapshot's dirty cells (duplicates
  /// tolerated; cells outside the machine ignored). O(dirty) + eviction
  /// recovery work. Single-writer.
  EpochOutcome observe_epoch(const svc::Snapshot& snap,
                             std::span<const mesh::Coord> dirty);

  // -- driver-side accessors (single-writer, like the mutators) -----------
  [[nodiscard]] const FreeRegionIndex& index() const noexcept { return index_; }
  /// Live jobs keyed by id (ascending iteration = the deterministic order).
  [[nodiscard]] const std::map<std::uint64_t, LiveJob>& live() const noexcept {
    return live_;
  }
  [[nodiscard]] const std::deque<PendingJob>& pending() const noexcept {
    return pending_;
  }
  [[nodiscard]] const AllocStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t current_tick() const noexcept { return tick_; }
  /// FNV-1a digest over every state transition since construction.
  [[nodiscard]] std::uint64_t placement_digest() const noexcept {
    return digest_;
  }
  [[nodiscard]] bool blocked_at(mesh::Coord c) const {
    return blocked_[cell_index(c)] != 0;
  }
  /// Live-job id occupying `c`, or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> occupant_at(mesh::Coord c) const {
    const std::int64_t o = occupant_[cell_index(c)];
    if (o < 0) return std::nullopt;
    return static_cast<std::uint64_t>(o);
  }
  /// Occupied cells / usable (non-blocked) cells; 0 when nothing is usable.
  [[nodiscard]] double utilization() const;
  /// largest-free-rect / total-free; 1.0 when nothing is free (fully
  /// compact by convention).
  [[nodiscard]] double fragmentation() const;
  [[nodiscard]] const mesh::Mesh2D& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const AllocConfig& config() const noexcept { return config_; }

  // -- reader side ---------------------------------------------------------
  /// The current published view (safe from any thread).
  [[nodiscard]] std::shared_ptr<const AllocView> view() const {
    std::shared_lock lock(view_mu_);
    return view_;
  }

 private:
  enum class Note : std::uint8_t {
    kPlaced = 1,
    kQueued = 2,
    kRejected = 3,
    kReleased = 4,
    kCompleted = 5,
    kEvicted = 6,
    kReplaced = 7,
    kRequeued = 8,
    kShed = 9,
    kEpoch = 10,
  };

  [[nodiscard]] std::size_t cell_index(mesh::Coord c) const {
    return static_cast<std::size_t>(c.y) *
               static_cast<std::size_t>(machine_.width()) +
           static_cast<std::size_t>(c.x);
  }
  void note(Note code, std::uint64_t id, geom::Rect rect, std::uint64_t extra);
  void place_live(const JobRequest& request, mesh::Coord anchor,
                  std::uint32_t evictions);
  void free_cells_of(const geom::Rect& rect);
  /// Re-place / re-queue / shed one evicted job; updates `out`.
  void recover_evicted(LiveJob job, EpochOutcome& out);
  std::size_t drain_pending();
  void publish_view();

  AllocConfig config_;
  mesh::Mesh2D machine_;
  std::unique_ptr<PlacementStrategy> strategy_;
  FreeRegionIndex index_;
  std::vector<std::uint8_t> blocked_;
  std::vector<std::int64_t> occupant_;
  std::size_t blocked_count_ = 0;
  std::size_t occupied_count_ = 0;
  std::map<std::uint64_t, LiveJob> live_;
  std::deque<PendingJob> pending_;
  AllocStats stats_;
  std::uint64_t epoch_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t digest_;

  mutable std::shared_mutex view_mu_;
  std::shared_ptr<const AllocView> view_;
};

}  // namespace ocp::alloc
