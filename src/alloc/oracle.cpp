#include "alloc/oracle.hpp"

#include <sstream>
#include <vector>

namespace ocp::alloc {

namespace {

std::string coord_str(mesh::Coord c) {
  std::ostringstream os;
  os << "(" << c.x << "," << c.y << ")";
  return os.str();
}

}  // namespace

check::ViolationReport check_engine(const AllocEngine& engine,
                                    const svc::Snapshot& snap,
                                    std::uint32_t checks) {
  check::ViolationReport report;
  const auto& machine = engine.machine();
  auto fail = [&](std::uint32_t check, std::string detail) {
    report.violations.push_back({check, std::move(detail)});
  };

  // Independent occupancy recompute from the live-job table.
  std::vector<std::int64_t> owner(
      static_cast<std::size_t>(machine.node_count()), -1);
  for (const auto& [id, job] : engine.live()) {
    const geom::Rect r = job.rect;
    const bool inside = machine.contains(r.lo) && machine.contains(r.hi) &&
                        r.lo.x <= r.hi.x && r.lo.y <= r.hi.y;
    if (!inside) {
      if (checks & check::kAllocOverlap) {
        fail(check::kAllocOverlap,
             "job " + std::to_string(id) + " footprint " + coord_str(r.lo) +
                 ".." + coord_str(r.hi) + " leaves the machine");
      }
      continue;
    }
    for (std::int32_t y = r.lo.y; y <= r.hi.y; ++y) {
      for (std::int32_t x = r.lo.x; x <= r.hi.x; ++x) {
        const mesh::Coord c{x, y};
        const std::size_t i = static_cast<std::size_t>(y) *
                                  static_cast<std::size_t>(machine.width()) +
                              static_cast<std::size_t>(x);
        if ((checks & check::kAllocOverlap) && owner[i] >= 0) {
          fail(check::kAllocOverlap,
               "jobs " + std::to_string(owner[i]) + " and " +
                   std::to_string(id) + " both cover " + coord_str(c));
        }
        owner[i] = static_cast<std::int64_t>(id);
        const bool cell_blocked = snap.status_of(c) != svc::NodeStatus::Enabled;
        if ((checks & check::kAllocOverlap) && cell_blocked) {
          fail(check::kAllocOverlap, "job " + std::to_string(id) +
                                         " covers non-enabled cell " +
                                         coord_str(c));
        }
        if ((checks & check::kAllocEviction) && cell_blocked) {
          fail(check::kAllocEviction,
               "job " + std::to_string(id) + " survived on blocked cell " +
                   coord_str(c) + " after epoch " +
                   std::to_string(snap.epoch()));
        }
      }
    }
  }

  if (checks & check::kAllocEviction) {
    if (engine.epoch() != snap.epoch()) {
      fail(check::kAllocEviction,
           "engine observed epoch " + std::to_string(engine.epoch()) +
               " but the snapshot serves epoch " +
               std::to_string(snap.epoch()));
    }
  }

  if (checks & check::kAllocIndex) {
    const FreeRegionIndex rebuilt =
        FreeRegionIndex::build(machine, [&](mesh::Coord c) {
          const std::size_t i = static_cast<std::size_t>(c.y) *
                                    static_cast<std::size_t>(machine.width()) +
                                static_cast<std::size_t>(c.x);
          return snap.status_of(c) != svc::NodeStatus::Enabled || owner[i] >= 0;
        });
    if (!engine.index().equivalent_to(rebuilt)) {
      fail(check::kAllocIndex,
           "incremental free-region index diverged from the from-scratch "
           "rebuild at epoch " +
               std::to_string(snap.epoch()));
    }
    for (std::int32_t y = 0; y < machine.height(); ++y) {
      for (std::int32_t x = 0; x < machine.width(); ++x) {
        const mesh::Coord c{x, y};
        const bool want = snap.status_of(c) != svc::NodeStatus::Enabled;
        if (engine.blocked_at(c) != want) {
          fail(check::kAllocIndex,
               "blocked plane disagrees with the snapshot at " + coord_str(c));
        }
      }
    }
  }

  if (checks & check::kAllocConservation) {
    const AllocStats& s = engine.stats();
    const std::uint64_t accounted =
        static_cast<std::uint64_t>(engine.live().size()) +
        static_cast<std::uint64_t>(engine.pending().size()) + s.completed +
        s.released + s.rejected + s.shed;
    if (s.submitted != accounted) {
      fail(check::kAllocConservation,
           "submitted " + std::to_string(s.submitted) + " != live " +
               std::to_string(engine.live().size()) + " + pending " +
               std::to_string(engine.pending().size()) + " + completed " +
               std::to_string(s.completed) + " + released " +
               std::to_string(s.released) + " + rejected " +
               std::to_string(s.rejected) + " + shed " +
               std::to_string(s.shed));
    }
    if (engine.pending().size() > engine.config().queue_capacity) {
      fail(check::kAllocConservation,
           "pending queue depth " + std::to_string(engine.pending().size()) +
               " exceeds capacity " +
               std::to_string(engine.config().queue_capacity));
    }
  }

  return report;
}

}  // namespace ocp::alloc
