// Placement strategies: one interface, three policies, one deterministic
// tie-break.
//
// Every strategy consumes the same `FreeRegionIndex` anchor enumeration and
// returns the top-left corner of a w x h submesh, or nullopt when nothing
// fits. Candidates are scored and the minimum score wins; scores tie-break
// by (y, then x) — the row-major order the index emits anchors in — so a
// strategy's choice is a pure function of the index contents and replays
// bit-identically.
//
//  * FirstFit    — the first anchor in row-major order. Score is the
//                  emission order itself; cheapest, fragments most.
//  * BestFit     — tightest hole: minimize the slack area of the free slabs
//                  extending the placement rightward and downward
//                  ((row_extent - w) * h + (col_extent - h) * w, extents
//                  measured at the anchor). Leftward/upward slack needs no
//                  term: a placement shifted left or up is a different
//                  anchor with its own score.
//  * BoundaryFit — hug disabled regions and existing jobs to keep the big
//                  free rectangles intact: maximize anchored corners (rect
//                  corners whose two orthogonal outside neighbors are both
//                  busy or off-machine), then total busy contact along the
//                  outside ring.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "alloc/free_index.hpp"

namespace ocp::alloc {

enum class StrategyKind : std::uint8_t {
  FirstFit = 0,
  BestFit = 1,
  BoundaryFit = 2,
};

[[nodiscard]] constexpr const char* to_string(StrategyKind k) noexcept {
  switch (k) {
    case StrategyKind::FirstFit: return "first-fit";
    case StrategyKind::BestFit: return "best-fit";
    case StrategyKind::BoundaryFit: return "boundary-fit";
  }
  return "?";
}

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  [[nodiscard]] virtual StrategyKind kind() const noexcept = 0;
  [[nodiscard]] const char* name() const noexcept { return to_string(kind()); }
  /// Top-left anchor for a w x h job, or nullopt when nothing fits.
  [[nodiscard]] virtual std::optional<mesh::Coord> choose(
      const FreeRegionIndex& index, std::int32_t w, std::int32_t h) const = 0;
};

[[nodiscard]] std::unique_ptr<PlacementStrategy> make_strategy(
    StrategyKind kind);

/// Scoring helpers, exposed so tests can pin the tie-break order.
/// BestFit slack area at `anchor` (lower is tighter).
[[nodiscard]] std::int64_t best_fit_score(const FreeRegionIndex& index,
                                          mesh::Coord anchor, std::int32_t w,
                                          std::int32_t h);
/// BoundaryFit contact: anchored corners (0-4) and busy/off-machine cells
/// along the outside ring of the rect at `anchor`.
struct BoundaryContact {
  std::int32_t corners = 0;
  std::int32_t ring = 0;
};
[[nodiscard]] BoundaryContact boundary_contact(const FreeRegionIndex& index,
                                               mesh::Coord anchor,
                                               std::int32_t w, std::int32_t h);

}  // namespace ocp::alloc
