// Incremental free-region index: maximal-free-rectangle search over a mesh
// whose busy set (disabled regions, faulty blocks, live placements) changes
// a few cells per epoch.
//
// The index keeps one plane of per-cell "left runs": `run(x, y)` is the
// number of consecutive free cells in row `y` ending at `(x, y)` (0 when the
// cell is busy). A width-w x height-h submesh fits with its top-left corner
// at `(x, y)` iff `run(x + w - 1, y') >= w` for the h rows y' = y .. y+h-1 —
// so anchor enumeration is the classic staircase sweep: walk rows once,
// counting per column how many consecutive rows satisfy the run predicate,
// and emit an anchor whenever the counter reaches h. One pass, O(W x H),
// no per-anchor rectangle scan.
//
// The incremental part is the point (ISSUE 10 pins it >= 4x cheaper than a
// rebuild on single-fault epochs at 64 x 64): flipping one cell only changes
// runs in its own row, from the flipped cell rightward up to (exclusive)
// the next busy cell — everything beyond is computed from a busy cell's 0
// and cannot have moved. `set_busy` patches exactly that range, and the
// cumulative `cells_patched()` counter makes the O(dirty-row-segment) claim
// a testable number instead of a timing assertion. Epoch turnover therefore
// costs O(sum of dirty-row segments), never O(W x H); a from-scratch
// `build` exists for the oracle's equivalence check and for the bench that
// pins the speedup.
//
// Torus note: placements are submeshes in machine coordinates and never
// wrap. A torus machine wraps routes, not job footprints, so rows end at
// x = width - 1 for run purposes on both topologies (documented in
// DESIGN.md sec. 14).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geometry/rect.hpp"
#include "mesh/mesh2d.hpp"

namespace ocp::alloc {

class FreeRegionIndex {
 public:
  /// All cells free.
  explicit FreeRegionIndex(const mesh::Mesh2D& machine);

  /// From-scratch construction: `busy_of(c)` decides each cell. Used by the
  /// oracle's equivalence check and the rebuild bench; the engine maintains
  /// its index incrementally via `set_busy`.
  template <typename Fn>
  [[nodiscard]] static FreeRegionIndex build(const mesh::Mesh2D& machine,
                                             Fn&& busy_of) {
    FreeRegionIndex idx(machine);
    for (std::int32_t y = 0; y < machine.height(); ++y) {
      std::int32_t run = 0;
      for (std::int32_t x = 0; x < machine.width(); ++x) {
        const std::size_t i = idx.cell_index({x, y});
        const bool busy = static_cast<bool>(busy_of(mesh::Coord{x, y}));
        idx.busy_[i] = busy ? 1 : 0;
        run = busy ? 0 : run + 1;
        idx.run_[i] = run;
        if (busy) --idx.free_cells_;
      }
    }
    return idx;
  }

  /// Flips one cell; patches runs in its row rightward up to the next busy
  /// cell. No-op when the cell already has the requested state.
  void set_busy(mesh::Coord c, bool busy);

  [[nodiscard]] bool busy(mesh::Coord c) const {
    return busy_[cell_index(c)] != 0;
  }
  /// Left-run value at `c` (exposed for the equivalence check).
  [[nodiscard]] std::int32_t run_at(mesh::Coord c) const {
    return run_[cell_index(c)];
  }

  /// Enumerates every top-left anchor of a free w x h submesh in row-major
  /// (y, then x) order. `fn(anchor) -> bool` returns false to stop early.
  template <typename Fn>
  void for_each_anchor(std::int32_t w, std::int32_t h, Fn&& fn) const {
    if (w <= 0 || h <= 0 || w > machine_.width() || h > machine_.height()) return;
    // cnt[xe]: consecutive rows ending at the current row whose run at
    // column xe admits width w.
    std::vector<std::int32_t> cnt(static_cast<std::size_t>(machine_.width()), 0);
    for (std::int32_t yb = 0; yb < machine_.height(); ++yb) {
      const std::int32_t* row =
          run_.data() +
          static_cast<std::size_t>(yb) *
              static_cast<std::size_t>(machine_.width());
      for (std::int32_t xe = w - 1; xe < machine_.width(); ++xe) {
        cnt[static_cast<std::size_t>(xe)] =
            row[xe] >= w ? cnt[static_cast<std::size_t>(xe)] + 1 : 0;
      }
      if (yb < h - 1) continue;
      const std::int32_t y = yb - h + 1;
      for (std::int32_t xe = w - 1; xe < machine_.width(); ++xe) {
        if (cnt[static_cast<std::size_t>(xe)] >= h) {
          if (!fn(mesh::Coord{xe - w + 1, y})) return;
        }
      }
    }
  }

  /// First anchor in (y, x) order, if any (the first-fit strategy).
  [[nodiscard]] std::optional<mesh::Coord> first_anchor(std::int32_t w,
                                                        std::int32_t h) const;

  /// Free cells from `c` rightward (0 when `c` is busy). Strategy scoring.
  [[nodiscard]] std::int32_t row_extent_right(mesh::Coord c) const;
  /// Free cells from `c` downward (0 when `c` is busy).
  [[nodiscard]] std::int32_t col_extent_down(mesh::Coord c) const;

  [[nodiscard]] std::size_t free_cells() const noexcept { return free_cells_; }
  /// Area of the largest fully free rectangle (stack-based histogram pass,
  /// O(W x H)); the numerator of the fragmentation metric
  /// largest-free-rect / total-free.
  [[nodiscard]] std::int64_t largest_free_rect_area() const;

  /// Cumulative count of run cells rewritten by `set_busy` — the
  /// deterministic work measure behind the incremental-vs-rebuild pin.
  [[nodiscard]] std::uint64_t cells_patched() const noexcept {
    return cells_patched_;
  }

  /// Busy planes and run planes agree cell-for-cell (oracle check).
  [[nodiscard]] bool equivalent_to(const FreeRegionIndex& other) const;

  [[nodiscard]] const mesh::Mesh2D& machine() const noexcept {
    return machine_;
  }

 private:
  [[nodiscard]] std::size_t cell_index(mesh::Coord c) const {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(
                                               machine_.width()) +
           static_cast<std::size_t>(c.x);
  }

  mesh::Mesh2D machine_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::int32_t> run_;
  std::size_t free_cells_ = 0;
  std::uint64_t cells_patched_ = 0;
};

}  // namespace ocp::alloc
