// Deterministic closed-loop workload driver for the allocation subsystem.
//
// One seeded master RNG forks independent streams — initial fault pattern,
// fault/repair churn, job sizes+lifetimes, the eviction-storm center, one
// stream per reader thread — with the same `fork_trial_seeds` discipline as
// the svc load generator. A single writer interleaves job submissions with
// fault batches applied through a private `IngestEngine` whose `on_publish`
// epoch hook feeds every turnover (snapshot + dirty cells) straight into
// the `AllocEngine`; reader threads hammer the RCU-published `AllocView`
// checking epoch/tick monotonicity. Because every allocation decision is
// made by the single writer from seeded streams, the replay-identity
// outputs (stream/job/placement digests, final utilization/fragmentation,
// storm recovery ticks) are bit-identical at any reader-thread count — the
// 1/2/8-thread acceptance criterion — while the timing-derived outputs
// (wall time, placement-decision latency percentiles) vary run to run.
//
// Mid-run the driver injects an eviction storm: a clustered block of
// faults applied as one batch, mass-evicting every job it hits. Recovery is
// measured in virtual ticks until no evicted job is still waiting in the
// queue (re-placed or shed), capped — a deterministic recovery metric the
// bench reports alongside its wall-clock twin.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/engine.hpp"
#include "svc/event_queue.hpp"

namespace ocp::alloc {

struct AllocLoadConfig {
  std::int32_t mesh_side = 32;
  mesh::Topology topology = mesh::Topology::Mesh;
  /// Faults labeled before serving starts (epoch 0).
  std::size_t initial_faults = 8;
  /// Jobs submitted by the writer, ids 1..jobs in submission order.
  std::size_t jobs = 256;
  /// Fault/repair churn events interleaved with the submissions.
  std::size_t fault_events = 96;
  double repair_fraction = 0.45;
  /// One batch of `fault_batch` churn events is applied (and one tick run)
  /// every `fault_every` submissions.
  std::size_t fault_every = 4;
  std::size_t fault_batch = 2;
  /// Job widths/heights are drawn 1..max_job_side, quadratically skewed
  /// toward small (u^2 scaling), lifetimes uniform in [min, max] ticks.
  std::int32_t max_job_side = 6;
  std::uint32_t min_lifetime = 4;
  std::uint32_t max_lifetime = 24;
  /// Side of the clustered fault block injected as one batch at the
  /// midpoint submission; 0 disables the storm.
  std::int32_t storm_side = 5;
  /// Ticks allowed for storm recovery before the metric is capped.
  std::uint64_t storm_recovery_cap = 512;
  std::size_t reader_threads = 2;
  std::size_t reads_per_thread = 2000;
  std::uint64_t seed = 1;
  StrategyKind strategy = StrategyKind::FirstFit;
  std::size_t queue_capacity = 64;
  std::uint32_t max_retries = 3;
};

struct AllocLoadResult {
  // -- timing-derived (vary run to run) -----------------------------------
  double wall_seconds = 0.0;
  /// Placement decisions (submits + drains + re-places) per second.
  double placements_per_second = 0.0;
  /// Submit-call latency: the cost of one placement decision, microseconds.
  double p50_place_us = 0.0;
  double p99_place_us = 0.0;
  std::uint64_t place_overflow = 0;
  double storm_recovery_seconds = 0.0;
  std::size_t reader_views = 0;

  // -- replay identity (bit-identical for any reader-thread count) --------
  std::uint64_t stream_digest = 0;
  std::uint64_t job_digest = 0;
  std::uint64_t placement_digest = 0;
  /// `Snapshot::label_digest()` of the final serving snapshot.
  std::uint64_t final_label_digest = 0;
  std::uint64_t epochs_published = 0;
  AllocStats stats;
  std::size_t live_final = 0;
  std::size_t pending_final = 0;
  /// Utilization/fragmentation at quiesce (every finite lifetime expired, so
  /// utilization here is usually ~0), the peak utilization observed after
  /// any submission or tick, and the fragmentation at the step that set the
  /// peak — the numbers the committed allocation table reports. Pure
  /// functions of engine state, so replay-identical. Quiesce fragmentation
  /// is strategy-independent (only the final fault pattern remains);
  /// `fragmentation_at_peak` is where strategies differ.
  double utilization = 0.0;
  double peak_utilization = 0.0;
  double fragmentation = 0.0;
  double fragmentation_at_peak = 0.0;
  /// Jobs evicted by the storm batch and the deterministic tick count until
  /// none of them waited in the queue any longer (capped).
  std::size_t storm_evicted = 0;
  std::uint64_t storm_recovery_ticks = 0;
  bool storm_recovered = true;

  // -- invariants ----------------------------------------------------------
  /// Every reader observed non-decreasing (epoch, tick) view pairs.
  bool views_monotone = true;
  /// The allocation oracle passed at quiesce (all checks).
  bool oracle_ok = true;
};

/// Runs the closed-loop workload to completion and reports throughput,
/// placement latency and the replay digests.
[[nodiscard]] AllocLoadResult run_alloc_load(const AllocLoadConfig& config);

/// The seeded job stream the driver replays, exposed for tests and the
/// chaos harness: ids `first_id..first_id+count-1` in order.
[[nodiscard]] std::vector<JobRequest> generate_job_stream(
    const mesh::Mesh2D& machine, std::size_t count, std::int32_t max_side,
    std::uint32_t min_lifetime, std::uint32_t max_lifetime, std::uint64_t seed,
    std::uint64_t first_id = 1);

/// FNV-1a digest of a job stream.
[[nodiscard]] std::uint64_t job_stream_digest(
    const std::vector<JobRequest>& jobs);

/// The clustered fault block of an eviction storm: every cell of the
/// side x side square whose top-left is `center` shifted to fit the
/// machine, as fault events in row-major order.
[[nodiscard]] std::vector<svc::FaultEvent> storm_events(
    const mesh::Mesh2D& machine, mesh::Coord center, std::int32_t side);

}  // namespace ocp::alloc
