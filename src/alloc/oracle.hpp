// Allocation oracle: the placement-layer invariants as maskable checks,
// reported through the same `check::ViolationReport` machinery as the
// labeling oracle so fuzz loops and harnesses compose reports freely.
//
// All checks recompute from first principles — the snapshot's status plane
// and the engine's live-job table — never from the engine's own caches, so
// a drifted incremental structure cannot vouch for itself:
//  * check::kAllocOverlap      — no live job covers a non-Enabled cell or
//                                another job's cell, and every footprint is
//                                inside the machine;
//  * check::kAllocIndex        — the incremental `FreeRegionIndex` equals a
//                                from-scratch rebuild (busy = blocked by
//                                snapshot OR covered by a live job), and the
//                                engine's blocked plane matches the
//                                snapshot's status plane cell-for-cell;
//  * check::kAllocEviction     — eviction completeness: the engine's
//                                observed epoch is the snapshot's, and no
//                                live job survived on a blocked cell (the
//                                overlap scan against THIS snapshot);
//  * check::kAllocConservation — submitted == live + pending + completed +
//                                released + rejected + shed, and the queue
//                                respects its bound.
#pragma once

#include <cstdint>

#include "alloc/engine.hpp"
#include "check/oracle.hpp"

namespace ocp::alloc {

/// All allocation checks `check_engine` knows.
inline constexpr std::uint32_t kAllAllocChecks =
    check::kAllocOverlap | check::kAllocIndex | check::kAllocEviction |
    check::kAllocConservation;

/// Verifies `engine` against `snap` (the snapshot of the epoch the engine
/// last observed). Empty report = every selected invariant held.
[[nodiscard]] check::ViolationReport check_engine(
    const AllocEngine& engine, const svc::Snapshot& snap,
    std::uint32_t checks = kAllAllocChecks);

}  // namespace ocp::alloc
