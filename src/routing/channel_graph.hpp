// Channel dependency analysis (Dally-Seitz) for the routing algorithms.
//
// A routing function is deadlock-free when its channel dependency graph
// (CDG) — channels as vertices, an edge when a packet may hold one channel
// while requesting the next — is acyclic. This module builds the CDG
// induced by a set of concrete routes and checks it for cycles, supporting
// the paper's claim that convex fault regions admit deadlock-free routing
// with few virtual channels: detour hops are mapped to a second virtual
// channel, and tests assert the resulting CDG stays acyclic while the same
// routes on one virtual channel may cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"
#include "routing/router.hpp"

namespace ocp::routing {

/// CDG over the directed channels of a machine with `num_vcs` virtual
/// channels per physical link.
class ChannelDependencyGraph {
 public:
  ChannelDependencyGraph(const mesh::Mesh2D& m, std::uint8_t num_vcs);

  /// Adds the dependencies of one route. Each hop occupies the virtual
  /// channel selected by its phase tag (phase 0 -> vc 0; phase 1 -> the
  /// highest available vc), and consecutive hops create a dependency edge.
  void add_route(const Route& route);

  /// Number of channels with at least one incident dependency.
  [[nodiscard]] std::size_t active_channels() const noexcept;
  [[nodiscard]] std::size_t dependency_count() const noexcept;

  /// True when the dependency graph contains a directed cycle.
  [[nodiscard]] bool has_cycle() const;

 private:
  [[nodiscard]] std::size_t channel_id(mesh::Coord from, mesh::Dir dir,
                                       std::uint8_t vc) const noexcept;

  mesh::Mesh2D mesh_;
  std::uint8_t num_vcs_;
  /// adjacency_[c] = sorted unique successors of channel c.
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::size_t dependency_count_ = 0;
};

}  // namespace ocp::routing
