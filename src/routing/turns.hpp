// Shared direction-rotation helpers for the routing algorithms.
#pragma once

#include "mesh/coord.hpp"

namespace ocp::routing {

/// Counterclockwise rotation (E -> N -> W -> S -> E).
[[nodiscard]] constexpr mesh::Dir left_of(mesh::Dir d) noexcept {
  switch (d) {
    case mesh::Dir::East: return mesh::Dir::North;
    case mesh::Dir::North: return mesh::Dir::West;
    case mesh::Dir::West: return mesh::Dir::South;
    case mesh::Dir::South: return mesh::Dir::East;
  }
  return mesh::Dir::East;  // unreachable
}

/// Clockwise rotation (E -> S -> W -> N -> E).
[[nodiscard]] constexpr mesh::Dir right_of(mesh::Dir d) noexcept {
  return left_of(left_of(left_of(d)));
}

}  // namespace ocp::routing
