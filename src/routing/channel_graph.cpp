#include "routing/channel_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ocp::routing {

ChannelDependencyGraph::ChannelDependencyGraph(const mesh::Mesh2D& m,
                                               std::uint8_t num_vcs)
    : mesh_(m), num_vcs_(num_vcs) {
  if (num_vcs == 0) throw std::invalid_argument("num_vcs must be positive");
  adjacency_.resize(static_cast<std::size_t>(m.node_count()) *
                    mesh::kNumDirs * num_vcs);
}

std::size_t ChannelDependencyGraph::channel_id(mesh::Coord from,
                                               mesh::Dir dir,
                                               std::uint8_t vc) const noexcept {
  return (mesh_.index(from) * mesh::kNumDirs +
          static_cast<std::size_t>(dir)) *
             num_vcs_ +
         vc;
}

namespace {

/// Direction of the hop a -> b (must be mesh-adjacent; torus wrap hops are
/// resolved against the machine dimensions).
mesh::Dir hop_direction(const mesh::Mesh2D& m, mesh::Coord a, mesh::Coord b) {
  for (mesh::Dir d : mesh::kAllDirs) {
    if (auto n = m.neighbor(a, d); n && *n == b) return d;
  }
  throw std::invalid_argument("hop_direction: nodes are not linked");
}

}  // namespace

void ChannelDependencyGraph::add_route(const Route& route) {
  if (route.path.size() < 2) return;
  assert(route.phase.size() + 1 == route.path.size());
  std::size_t prev_channel = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    const mesh::Dir dir = hop_direction(mesh_, route.path[i], route.path[i + 1]);
    const std::uint8_t vc =
        route.phase[i] == 0
            ? 0
            : static_cast<std::uint8_t>(num_vcs_ - 1);  // detours on last vc
    const std::size_t ch = channel_id(route.path[i], dir, vc);
    if (have_prev) {
      auto& succ = adjacency_[prev_channel];
      const auto ch32 = static_cast<std::uint32_t>(ch);
      const auto it = std::lower_bound(succ.begin(), succ.end(), ch32);
      if (it == succ.end() || *it != ch32) {
        succ.insert(it, ch32);
        ++dependency_count_;
      }
    }
    prev_channel = ch;
    have_prev = true;
  }
}

std::size_t ChannelDependencyGraph::active_channels() const noexcept {
  std::size_t n = 0;
  for (const auto& succ : adjacency_) {
    if (!succ.empty()) ++n;
  }
  return n;
}

std::size_t ChannelDependencyGraph::dependency_count() const noexcept {
  return dependency_count_;
}

bool ChannelDependencyGraph::has_cycle() const {
  // Iterative three-color DFS over the channel graph.
  enum : std::uint8_t { White, Gray, Black };
  std::vector<std::uint8_t> color(adjacency_.size(), White);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;

  for (std::size_t root = 0; root < adjacency_.size(); ++root) {
    if (color[root] != White || adjacency_[root].empty()) continue;
    stack.emplace_back(static_cast<std::uint32_t>(root), 0);
    color[root] = Gray;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      const auto& succ = adjacency_[node];
      if (next_child < succ.size()) {
        const std::uint32_t child = succ[next_child++];
        if (color[child] == Gray) return true;
        if (color[child] == White) {
          color[child] = Gray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace ocp::routing
