// Fault-tolerant packet routing over labeled meshes.
//
// The paper's motivation: convex fault regions let misrouted messages slide
// around a region's boundary without backtracking, enabling deadlock-free
// fault-tolerant routing with few virtual channels (Boura-Das, Su-Shin,
// Chalasani-Boppana). This module implements
//
//  * `XYRouter` — plain dimension-order (e-cube) routing; fails when the
//    path hits a blocked node (no fault tolerance). The baseline.
//  * `FaultRingRouter` — e-cube routing that, upon hitting a blocked
//    region, follows the region's boundary ring (wall-following with a
//    configurable hand) until dimension-order progress can resume. With
//    orthogonal convex blocked regions, the detour never revisits a node;
//    with concave regions (e.g. U-shapes) it can fail — which is exactly
//    the paper's argument for convexifying fault regions.
//
// Routers treat a `blocked` cell set (union of faulty blocks, or union of
// disabled regions) as impassable; everything else is assumed enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "grid/cell_set.hpp"
#include "mesh/mesh2d.hpp"

namespace ocp::routing {

/// Which side of the packet the blocked region is kept on during a detour.
enum class Hand : std::uint8_t { Left = 0, Right = 1 };

/// Why a route attempt ended.
enum class RouteStatus : std::uint8_t {
  Delivered = 0,
  /// Next e-cube hop blocked and the router has no detour rule.
  Blocked = 1,
  /// Detour wrapped around to its hit point without finding an exit
  /// (concave trap) or exceeded the step budget.
  Livelock = 2,
  /// Source or destination is itself blocked / outside the machine.
  Invalid = 3,
};

[[nodiscard]] const char* to_string(RouteStatus s) noexcept;

/// A computed route. `path` starts at the source and, when delivered, ends
/// at the destination. `phase[i]` tags the hop path[i] -> path[i+1]:
/// 0 = dimension-order progress, 1 = detour (ring traversal).
struct Route {
  RouteStatus status = RouteStatus::Invalid;
  std::vector<mesh::Coord> path;
  std::vector<std::uint8_t> phase;

  [[nodiscard]] bool delivered() const noexcept {
    return status == RouteStatus::Delivered;
  }
  /// Number of link traversals.
  [[nodiscard]] std::int32_t hops() const noexcept {
    return path.empty() ? 0 : static_cast<std::int32_t>(path.size()) - 1;
  }
  /// Hops spent in detour phase.
  [[nodiscard]] std::int32_t detour_hops() const noexcept;
};

/// Common interface of the routing algorithms.
class Router {
 public:
  virtual ~Router() = default;

  /// Computes the route from `src` to `dst` through nonblocked nodes.
  [[nodiscard]] virtual Route route(mesh::Coord src, mesh::Coord dst) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Plain dimension-order routing: correct X, then Y. Deterministic, minimal
/// and deadlock-free with one virtual channel, but gives up at the first
/// blocked hop.
class XYRouter final : public Router {
 public:
  XYRouter(const mesh::Mesh2D& m, const grid::CellSet& blocked)
      : mesh_(m), blocked_(&blocked) {}

  [[nodiscard]] Route route(mesh::Coord src, mesh::Coord dst) const override;
  [[nodiscard]] std::string name() const override { return "xy"; }

 private:
  mesh::Mesh2D mesh_;
  const grid::CellSet* blocked_;  // non-owning
};

/// Dimension-order routing with boundary-following detours around blocked
/// regions (the f-ring traversal of the fault-tolerant routing literature).
///
/// Detour rule: on hitting a blocked next hop, remember the current distance
/// to the destination and wall-follow with the configured hand; leave the
/// wall at the first node that is strictly closer to the destination than
/// the hit point and whose dimension-order hop is unblocked. For orthogonal
/// convex regions such an exit always exists; reaching the hit point again
/// reports `Livelock`.
class FaultRingRouter final : public Router {
 public:
  FaultRingRouter(const mesh::Mesh2D& m, const grid::CellSet& blocked,
                  Hand hand = Hand::Right)
      : mesh_(m), blocked_(&blocked), hand_(hand) {}

  [[nodiscard]] Route route(mesh::Coord src, mesh::Coord dst) const override;
  [[nodiscard]] std::string name() const override {
    return hand_ == Hand::Right ? "ring-right" : "ring-left";
  }

 private:
  mesh::Mesh2D mesh_;
  const grid::CellSet* blocked_;  // non-owning
  Hand hand_;
};

/// The dimension-order hop toward `dst` from `cur` (X first, then Y), or
/// nullopt when already there. Planar variant (no wraparound).
[[nodiscard]] std::optional<mesh::Dir> ecube_direction(mesh::Coord cur,
                                                       mesh::Coord dst);

/// Topology-aware variant: on a torus each dimension moves along its
/// shorter way around (ties break toward East/North); on a mesh this
/// equals the planar variant.
[[nodiscard]] std::optional<mesh::Dir> ecube_direction(
    const mesh::Mesh2D& m, mesh::Coord cur, mesh::Coord dst);

}  // namespace ocp::routing
