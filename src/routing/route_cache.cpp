#include "routing/route_cache.hpp"

#include <mutex>

namespace ocp::routing {

namespace {

std::uint64_t pair_key(const mesh::Mesh2D& m, mesh::Coord src,
                       mesh::Coord dst) {
  return static_cast<std::uint64_t>(m.index(src)) *
             static_cast<std::uint64_t>(m.node_count()) +
         static_cast<std::uint64_t>(m.index(dst));
}

}  // namespace

std::shared_ptr<const Route> RouteCache::lookup_shared(mesh::Coord src,
                                                       mesh::Coord dst) const {
  const std::uint64_t key = pair_key(mesh_, src, dst);
  {
    std::shared_lock lock(mutex_);
    if (const auto it = routes_.find(key); it != routes_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Route outside any lock (wall-following can be slow); insertion races
  // are benign because both threads computed the identical route.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto route = std::make_shared<const Route>(router_->route(src, dst));
  std::unique_lock lock(mutex_);
  return routes_.try_emplace(key, std::move(route)).first->second;
}

const Route& RouteCache::lookup(mesh::Coord src, mesh::Coord dst) const {
  return *lookup_shared(src, dst);
}

void RouteCache::clear() {
  // Swap the table out under the lock, destroy it outside: shared handles
  // from lookup_shared may be the last owners of some routes, and their
  // destruction should not run under the cache mutex.
  std::unordered_map<std::uint64_t, std::shared_ptr<const Route>> retired;
  {
    std::unique_lock lock(mutex_);
    retired.swap(routes_);
    generation_.fetch_add(1, std::memory_order_release);
  }
}

std::size_t RouteCache::size() const {
  std::shared_lock lock(mutex_);
  return routes_.size();
}

}  // namespace ocp::routing
