#include "routing/route_cache.hpp"

#include <cassert>
#include <mutex>
#include <utility>

namespace ocp::routing {

namespace {

std::uint64_t pair_key(const mesh::Mesh2D& m, mesh::Coord src,
                       mesh::Coord dst) {
  return static_cast<std::uint64_t>(m.index(src)) *
             static_cast<std::uint64_t>(m.node_count()) +
         static_cast<std::uint64_t>(m.index(dst));
}

}  // namespace

const Route& RouteCache::lookup(mesh::Coord src, mesh::Coord dst) const {
  const std::uint64_t key = pair_key(mesh_, src, dst);
  {
    shared_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(mutex_);
    if (const auto it = table_->index.find(key); it != table_->index.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Stable until clear(): the entry lives in the table's deque and the
      // table stays owned by `table_` until the next invalidation.
      return it->second->route;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return *miss(key, src, dst);
}

std::shared_ptr<const Route> RouteCache::lookup_shared(mesh::Coord src,
                                                       mesh::Coord dst) const {
  const std::uint64_t key = pair_key(mesh_, src, dst);
  {
    shared_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(mutex_);
    if (const auto it = table_->index.find(key); it != table_->index.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Aliasing handle: shares the table's control block, so a hit never
      // allocates, and the whole generation stays alive until the last
      // handle drops.
      return {table_, &it->second->route};
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return miss(key, src, dst);
}

std::shared_ptr<const Route> RouteCache::miss(std::uint64_t key,
                                              mesh::Coord src,
                                              mesh::Coord dst) const {
  // Route outside any lock (wall-following can be slow); insertion races
  // are benign because both threads computed the identical route.
  Entry fresh;
  fresh.route = router_->route(src, dst);
  fresh.tiles = footprint(fresh.route, src, dst);

  exclusive_locks_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mutex_);
  auto [it, inserted] = table_->index.try_emplace(key, nullptr);
  if (inserted) {
    it->second = &table_->pool.emplace_back(std::move(fresh));
  }
  return {table_, &it->second->route};
}

std::uint64_t RouteCache::footprint(const Route& route, mesh::Coord src,
                                    mesh::Coord dst) const {
  // Everything the router can have probed: it consults the blocked set only
  // at the endpoints and at 4-neighbors of cells it visited, and every
  // visited cell is on the recorded path.
  std::uint64_t bits = 0;
  if (mesh_.contains(src)) bits |= tiles_.padded_bits(src);
  if (mesh_.contains(dst)) bits |= tiles_.padded_bits(dst);
  for (const mesh::Coord c : route.path) bits |= tiles_.padded_bits(c);
  return bits;
}

void RouteCache::clear() {
  // Swap the table out under the lock, destroy it outside: shared handles
  // from lookup_shared may be the last owners, and route destruction should
  // not run under the cache mutex.
  auto replacement = std::make_shared<Table>();
  std::shared_ptr<Table> retired;
  {
    std::unique_lock lock(mutex_);
    retired = std::exchange(table_, std::move(replacement));
    generation_.fetch_add(1, std::memory_order_release);
  }
}

RouteCache::AdoptStats RouteCache::adopt(const RouteCache& prev,
                                         std::uint64_t dirty_tiles) {
  assert(&prev != this && "a cache cannot adopt itself");
  AdoptStats stats;
  // `prev` may still be serving: concurrent misses insert under its
  // exclusive lock, so holding its shared lock freezes the table for the
  // whole copy. Lock order (prev shared, then self exclusive) is safe
  // because adoption only ever flows old epoch -> new epoch.
  std::shared_lock prev_lock(prev.mutex_);
  std::unique_lock lock(mutex_);
  for (const auto& [key, entry] : prev.table_->index) {
    if ((entry->tiles & dirty_tiles) != 0) {
      ++stats.invalidated;
      continue;
    }
    table_->index.insert_or_assign(key, &table_->pool.emplace_back(*entry));
    ++stats.carried;
  }
  return stats;
}

std::size_t RouteCache::size() const {
  std::shared_lock lock(mutex_);
  return table_->index.size();
}

}  // namespace ocp::routing
