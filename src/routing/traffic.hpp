// Uniform-traffic route sampling and aggregate routing metrics.
#pragma once

#include <cstdint>

#include "routing/router.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace ocp::routing {

/// Aggregate outcome of routing many sampled packets.
struct TrafficStats {
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  /// Delivered over a shortest (zero-stretch) path.
  std::uint64_t delivered_minimal = 0;
  std::uint64_t blocked = 0;
  std::uint64_t livelocked = 0;

  /// Hop counts of delivered packets.
  stats::Summary hops;
  /// Stretch of delivered packets: hops minus the fault-free shortest
  /// distance (0 = minimal route).
  stats::Summary stretch;
  /// Detour (ring-traversal) hops of delivered packets.
  stats::Summary detour_hops;

  [[nodiscard]] double delivery_rate() const noexcept {
    return attempts == 0
               ? 1.0
               : static_cast<double>(delivered) / static_cast<double>(attempts);
  }

  /// Fraction of attempts delivered minimally.
  [[nodiscard]] double minimal_rate() const noexcept {
    return attempts == 0 ? 1.0
                         : static_cast<double>(delivered_minimal) /
                               static_cast<double>(attempts);
  }
};

/// Routes `pairs` packets between distinct non-blocked nodes chosen
/// uniformly at random and aggregates the outcomes.
[[nodiscard]] TrafficStats run_uniform_traffic(const Router& router,
                                               const grid::CellSet& blocked,
                                               std::size_t pairs,
                                               stats::Rng& rng);

/// Routes every ordered pair of non-blocked nodes (exhaustive; use on small
/// machines and in tests).
[[nodiscard]] TrafficStats run_all_pairs(const Router& router,
                                         const grid::CellSet& blocked);

}  // namespace ocp::routing
