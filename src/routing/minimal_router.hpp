// Minimal routing with global feasibility information (the Wu [9] baseline).
//
// The paper's companion work — "Fault-tolerant adaptive and minimal routing
// in mesh-connected multicomputers using extended safety levels" (IEEE TPDS
// 11(2), 2000) — equips nodes with enough aggregated fault information to
// decide, before committing to a hop, whether the destination is still
// reachable over a *minimal* path. This module reproduces that capability
// against our labeled regions:
//
//  * `minimal_path_exists` — the feasibility oracle: is there a monotone
//    (productive-hops-only) path from src to dst avoiding blocked cells?
//    Computed by dynamic programming over the minimal-path rectangle, the
//    same information extended safety levels encode.
//  * `MinimalRouter` — routes along productive hops, at each step choosing
//    one from which the destination remains minimally reachable. When no
//    minimal path exists at the source it either reports `Blocked`
//    (Fallback::None — the "minimal or nothing" discipline) or hands over
//    to the boundary-following detour (Fallback::Ring).
//
// Against orthogonal convex fault regions the oracle rarely fails (the
// minimal-path rectangle must be fully walled), which is exactly the
// regime [9] targets.
#pragma once

#include "routing/router.hpp"

namespace ocp::routing {

/// True when a minimal (monotone) src -> dst path through nonblocked cells
/// exists. src/dst outside the machine or blocked yield false.
[[nodiscard]] bool minimal_path_exists(const mesh::Mesh2D& m,
                                       const grid::CellSet& blocked,
                                       mesh::Coord src, mesh::Coord dst);

/// What `MinimalRouter` does when no minimal path exists.
enum class Fallback : std::uint8_t {
  /// Report RouteStatus::Blocked without moving.
  None = 0,
  /// Detour like FaultRingRouter (delivered, but with stretch).
  Ring = 1,
};

class MinimalRouter final : public Router {
 public:
  MinimalRouter(const mesh::Mesh2D& m, const grid::CellSet& blocked,
                Fallback fallback = Fallback::Ring)
      : mesh_(m), blocked_(&blocked), fallback_(fallback) {}

  [[nodiscard]] Route route(mesh::Coord src, mesh::Coord dst) const override;
  [[nodiscard]] std::string name() const override { return "minimal"; }

 private:
  mesh::Mesh2D mesh_;
  const grid::CellSet* blocked_;  // non-owning
  Fallback fallback_;
};

}  // namespace ocp::routing
