#include "routing/router.hpp"

#include <unordered_set>

#include "routing/turns.hpp"

namespace ocp::routing {

namespace {

/// Dense encoding of a (cell, heading) detour state for cycle detection.
std::uint64_t detour_state(const mesh::Mesh2D& m, mesh::Coord c,
                           mesh::Dir heading) {
  return (static_cast<std::uint64_t>(m.index(c)) << 2) |
         static_cast<std::uint64_t>(heading);
}

}  // namespace

const char* to_string(RouteStatus s) noexcept {
  switch (s) {
    case RouteStatus::Delivered: return "delivered";
    case RouteStatus::Blocked: return "blocked";
    case RouteStatus::Livelock: return "livelock";
    case RouteStatus::Invalid: return "invalid";
  }
  return "?";
}

std::int32_t Route::detour_hops() const noexcept {
  std::int32_t n = 0;
  for (std::uint8_t p : phase) n += p;
  return n;
}

std::optional<mesh::Dir> ecube_direction(mesh::Coord cur, mesh::Coord dst) {
  if (cur.x < dst.x) return mesh::Dir::East;
  if (cur.x > dst.x) return mesh::Dir::West;
  if (cur.y < dst.y) return mesh::Dir::North;
  if (cur.y > dst.y) return mesh::Dir::South;
  return std::nullopt;
}

std::optional<mesh::Dir> ecube_direction(const mesh::Mesh2D& m,
                                         mesh::Coord cur, mesh::Coord dst) {
  if (!m.is_torus()) return ecube_direction(cur, dst);
  // Per dimension: take the rotational direction with fewer hops; on a tie
  // prefer the positive direction.
  const auto axial = [](std::int32_t from, std::int32_t to, std::int32_t n,
                        mesh::Dir pos, mesh::Dir neg)
      -> std::optional<mesh::Dir> {
    if (from == to) return std::nullopt;
    const std::int32_t forward = ((to - from) % n + n) % n;
    return forward <= n - forward ? pos : neg;
  };
  if (auto d = axial(cur.x, dst.x, m.width(), mesh::Dir::East,
                     mesh::Dir::West)) {
    return d;
  }
  return axial(cur.y, dst.y, m.height(), mesh::Dir::North, mesh::Dir::South);
}

Route XYRouter::route(mesh::Coord src, mesh::Coord dst) const {
  Route r;
  if (!mesh_.contains(src) || !mesh_.contains(dst) ||
      blocked_->contains(src) || blocked_->contains(dst)) {
    return r;  // Invalid
  }
  r.path.push_back(src);
  mesh::Coord cur = src;
  while (cur != dst) {
    const auto dir = ecube_direction(mesh_, cur, dst);
    const auto next = mesh_.neighbor(cur, *dir);
    if (!next || blocked_->contains(*next)) {
      r.status = RouteStatus::Blocked;
      return r;
    }
    r.path.push_back(*next);
    r.phase.push_back(0);
    cur = *next;
  }
  r.status = RouteStatus::Delivered;
  return r;
}

Route FaultRingRouter::route(mesh::Coord src, mesh::Coord dst) const {
  Route r;
  if (!mesh_.contains(src) || !mesh_.contains(dst) ||
      blocked_->contains(src) || blocked_->contains(dst)) {
    return r;  // Invalid
  }
  r.path.push_back(src);
  mesh::Coord cur = src;

  bool detouring = false;
  std::int32_t hit_distance = 0;
  mesh::Dir heading = mesh::Dir::East;
  std::unordered_set<std::uint64_t> detour_seen;

  // Global budget: every detour exits strictly closer to the destination
  // than it began, so the walk cannot exceed a few boundary lengths; the
  // cap only trips on genuine livelock.
  const auto budget = static_cast<std::int64_t>(mesh_.node_count()) * 8;

  // Topology-aware passable step (wraps on a torus).
  const auto step_to = [&](mesh::Coord from,
                           mesh::Dir d) -> std::optional<mesh::Coord> {
    const auto next = mesh_.neighbor(from, d);
    if (!next || blocked_->contains(*next)) return std::nullopt;
    return next;
  };

  for (std::int64_t steps = 0; cur != dst; ++steps) {
    if (steps > budget) {
      r.status = RouteStatus::Livelock;
      return r;
    }
    if (!detouring) {
      const auto dir = ecube_direction(mesh_, cur, dst);
      if (const auto next = step_to(cur, *dir)) {
        r.path.push_back(*next);
        r.phase.push_back(0);
        cur = *next;
        continue;
      }
      // Hit: start wall-following with the blocked region on `hand_` side.
      detouring = true;
      hit_distance = mesh_.distance(cur, dst);
      heading = hand_ == Hand::Right ? left_of(*dir) : right_of(*dir);
      detour_seen.clear();
      detour_seen.insert(detour_state(mesh_, cur, heading));
    }

    // Exit test: strictly closer than the hit point and able to resume
    // dimension-order progress.
    if (mesh_.distance(cur, dst) < hit_distance) {
      const auto dir = ecube_direction(mesh_, cur, dst);
      if (dir && step_to(cur, *dir)) {
        detouring = false;
        continue;
      }
    }

    // One wall-following step: prefer turning into the wall, then straight,
    // then away, then back.
    const mesh::Dir into_wall =
        hand_ == Hand::Right ? right_of(heading) : left_of(heading);
    const mesh::Dir away =
        hand_ == Hand::Right ? left_of(heading) : right_of(heading);
    const std::array<mesh::Dir, 4> preference = {into_wall, heading, away,
                                                 mesh::opposite(heading)};
    bool moved = false;
    for (mesh::Dir d : preference) {
      const auto next = step_to(cur, d);
      if (!next) continue;
      cur = *next;
      heading = d;
      r.path.push_back(cur);
      r.phase.push_back(1);
      moved = true;
      break;
    }
    if (!moved) {
      // Completely walled in (single-cell pocket).
      r.status = RouteStatus::Livelock;
      return r;
    }
    if (!detour_seen.insert(detour_state(mesh_, cur, heading)).second) {
      // Same cell with the same heading twice within one detour: the wall
      // walk is cycling without ever reaching an exit point.
      r.status = RouteStatus::Livelock;
      return r;
    }
  }
  r.status = RouteStatus::Delivered;
  return r;
}

}  // namespace ocp::routing
