#include "routing/minimal_router.hpp"

#include <cstdlib>
#include <vector>

namespace ocp::routing {

namespace {

/// Reachability raster over the minimal-path rectangle of (src, dst):
/// raster[c] == 1 iff dst is reachable from c using productive hops only.
/// Filled backward from dst; each cell needs only its two successors, so a
/// single anti-lexicographic sweep suffices.
class MinimalReach {
 public:
  MinimalReach(const mesh::Mesh2D& m, const grid::CellSet& blocked,
               mesh::Coord src, mesh::Coord dst)
      : lo_{std::min(src.x, dst.x), std::min(src.y, dst.y)},
        hi_{std::max(src.x, dst.x), std::max(src.y, dst.y)},
        width_(static_cast<std::size_t>(hi_.x - lo_.x + 1)),
        reach_(width_ * static_cast<std::size_t>(hi_.y - lo_.y + 1), 0) {
    // Step directions toward dst (zero offset in an aligned dimension).
    const std::int32_t sx = dst.x == src.x ? 0 : (dst.x > src.x ? 1 : -1);
    const std::int32_t sy = dst.y == src.y ? 0 : (dst.y > src.y ? 1 : -1);
    // Sweep from dst back toward src: iterate x from dst.x toward src.x and
    // y from dst.y toward src.y so successors are already computed.
    for (std::int32_t y = dst.y;; y -= sy) {
      for (std::int32_t x = dst.x;; x -= sx) {
        const mesh::Coord c{x, y};
        if (!blocked.contains(c) && m.contains(c)) {
          if (c == dst) {
            set(c);
          } else {
            const bool via_x = sx != 0 && x != dst.x && at({x + sx, y});
            const bool via_y = sy != 0 && y != dst.y && at({x, y + sy});
            if (via_x || via_y) set(c);
          }
        }
        if (x == src.x || sx == 0) break;
      }
      if (y == src.y || sy == 0) break;
    }
  }

  [[nodiscard]] bool at(mesh::Coord c) const noexcept {
    return reach_[index(c)] != 0;
  }

 private:
  void set(mesh::Coord c) noexcept { reach_[index(c)] = 1; }
  [[nodiscard]] std::size_t index(mesh::Coord c) const noexcept {
    return static_cast<std::size_t>(c.y - lo_.y) * width_ +
           static_cast<std::size_t>(c.x - lo_.x);
  }

  mesh::Coord lo_;
  mesh::Coord hi_;
  std::size_t width_;
  std::vector<std::uint8_t> reach_;
};

}  // namespace

bool minimal_path_exists(const mesh::Mesh2D& m, const grid::CellSet& blocked,
                         mesh::Coord src, mesh::Coord dst) {
  if (!m.contains(src) || !m.contains(dst)) return false;
  if (blocked.contains(src) || blocked.contains(dst)) return false;
  return MinimalReach(m, blocked, src, dst).at(src);
}

Route MinimalRouter::route(mesh::Coord src, mesh::Coord dst) const {
  Route r;
  if (!mesh_.contains(src) || !mesh_.contains(dst) ||
      blocked_->contains(src) || blocked_->contains(dst)) {
    return r;  // Invalid
  }

  const MinimalReach reach(mesh_, *blocked_, src, dst);
  if (!reach.at(src)) {
    if (fallback_ == Fallback::Ring) {
      return FaultRingRouter(mesh_, *blocked_).route(src, dst);
    }
    r.status = RouteStatus::Blocked;
    r.path.push_back(src);
    return r;
  }

  // Walk productive hops that keep the destination minimally reachable;
  // prefer the dimension with the larger remaining offset (keeps the
  // remaining minimal-path rectangle fat).
  r.path.push_back(src);
  mesh::Coord cur = src;
  while (cur != dst) {
    const std::int32_t dx = dst.x - cur.x;
    const std::int32_t dy = dst.y - cur.y;
    mesh::Coord candidates[2];
    std::size_t n = 0;
    const mesh::Coord step_x{cur.x + (dx > 0 ? 1 : -1), cur.y};
    const mesh::Coord step_y{cur.x, cur.y + (dy > 0 ? 1 : -1)};
    if (std::abs(dx) >= std::abs(dy)) {
      if (dx != 0) candidates[n++] = step_x;
      if (dy != 0) candidates[n++] = step_y;
    } else {
      if (dy != 0) candidates[n++] = step_y;
      if (dx != 0) candidates[n++] = step_x;
    }
    bool advanced = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (reach.at(candidates[i])) {
        cur = candidates[i];
        r.path.push_back(cur);
        r.phase.push_back(0);
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      // Cannot happen: reach.at(cur) implies a reachable productive
      // successor by construction of the DP.
      r.status = RouteStatus::Livelock;
      return r;
    }
  }
  r.status = RouteStatus::Delivered;
  return r;
}

}  // namespace ocp::routing
