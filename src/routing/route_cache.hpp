// Lazy per-(src, dst) route memoization.
//
// The routers are pure functions of (src, dst) for a fixed machine and
// blocked set, so steady-state traffic generation — which keeps asking for
// routes between the same usable endpoints — can be a table lookup instead
// of a fresh wall-following traversal per packet. The cache fills lazily:
// only pairs that are actually requested are ever routed, which keeps the
// footprint proportional to observed traffic rather than node_count².
//
// Thread-safe: the parallel load-sweep driver (netsim/load_sweep) shares one
// cache across all (load, seed) trials of a sweep, since every trial sees
// the same machine, blocked set and router. Determinism is unaffected —
// routing is deterministic, so the cached route equals the recomputed one
// regardless of which trial populated the entry first.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "routing/router.hpp"

namespace ocp::routing {

class RouteCache {
 public:
  RouteCache(const Router& router, const mesh::Mesh2D& machine)
      : router_(&router), mesh_(machine) {}

  /// The route src -> dst, computed on first request and remembered. The
  /// returned reference stays valid until `clear()` retires the entry (or
  /// the cache is destroyed); callers that outlive an invalidation epoch
  /// must use `lookup_shared`.
  [[nodiscard]] const Route& lookup(mesh::Coord src, mesh::Coord dst) const;

  /// Like `lookup`, but the returned handle keeps the route alive across a
  /// concurrent `clear()` — the safe form for readers racing invalidation.
  [[nodiscard]] std::shared_ptr<const Route> lookup_shared(
      mesh::Coord src, mesh::Coord dst) const;

  /// Retires every memoized route and advances the generation counter.
  /// Used at epoch rollover: when the blocked set (and hence the router's
  /// answers) changes, stale routes must not survive. Safe to call
  /// concurrently with `lookup_shared`; routes handed out earlier stay
  /// alive through their shared handles.
  void clear();

  /// Monotonically increasing invalidation epoch: 0 at construction,
  /// +1 per `clear()`.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Number of distinct (src, dst) pairs routed so far.
  [[nodiscard]] std::size_t size() const;

  /// Lookups answered from the table / lookups that ran the router. When
  /// two threads miss the same key concurrently both count a miss (both
  /// ran the router), so hits + misses == lookups but misses can exceed
  /// size().
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  const Router* router_;  // non-owning
  mesh::Mesh2D mesh_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::shared_ptr<const Route>>
      routes_;
  std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ocp::routing
