// Lazy per-(src, dst) route memoization.
//
// The routers are pure functions of (src, dst) for a fixed machine and
// blocked set, so steady-state traffic generation — which keeps asking for
// routes between the same usable endpoints — can be a table lookup instead
// of a fresh wall-following traversal per packet. The cache fills lazily:
// only pairs that are actually requested are ever routed, which keeps the
// footprint proportional to observed traffic rather than node_count².
//
// Entries live in a pooled table owned by one `shared_ptr<Table>`: shared
// lookups hand out aliasing handles into the table instead of allocating a
// control block per route, and `clear()` retires the whole table at once
// (outstanding handles keep it alive). Each entry also records the tile
// footprint its computation consulted — the tiles of every path cell plus
// their 4-neighborhoods (see grid::TileGrid) — so a successor cache serving
// a changed blocked set can `adopt()` every entry whose footprint misses
// the dirty tiles: those routes are provably identical under the new
// blocked set, because the router only ever probes blocked cells inside the
// footprint.
//
// Thread-safe: the parallel load-sweep driver (netsim/load_sweep) shares one
// cache across all (load, seed) trials of a sweep, since every trial sees
// the same machine, blocked set and router. Determinism is unaffected —
// routing is deterministic, so the cached route equals the recomputed one
// regardless of which trial populated the entry first.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "grid/tiles.hpp"
#include "routing/router.hpp"

namespace ocp::routing {

class RouteCache {
 public:
  RouteCache(const Router& router, const mesh::Mesh2D& machine)
      : router_(&router),
        mesh_(machine),
        tiles_(machine),
        table_(std::make_shared<Table>()) {}

  /// The route src -> dst, computed on first request and remembered. The
  /// returned reference stays valid until `clear()` retires the entry (or
  /// the cache is destroyed); callers that outlive an invalidation epoch
  /// must use `lookup_shared`.
  [[nodiscard]] const Route& lookup(mesh::Coord src, mesh::Coord dst) const;

  /// Like `lookup`, but the returned handle keeps the route alive across a
  /// concurrent `clear()` — the safe form for readers racing invalidation.
  /// The handle aliases the pooled table (no per-entry allocation).
  [[nodiscard]] std::shared_ptr<const Route> lookup_shared(
      mesh::Coord src, mesh::Coord dst) const;

  /// Retires every memoized route and advances the generation counter.
  /// Used at epoch rollover: when the blocked set (and hence the router's
  /// answers) changes, stale routes must not survive. Safe to call
  /// concurrently with `lookup_shared`; routes handed out earlier stay
  /// alive through their shared handles.
  void clear();

  /// What `adopt` did: entries copied into this cache vs dropped because
  /// their footprint intersected the dirty tiles.
  struct AdoptStats {
    std::size_t carried = 0;
    std::size_t invalidated = 0;
  };

  /// Carries `prev`'s entries over to this cache, dropping every entry
  /// whose tile footprint intersects `dirty_tiles` (a grid::TileGrid
  /// bitmask over the shared machine). Sound when the blocked sets backing
  /// the two caches differ only inside the dirty tiles: a surviving route
  /// never probed a changed cell, so recomputing it would yield the same
  /// answer. Safe against concurrent lookups on `prev` (which may still be
  /// serving); `prev` must not be this cache.
  AdoptStats adopt(const RouteCache& prev, std::uint64_t dirty_tiles);

  /// Monotonically increasing invalidation epoch: 0 at construction,
  /// +1 per `clear()`.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Number of distinct (src, dst) pairs routed so far.
  [[nodiscard]] std::size_t size() const;

  /// Lookups answered from the table / lookups that ran the router. When
  /// two threads miss the same key concurrently both count a miss (both
  /// ran the router), so hits + misses == lookups but misses can exceed
  /// size(). Adopted entries count as hits when first re-requested.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Mutex acquisitions on the lookup paths since construction: shared
  /// (reader side — one per lookup) and exclusive (miss insertion). These
  /// are the cache's per-query shared-state touches; the serving layer
  /// exports them so contention on the reader lock is attributable when a
  /// closed-loop curve goes flat.
  [[nodiscard]] std::uint64_t shared_lock_acquisitions() const noexcept {
    return shared_locks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exclusive_lock_acquisitions() const noexcept {
    return exclusive_locks_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Route route;
    /// Tiles this route's computation may have probed (path cells and
    /// their neighborhoods, plus both endpoints).
    std::uint64_t tiles = 0;
  };
  /// One cache generation: an index over a deque pool (stable addresses,
  /// no per-entry allocation). Retired wholesale by `clear()`.
  struct Table {
    std::unordered_map<std::uint64_t, const Entry*> index;
    std::deque<Entry> pool;
  };

  /// Slow path: routes src -> dst, inserts (or finds a racing insertion)
  /// and returns an owning handle into the current table.
  std::shared_ptr<const Route> miss(std::uint64_t key, mesh::Coord src,
                                    mesh::Coord dst) const;
  [[nodiscard]] std::uint64_t footprint(const Route& route, mesh::Coord src,
                                        mesh::Coord dst) const;

  const Router* router_;  // non-owning
  mesh::Mesh2D mesh_;
  grid::TileGrid tiles_;
  mutable std::shared_mutex mutex_;
  mutable std::shared_ptr<Table> table_;
  std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> shared_locks_{0};
  mutable std::atomic<std::uint64_t> exclusive_locks_{0};
};

}  // namespace ocp::routing
