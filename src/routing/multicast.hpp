// Fault-tolerant multicast over labeled meshes.
//
// The paper's reference [8] (Tseng-Yang-Juang) studies path-based multicast
// in wormhole meshes with fault regions. This module provides the three
// classic software strategies on top of our unicast routers, so the cost of
// a fault model can be evaluated for collective communication too:
//
//  * separate addressing — one unicast per destination (baseline);
//  * path-based multicast — destinations are visited in boustrophedon
//    (snake) order by at most two message chains, one ascending and one
//    descending from the source, the path-based scheme of [8] adapted to
//    our boundary-following unicast legs;
//  * greedy tree multicast — each destination is attached to the nearest
//    node already in the tree (Prim over router distances).
//
// All strategies tolerate faults by construction: every leg is produced by
// the supplied fault-tolerant router.
#pragma once

#include <span>
#include <vector>

#include "routing/router.hpp"

namespace ocp::routing {

/// Outcome of one multicast operation.
struct Multicast {
  /// Per-leg routes, in transmission order.
  std::vector<Route> legs;
  /// Destinations actually reached.
  std::size_t reached = 0;
  /// Destinations requested.
  std::size_t requested = 0;
  /// Total link traversals across all legs (the network traffic).
  std::int64_t traffic = 0;
  /// Largest hop distance from the source to any destination along the
  /// scheme's delivery structure (the latency proxy).
  std::int64_t depth = 0;

  [[nodiscard]] bool complete() const noexcept {
    return reached == requested;
  }
};

/// One unicast per destination.
[[nodiscard]] Multicast separate_unicast(const Router& router,
                                         mesh::Coord src,
                                         std::span<const mesh::Coord> dests);

/// Dual-path multicast: destinations sorted in column-major snake order are
/// split at the source's position; one chain visits the successors in
/// ascending order, the other the predecessors in descending order.
[[nodiscard]] Multicast path_multicast(const Router& router, mesh::Coord src,
                                       std::span<const mesh::Coord> dests);

/// Greedy tree: repeatedly connect the unconnected destination closest (by
/// machine distance) to any tree node, routing from that node.
[[nodiscard]] Multicast tree_multicast(const Router& router,
                                       const mesh::Mesh2D& machine,
                                       mesh::Coord src,
                                       std::span<const mesh::Coord> dests);

}  // namespace ocp::routing
