#include "routing/traffic.hpp"

#include <vector>

namespace ocp::routing {

namespace {

void record(TrafficStats& stats, const mesh::Mesh2D& m, const Route& route,
            mesh::Coord src, mesh::Coord dst) {
  ++stats.attempts;
  switch (route.status) {
    case RouteStatus::Delivered: {
      ++stats.delivered;
      const std::int32_t stretch = route.hops() - m.distance(src, dst);
      if (stretch == 0) ++stats.delivered_minimal;
      stats.hops.add(route.hops());
      stats.stretch.add(stretch);
      stats.detour_hops.add(route.detour_hops());
      break;
    }
    case RouteStatus::Blocked:
      ++stats.blocked;
      break;
    case RouteStatus::Livelock:
      ++stats.livelocked;
      break;
    case RouteStatus::Invalid:
      // Caller sampled a blocked endpoint; counted as an attempt only.
      break;
  }
}

std::vector<mesh::Coord> usable_nodes(const grid::CellSet& blocked) {
  const mesh::Mesh2D& m = blocked.topology();
  std::vector<mesh::Coord> nodes;
  nodes.reserve(static_cast<std::size_t>(m.node_count()) - blocked.size());
  for (std::size_t i = 0; i < static_cast<std::size_t>(m.node_count()); ++i) {
    const mesh::Coord c = m.coord(i);
    if (!blocked.contains(c)) nodes.push_back(c);
  }
  return nodes;
}

}  // namespace

TrafficStats run_uniform_traffic(const Router& router,
                                 const grid::CellSet& blocked,
                                 std::size_t pairs, stats::Rng& rng) {
  const mesh::Mesh2D& m = blocked.topology();
  const std::vector<mesh::Coord> nodes = usable_nodes(blocked);
  TrafficStats stats;
  if (nodes.size() < 2) return stats;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 2));
    if (b >= a) ++b;
    record(stats, m, router.route(nodes[a], nodes[b]), nodes[a], nodes[b]);
  }
  return stats;
}

TrafficStats run_all_pairs(const Router& router, const grid::CellSet& blocked) {
  const mesh::Mesh2D& m = blocked.topology();
  const std::vector<mesh::Coord> nodes = usable_nodes(blocked);
  TrafficStats stats;
  for (mesh::Coord src : nodes) {
    for (mesh::Coord dst : nodes) {
      if (src == dst) continue;
      record(stats, m, router.route(src, dst), src, dst);
    }
  }
  return stats;
}

}  // namespace ocp::routing
