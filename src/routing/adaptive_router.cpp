#include "routing/adaptive_router.hpp"

#include <array>
#include <cstdlib>
#include <unordered_set>

#include "routing/turns.hpp"

namespace ocp::routing {

namespace {

std::uint64_t detour_state(const mesh::Mesh2D& m, mesh::Coord c,
                           mesh::Dir heading) {
  return (static_cast<std::uint64_t>(m.index(c)) << 2) |
         static_cast<std::uint64_t>(heading);
}

/// Productive directions toward `dst`, most-offset dimension first.
std::array<std::optional<mesh::Dir>, 2> productive_dirs(mesh::Coord cur,
                                                        mesh::Coord dst) {
  const std::int32_t dx = dst.x - cur.x;
  const std::int32_t dy = dst.y - cur.y;
  std::optional<mesh::Dir> along_x;
  std::optional<mesh::Dir> along_y;
  if (dx > 0) along_x = mesh::Dir::East;
  if (dx < 0) along_x = mesh::Dir::West;
  if (dy > 0) along_y = mesh::Dir::North;
  if (dy < 0) along_y = mesh::Dir::South;
  if (std::abs(dx) >= std::abs(dy)) return {along_x, along_y};
  return {along_y, along_x};
}

}  // namespace

Route AdaptiveRouter::route(mesh::Coord src, mesh::Coord dst) const {
  Route r;
  if (!mesh_.contains(src) || !mesh_.contains(dst) ||
      blocked_->contains(src) || blocked_->contains(dst)) {
    return r;  // Invalid
  }
  r.path.push_back(src);
  mesh::Coord cur = src;

  bool detouring = false;
  std::int32_t hit_distance = 0;
  mesh::Dir heading = mesh::Dir::East;
  std::unordered_set<std::uint64_t> detour_seen;
  const auto budget = static_cast<std::int64_t>(mesh_.node_count()) * 8;

  for (std::int64_t steps = 0; cur != dst; ++steps) {
    if (steps > budget) {
      r.status = RouteStatus::Livelock;
      return r;
    }
    if (!detouring) {
      // Adaptive minimal phase: take any unblocked productive hop,
      // preferring the dimension with the larger remaining offset.
      bool advanced = false;
      for (const auto& dir : productive_dirs(cur, dst)) {
        if (!dir) continue;
        const mesh::Coord next = cur.step(*dir);
        if (impassable(next)) continue;
        r.path.push_back(next);
        r.phase.push_back(0);
        cur = next;
        advanced = true;
        break;
      }
      if (advanced) continue;
      // Both productive hops blocked: enter a boundary detour around the
      // region blocking the preferred direction.
      const auto dir = productive_dirs(cur, dst)[0];
      detouring = true;
      hit_distance = mesh::manhattan(cur, dst);
      heading = hand_ == Hand::Right ? left_of(*dir) : right_of(*dir);
      detour_seen.clear();
      detour_seen.insert(detour_state(mesh_, cur, heading));
    }

    // Exit test: strictly closer than the hit point with a usable
    // productive hop.
    if (mesh::manhattan(cur, dst) < hit_distance) {
      bool can_resume = false;
      for (const auto& dir : productive_dirs(cur, dst)) {
        if (dir && !impassable(cur.step(*dir))) {
          can_resume = true;
          break;
        }
      }
      if (can_resume) {
        detouring = false;
        continue;
      }
    }

    // One wall-following step (same discipline as FaultRingRouter).
    const mesh::Dir into_wall =
        hand_ == Hand::Right ? right_of(heading) : left_of(heading);
    const mesh::Dir away =
        hand_ == Hand::Right ? left_of(heading) : right_of(heading);
    const std::array<mesh::Dir, 4> preference = {into_wall, heading, away,
                                                 mesh::opposite(heading)};
    bool moved = false;
    for (mesh::Dir d : preference) {
      const mesh::Coord next = cur.step(d);
      if (impassable(next)) continue;
      cur = next;
      heading = d;
      r.path.push_back(cur);
      r.phase.push_back(1);
      moved = true;
      break;
    }
    if (!moved || !detour_seen.insert(detour_state(mesh_, cur, heading))
                       .second) {
      r.status = RouteStatus::Livelock;
      return r;
    }
  }
  r.status = RouteStatus::Delivered;
  return r;
}

}  // namespace ocp::routing
