#include "routing/multicast.hpp"

#include <algorithm>
#include <limits>

namespace ocp::routing {

namespace {

void add_leg(Multicast& out, Route route, std::int64_t base_depth,
             std::int64_t* leg_depth) {
  if (route.delivered()) {
    ++out.reached;
    out.traffic += route.hops();
    const std::int64_t depth = base_depth + route.hops();
    out.depth = std::max(out.depth, depth);
    if (leg_depth) *leg_depth = depth;
  }
  out.legs.push_back(std::move(route));
}

/// Column-major boustrophedon rank: walk column 0 bottom-up, column 1
/// top-down, ... — a Hamiltonian order of the full mesh, so consecutive
/// destinations are usually close.
std::int64_t snake_rank(const mesh::Mesh2D& m, mesh::Coord c) {
  const std::int64_t column = c.x;
  const std::int64_t within =
      (c.x % 2 == 0) ? c.y : (m.height() - 1 - c.y);
  return column * m.height() + within;
}

}  // namespace

Multicast separate_unicast(const Router& router, mesh::Coord src,
                           std::span<const mesh::Coord> dests) {
  Multicast out;
  out.requested = dests.size();
  for (mesh::Coord dst : dests) {
    add_leg(out, router.route(src, dst), 0, nullptr);
  }
  return out;
}

Multicast path_multicast(const Router& router, mesh::Coord src,
                         std::span<const mesh::Coord> dests) {
  Multicast out;
  out.requested = dests.size();
  if (dests.empty()) return out;

  // Sort destinations by snake rank and split at the source's rank.
  std::vector<mesh::Coord> order(dests.begin(), dests.end());
  const mesh::Mesh2D* machine = nullptr;
  // The router interface carries no machine; infer ranks from a mesh big
  // enough for all coordinates (ranks only need consistency, not bounds).
  std::int32_t max_extent = std::max(src.x, src.y) + 1;
  for (mesh::Coord d : order) {
    max_extent = std::max({max_extent, d.x + 1, d.y + 1});
  }
  const mesh::Mesh2D rank_mesh(max_extent, max_extent);
  machine = &rank_mesh;

  std::sort(order.begin(), order.end(), [&](mesh::Coord a, mesh::Coord b) {
    return snake_rank(*machine, a) < snake_rank(*machine, b);
  });
  const std::int64_t src_rank = snake_rank(*machine, src);

  // Ascending chain: destinations after the source, in increasing order.
  mesh::Coord cursor = src;
  std::int64_t depth = 0;
  for (mesh::Coord d : order) {
    if (snake_rank(*machine, d) < src_rank) continue;
    std::int64_t leg_depth = 0;
    add_leg(out, router.route(cursor, d), depth, &leg_depth);
    if (out.legs.back().delivered()) {
      cursor = d;
      depth = leg_depth;
    }
  }
  // Descending chain: destinations before the source, in decreasing order.
  cursor = src;
  depth = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (snake_rank(*machine, *it) >= src_rank) continue;
    std::int64_t leg_depth = 0;
    add_leg(out, router.route(cursor, *it), depth, &leg_depth);
    if (out.legs.back().delivered()) {
      cursor = *it;
      depth = leg_depth;
    }
  }
  return out;
}

Multicast tree_multicast(const Router& router, const mesh::Mesh2D& machine,
                         mesh::Coord src,
                         std::span<const mesh::Coord> dests) {
  Multicast out;
  out.requested = dests.size();

  struct TreeNode {
    mesh::Coord at;
    std::int64_t depth;
  };
  std::vector<TreeNode> tree{{src, 0}};
  std::vector<mesh::Coord> pending(dests.begin(), dests.end());

  while (!pending.empty()) {
    // Prim step: the (tree node, pending destination) pair with minimum
    // machine distance.
    std::size_t best_dest = 0;
    std::size_t best_node = 0;
    std::int32_t best_dist = std::numeric_limits<std::int32_t>::max();
    for (std::size_t di = 0; di < pending.size(); ++di) {
      for (std::size_t ni = 0; ni < tree.size(); ++ni) {
        const std::int32_t dist = machine.distance(tree[ni].at, pending[di]);
        if (dist < best_dist) {
          best_dist = dist;
          best_dest = di;
          best_node = ni;
        }
      }
    }
    const mesh::Coord dst = pending[best_dest];
    pending.erase(pending.begin() +
                  static_cast<std::ptrdiff_t>(best_dest));
    std::int64_t leg_depth = 0;
    add_leg(out, router.route(tree[best_node].at, dst),
            tree[best_node].depth, &leg_depth);
    if (out.legs.back().delivered()) {
      tree.push_back({dst, leg_depth});
    }
  }
  return out;
}

}  // namespace ocp::routing
