// Minimal-adaptive fault-tolerant routing.
//
// Wu's companion work [9] shows that with block fault information a packet
// can usually reach its destination over a *minimal* path by adaptively
// choosing between the two productive dimensions. This router realizes that
// discipline on top of our labeled regions:
//
//  * while at least one productive hop (a hop that decreases the distance to
//    the destination) is unblocked, take one — preferring the dimension with
//    more remaining offset, which keeps the rectangle of minimal paths fat
//    and dodges obstacles for free;
//  * only when both productive hops are blocked does it fall back to the
//    boundary-following detour of `FaultRingRouter`.
//
// Against orthogonal convex regions the adaptive phase absorbs most faults
// without any detour hop; tests assert it never produces longer routes than
// deterministic e-cube-with-detours.
#pragma once

#include "routing/router.hpp"

namespace ocp::routing {

class AdaptiveRouter final : public Router {
 public:
  AdaptiveRouter(const mesh::Mesh2D& m, const grid::CellSet& blocked,
                 Hand hand = Hand::Right)
      : mesh_(m), blocked_(&blocked), hand_(hand) {}

  [[nodiscard]] Route route(mesh::Coord src, mesh::Coord dst) const override;
  [[nodiscard]] std::string name() const override { return "adaptive"; }

 private:
  [[nodiscard]] bool impassable(mesh::Coord c) const noexcept {
    return !mesh_.contains(c) || blocked_->contains(c);
  }

  mesh::Mesh2D mesh_;
  const grid::CellSet* blocked_;  // non-owning
  Hand hand_;
};

}  // namespace ocp::routing
