#include "stats/rng.hpp"

#include <cassert>
#include <numeric>

namespace ocp::stats {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n - 1)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace ocp::stats
