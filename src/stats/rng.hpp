// Deterministic random source for all stochastic experiments.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ocp::stats {

/// Thin wrapper over a 64-bit Mersenne Twister with the sampling helpers the
/// experiments need. Every experiment seeds one `Rng` and reports the seed,
/// making each run reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// k distinct values sampled uniformly from {0, 1, ..., n-1}
  /// (partial Fisher-Yates; O(n) memory, O(n + k) time).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// Derives an independent child seed; used to give each Monte-Carlo trial
  /// its own stream so trials are order-independent and parallelizable.
  [[nodiscard]] std::uint64_t fork_seed() {
    return static_cast<std::uint64_t>(engine_()) ^ (seed_ * 0x9e3779b97f4a7c15ULL);
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace ocp::stats
