// Streaming summary statistics (Welford) and confidence intervals.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ocp::stats {

/// Single-pass mean / variance / extrema accumulator. Numerically stable
/// (Welford's online update).
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const Summary& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }
  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95() const noexcept { return 1.96 * sem(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ocp::stats
