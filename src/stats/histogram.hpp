// Fixed-width histogram with percentile queries, for latency/size
// distributions where a mean hides the tail.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ocp::stats {

/// Counts samples into `bins` equal-width buckets over [lo, hi); samples
/// outside the range land in the first/last bucket (clamped). Percentiles
/// are answered from the counts with linear interpolation inside a bucket —
/// so once samples overflow the range, upper percentiles are capped at `hi`
/// and silently wrong. `overflow()` reports how many samples landed at or
/// above `hi` so consumers can detect (and widen past) that distortion.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  /// Samples >= hi; they are clamped into the last bucket but make any
  /// percentile that lands there a lower bound rather than an estimate.
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Samples < lo (clamped into the first bucket).
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const noexcept {
    assert(i < counts_.size());
    return counts_[i];
  }
  /// Inclusive lower edge of bucket `i`.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }

  /// Value below which `p` (0..1) of the samples fall; interpolated.
  /// Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept;

  [[nodiscard]] double median() const noexcept { return percentile(0.5); }
  [[nodiscard]] double p99() const noexcept { return percentile(0.99); }

  /// Merge compatible histograms (same range/bins).
  void merge(const Histogram& other);

  /// Compact one-line sparkline ("▁▂▅█...") for logs.
  [[nodiscard]] std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t underflow_ = 0;
};

}  // namespace ocp::stats
