#include "stats/table.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ocp::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_csv(f);
  return static_cast<bool>(f);
}

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string format_mean_ci(double mean, double ci, int precision) {
  return format_double(mean, precision) + " ± " + format_double(ci, precision);
}

}  // namespace ocp::stats
