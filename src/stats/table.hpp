// Aligned-column table printing and CSV emission for benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ocp::stats {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (what the bench binaries print) or as CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Space-padded columns with a rule under the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  /// Writes CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("3.142" for format_double(pi, 3)).
[[nodiscard]] std::string format_double(double v, int precision);

/// "mean ± ci" cell, e.g. "12.34 ± 0.05".
[[nodiscard]] std::string format_mean_ci(double mean, double ci,
                                         int precision);

}  // namespace ocp::stats
