#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace ocp::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram needs hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  if (x >= hi_) ++overflow_;
  else if (x < lo_) ++underflow_;
  const auto raw = static_cast<std::int64_t>((x - lo_) / width_);
  const auto clamped = std::clamp<std::int64_t>(
      raw, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

double Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 1.0) *
                        static_cast<double>(total_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto in_bin = static_cast<double>(counts_[i]);
    if (cumulative + in_bin >= target && in_bin > 0) {
      const double frac = (target - cumulative) / in_bin;
      return bin_lo(i) + width_ * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bin;
  }
  return hi_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible layouts");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  overflow_ += other.overflow_;
  underflow_ += other.underflow_;
}

std::string Histogram::sparkline() const {
  static constexpr const char* kLevels[] = {" ", "▁", "▂", "▃",
                                            "▄", "▅", "▆", "▇", "█"};
  std::uint64_t max = 0;
  for (std::uint64_t c : counts_) max = std::max(max, c);
  std::string out;
  for (std::uint64_t c : counts_) {
    const std::size_t level =
        max == 0 ? 0 : (c * 8 + max - 1) / max;  // ceil to 0..8
    out += kLevels[level];
  }
  return out;
}

}  // namespace ocp::stats
