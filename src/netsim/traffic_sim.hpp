// Open-loop traffic on the wormhole substrate: nodes inject worms to
// uniform-random destinations at a configurable offered load, routes come
// from any `routing::Router`, and the run reports accepted throughput and
// latency — the classic latency-vs-offered-load methodology for evaluating
// a fault model end to end.
#pragma once

#include <cstdint>

#include "netsim/wormhole.hpp"
#include "routing/route_cache.hpp"
#include "routing/router.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace ocp::netsim {

/// How worms are mapped to virtual channels.
enum class VcScheme : std::uint8_t {
  /// Dimension-order hops on VC 0, detour hops on the last VC. Simple but
  /// can deadlock under heavy load (cross-packet cycles on the escape VC).
  PhaseEscape = 0,
  /// Boppana-Chalasani message classes (WE/EW/NS/SN), one VC each;
  /// requires num_vcs >= 4.
  MessageClass = 1,
};

struct TrafficSimConfig {
  /// Offered load: probability per node per cycle of generating a worm
  /// (flits/node/cycle offered = injection_rate * packet_flits).
  double injection_rate = 0.002;
  std::int32_t packet_flits = 4;
  /// Cycles during which sources generate worms; the run then drains.
  std::int64_t warm_cycles = 512;
  std::uint8_t num_vcs = 2;
  VcScheme vc_scheme = VcScheme::PhaseEscape;
  std::int32_t vc_buffer_flits = 2;
  std::int64_t deadlock_threshold = 1024;
  std::uint64_t seed = 1;
  /// Wormhole execution kernel (see netsim/wormhole.hpp); both produce
  /// bit-identical results.
  SimKernel kernel = SimKernel::Event;
  /// Observability (src/obs): propagated to the wormhole kernel; the run
  /// itself is a "traffic_sim.run" span with offered/delivered/unroutable
  /// counters. Disabled (null sink) by default; never affects results.
  obs::TraceConfig trace;
};

struct TrafficSimResult {
  std::size_t offered_packets = 0;
  std::size_t delivered_packets = 0;
  /// Routes that traverse some virtual channel twice (detour retraced a
  /// corridor) cannot be shipped as one worm and are dropped.
  std::size_t unroutable_packets = 0;
  bool deadlocked = false;
  std::int64_t cycles = 0;
  /// Individual flit movements executed by the simulator.
  std::int64_t flit_moves = 0;
  /// Latency (inject -> tail absorbed) of delivered worms.
  stats::Summary latency;
  /// Latency distribution (cycles, 64 buckets up to 4096) for percentile
  /// queries — the saturation tail a mean hides.
  stats::Histogram latency_hist{0.0, 4096.0, 64};
  /// Delivered worms whose latency was at or above the histogram range;
  /// when nonzero, upper percentiles of `latency_hist` are lower bounds,
  /// not estimates (the samples are clamped into the last bucket).
  std::uint64_t latency_overflow = 0;
  /// Accepted throughput in flits per node per cycle over the whole run.
  double accepted_flits_per_node_cycle = 0.0;
};

/// Generates the load, routes every worm with `router` (worms whose route
/// fails are dropped from the offered count), runs the wormhole simulator
/// to drain and aggregates the outcome. Deterministic for a fixed config.
[[nodiscard]] TrafficSimResult run_traffic_sim(const mesh::Mesh2D& machine,
                                               const grid::CellSet& blocked,
                                               const routing::Router& router,
                                               const TrafficSimConfig& config);

/// Same, but takes routes from `routes` (a memoizing wrapper over the
/// intended router and the same machine) so repeated (src, dst) pairs —
/// steady-state injection, or many trials over one machine — cost a table
/// lookup instead of a router traversal. Results are identical to the
/// uncached overload.
[[nodiscard]] TrafficSimResult run_traffic_sim(const mesh::Mesh2D& machine,
                                               const grid::CellSet& blocked,
                                               const TrafficSimConfig& config,
                                               routing::RouteCache& routes);

}  // namespace ocp::netsim
