// Flit-level wormhole switching simulator for 2-D meshes/tori.
//
// The paper's fault model exists to serve wormhole-routed multicomputers:
// a blocked worm holds its chain of virtual channels while waiting for the
// next one, so cyclic channel dependencies become real deadlocks. This
// simulator reproduces that mechanism directly:
//
//  * every directed link of the machine carries `num_vcs` virtual channels,
//    each with a small flit buffer;
//  * a packet (worm) follows a precomputed source route (e.g. produced by
//    the routers in routing/) and occupies a contiguous chain of virtual
//    channels from tail to head; one flit advances per channel per cycle;
//  * a virtual channel is owned by exactly one worm from the arrival of its
//    head flit until its tail flit leaves;
//  * if no flit moves for `deadlock_threshold` consecutive cycles while
//    worms are in flight, the run reports deadlock and the stuck worms.
//
// Two execution kernels share this semantics (see DESIGN.md §8):
//
//  * `SimKernel::Sweep` — the reference: every worm is stepped on every
//    cycle, in submission order. Trivially correct, O(worms) per cycle even
//    when almost nothing can move.
//  * `SimKernel::Event` (default) — an event-driven worklist: only worms
//    that can change state are stepped; a worm blocked on a busy virtual
//    channel is parked on that channel's wake list and re-activated when
//    the owning worm releases it, and the clock jumps over quiescent gaps
//    between injections. Produces a bit-identical `SimResult`.
//
// Tests drive the classic scenarios: dimension-order traffic never
// deadlocks on one virtual channel; a turn cycle of four long worms
// deadlocks on one virtual channel and is broken by assigning a second one;
// `tests/netsim/kernel_equivalence_test.cpp` asserts kernel equivalence on
// seeded random batches.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"
#include "obs/trace.hpp"
#include "routing/router.hpp"
#include "stats/summary.hpp"

namespace ocp::netsim {

/// A source-routed worm to inject.
struct PacketSpec {
  /// Nodes visited, source first. Must walk machine links.
  std::vector<mesh::Coord> path;
  /// Virtual channel per hop (size = path.size() - 1), each < num_vcs.
  std::vector<std::uint8_t> vcs;
  /// Number of flits (head + body); >= 1.
  std::int32_t length_flits = 4;
  /// Cycle at which the source starts trying to inject.
  std::int64_t inject_cycle = 0;
};

/// Builds a PacketSpec from a computed route: dimension-order hops ride
/// virtual channel 0, detour hops ride `num_vcs - 1`. Simple, but NOT
/// deadlock-free under heavy load: detours of different packets can close a
/// dependency cycle on the shared escape channel (measured in
/// bench/netsim_saturation).
[[nodiscard]] PacketSpec make_packet(const routing::Route& route,
                                     std::uint8_t num_vcs,
                                     std::int32_t length_flits,
                                     std::int64_t inject_cycle);

/// Boppana-Chalasani style message-class assignment: the whole worm rides
/// one virtual channel chosen by its e-cube class — west-to-east messages
/// on VC 0, east-to-west on VC 1, column-only northbound on VC 2 and
/// southbound on VC 3 (requires num_vcs >= 4). Packets of different classes
/// can never wait on each other, which removes the cross-class cycles the
/// naive scheme allows. On a torus the class is still the *planar* address
/// comparison, so a wrap-crossing message is classed opposite to its travel
/// direction — which acts as a dateline on single-row/column wrap rings
/// (exercised in tests/netsim/kernel_equivalence_test.cpp).
[[nodiscard]] PacketSpec make_packet_class_based(const routing::Route& route,
                                                 std::int32_t length_flits,
                                                 std::int64_t inject_cycle);

/// Which execution kernel `WormholeSim::run` uses. Both produce bit-identical
/// `SimResult`s; Sweep is the slow, obviously-correct reference.
enum class SimKernel : std::uint8_t {
  Event = 0,
  Sweep = 1,
};

struct SimConfig {
  std::uint8_t num_vcs = 1;
  /// Flit buffer capacity per virtual channel.
  std::int32_t vc_buffer_flits = 2;
  /// Hard stop for the simulation.
  std::int64_t max_cycles = 1 << 20;
  /// Cycles without any flit movement that count as deadlock.
  std::int64_t deadlock_threshold = 256;
  SimKernel kernel = SimKernel::Event;
  /// Observability: when enabled, run() is a span and reports cycles /
  /// flit-move / worms-retired / clock-jump counters. Never affects results.
  obs::TraceConfig trace;
};

struct PacketOutcome {
  bool delivered = false;
  std::int64_t inject_cycle = 0;
  /// Cycle the tail flit was absorbed (valid when delivered).
  std::int64_t finish_cycle = 0;

  [[nodiscard]] std::int64_t latency() const noexcept {
    return finish_cycle - inject_cycle;
  }
};

struct SimResult {
  bool deadlocked = false;
  /// Cycles executed.
  std::int64_t cycles = 0;
  std::size_t delivered = 0;
  std::size_t stuck = 0;
  /// Individual flit movements executed (injections + channel hops +
  /// ejections) — the natural work unit for throughput reporting.
  std::int64_t flit_moves = 0;
  /// Latency (inject -> tail absorbed) of delivered worms.
  stats::Summary latency;
  /// Per-packet outcomes, in submission order.
  std::vector<PacketOutcome> packets;
};

/// Discrete-time wormhole simulator. Submit worms, then `run()` to
/// completion, deadlock, or the cycle cap.
class WormholeSim {
 public:
  WormholeSim(const mesh::Mesh2D& machine, const SimConfig& config);

  /// Validates and queues a worm; throws std::invalid_argument on a
  /// malformed path or out-of-range virtual channel.
  void submit(PacketSpec spec);

  [[nodiscard]] std::size_t packet_count() const noexcept {
    return worms_.size();
  }

  /// Runs to quiescence (all worms absorbed), deadlock, or max_cycles.
  [[nodiscard]] SimResult run();

 private:
  /// Per-worm scalar state. Hop data (channel ids and per-channel flit
  /// occupancy) lives in the shared `channels_` / `occupancy_` arenas at
  /// [first_hop, first_hop + hops) — no per-worm heap allocations.
  struct Worm {
    std::uint32_t first_hop = 0;
    std::uint32_t hops = 0;
    /// Worm extent: hops [tail_hop, head_hop) are currently owned
    /// (indices relative to first_hop).
    std::uint32_t tail_hop = 0;
    std::uint32_t head_hop = 0;
    /// Flits not yet injected at the source.
    std::int32_t flits_at_source = 0;
    /// Flits already absorbed at the destination.
    std::int32_t flits_absorbed = 0;
    std::int32_t length_flits = 0;
    std::int64_t inject_cycle = 0;
    bool done = false;
  };

  [[nodiscard]] std::size_t channel_id(mesh::Coord from, mesh::Dir dir,
                                       std::uint8_t vc) const noexcept;
  /// Advances one worm by at most one flit per channel; returns true if
  /// anything moved. `on_release(channel)` fires for every virtual channel
  /// the worm's tail releases this cycle (the event kernel's wake hook; the
  /// sweep kernel passes a no-op).
  template <typename OnRelease>
  bool step_worm(std::size_t wi, OnRelease&& on_release);

  [[nodiscard]] SimResult run_sweep();
  [[nodiscard]] SimResult run_event();

  mesh::Mesh2D mesh_;
  SimConfig config_;
  std::vector<Worm> worms_;
  /// Hop arenas shared by all worms (SoA; indexed by Worm::first_hop).
  std::vector<std::uint32_t> channels_;
  std::vector<std::int32_t> occupancy_;
  /// Owner worm index per channel, -1 when free.
  std::vector<std::int32_t> owner_;
  /// Duplicate-channel detection scratch for submit(): channel -> epoch of
  /// the last submit that touched it (avoids a per-submit hash set).
  std::vector<std::uint32_t> submit_mark_;
  std::uint32_t submit_epoch_ = 0;
  /// Flit movements executed by step_worm during the current run().
  std::int64_t flit_moves_ = 0;
  /// Idle cycles the event kernel's clock jumps skipped over in the current
  /// run() (always 0 under the sweep kernel, which executes them).
  std::int64_t cycles_jumped_ = 0;
};

}  // namespace ocp::netsim
