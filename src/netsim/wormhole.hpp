// Flit-level wormhole switching simulator for 2-D meshes/tori.
//
// The paper's fault model exists to serve wormhole-routed multicomputers:
// a blocked worm holds its chain of virtual channels while waiting for the
// next one, so cyclic channel dependencies become real deadlocks. This
// simulator reproduces that mechanism directly:
//
//  * every directed link of the machine carries `num_vcs` virtual channels,
//    each with a small flit buffer;
//  * a packet (worm) follows a precomputed source route (e.g. produced by
//    the routers in routing/) and occupies a contiguous chain of virtual
//    channels from tail to head; one flit advances per channel per cycle;
//  * a virtual channel is owned by exactly one worm from the arrival of its
//    head flit until its tail flit leaves;
//  * if no flit moves for `deadlock_threshold` consecutive cycles while
//    worms are in flight, the run reports deadlock and the stuck worms.
//
// Tests drive the classic scenarios: dimension-order traffic never
// deadlocks on one virtual channel; a turn cycle of four long worms
// deadlocks on one virtual channel and is broken by assigning a second one.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"
#include "routing/router.hpp"
#include "stats/summary.hpp"

namespace ocp::netsim {

/// A source-routed worm to inject.
struct PacketSpec {
  /// Nodes visited, source first. Must walk machine links.
  std::vector<mesh::Coord> path;
  /// Virtual channel per hop (size = path.size() - 1), each < num_vcs.
  std::vector<std::uint8_t> vcs;
  /// Number of flits (head + body); >= 1.
  std::int32_t length_flits = 4;
  /// Cycle at which the source starts trying to inject.
  std::int64_t inject_cycle = 0;
};

/// Builds a PacketSpec from a computed route: dimension-order hops ride
/// virtual channel 0, detour hops ride `num_vcs - 1`. Simple, but NOT
/// deadlock-free under heavy load: detours of different packets can close a
/// dependency cycle on the shared escape channel (measured in
/// bench/netsim_saturation).
[[nodiscard]] PacketSpec make_packet(const routing::Route& route,
                                     std::uint8_t num_vcs,
                                     std::int32_t length_flits,
                                     std::int64_t inject_cycle);

/// Boppana-Chalasani style message-class assignment: the whole worm rides
/// one virtual channel chosen by its e-cube class — west-to-east messages
/// on VC 0, east-to-west on VC 1, column-only northbound on VC 2 and
/// southbound on VC 3 (requires num_vcs >= 4). Packets of different classes
/// can never wait on each other, which removes the cross-class cycles the
/// naive scheme allows.
[[nodiscard]] PacketSpec make_packet_class_based(const routing::Route& route,
                                                 std::int32_t length_flits,
                                                 std::int64_t inject_cycle);

struct SimConfig {
  std::uint8_t num_vcs = 1;
  /// Flit buffer capacity per virtual channel.
  std::int32_t vc_buffer_flits = 2;
  /// Hard stop for the simulation.
  std::int64_t max_cycles = 1 << 20;
  /// Cycles without any flit movement that count as deadlock.
  std::int64_t deadlock_threshold = 256;
};

struct PacketOutcome {
  bool delivered = false;
  std::int64_t inject_cycle = 0;
  /// Cycle the tail flit was absorbed (valid when delivered).
  std::int64_t finish_cycle = 0;

  [[nodiscard]] std::int64_t latency() const noexcept {
    return finish_cycle - inject_cycle;
  }
};

struct SimResult {
  bool deadlocked = false;
  /// Cycles executed.
  std::int64_t cycles = 0;
  std::size_t delivered = 0;
  std::size_t stuck = 0;
  /// Latency (inject -> tail absorbed) of delivered worms.
  stats::Summary latency;
  /// Per-packet outcomes, in submission order.
  std::vector<PacketOutcome> packets;
};

/// Discrete-time wormhole simulator. Submit worms, then `run()` to
/// completion, deadlock, or the cycle cap.
class WormholeSim {
 public:
  WormholeSim(const mesh::Mesh2D& machine, const SimConfig& config);

  /// Validates and queues a worm; throws std::invalid_argument on a
  /// malformed path or out-of-range virtual channel.
  void submit(PacketSpec spec);

  [[nodiscard]] std::size_t packet_count() const noexcept {
    return worms_.size();
  }

  /// Runs to quiescence (all worms absorbed), deadlock, or max_cycles.
  [[nodiscard]] SimResult run();

 private:
  struct Worm {
    PacketSpec spec;
    /// Channel ids of the source route, one per hop.
    std::vector<std::size_t> channels;
    /// Worm extent: hops [tail_hop, head_hop) are currently owned.
    std::size_t tail_hop = 0;
    std::size_t head_hop = 0;
    /// Flits resident in each owned hop channel (parallel to hop index).
    std::vector<std::int32_t> occupancy;
    /// Flits not yet injected at the source.
    std::int32_t flits_at_source = 0;
    /// Flits already absorbed at the destination.
    std::int32_t flits_absorbed = 0;
    bool done = false;

    [[nodiscard]] bool in_flight(std::int64_t now) const noexcept {
      return !done && now >= spec.inject_cycle;
    }
  };

  [[nodiscard]] std::size_t channel_id(mesh::Coord from, mesh::Dir dir,
                                       std::uint8_t vc) const noexcept;
  /// Advances one worm by at most one flit per channel; returns true if
  /// anything moved.
  bool step_worm(Worm& worm, std::int64_t now);

  mesh::Mesh2D mesh_;
  SimConfig config_;
  std::vector<Worm> worms_;
  /// Owner worm index per channel, -1 when free.
  std::vector<std::int32_t> owner_;
};

}  // namespace ocp::netsim
