#include "netsim/traffic_sim.hpp"

#include <stdexcept>
#include <vector>

namespace ocp::netsim {

TrafficSimResult run_traffic_sim(const mesh::Mesh2D& machine,
                                 const grid::CellSet& blocked,
                                 const routing::Router& router,
                                 const TrafficSimConfig& config) {
  if (config.vc_scheme == VcScheme::MessageClass && config.num_vcs < 4) {
    throw std::invalid_argument(
        "MessageClass vc scheme needs at least 4 virtual channels");
  }
  stats::Rng rng(config.seed);
  WormholeSim sim(machine, {.num_vcs = config.num_vcs,
                            .vc_buffer_flits = config.vc_buffer_flits,
                            .deadlock_threshold = config.deadlock_threshold});

  // Usable sources/destinations.
  std::vector<mesh::Coord> nodes;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(machine.node_count()); ++i) {
    const mesh::Coord c = machine.coord(i);
    if (!blocked.contains(c)) nodes.push_back(c);
  }

  TrafficSimResult result;
  if (nodes.size() < 2) return result;

  for (std::int64_t cycle = 0; cycle < config.warm_cycles; ++cycle) {
    for (mesh::Coord src : nodes) {
      if (!rng.bernoulli(config.injection_rate)) continue;
      auto dst = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
      if (dst == src) continue;
      const routing::Route route = router.route(src, dst);
      if (!route.delivered()) continue;  // router gave up; not offered
      try {
        if (config.vc_scheme == VcScheme::MessageClass) {
          sim.submit(
              make_packet_class_based(route, config.packet_flits, cycle));
        } else {
          sim.submit(make_packet(route, config.num_vcs, config.packet_flits,
                                 cycle));
        }
      } catch (const std::invalid_argument&) {
        // A route that traverses the same virtual channel twice (a detour
        // retracing its corridor) cannot be shipped as one worm; such
        // packets are dropped from the offered load and counted.
        ++result.unroutable_packets;
        continue;
      }
      ++result.offered_packets;
    }
  }

  const SimResult run = sim.run();
  result.delivered_packets = run.delivered;
  result.deadlocked = run.deadlocked;
  result.cycles = run.cycles;
  result.latency = run.latency;
  for (const PacketOutcome& p : run.packets) {
    if (p.delivered) {
      result.latency_hist.add(static_cast<double>(p.latency()));
    }
  }
  if (run.cycles > 0) {
    result.accepted_flits_per_node_cycle =
        static_cast<double>(run.delivered) * config.packet_flits /
        (static_cast<double>(run.cycles) *
         static_cast<double>(machine.node_count()));
  }
  return result;
}

}  // namespace ocp::netsim
