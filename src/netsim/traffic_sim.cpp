#include "netsim/traffic_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ocp::netsim {

namespace {

template <typename GetRoute>
TrafficSimResult run_traffic_sim_impl(const mesh::Mesh2D& machine,
                                      const grid::CellSet& blocked,
                                      const TrafficSimConfig& config,
                                      GetRoute&& get_route) {
  if (config.vc_scheme == VcScheme::MessageClass && config.num_vcs < 4) {
    throw std::invalid_argument(
        "MessageClass vc scheme needs at least 4 virtual channels");
  }
  const obs::Span run_span(config.trace, "traffic_sim.run");
  stats::Rng rng(config.seed);
  WormholeSim sim(machine, {.num_vcs = config.num_vcs,
                            .vc_buffer_flits = config.vc_buffer_flits,
                            .deadlock_threshold = config.deadlock_threshold,
                            .kernel = config.kernel,
                            .trace = config.trace});

  // Usable sources/destinations.
  std::vector<mesh::Coord> nodes;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(machine.node_count()); ++i) {
    const mesh::Coord c = machine.coord(i);
    if (!blocked.contains(c)) nodes.push_back(c);
  }

  TrafficSimResult result;
  if (nodes.size() < 2) return result;

  // Per-node injection times drawn as geometric inter-arrival gaps — the
  // same distribution as a Bernoulli trial per (cycle, node), at a cost
  // proportional to the number of injections instead of cycles x nodes.
  // Events are then ordered by (cycle, node) so worm submission order —
  // and with it simulator arbitration priority — matches a per-cycle scan
  // of the machine.
  std::vector<std::pair<std::int64_t, std::uint32_t>> events;
  if (config.injection_rate > 0.0) {
    // log(1 - p): -inf at p == 1, making every gap zero (inject each cycle).
    const double log_miss = std::log1p(-std::min(config.injection_rate, 1.0));
    for (std::uint32_t ni = 0; ni < nodes.size(); ++ni) {
      std::int64_t cycle = 0;
      for (;;) {
        // u in (0, 1]; floor(log(u)/log(1-p)) failures before the success.
        const double u = 1.0 - rng.uniform();
        const double gap = std::log(u) / log_miss;
        // Compare in doubles first: a microscopic rate can make the gap
        // overflow int64.
        if (gap >= static_cast<double>(config.warm_cycles)) break;
        cycle += static_cast<std::int64_t>(gap);
        if (cycle >= config.warm_cycles) break;
        events.emplace_back(cycle, ni);
        ++cycle;
      }
    }
    std::sort(events.begin(), events.end());
  }

  for (const auto& [cycle, ni] : events) {
    const mesh::Coord src = nodes[ni];
    const auto dst = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    if (dst == src) continue;
    const routing::Route& route = get_route(src, dst);
    if (!route.delivered()) continue;  // router gave up; not offered
    try {
      if (config.vc_scheme == VcScheme::MessageClass) {
        sim.submit(
            make_packet_class_based(route, config.packet_flits, cycle));
      } else {
        sim.submit(make_packet(route, config.num_vcs, config.packet_flits,
                               cycle));
      }
    } catch (const std::invalid_argument&) {
      // A route that traverses the same virtual channel twice (a detour
      // retracing its corridor) cannot be shipped as one worm; such
      // packets are dropped from the offered load and counted.
      ++result.unroutable_packets;
      continue;
    }
    ++result.offered_packets;
  }

  const SimResult run = sim.run();
  result.delivered_packets = run.delivered;
  result.deadlocked = run.deadlocked;
  result.cycles = run.cycles;
  result.flit_moves = run.flit_moves;
  result.latency = run.latency;
  for (const PacketOutcome& p : run.packets) {
    if (p.delivered) {
      result.latency_hist.add(static_cast<double>(p.latency()));
    }
  }
  result.latency_overflow = result.latency_hist.overflow();
  if (config.trace.enabled()) {
    config.trace.counter("traffic_sim.offered",
                         static_cast<std::int64_t>(result.offered_packets));
    config.trace.counter("traffic_sim.delivered",
                         static_cast<std::int64_t>(result.delivered_packets));
    config.trace.counter(
        "traffic_sim.unroutable",
        static_cast<std::int64_t>(result.unroutable_packets));
  }
  if (run.cycles > 0) {
    result.accepted_flits_per_node_cycle =
        static_cast<double>(run.delivered) * config.packet_flits /
        (static_cast<double>(run.cycles) *
         static_cast<double>(machine.node_count()));
  }
  return result;
}

}  // namespace

TrafficSimResult run_traffic_sim(const mesh::Mesh2D& machine,
                                 const grid::CellSet& blocked,
                                 const routing::Router& router,
                                 const TrafficSimConfig& config) {
  return run_traffic_sim_impl(
      machine, blocked, config,
      [&router, route = routing::Route{}](
          mesh::Coord src, mesh::Coord dst) mutable -> const routing::Route& {
        route = router.route(src, dst);
        return route;
      });
}

TrafficSimResult run_traffic_sim(const mesh::Mesh2D& machine,
                                 const grid::CellSet& blocked,
                                 const TrafficSimConfig& config,
                                 routing::RouteCache& routes) {
  return run_traffic_sim_impl(
      machine, blocked, config,
      [&routes](mesh::Coord src, mesh::Coord dst) -> const routing::Route& {
        return routes.lookup(src, dst);
      });
}

}  // namespace ocp::netsim
