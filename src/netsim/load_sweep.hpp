// Deterministic parallel latency-vs-offered-load sweeps on the wormhole
// substrate — the interconnect-evaluation methodology (accepted throughput
// and latency percentiles against an injection-rate grid, then bisection
// for the saturation point) run at mesh sizes and load grids comparable to
// real network studies.
//
// Parallelism follows the analysis/trial_pool contract: every (rate, trial)
// cell gets its own RNG stream forked up-front in grid order, workers write
// only their own preallocated slot, and the per-rate reduction runs
// serially in trial order afterwards — so sweep output is bit-identical for
// any OpenMP thread count (including a no-OpenMP build). All trials of a
// sweep share one lazily-filled `routing::RouteCache` (thread-safe; routing
// is deterministic, so sharing cannot perturb results).
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/traffic_sim.hpp"

namespace ocp::netsim {

struct LoadSweepConfig {
  /// Injection-rate grid (probability per node per cycle), in sweep order.
  std::vector<double> injection_rates;
  /// Independent seeded trials per rate.
  std::size_t trials = 4;
  /// Per-trial simulation parameters; `injection_rate` and `seed` are
  /// overridden per grid cell.
  TrafficSimConfig base;
  /// Master seed; per-trial seeds are forked from it in grid order.
  std::uint64_t seed = 1;
};

/// Aggregate of all trials at one injection rate (reduced in trial order).
struct LoadPoint {
  double injection_rate = 0.0;
  std::size_t trials = 0;
  std::size_t deadlocked_trials = 0;
  std::size_t offered_packets = 0;
  std::size_t delivered_packets = 0;
  std::size_t unroutable_packets = 0;
  std::int64_t flit_moves = 0;
  std::uint64_t latency_overflow = 0;
  /// Per-worm latency pooled across trials.
  stats::Summary latency;
  stats::Histogram latency_hist{0.0, 4096.0, 64};
  /// Per-trial accepted throughput (flits/node/cycle): mean ± ci across
  /// trials.
  stats::Summary accepted;

  /// Offered load in flits per node per cycle.
  [[nodiscard]] double offered_flits_per_node_cycle(
      std::int32_t packet_flits) const noexcept {
    return injection_rate * packet_flits;
  }
};

struct LoadSweepResult {
  std::vector<LoadPoint> points;  // one per injection rate, in grid order
};

/// Runs the full (rate x trial) grid, OpenMP-parallel over independent
/// trials, and reduces per rate. Deterministic for a fixed config,
/// independent of thread count.
[[nodiscard]] LoadSweepResult run_load_sweep(const mesh::Mesh2D& machine,
                                             const grid::CellSet& blocked,
                                             const routing::Router& router,
                                             const LoadSweepConfig& config);

struct SaturationConfig {
  /// Bracket of injection rates to search; `lo` is assumed unsaturated and
  /// `hi` saturated (both are probed first and the bracket collapses to the
  /// violated endpoint if the assumption fails).
  double lo = 0.0005;
  double hi = 0.05;
  /// A rate counts as saturated when any trial deadlocks or the pooled mean
  /// latency exceeds this many cycles.
  double latency_limit = 512.0;
  /// Bisection stops after this many probes or when the bracket is tighter
  /// than `tolerance`.
  int max_probes = 10;
  double tolerance = 1e-4;
  std::size_t trials = 4;
  TrafficSimConfig base;
  std::uint64_t seed = 1;
};

struct SaturationResult {
  /// Midpoint of the final bracket: the estimated saturation injection rate.
  double saturation_rate = 0.0;
  /// Final bracket: highest rate observed unsaturated / lowest saturated.
  double lo = 0.0;
  double hi = 0.0;
  /// Every probed load point, in probe order (lo, hi, then bisection).
  std::vector<LoadPoint> probes;
};

/// Bisects the injection rate for the saturation onset under the given
/// criterion. Each probe runs `trials` seeded trials (parallel, determin-
/// istic as above); the probe sequence is deterministic, so the whole
/// search is reproducible for a fixed config and independent of thread
/// count.
[[nodiscard]] SaturationResult find_saturation_rate(
    const mesh::Mesh2D& machine, const grid::CellSet& blocked,
    const routing::Router& router, const SaturationConfig& config);

}  // namespace ocp::netsim
