#include "netsim/wormhole.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace ocp::netsim {

namespace {

/// Direction of the hop a -> b on machine `m` (torus wrap resolved).
/// Decides from the coordinate delta — submit() calls this once per hop of
/// every packet, so probing all four neighbors would dominate batch setup.
mesh::Dir hop_direction(const mesh::Mesh2D& m, mesh::Coord a, mesh::Coord b) {
  if (m.contains(a) && m.contains(b)) {
    const std::int32_t dx = b.x - a.x;
    const std::int32_t dy = b.y - a.y;
    const bool torus = m.topology() == mesh::Topology::Torus;
    if (dy == 0 && dx != 0) {
      if (dx == 1) return mesh::Dir::East;
      if (dx == -1) return mesh::Dir::West;
      if (torus && dx == -(m.width() - 1)) return mesh::Dir::East;
      if (torus && dx == m.width() - 1) return mesh::Dir::West;
    } else if (dx == 0 && dy != 0) {
      if (dy == 1) return mesh::Dir::North;
      if (dy == -1) return mesh::Dir::South;
      if (torus && dy == -(m.height() - 1)) return mesh::Dir::North;
      if (torus && dy == m.height() - 1) return mesh::Dir::South;
    }
  }
  throw std::invalid_argument("PacketSpec path does not follow machine links");
}

}  // namespace

PacketSpec make_packet(const routing::Route& route, std::uint8_t num_vcs,
                       std::int32_t length_flits, std::int64_t inject_cycle) {
  PacketSpec spec;
  spec.path = route.path;
  spec.vcs.reserve(route.phase.size());
  for (std::uint8_t phase : route.phase) {
    spec.vcs.push_back(phase == 0 ? std::uint8_t{0}
                                  : static_cast<std::uint8_t>(num_vcs - 1));
  }
  spec.length_flits = length_flits;
  spec.inject_cycle = inject_cycle;
  return spec;
}

PacketSpec make_packet_class_based(const routing::Route& route,
                                   std::int32_t length_flits,
                                   std::int64_t inject_cycle) {
  PacketSpec spec;
  spec.path = route.path;
  std::uint8_t vc = 0;
  if (!route.path.empty()) {
    const mesh::Coord src = route.path.front();
    const mesh::Coord dst = route.path.back();
    if (dst.x > src.x) vc = 0;       // WE class
    else if (dst.x < src.x) vc = 1;  // EW class
    else if (dst.y > src.y) vc = 2;  // column-only, northbound
    else vc = 3;                     // column-only, southbound
  }
  spec.vcs.assign(route.phase.size(), vc);
  spec.length_flits = length_flits;
  spec.inject_cycle = inject_cycle;
  return spec;
}

WormholeSim::WormholeSim(const mesh::Mesh2D& machine, const SimConfig& config)
    : mesh_(machine), config_(config) {
  if (config.num_vcs == 0) {
    throw std::invalid_argument("num_vcs must be positive");
  }
  if (config.vc_buffer_flits <= 0) {
    throw std::invalid_argument("vc_buffer_flits must be positive");
  }
  owner_.assign(static_cast<std::size_t>(mesh_.node_count()) *
                    mesh::kNumDirs * config.num_vcs,
                -1);
  submit_mark_.assign(owner_.size(), 0);
}

std::size_t WormholeSim::channel_id(mesh::Coord from, mesh::Dir dir,
                                    std::uint8_t vc) const noexcept {
  return (mesh_.index(from) * mesh::kNumDirs +
          static_cast<std::size_t>(dir)) *
             config_.num_vcs +
         vc;
}

void WormholeSim::submit(PacketSpec spec) {
  if (spec.path.empty()) {
    throw std::invalid_argument("PacketSpec path must contain the source");
  }
  if (spec.length_flits < 1) {
    throw std::invalid_argument("PacketSpec needs at least one flit");
  }
  if (spec.vcs.size() + 1 != spec.path.size()) {
    throw std::invalid_argument("PacketSpec needs one vc per hop");
  }
  if (++submit_epoch_ == 0) {
    // Epoch counter wrapped (after ~4e9 submits): clear the marks so stale
    // entries cannot alias the new epoch.
    std::fill(submit_mark_.begin(), submit_mark_.end(), 0u);
    submit_epoch_ = 1;
  }
  Worm worm;
  worm.first_hop = static_cast<std::uint32_t>(channels_.size());
  worm.hops = static_cast<std::uint32_t>(spec.vcs.size());
  for (std::size_t i = 0; i + 1 < spec.path.size(); ++i) {
    if (spec.vcs[i] >= config_.num_vcs) {
      channels_.resize(worm.first_hop);
      throw std::invalid_argument("PacketSpec vc out of range");
    }
    const mesh::Dir dir = hop_direction(mesh_, spec.path[i], spec.path[i + 1]);
    const std::size_t ch = channel_id(spec.path[i], dir, spec.vcs[i]);
    if (submit_mark_[ch] == submit_epoch_) {
      // A worm that needs the same virtual channel twice can never make
      // progress past itself; reject instead of deadlocking silently.
      channels_.resize(worm.first_hop);
      throw std::invalid_argument(
          "PacketSpec revisits a virtual channel; route one packet per "
          "channel visit");
    }
    submit_mark_[ch] = submit_epoch_;
    channels_.push_back(static_cast<std::uint32_t>(ch));
  }
  occupancy_.resize(channels_.size(), 0);
  worm.flits_at_source = spec.length_flits;
  worm.length_flits = spec.length_flits;
  worm.inject_cycle = spec.inject_cycle;
  worms_.push_back(worm);
}

template <typename OnRelease>
bool WormholeSim::step_worm(std::size_t wi, OnRelease&& on_release) {
  Worm& worm = worms_[wi];
  const std::size_t hops = worm.hops;
  const auto self = static_cast<std::int32_t>(wi);
  const std::uint32_t* ch = channels_.data() + worm.first_hop;
  std::int32_t* occ = occupancy_.data() + worm.first_hop;
  bool moved = false;

  // Zero-hop worm: source and destination coincide; absorb directly.
  if (hops == 0) {
    ++worm.flits_absorbed;
    --worm.flits_at_source;
    ++flit_moves_;
    return true;
  }

  // 1. Destination ejection: once the head owns the final hop channel, one
  //    flit per cycle leaves the network.
  if (worm.head_hop == hops && occ[hops - 1] > 0) {
    --occ[hops - 1];
    ++worm.flits_absorbed;
    ++flit_moves_;
    moved = true;
  }

  // 2. Forward flits front-to-back so a hole created ahead is filled this
  //    cycle by the flit behind it (one hop per flit per cycle).
  //    Moving into the first unowned channel acquires it (head extension).
  for (std::size_t i = std::min<std::size_t>(worm.head_hop, hops - 1);
       i-- > worm.tail_hop;) {
    if (occ[i] == 0) continue;
    const std::size_t next = i + 1;
    if (next == worm.head_hop) {
      // Head flit requests the next virtual channel.
      if (owner_[ch[next]] == -1) {
        owner_[ch[next]] = self;
        ++worm.head_hop;
        --occ[i];
        ++occ[next];
        ++flit_moves_;
        moved = true;
      }
    } else if (occ[next] < config_.vc_buffer_flits) {
      --occ[i];
      ++occ[next];
      ++flit_moves_;
      moved = true;
    }
  }

  // 3. Source injection into the first hop channel.
  if (worm.flits_at_source > 0) {
    if (worm.head_hop == 0) {
      if (owner_[ch[0]] == -1) {
        owner_[ch[0]] = self;
        worm.head_hop = 1;
        ++occ[0];
        --worm.flits_at_source;
        ++flit_moves_;
        moved = true;
      }
    } else if (worm.tail_hop == 0 && occ[0] < config_.vc_buffer_flits) {
      ++occ[0];
      --worm.flits_at_source;
      ++flit_moves_;
      moved = true;
    }
  }

  // 4. Tail release: drained channels with nothing behind them free their
  //    virtual channel for other worms.
  while (worm.tail_hop < worm.head_hop && occ[worm.tail_hop] == 0 &&
         !(worm.tail_hop == 0 && worm.flits_at_source > 0)) {
    owner_[ch[worm.tail_hop]] = -1;
    on_release(static_cast<std::size_t>(ch[worm.tail_hop]));
    ++worm.tail_hop;
  }

  return moved;
}

SimResult WormholeSim::run() {
  const obs::Span run_span(config_.trace, "wormhole.run");
  flit_moves_ = 0;
  cycles_jumped_ = 0;
  SimResult result = config_.kernel == SimKernel::Sweep ? run_sweep()
                                                        : run_event();
  result.flit_moves = flit_moves_;
  if (config_.trace.enabled()) {
    config_.trace.counter("wormhole.cycles", result.cycles);
    config_.trace.counter("wormhole.flit_moves", flit_moves_);
    config_.trace.counter("wormhole.worms_retired",
                          static_cast<std::int64_t>(result.delivered));
    config_.trace.counter("wormhole.cycles_jumped", cycles_jumped_);
    if (result.deadlocked) config_.trace.counter("wormhole.deadlocks", 1);
  }
  return result;
}

// Reference kernel: every worm is stepped on every cycle, in submission
// order. The event kernel below is asserted bit-identical against this in
// tests/netsim/kernel_equivalence_test.cpp.
SimResult WormholeSim::run_sweep() {
  SimResult result;
  result.packets.resize(worms_.size());
  for (std::size_t i = 0; i < worms_.size(); ++i) {
    result.packets[i].inject_cycle = worms_[i].inject_cycle;
  }

  std::size_t remaining = worms_.size();
  std::int64_t idle_cycles = 0;
  std::int64_t now = 0;
  const auto no_release = [](std::size_t) {};
  for (; now < config_.max_cycles && remaining > 0; ++now) {
    bool any_motion = false;
    bool waiting_on_schedule = false;
    for (std::size_t i = 0; i < worms_.size(); ++i) {
      Worm& worm = worms_[i];
      if (worm.done) continue;
      if (now < worm.inject_cycle) {
        waiting_on_schedule = true;
        continue;
      }
      if (step_worm(i, no_release)) any_motion = true;
      if (worm.flits_absorbed == worm.length_flits) {
        worm.done = true;
        --remaining;
        result.packets[i].delivered = true;
        result.packets[i].finish_cycle = now;
        ++result.delivered;
        result.latency.add(static_cast<double>(result.packets[i].latency()));
      }
    }
    if (any_motion) {
      idle_cycles = 0;
    } else if (!waiting_on_schedule) {
      if (++idle_cycles >= config_.deadlock_threshold) {
        result.deadlocked = true;
        ++now;
        break;
      }
    }
  }
  result.cycles = now;
  result.stuck = remaining;
  return result;
}

// Event-driven kernel. Same cycle-by-cycle semantics as the sweep, but only
// worms that can change state are stepped:
//
//  * A worm whose step makes no move is *parked* on the one virtual channel
//    whose release can unblock it — `channels[head_hop]` (a stalled worm is
//    always head-blocked: every other resource it needs is its own). Parked
//    steps are side-effect-free in the sweep, so skipping them is exact.
//  * When a worm releases a channel, all parked waiters wake: waiters with a
//    larger worm index rejoin the *current* cycle (the sweep steps them
//    after the releaser), smaller indices rejoin the next cycle (their no-op
//    step for this cycle already happened).
//  * Worms are stepped in ascending index order within a cycle (a bitmap
//    worklist scanned low to high; in-cycle wakes only ever set bits above
//    the cursor, which the scan picks up), so channel arbitration,
//    completion order and the latency accumulator see exactly the sweep's
//    sequence.
//  * When nothing is runnable the clock jumps: to the next injection while
//    scheduled worms remain (idle accounting is frozen while any worm still
//    waits on its inject cycle, as in the sweep), or straight to the
//    deadlock verdict / cycle cap when only parked worms remain.
SimResult WormholeSim::run_event() {
  SimResult result;
  const std::size_t n = worms_.size();
  result.packets.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.packets[i].inject_cycle = worms_[i].inject_cycle;
  }
  if (n == 0) return result;

  // Per-channel wake lists, threaded through `wait_next` (a parked worm
  // waits on exactly one channel, so one link per worm suffices).
  std::vector<std::int32_t> wait_head(owner_.size(), -1);
  std::vector<std::int32_t> wait_next(n, -1);

  // Injection schedule: worm indices ordered by (inject_cycle, index).
  std::vector<std::uint32_t> by_inject(n);
  std::iota(by_inject.begin(), by_inject.end(), 0u);
  std::stable_sort(by_inject.begin(), by_inject.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return worms_[a].inject_cycle < worms_[b].inject_cycle;
                   });
  std::size_t next_inject = 0;

  // Current- and next-cycle worklists as bitmaps over worm indices. Every
  // worm is in exactly one place (a worklist, a wake list, scheduled, or
  // done), so sets never hit an already-set bit and the population counters
  // stay exact. A wake during the scan only ever targets an index above the
  // cursor, which the low-to-high scan picks up in the same pass.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> active(words, 0);
  std::vector<std::uint64_t> upcoming(words, 0);
  std::size_t active_count = 0;
  std::size_t upcoming_count = 0;
  const auto set_bit = [](std::vector<std::uint64_t>& bits, std::uint32_t i) {
    bits[i >> 6] |= std::uint64_t{1} << (i & 63);
  };

  std::size_t remaining = n;
  std::int64_t idle_cycles = 0;
  std::int64_t now = 0;
  for (;;) {
    if (active_count == 0) {
      if (next_inject < n) {
        // Quiescent gap before the next injection: every skipped cycle has
        // a worm waiting on its schedule, so idle accounting is frozen.
        const std::int64_t target =
            worms_[by_inject[next_inject]].inject_cycle;
        if (target > now) {
          cycles_jumped_ += target - now;
          now = target;
        }
      } else {
        // Only parked worms remain; nothing can ever move again. The idle
        // counter grows by one per cycle until the deadlock verdict or the
        // cycle cap, whichever the sweep would reach first.
        const std::int64_t trigger =
            now + config_.deadlock_threshold - idle_cycles - 1;
        if (trigger < config_.max_cycles) {
          result.deadlocked = true;
          result.cycles = trigger + 1;
        } else {
          result.cycles = config_.max_cycles;
        }
        // Every cycle between `now` and the verdict was skipped, not run.
        cycles_jumped_ += std::max<std::int64_t>(0, result.cycles - now);
        result.stuck = remaining;
        return result;
      }
    }
    if (now >= config_.max_cycles) {
      result.cycles = config_.max_cycles;
      result.stuck = remaining;
      return result;
    }

    while (next_inject < n &&
           worms_[by_inject[next_inject]].inject_cycle <= now) {
      set_bit(active, by_inject[next_inject]);
      ++active_count;
      ++next_inject;
    }
    const bool waiting_on_schedule = next_inject < n;

    bool any_motion = false;
    for (std::size_t w = 0; w < words; ++w) {
      while (active[w] != 0) {
        const auto wi = static_cast<std::uint32_t>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(active[w])));
        active[w] &= active[w] - 1;
        --active_count;
        Worm& worm = worms_[wi];
        const bool moved = step_worm(wi, [&](std::size_t ch) {
          for (std::int32_t j = wait_head[ch]; j != -1;) {
            const auto waiter = static_cast<std::uint32_t>(j);
            const std::int32_t nxt = wait_next[waiter];
            wait_next[waiter] = -1;
            if (waiter > wi) {
              set_bit(active, waiter);
              ++active_count;
            } else {
              set_bit(upcoming, waiter);
              ++upcoming_count;
            }
            j = nxt;
          }
          wait_head[ch] = -1;
        });
        if (moved) {
          any_motion = true;
          if (worm.flits_absorbed == worm.length_flits) {
            worm.done = true;
            --remaining;
            result.packets[wi].delivered = true;
            result.packets[wi].finish_cycle = now;
            ++result.delivered;
            result.latency.add(
                static_cast<double>(result.packets[wi].latency()));
          } else {
            set_bit(upcoming, wi);
            ++upcoming_count;
          }
        } else {
          // Head-blocked: park until channels[head_hop] is released.
          const std::size_t ch = channels_[worm.first_hop + worm.head_hop];
          wait_next[wi] = wait_head[ch];
          wait_head[ch] = static_cast<std::int32_t>(wi);
        }
      }
    }

    if (any_motion) {
      idle_cycles = 0;
    } else if (!waiting_on_schedule) {
      if (++idle_cycles >= config_.deadlock_threshold) {
        result.deadlocked = true;
        result.cycles = now + 1;
        result.stuck = remaining;
        return result;
      }
    }
    if (remaining == 0) {
      result.cycles = now + 1;
      return result;
    }
    ++now;
    active.swap(upcoming);  // the current bitmap is all zeros after the scan
    active_count = upcoming_count;
    upcoming_count = 0;
  }
}

}  // namespace ocp::netsim
