#include "netsim/wormhole.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ocp::netsim {

namespace {

/// Direction of the hop a -> b on machine `m` (torus wrap resolved).
mesh::Dir hop_direction(const mesh::Mesh2D& m, mesh::Coord a, mesh::Coord b) {
  for (mesh::Dir d : mesh::kAllDirs) {
    if (auto n = m.neighbor(a, d); n && *n == b) return d;
  }
  throw std::invalid_argument("PacketSpec path does not follow machine links");
}

}  // namespace

PacketSpec make_packet(const routing::Route& route, std::uint8_t num_vcs,
                       std::int32_t length_flits, std::int64_t inject_cycle) {
  PacketSpec spec;
  spec.path = route.path;
  spec.vcs.reserve(route.phase.size());
  for (std::uint8_t phase : route.phase) {
    spec.vcs.push_back(phase == 0 ? std::uint8_t{0}
                                  : static_cast<std::uint8_t>(num_vcs - 1));
  }
  spec.length_flits = length_flits;
  spec.inject_cycle = inject_cycle;
  return spec;
}

PacketSpec make_packet_class_based(const routing::Route& route,
                                   std::int32_t length_flits,
                                   std::int64_t inject_cycle) {
  PacketSpec spec;
  spec.path = route.path;
  std::uint8_t vc = 0;
  if (!route.path.empty()) {
    const mesh::Coord src = route.path.front();
    const mesh::Coord dst = route.path.back();
    if (dst.x > src.x) vc = 0;       // WE class
    else if (dst.x < src.x) vc = 1;  // EW class
    else if (dst.y > src.y) vc = 2;  // column-only, northbound
    else vc = 3;                     // column-only, southbound
  }
  spec.vcs.assign(route.phase.size(), vc);
  spec.length_flits = length_flits;
  spec.inject_cycle = inject_cycle;
  return spec;
}

WormholeSim::WormholeSim(const mesh::Mesh2D& machine, const SimConfig& config)
    : mesh_(machine), config_(config) {
  if (config.num_vcs == 0) {
    throw std::invalid_argument("num_vcs must be positive");
  }
  if (config.vc_buffer_flits <= 0) {
    throw std::invalid_argument("vc_buffer_flits must be positive");
  }
  owner_.assign(static_cast<std::size_t>(mesh_.node_count()) *
                    mesh::kNumDirs * config.num_vcs,
                -1);
}

std::size_t WormholeSim::channel_id(mesh::Coord from, mesh::Dir dir,
                                    std::uint8_t vc) const noexcept {
  return (mesh_.index(from) * mesh::kNumDirs +
          static_cast<std::size_t>(dir)) *
             config_.num_vcs +
         vc;
}

void WormholeSim::submit(PacketSpec spec) {
  if (spec.path.empty()) {
    throw std::invalid_argument("PacketSpec path must contain the source");
  }
  if (spec.length_flits < 1) {
    throw std::invalid_argument("PacketSpec needs at least one flit");
  }
  if (spec.vcs.size() + 1 != spec.path.size()) {
    throw std::invalid_argument("PacketSpec needs one vc per hop");
  }
  Worm worm;
  worm.channels.reserve(spec.vcs.size());
  std::unordered_set<std::size_t> seen;
  for (std::size_t i = 0; i + 1 < spec.path.size(); ++i) {
    if (spec.vcs[i] >= config_.num_vcs) {
      throw std::invalid_argument("PacketSpec vc out of range");
    }
    const mesh::Dir dir = hop_direction(mesh_, spec.path[i], spec.path[i + 1]);
    const std::size_t ch = channel_id(spec.path[i], dir, spec.vcs[i]);
    if (!seen.insert(ch).second) {
      // A worm that needs the same virtual channel twice can never make
      // progress past itself; reject instead of deadlocking silently.
      throw std::invalid_argument(
          "PacketSpec revisits a virtual channel; route one packet per "
          "channel visit");
    }
    worm.channels.push_back(ch);
  }
  worm.occupancy.assign(worm.channels.size(), 0);
  worm.flits_at_source = spec.length_flits;
  worm.spec = std::move(spec);
  worms_.push_back(std::move(worm));
}

bool WormholeSim::step_worm(Worm& worm, std::int64_t /*now*/) {
  const std::size_t hops = worm.channels.size();
  const auto self = static_cast<std::int32_t>(&worm - worms_.data());
  bool moved = false;

  // Zero-hop worm: source and destination coincide; absorb directly.
  if (hops == 0) {
    ++worm.flits_absorbed;
    --worm.flits_at_source;
    return true;
  }

  // 1. Destination ejection: once the head owns the final hop channel, one
  //    flit per cycle leaves the network.
  if (worm.head_hop == hops && worm.occupancy[hops - 1] > 0) {
    --worm.occupancy[hops - 1];
    ++worm.flits_absorbed;
    moved = true;
  }

  // 2. Forward flits front-to-back so a hole created ahead is filled this
  //    cycle by the flit behind it (one hop per flit per cycle).
  //    Moving into the first unowned channel acquires it (head extension).
  for (std::size_t i = std::min(worm.head_hop, hops - 1); i-- > worm.tail_hop;) {
    if (worm.occupancy[i] == 0) continue;
    const std::size_t next = i + 1;
    if (next == worm.head_hop) {
      // Head flit requests the next virtual channel.
      const std::size_t ch = worm.channels[next];
      if (owner_[ch] == -1) {
        owner_[ch] = self;
        ++worm.head_hop;
        --worm.occupancy[i];
        ++worm.occupancy[next];
        moved = true;
      }
    } else if (worm.occupancy[next] < config_.vc_buffer_flits) {
      --worm.occupancy[i];
      ++worm.occupancy[next];
      moved = true;
    }
  }

  // 3. Source injection into the first hop channel.
  if (worm.flits_at_source > 0) {
    const std::size_t ch = worm.channels[0];
    if (worm.head_hop == 0) {
      if (owner_[ch] == -1) {
        owner_[ch] = self;
        worm.head_hop = 1;
        ++worm.occupancy[0];
        --worm.flits_at_source;
        moved = true;
      }
    } else if (worm.tail_hop == 0 &&
               worm.occupancy[0] < config_.vc_buffer_flits) {
      ++worm.occupancy[0];
      --worm.flits_at_source;
      moved = true;
    }
  }

  // 4. Tail release: drained channels with nothing behind them free their
  //    virtual channel for other worms.
  while (worm.tail_hop < worm.head_hop && worm.occupancy[worm.tail_hop] == 0 &&
         !(worm.tail_hop == 0 && worm.flits_at_source > 0)) {
    owner_[worm.channels[worm.tail_hop]] = -1;
    ++worm.tail_hop;
  }

  return moved;
}

SimResult WormholeSim::run() {
  SimResult result;
  result.packets.resize(worms_.size());
  for (std::size_t i = 0; i < worms_.size(); ++i) {
    result.packets[i].inject_cycle = worms_[i].spec.inject_cycle;
  }

  std::size_t remaining = worms_.size();
  std::int64_t idle_cycles = 0;
  std::int64_t now = 0;
  for (; now < config_.max_cycles && remaining > 0; ++now) {
    bool any_motion = false;
    bool waiting_on_schedule = false;
    for (std::size_t i = 0; i < worms_.size(); ++i) {
      Worm& worm = worms_[i];
      if (worm.done) continue;
      if (now < worm.spec.inject_cycle) {
        waiting_on_schedule = true;
        continue;
      }
      if (step_worm(worm, now)) any_motion = true;
      if (worm.flits_absorbed == worm.spec.length_flits) {
        worm.done = true;
        --remaining;
        result.packets[i].delivered = true;
        result.packets[i].finish_cycle = now;
        ++result.delivered;
        result.latency.add(static_cast<double>(result.packets[i].latency()));
      }
    }
    if (any_motion) {
      idle_cycles = 0;
    } else if (!waiting_on_schedule) {
      if (++idle_cycles >= config_.deadlock_threshold) {
        result.deadlocked = true;
        ++now;
        break;
      }
    }
  }
  result.cycles = now;
  result.stuck = remaining;
  return result;
}

}  // namespace ocp::netsim
