#include "netsim/load_sweep.hpp"

#include "analysis/trial_pool.hpp"

namespace ocp::netsim {

namespace {

/// Runs `trials` seeded trials at one injection rate (OpenMP-parallel,
/// slot-per-trial) and reduces them serially in trial order.
LoadPoint run_point(const mesh::Mesh2D& machine, const grid::CellSet& blocked,
                    routing::RouteCache& routes, const TrafficSimConfig& base,
                    double rate, const std::vector<std::uint64_t>& seeds) {
  std::vector<TrafficSimResult> records(seeds.size());
  analysis::for_each_trial(seeds.size(), [&](std::size_t t) {
    const obs::Span trial_span(base.trace, "load_sweep.trial");
    TrafficSimConfig config = base;
    config.injection_rate = rate;
    config.seed = seeds[t];
    records[t] = run_traffic_sim(machine, blocked, config, routes);
  });
  base.trace.counter("load_sweep.trials",
                     static_cast<std::int64_t>(seeds.size()));

  LoadPoint point;
  point.injection_rate = rate;
  point.trials = seeds.size();
  for (const TrafficSimResult& r : records) {
    point.deadlocked_trials += r.deadlocked ? 1 : 0;
    point.offered_packets += r.offered_packets;
    point.delivered_packets += r.delivered_packets;
    point.unroutable_packets += r.unroutable_packets;
    point.flit_moves += r.flit_moves;
    point.latency_overflow += r.latency_overflow;
    point.latency.merge(r.latency);
    point.latency_hist.merge(r.latency_hist);
    point.accepted.add(r.accepted_flits_per_node_cycle);
  }
  return point;
}

[[nodiscard]] bool saturated(const LoadPoint& point, double latency_limit) {
  return point.deadlocked_trials > 0 || point.latency.mean() > latency_limit;
}

}  // namespace

LoadSweepResult run_load_sweep(const mesh::Mesh2D& machine,
                               const grid::CellSet& blocked,
                               const routing::Router& router,
                               const LoadSweepConfig& config) {
  const std::size_t rates = config.injection_rates.size();
  const std::size_t trials = config.trials;
  const obs::Span sweep_span(config.base.trace, "load_sweep.run");

  // One RNG stream per grid cell, forked up-front in rate-major order, and
  // one shared route cache for the whole sweep.
  stats::Rng seeder(config.seed);
  const auto seeds = analysis::fork_trial_seeds(seeder, rates * trials);
  routing::RouteCache routes(router, machine);

  // Run the whole (rate x trial) grid as one flat parallel loop so slow
  // high-load cells overlap cheap low-load ones.
  std::vector<TrafficSimResult> records(rates * trials);
  analysis::for_each_trial(rates * trials, [&](std::size_t cell) {
    const obs::Span trial_span(config.base.trace, "load_sweep.trial");
    TrafficSimConfig trial_config = config.base;
    trial_config.injection_rate = config.injection_rates[cell / trials];
    trial_config.seed = seeds[cell];
    records[cell] = run_traffic_sim(machine, blocked, trial_config, routes);
  });
  if (config.base.trace.enabled()) {
    config.base.trace.counter("load_sweep.trials",
                              static_cast<std::int64_t>(rates * trials));
    config.base.trace.counter(
        "route_cache.hits", static_cast<std::int64_t>(routes.hits()));
    config.base.trace.counter(
        "route_cache.misses", static_cast<std::int64_t>(routes.misses()));
    config.base.trace.counter(
        "route_cache.routes", static_cast<std::int64_t>(routes.size()));
  }

  LoadSweepResult result;
  result.points.reserve(rates);
  for (std::size_t r = 0; r < rates; ++r) {
    LoadPoint point;
    point.injection_rate = config.injection_rates[r];
    point.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      const TrafficSimResult& rec = records[r * trials + t];
      point.deadlocked_trials += rec.deadlocked ? 1 : 0;
      point.offered_packets += rec.offered_packets;
      point.delivered_packets += rec.delivered_packets;
      point.unroutable_packets += rec.unroutable_packets;
      point.flit_moves += rec.flit_moves;
      point.latency_overflow += rec.latency_overflow;
      point.latency.merge(rec.latency);
      point.latency_hist.merge(rec.latency_hist);
      point.accepted.add(rec.accepted_flits_per_node_cycle);
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

SaturationResult find_saturation_rate(const mesh::Mesh2D& machine,
                                      const grid::CellSet& blocked,
                                      const routing::Router& router,
                                      const SaturationConfig& config) {
  const obs::Span search_span(config.base.trace, "saturation.search");
  stats::Rng seeder(config.seed);
  routing::RouteCache routes(router, machine);
  SaturationResult result;

  // Probe order is deterministic (each predicate is), so forking each
  // probe's seeds on demand keeps the whole search reproducible.
  const auto probe = [&](double rate) -> const LoadPoint& {
    const obs::Span probe_span(config.base.trace, "saturation.probe");
    const auto seeds = analysis::fork_trial_seeds(seeder, config.trials);
    result.probes.push_back(
        run_point(machine, blocked, routes, config.base, rate, seeds));
    return result.probes.back();
  };

  // Endpoint probes establish the bracket invariant: lo unsaturated,
  // hi saturated. A violated endpoint collapses the bracket onto itself.
  if (saturated(probe(config.lo), config.latency_limit)) {
    result.lo = result.hi = result.saturation_rate = config.lo;
    return result;
  }
  if (!saturated(probe(config.hi), config.latency_limit)) {
    result.lo = result.hi = result.saturation_rate = config.hi;
    return result;
  }

  double lo = config.lo;
  double hi = config.hi;
  for (int probes_used = 2;
       probes_used < config.max_probes && hi - lo > config.tolerance;
       ++probes_used) {
    const double mid = 0.5 * (lo + hi);
    if (saturated(probe(mid), config.latency_limit)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.lo = lo;
  result.hi = hi;
  result.saturation_rate = 0.5 * (lo + hi);
  return result;
}

}  // namespace ocp::netsim
