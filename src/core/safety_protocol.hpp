// Phase one: distributed safe/unsafe labeling (Definitions 2a / 2b).
//
//   all faulty nodes are initialized to unsafe;
//   all nonfaulty nodes are initialized to safe;
//   repeat
//     doall (1) nonfaulty node u exchanges its status with its neighbors;
//           (2) change u's status to unsafe if <rule>
//     odall
//   until there is no status change
//
// where <rule> is "u has two or more unsafe neighbors" (Def 2a) or "u has an
// unsafe neighbor in both dimensions" (Def 2b). The transition is monotone
// (safe -> unsafe only), which makes the labeling well-defined and
// schedule-independent.
#pragma once

#include <span>

#include "core/status.hpp"
#include "grid/cell_set.hpp"
#include "simkernel/protocol.hpp"

namespace ocp::labeling {

/// Node-local protocol for the simkernel runners.
class SafetyProtocol {
 public:
  struct State {
    Health health = Health::Nonfaulty;
    Safety safety = Safety::Safe;

    friend constexpr bool operator==(const State&, const State&) = default;
  };
  /// Each round a node announces its safety; faulty nodes are born unsafe
  /// and never change, so their (static) status is likewise visible to
  /// neighbors.
  using Message = Safety;

  SafetyProtocol(const grid::CellSet& faults, SafeUnsafeDef def)
      : faults_(&faults), def_(def) {}

  [[nodiscard]] SafeUnsafeDef definition() const noexcept { return def_; }

  [[nodiscard]] State init(mesh::Coord c) const {
    if (faults_->contains(c)) return {Health::Faulty, Safety::Unsafe};
    return {Health::Nonfaulty, Safety::Safe};
  }

  /// Bulk form of `init` over the dense row-major plane (simkernel hook):
  /// a linear pass over the fault bitmap, no per-node coordinate math.
  void init_plane(const mesh::Mesh2D&, std::span<State> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = faults_->contains_index(i)
                   ? State{Health::Faulty, Safety::Unsafe}
                   : State{Health::Nonfaulty, Safety::Safe};
    }
  }

  [[nodiscard]] Message announce(const State& s) const noexcept {
    return s.safety;
  }

  /// Ghost nodes on the open-mesh boundary frame are permanently safe.
  [[nodiscard]] Message ghost_message() const noexcept { return Safety::Safe; }

  [[nodiscard]] bool participates(const State& s) const noexcept {
    return s.health == Health::Nonfaulty;
  }

  [[nodiscard]] bool update(State& s, const sim::Inbox<Message>& inbox) const {
    if (s.safety == Safety::Unsafe) return false;  // monotone: stays unsafe
    bool becomes_unsafe = false;
    if (def_ == SafeUnsafeDef::Def2a) {
      int unsafe_neighbors = 0;
      for (mesh::Dir d : mesh::kAllDirs) {
        if (inbox[d] == Safety::Unsafe) ++unsafe_neighbors;
      }
      becomes_unsafe = unsafe_neighbors >= 2;
    } else {
      const bool unsafe_x = inbox[mesh::Dir::East] == Safety::Unsafe ||
                            inbox[mesh::Dir::West] == Safety::Unsafe;
      const bool unsafe_y = inbox[mesh::Dir::North] == Safety::Unsafe ||
                            inbox[mesh::Dir::South] == Safety::Unsafe;
      becomes_unsafe = unsafe_x && unsafe_y;
    }
    if (becomes_unsafe) {
      s.safety = Safety::Unsafe;
      return true;
    }
    return false;
  }

 private:
  const grid::CellSet* faults_;  // non-owning; outlives the run
  SafeUnsafeDef def_;
};

static_assert(sim::SyncProtocol<SafetyProtocol>);

}  // namespace ocp::labeling
