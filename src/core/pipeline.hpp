// The full two-phase algorithm of the paper as one call: faults in,
// faulty blocks + disabled regions + convergence metrics out.
#pragma once

#include <cstdint>
#include <vector>

#include "core/activation_protocol.hpp"
#include "core/regions.hpp"
#include "core/safety_protocol.hpp"
#include "grid/cell_set.hpp"
#include "grid/node_grid.hpp"
#include "obs/trace.hpp"
#include "simkernel/protocol.hpp"

namespace ocp::labeling {

/// How the pipeline computes the fixpoints.
enum class Engine : std::uint8_t {
  /// simkernel synchronous lock-step rounds — faithful to the paper, and the
  /// only engine that yields round counts.
  Distributed = 0,
  /// Centralized worklist solver — same labels, no round counts; for large
  /// Monte-Carlo sweeps.
  Reference = 1,
};

struct PipelineOptions {
  SafeUnsafeDef definition = SafeUnsafeDef::Def2b;
  Engine engine = Engine::Distributed;
  sim::RunMode run_mode = sim::RunMode::Frontier;
  /// Evaluate dense rounds across OpenMP threads (see sim::RunOptions).
  /// Results, round counts and message counts are identical for any thread
  /// count; this only changes wall-clock time.
  bool parallel = false;
  /// Observability (src/obs): disabled by default (null sink). When set,
  /// the run emits per-phase spans ("pipeline.safety"/"pipeline.activation"/
  /// "pipeline.extract"), flip/message/frontier counters, and — at
  /// TraceLevel::Round — per-round spans and frontier/changes instants from
  /// the sync runner. Never affects results.
  obs::TraceConfig trace;
};

/// Everything the two phases produce.
struct PipelineResult {
  grid::NodeGrid<Safety> safety;
  grid::NodeGrid<Activation> activation;
  std::vector<FaultyBlock> blocks;
  std::vector<DisabledRegion> regions;
  /// Phase convergence/cost metrics (zeroed under Engine::Reference).
  sim::RoundStats safety_stats;
  sim::RoundStats activation_stats;

  /// Total unsafe-but-nonfaulty nodes (over all blocks).
  [[nodiscard]] std::size_t unsafe_nonfaulty_total() const;
  /// Unsafe-but-nonfaulty nodes that phase two activated.
  [[nodiscard]] std::size_t enabled_total() const;
  /// Nonfaulty nodes still disabled after phase two.
  [[nodiscard]] std::size_t disabled_nonfaulty_total() const;
};

/// Runs phase one (safe/unsafe) and phase two (enabled/disabled) and
/// extracts both region families.
[[nodiscard]] PipelineResult run_pipeline(const grid::CellSet& faults,
                                          const PipelineOptions& opts = {});

}  // namespace ocp::labeling
