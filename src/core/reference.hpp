// Sequential reference implementations of the two labeling fixpoints.
//
// These compute the same labelings as the distributed protocols via a
// centralized worklist, in O(N) per phase. They exist to cross-validate the
// simkernel runners (tests assert equality on random instances) and as the
// fast path for large Monte-Carlo sweeps that only need the final labels,
// not round counts.
#pragma once

#include "core/status.hpp"
#include "grid/cell_set.hpp"
#include "grid/node_grid.hpp"

namespace ocp::labeling {

/// Safe/unsafe fixpoint of Definition 2a or 2b for the given fault set.
[[nodiscard]] grid::NodeGrid<Safety> reference_safety(
    const grid::CellSet& faults, SafeUnsafeDef def);

/// Enabled/disabled fixpoint of Definition 3 on top of a safety labeling.
[[nodiscard]] grid::NodeGrid<Activation> reference_activation(
    const grid::CellSet& faults, const grid::NodeGrid<Safety>& safety);

}  // namespace ocp::labeling
