#include "core/reference.hpp"

#include <queue>

namespace ocp::labeling {

namespace {

/// Safety of a (possibly out-of-mesh) coordinate: ghost nodes and torus
/// wraparound are resolved here so the rule code reads like the definitions.
Safety safety_at(const grid::NodeGrid<Safety>& g, mesh::Coord c) {
  const mesh::Mesh2D& m = g.topology();
  if (m.contains(c)) return g[c];
  if (m.is_torus()) return g[m.wrap(c)];
  return Safety::Safe;  // ghost
}

Activation activation_at(const grid::NodeGrid<Activation>& g, mesh::Coord c) {
  const mesh::Mesh2D& m = g.topology();
  if (m.contains(c)) return g[c];
  if (m.is_torus()) return g[m.wrap(c)];
  return Activation::Enabled;  // ghost
}

}  // namespace

grid::NodeGrid<Safety> reference_safety(const grid::CellSet& faults,
                                        SafeUnsafeDef def) {
  const mesh::Mesh2D& m = faults.topology();
  grid::NodeGrid<Safety> safety(m, Safety::Safe);
  std::queue<mesh::Coord> worklist;

  faults.for_each([&](mesh::Coord c) {
    safety[c] = Safety::Unsafe;
    worklist.push(c);
  });

  const auto rule_fires = [&](mesh::Coord c) {
    if (def == SafeUnsafeDef::Def2a) {
      int unsafe_neighbors = 0;
      for (mesh::Dir d : mesh::kAllDirs) {
        if (safety_at(safety, c.step(d)) == Safety::Unsafe) {
          ++unsafe_neighbors;
        }
      }
      return unsafe_neighbors >= 2;
    }
    const bool ux =
        safety_at(safety, c.step(mesh::Dir::East)) == Safety::Unsafe ||
        safety_at(safety, c.step(mesh::Dir::West)) == Safety::Unsafe;
    const bool uy =
        safety_at(safety, c.step(mesh::Dir::North)) == Safety::Unsafe ||
        safety_at(safety, c.step(mesh::Dir::South)) == Safety::Unsafe;
    return ux && uy;
  };

  // Chaotic iteration of a monotone rule: revisit the neighbors of every
  // node that turned unsafe until no rule application fires.
  while (!worklist.empty()) {
    const mesh::Coord u = worklist.front();
    worklist.pop();
    for (const mesh::Link& l : m.neighbors(u)) {
      if (safety[l.to] == Safety::Unsafe || faults.contains(l.to)) continue;
      if (rule_fires(l.to)) {
        safety[l.to] = Safety::Unsafe;
        worklist.push(l.to);
      }
    }
  }
  return safety;
}

grid::NodeGrid<Activation> reference_activation(
    const grid::CellSet& faults, const grid::NodeGrid<Safety>& safety) {
  const mesh::Mesh2D& m = faults.topology();
  grid::NodeGrid<Activation> act(m, Activation::Enabled);
  std::queue<mesh::Coord> worklist;

  // Initialization: unsafe -> disabled (faulty nodes are unsafe and stay
  // disabled forever); safe -> enabled.
  for (std::size_t i = 0; i < act.size(); ++i) {
    if (safety.at_index(i) == Safety::Unsafe) {
      act.at_index(i) = Activation::Disabled;
    }
  }

  const auto can_enable = [&](mesh::Coord c) {
    if (faults.contains(c)) return false;
    if (safety[c] == Safety::Safe) return false;       // already enabled
    if (act[c] == Activation::Enabled) return false;   // monotone
    int enabled_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (activation_at(act, c.step(d)) == Activation::Enabled) {
        ++enabled_neighbors;
      }
    }
    return enabled_neighbors >= 2;
  };

  // Seed: every disabled nonfaulty node adjacent to the enabled sea may fire
  // immediately.
  for (std::size_t i = 0; i < act.size(); ++i) {
    const mesh::Coord c = m.coord(i);
    if (can_enable(c)) {
      act[c] = Activation::Enabled;
      worklist.push(c);
    }
  }
  while (!worklist.empty()) {
    const mesh::Coord u = worklist.front();
    worklist.pop();
    for (const mesh::Link& l : m.neighbors(u)) {
      if (can_enable(l.to)) {
        act[l.to] = Activation::Enabled;
        worklist.push(l.to);
      }
    }
  }
  return act;
}

}  // namespace ocp::labeling
