#include "core/partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "geometry/convexity.hpp"

namespace ocp::labeling {

namespace {

/// Minimum Chebyshev distance between two cell sets; < 2 means 8-adjacent
/// or overlapping, 0 means overlapping only when cells coincide.
std::int32_t chebyshev_distance(const geom::Region& a, const geom::Region& b) {
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  for (mesh::Coord u : a.cells()) {
    for (mesh::Coord v : b.cells()) {
      best = std::min(best, std::max(std::abs(u.x - v.x),
                                     std::abs(u.y - v.y)));
    }
  }
  return best;
}

bool overlaps(const geom::Region& a, const geom::Region& b) {
  const geom::Region& small = a.size() <= b.size() ? a : b;
  const geom::Region& large = a.size() <= b.size() ? b : a;
  return std::any_of(small.cells().begin(), small.cells().end(),
                     [&](mesh::Coord c) { return large.contains(c); });
}

/// Pairwise arrangement constraint of a cover rule.
bool pair_ok(const geom::Region& a, const geom::Region& b, CoverRule rule) {
  if (rule == CoverRule::Separated) return chebyshev_distance(a, b) >= 2;
  return !overlaps(a, b);
}

/// Splits a region into its 8-connected components. Components of an
/// orthogonal convex set are orthogonal convex (a row/column run cannot
/// span two components) and pairwise non-8-adjacent by maximality.
std::vector<geom::Region> eight_connected_components(const geom::Region& r) {
  std::vector<geom::Region> out;
  std::vector<std::uint8_t> assigned(r.size(), 0);
  const auto cells = r.cells();
  for (std::size_t seed = 0; seed < cells.size(); ++seed) {
    if (assigned[seed]) continue;
    std::vector<mesh::Coord> component;
    std::vector<std::size_t> frontier{seed};
    assigned[seed] = 1;
    while (!frontier.empty()) {
      const std::size_t i = frontier.back();
      frontier.pop_back();
      component.push_back(cells[i]);
      for (std::size_t j = 0; j < cells.size(); ++j) {
        if (assigned[j]) continue;
        if (std::max(std::abs(cells[i].x - cells[j].x),
                     std::abs(cells[i].y - cells[j].y)) <= 1) {
          assigned[j] = 1;
          frontier.push_back(j);
        }
      }
    }
    out.emplace_back(std::move(component));
  }
  return out;
}

/// Fault subset selected by a bitmask over the faults' row-major order.
geom::Region subset(const geom::Region& faults, std::uint64_t mask) {
  std::vector<mesh::Coord> cells;
  const auto all = faults.cells();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (mask & (std::uint64_t{1} << i)) cells.push_back(all[i]);
  }
  return geom::Region(std::move(cells));
}

}  // namespace

const char* to_string(CoverRule rule) noexcept {
  return rule == CoverRule::Separated ? "separated" : "touching";
}

bool is_valid_cover(const geom::Region& faults,
                    const std::vector<geom::Region>& polygons,
                    CoverRule rule) {
  for (mesh::Coord f : faults.cells()) {
    const bool covered =
        std::any_of(polygons.begin(), polygons.end(),
                    [&](const geom::Region& p) { return p.contains(f); });
    if (!covered) return false;
  }
  for (const geom::Region& p : polygons) {
    if (!geom::is_orthogonal_convex_polygon(p, geom::Connectivity::Eight)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < polygons.size(); ++i) {
    for (std::size_t j = i + 1; j < polygons.size(); ++j) {
      if (!pair_ok(polygons[i], polygons[j], rule)) return false;
    }
  }
  return true;
}

PolygonCover closure_cover(const geom::Region& faults) {
  PolygonCover cover;
  if (faults.empty()) return cover;
  std::size_t cells = 0;
  for (auto& component : eight_connected_components(
           geom::rectilinear_convex_closure(faults))) {
    cells += component.size();
    cover.polygons.push_back(std::move(component));
  }
  cover.nonfaulty_cells = cells - faults.size();
  return cover;
}

PolygonCover optimal_cover_exhaustive(const geom::Region& faults,
                                      CoverRule rule,
                                      std::size_t max_faults) {
  const std::size_t f = faults.size();
  if (f == 0) return {};
  if (f > max_faults || f > 20) {
    return rule == CoverRule::Separated ? greedy_gap_cover(faults)
                                        : greedy_cut_cover(faults);
  }

  // Memoized closure per fault subset.
  std::unordered_map<std::uint64_t, geom::Region> closures;
  const auto closure_of = [&](std::uint64_t mask) -> const geom::Region& {
    auto it = closures.find(mask);
    if (it == closures.end()) {
      it = closures
               .emplace(mask,
                        geom::rectilinear_convex_closure(subset(faults, mask)))
               .first;
    }
    return it->second;
  };

  PolygonCover best = closure_cover(faults);

  // Enumerate set partitions with restricted-growth strings: fault i joins
  // one of the groups used so far or opens a new one.
  std::vector<std::uint64_t> groups;  // bitmask per group
  const auto recurse = [&](auto&& self, std::size_t i) -> void {
    if (i == f) {
      std::vector<geom::Region> polys;
      std::size_t cells = 0;
      polys.reserve(groups.size());
      for (std::uint64_t mask : groups) {
        const geom::Region& closure = closure_of(mask);
        // A part whose closure splits into several pieces is covered by an
        // equivalent finer partition that this enumeration also visits.
        if (!closure.is_connected(geom::Connectivity::Eight)) return;
        polys.push_back(closure);
        cells += polys.back().size();
      }
      const std::size_t nonfaulty = cells - f;
      if (nonfaulty >= best.nonfaulty_cells) return;  // not an improvement
      for (std::size_t a = 0; a < polys.size(); ++a) {
        for (std::size_t b = a + 1; b < polys.size(); ++b) {
          if (!pair_ok(polys[a], polys[b], rule)) return;
        }
      }
      best.polygons = std::move(polys);
      best.nonfaulty_cells = nonfaulty;
      return;
    }
    const std::uint64_t bit = std::uint64_t{1} << i;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      groups[g] |= bit;
      self(self, i + 1);
      groups[g] &= ~bit;
    }
    groups.push_back(bit);
    self(self, i + 1);
    groups.pop_back();
  };
  recurse(recurse, 0);
  return best;
}

namespace {

/// Splits `faults` at the first empty line (column or row strictly inside
/// the bounding box with no fault on it). Returns true and fills lo/hi when
/// a split exists.
bool split_at_empty_line(const geom::Region& faults, geom::Region& lo,
                         geom::Region& hi) {
  if (faults.size() < 2) return false;
  const geom::Rect box = faults.bounding_box();

  for (std::int32_t x = box.lo.x + 1; x < box.hi.x; ++x) {
    const bool occupied = std::any_of(
        faults.cells().begin(), faults.cells().end(),
        [&](mesh::Coord c) { return c.x == x; });
    if (!occupied) {
      std::vector<mesh::Coord> left;
      std::vector<mesh::Coord> right;
      for (mesh::Coord c : faults.cells()) {
        (c.x < x ? left : right).push_back(c);
      }
      lo = geom::Region(std::move(left));
      hi = geom::Region(std::move(right));
      return true;
    }
  }
  for (std::int32_t y = box.lo.y + 1; y < box.hi.y; ++y) {
    const bool occupied = std::any_of(
        faults.cells().begin(), faults.cells().end(),
        [&](mesh::Coord c) { return c.y == y; });
    if (!occupied) {
      std::vector<mesh::Coord> below;
      std::vector<mesh::Coord> above;
      for (mesh::Coord c : faults.cells()) {
        (c.y < y ? below : above).push_back(c);
      }
      lo = geom::Region(std::move(below));
      hi = geom::Region(std::move(above));
      return true;
    }
  }
  return false;
}

/// Closure size of a fault set (0 for empty).
std::size_t closure_cells(const geom::Region& faults) {
  if (faults.empty()) return 0;
  return geom::rectilinear_convex_closure(faults).size();
}

/// Best axis-aligned cut of `faults` (between adjacent columns or rows)
/// measured by total closure size of the two halves. Returns true when some
/// cut strictly beats the uncut closure.
bool best_cut(const geom::Region& faults, geom::Region& lo, geom::Region& hi) {
  if (faults.size() < 2) return false;
  const geom::Rect box = faults.bounding_box();
  const std::size_t whole = closure_cells(faults);
  std::size_t best = whole;
  bool found = false;

  const auto consider = [&](auto splitter) {
    std::vector<mesh::Coord> a;
    std::vector<mesh::Coord> b;
    for (mesh::Coord c : faults.cells()) {
      (splitter(c) ? a : b).push_back(c);
    }
    if (a.empty() || b.empty()) return;
    geom::Region ra(std::move(a));
    geom::Region rb(std::move(b));
    const std::size_t total = closure_cells(ra) + closure_cells(rb);
    if (total < best) {
      best = total;
      lo = std::move(ra);
      hi = std::move(rb);
      found = true;
    }
  };

  for (std::int32_t x = box.lo.x; x < box.hi.x; ++x) {
    consider([x](mesh::Coord c) { return c.x <= x; });
  }
  for (std::int32_t y = box.lo.y; y < box.hi.y; ++y) {
    consider([y](mesh::Coord c) { return c.y <= y; });
  }
  return found;
}

}  // namespace

PolygonCover greedy_gap_cover(const geom::Region& faults) {
  PolygonCover cover;
  if (faults.empty()) return cover;

  // Work queue of fault clusters still to be placed. A cluster split along
  // an empty line yields sub-closures at least Chebyshev 2 apart, so every
  // split is valid under the Separated rule and strictly removes the
  // closure cells on the split line.
  std::vector<geom::Region> pending{faults};
  std::size_t cells = 0;
  while (!pending.empty()) {
    geom::Region part = std::move(pending.back());
    pending.pop_back();
    geom::Region lo;
    geom::Region hi;
    if (split_at_empty_line(part, lo, hi)) {
      pending.push_back(std::move(lo));
      pending.push_back(std::move(hi));
      continue;
    }
    for (auto& component : eight_connected_components(
             geom::rectilinear_convex_closure(part))) {
      cells += component.size();
      cover.polygons.push_back(std::move(component));
    }
  }
  cover.nonfaulty_cells = cells - faults.size();
  return cover;
}

PolygonCover greedy_cut_cover(const geom::Region& faults) {
  PolygonCover cover;
  if (faults.empty()) return cover;

  // Cut halves live in disjoint half-planes, so their closures are
  // disjoint — valid under the Touching rule by construction.
  std::vector<geom::Region> pending{faults};
  std::size_t cells = 0;
  while (!pending.empty()) {
    geom::Region part = std::move(pending.back());
    pending.pop_back();
    geom::Region lo;
    geom::Region hi;
    if (best_cut(part, lo, hi)) {
      pending.push_back(std::move(lo));
      pending.push_back(std::move(hi));
      continue;
    }
    for (auto& component : eight_connected_components(
             geom::rectilinear_convex_closure(part))) {
      cells += component.size();
      cover.polygons.push_back(std::move(component));
    }
  }
  cover.nonfaulty_cells = cells - faults.size();
  return cover;
}

}  // namespace ocp::labeling
