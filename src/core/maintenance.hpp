// Online maintenance of the fault model (paper, section 1: faulty blocks
// "can be easily established and maintained through message exchanges among
// neighboring nodes").
//
// When a node fails at runtime, the labeling does not have to be recomputed
// from scratch: the safe/unsafe rule is monotone in the fault set, so the
// new fixpoint is reached by resuming the worklist from the new fault — the
// distributed system would do exactly this with a handful of local message
// exchanges. The enabled/disabled labeling is *not* monotone in the fault
// set (a new fault can strip the support that activated a neighbor, and a
// node once enabled must be re-validated), but it *is* local: Definition 3's
// activation fixpoint of each unsafe component depends only on that
// component (its 4-neighborhood is safe, hence permanently enabled), so
// phase two is re-derived inside the affected component only — never over
// the whole machine. The same locality bounds the faulty-block and
// disabled-region updates: only blocks intersecting the affected area are
// re-extracted and spliced back into the (min-index-ordered) lists, with
// indices of untouched entries renumbered in place. Every event therefore
// costs O(affected component) plus O(existing blocks) bookkeeping, not
// O(mesh), and reports exactly which cells it may have relabeled so the
// serving layer (src/svc) can republish copy-on-write snapshots that share
// every untouched page with their predecessor.
#pragma once

#include "core/pipeline.hpp"
#include "grid/connectivity.hpp"

namespace ocp::labeling {

/// What one fault/repair event changed: flip counts for both labelings plus
/// the dirty extent — every cell whose served label (fault status, safety,
/// activation, or disabled-region membership) may differ from before the
/// event. The extent is the affected unsafe component (after an add) or the
/// repaired block's old footprint (after a removal); it is empty exactly
/// when the event was a no-op.
struct EventDelta {
  /// Nodes whose safety status changed.
  std::size_t safety_changed = 0;
  /// Nodes whose activation status changed.
  std::size_t activation_changed = 0;
  /// Cells whose label may have changed (always includes the event node for
  /// a non-no-op event; a superset of the actual flips).
  std::vector<mesh::Coord> dirty_cells;

  [[nodiscard]] bool no_op() const noexcept { return dirty_cells.empty(); }
};

/// A labeled machine that absorbs fault events incrementally.
class MaintainedLabeling {
 public:
  /// Labels the initial fault set.
  explicit MaintainedLabeling(grid::CellSet faults,
                              SafeUnsafeDef def = SafeUnsafeDef::Def2b);

  /// Marks `node` faulty and restores both labelings and the region lists.
  /// No-op when the node is already faulty. Returns the delta, including
  /// the dirty extent (the merged unsafe component around the fault).
  EventDelta add_fault(mesh::Coord node);

  /// Halo-bounded maintenance entry point for replicated/sharded serving:
  /// drives the fault model to the asserted state at `node` and restores
  /// both labelings, dispatching to `add_fault`/`remove_fault`. Idempotent —
  /// a node already in the asserted state is a no-op with an empty dirty
  /// extent — so a shard replaying remote (halo) state assertions converges
  /// without tracking which assertions it has already absorbed.
  EventDelta set_fault_state(mesh::Coord node, bool faulty) {
    return faulty ? add_fault(node) : remove_fault(node);
  }

  /// Marks `node` repaired (no longer faulty) and restores both labelings
  /// and the region lists. No-op when the node is not faulty. Removal can
  /// only shrink the unsafe set (the rule is monotone in the fault set),
  /// and only inside the faulty block the node belonged to — unsafe labels
  /// derive from faults of their own 4-connected component — so the repair
  /// is confined to the old block footprint: reset it, re-close the
  /// fixpoint from the remaining faults, re-derive activation and the
  /// region lists inside it. Returns the delta with the footprint as the
  /// dirty extent.
  EventDelta remove_fault(mesh::Coord node);

  [[nodiscard]] const grid::CellSet& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const grid::NodeGrid<Safety>& safety() const noexcept {
    return safety_;
  }
  [[nodiscard]] const grid::NodeGrid<Activation>& activation() const noexcept {
    return activation_;
  }
  [[nodiscard]] const std::vector<FaultyBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const std::vector<DisabledRegion>& regions() const noexcept {
    return regions_;
  }
  /// The disabled cells of `activation()` (the serving layer's blocked
  /// set), maintained alongside the activation plane so epoch publication
  /// never rescans the machine.
  [[nodiscard]] const grid::CellSet& disabled() const noexcept {
    return disabled_;
  }
  /// Per-cell region key: the minimum row-major node index of the disabled
  /// region containing the cell, or -1 for cells outside every region. The
  /// key identifies a region stably across events that renumber the
  /// `regions()` vector without touching the region itself — the property
  /// copy-on-write snapshot pages rely on.
  [[nodiscard]] const grid::NodeGrid<std::int32_t>& region_keys()
      const noexcept {
    return region_key_;
  }

 private:
  void refresh_regions();
  /// Re-derives activation, blocks and regions inside `area` (an affected
  /// unsafe component or a repaired block footprint) and splices the
  /// results into the maintained lists. Appends `area` to `delta`.
  void rebuild_area(std::vector<mesh::Coord> area, EventDelta& delta);

  SafeUnsafeDef def_;
  grid::CellSet faults_;
  grid::NodeGrid<Safety> safety_;
  grid::NodeGrid<Activation> activation_;
  std::vector<FaultyBlock> blocks_;
  std::vector<DisabledRegion> regions_;
  grid::CellSet disabled_;
  /// Current index into `blocks_` per unsafe cell, -1 elsewhere.
  grid::NodeGrid<std::int32_t> block_index_;
  /// Stable region key per disabled cell (see `region_keys()`).
  grid::NodeGrid<std::int32_t> region_key_;
  /// Minimum row-major node index per entry, parallel to `blocks_` /
  /// `regions_` — the sort key of the extraction order.
  std::vector<std::size_t> block_mins_;
  std::vector<std::size_t> region_mins_;

  // Per-event scratch, kept across events so the hot path allocates only
  // what it returns (the dirty-cell vector). `visit_scratch_` is a visited
  // plane restored to all-zeros after each BFS; the scratch CellSets hold an
  // area's unsafe/disabled cells during re-extraction and are emptied again
  // cell by cell (never an O(mesh) clear).
  std::vector<std::uint8_t> visit_scratch_;
  std::vector<mesh::Coord> worklist_scratch_;
  grid::CellSet area_unsafe_scratch_;
  grid::CellSet area_disabled_scratch_;
  grid::ComponentScratch component_scratch_;
  std::vector<Activation> old_act_scratch_;
  std::vector<std::int32_t> removed_scratch_;
  std::vector<std::size_t> parent_keys_scratch_;
};

}  // namespace ocp::labeling
