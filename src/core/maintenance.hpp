// Online maintenance of the fault model (paper, section 1: faulty blocks
// "can be easily established and maintained through message exchanges among
// neighboring nodes").
//
// When a node fails at runtime, the labeling does not have to be recomputed
// from scratch: the safe/unsafe rule is monotone in the fault set, so the
// new fixpoint is reached by resuming the worklist from the new fault — the
// distributed system would do exactly this with a handful of local message
// exchanges. The enabled/disabled labeling is *not* monotone in the fault
// set (a new fault can strip the support that activated a neighbor, and a
// node once enabled must be re-validated), so phase two is re-derived for
// the affected part of the machine.
#pragma once

#include "core/pipeline.hpp"

namespace ocp::labeling {

/// A labeled machine that absorbs fault events incrementally.
class MaintainedLabeling {
 public:
  /// Labels the initial fault set.
  explicit MaintainedLabeling(grid::CellSet faults,
                              SafeUnsafeDef def = SafeUnsafeDef::Def2b);

  /// Marks `node` faulty and restores both labelings and the region lists.
  /// No-op when the node is already faulty. Returns the number of nodes
  /// whose safety status changed (0 when the new fault was already unsafe
  /// and triggered nothing).
  std::size_t add_fault(mesh::Coord node);

  /// Marks `node` repaired (no longer faulty) and restores both labelings
  /// and the region lists. No-op when the node is not faulty. Removal can
  /// only shrink the unsafe set (the rule is monotone in the fault set),
  /// and only inside the faulty block the node belonged to — unsafe labels
  /// derive from faults of their own 4-connected component — so phase one
  /// is repaired locally: the block is reset and its fixpoint re-closed
  /// from the remaining faults. Phase two is re-derived like `add_fault`.
  /// Returns the number of nodes whose safety status changed.
  std::size_t remove_fault(mesh::Coord node);

  [[nodiscard]] const grid::CellSet& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const grid::NodeGrid<Safety>& safety() const noexcept {
    return safety_;
  }
  [[nodiscard]] const grid::NodeGrid<Activation>& activation() const noexcept {
    return activation_;
  }
  [[nodiscard]] const std::vector<FaultyBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const std::vector<DisabledRegion>& regions() const noexcept {
    return regions_;
  }

 private:
  void refresh_regions();

  SafeUnsafeDef def_;
  grid::CellSet faults_;
  grid::NodeGrid<Safety> safety_;
  grid::NodeGrid<Activation> activation_;
  std::vector<FaultyBlock> blocks_;
  std::vector<DisabledRegion> regions_;
};

}  // namespace ocp::labeling
