#include "core/fault_distance.hpp"

#include "simkernel/sync_runner.hpp"

namespace ocp::labeling {

grid::NodeGrid<FaultDistanceVector> compute_fault_distances(
    const grid::CellSet& faults, const grid::NodeGrid<Safety>& safety,
    sim::RoundStats* stats) {
  const FaultDistanceProtocol proto(faults, safety);
  auto result = sim::run_sync(faults.topology(), proto);
  if (stats) *stats = result.stats;
  grid::NodeGrid<FaultDistanceVector> out(faults.topology());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_index(i) = result.states.at_index(i).vector;
  }
  return out;
}

namespace {

/// Direction of the positive step from `from` toward `to` along dimension
/// `dim` (callers guarantee the coordinates differ there).
mesh::Dir toward(mesh::Coord from, mesh::Coord to, mesh::Dim dim) {
  if (dim == mesh::Dim::X) {
    return to.x > from.x ? mesh::Dir::East : mesh::Dir::West;
  }
  return to.y > from.y ? mesh::Dir::North : mesh::Dir::South;
}

}  // namespace

bool l_path_certified(const grid::NodeGrid<FaultDistanceVector>& vectors,
                      const grid::NodeGrid<Safety>& safety, mesh::Coord src,
                      mesh::Coord dst) {
  const mesh::Mesh2D& m = safety.topology();
  if (!m.contains(src) || !m.contains(dst)) return false;
  if (safety[src] == Safety::Unsafe || safety[dst] == Safety::Unsafe) {
    return false;
  }
  const std::int32_t adx = std::abs(dst.x - src.x);
  const std::int32_t ady = std::abs(dst.y - src.y);
  if (adx == 0 && ady == 0) return true;

  // Straight-line cases.
  if (ady == 0) {
    return vectors[src][toward(src, dst, mesh::Dim::X)] >= adx;
  }
  if (adx == 0) {
    return vectors[src][toward(src, dst, mesh::Dim::Y)] >= ady;
  }

  // X-first L: row run covers the corner, then the corner's column run
  // covers the destination.
  const mesh::Coord corner_x{dst.x, src.y};
  const bool x_first =
      vectors[src][toward(src, dst, mesh::Dim::X)] >= adx &&
      vectors[corner_x][toward(corner_x, dst, mesh::Dim::Y)] >= ady;
  if (x_first) return true;

  // Y-first L.
  const mesh::Coord corner_y{src.x, dst.y};
  return vectors[src][toward(src, dst, mesh::Dim::Y)] >= ady &&
         vectors[corner_y][toward(corner_y, dst, mesh::Dim::X)] >= adx;
}

}  // namespace ocp::labeling
