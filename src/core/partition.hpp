// The paper's open problem (section 4): "For a given faulty block, find a
// set of orthogonal convex polygons that covers all the faults in the block
// and contains a minimum number of nonfaulty nodes." The optimal version is
// conjectured NP-complete [Chen, private communication in the paper]; the
// paper notes that disabled regions like Figures 1 (c)/(d) can sometimes be
// partitioned further, removing more nonfaulty nodes.
//
// Two notions of a valid multi-polygon cover are supported:
//
//  * `CoverRule::Separated` — polygons pairwise non-8-adjacent (Chebyshev
//    distance >= 2). Each polygon then behaves as an independent fault
//    region under the labeling and routing rules. Under this rule the
//    disabled regions produced by the pipeline are already optimal in
//    practice: the labeling itself performs every separated split.
//  * `CoverRule::Touching` — polygons merely pairwise disjoint; adjacent
//    polygons are allowed. This is the reading under which the paper's
//    "a disabled region can be further partitioned" remark applies: a
//    zig-zag region can be cut into touching convex pieces that drop all
//    of its healthy nodes. A router must then treat touching pieces with
//    region-aware turn rules (Chalasani-Boppana style).
//
// Solvers: an exhaustive optimum for small fault sets (set-partition
// enumeration, Bell-number growth) and greedy heuristics for arbitrary
// sizes (gap splitting for Separated, best-cut recursion for Touching).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/region.hpp"

namespace ocp::labeling {

/// Which polygon arrangements count as a valid cover.
enum class CoverRule : std::uint8_t { Separated = 0, Touching = 1 };

[[nodiscard]] const char* to_string(CoverRule rule) noexcept;

/// A cover of a fault set by orthogonal convex polygons.
struct PolygonCover {
  std::vector<geom::Region> polygons;
  /// Total cells across all polygons minus the fault count: the healthy
  /// nodes the cover sacrifices.
  std::size_t nonfaulty_cells = 0;

  [[nodiscard]] std::size_t polygon_count() const noexcept {
    return polygons.size();
  }
};

/// True when `polygons` is a valid cover of `faults` under `rule`: every
/// fault inside some polygon, every polygon a connected (8-conn) orthogonal
/// convex region, and polygons pairwise separated (Separated) or at least
/// disjoint (Touching).
[[nodiscard]] bool is_valid_cover(const geom::Region& faults,
                                  const std::vector<geom::Region>& polygons,
                                  CoverRule rule = CoverRule::Separated);

/// The baseline cover: the rectilinear convex closure of the fault set,
/// split into its 8-connected components. For the faults of one disabled
/// region the closure is a single polygon (Theorem 2); for scattered fault
/// sets each component is still orthogonal convex and components are
/// pairwise non-8-adjacent, so the result is valid under both rules.
[[nodiscard]] PolygonCover closure_cover(const geom::Region& faults);

/// Exhaustive optimum over all set partitions of the fault cells under
/// `rule`. Each part is covered by its rectilinear convex closure (the
/// minimal choice for a fixed part). Cost grows with the Bell number of
/// |faults|; callers should keep |faults| <= ~10. Larger inputs fall back
/// to the greedy solver for the same rule.
[[nodiscard]] PolygonCover optimal_cover_exhaustive(
    const geom::Region& faults, CoverRule rule = CoverRule::Separated,
    std::size_t max_faults = 10);

/// Greedy splitter for `CoverRule::Separated`: recursively split fault
/// clusters along empty rows/columns of their bounding boxes (such splits
/// are always valid and always remove at least one healthy cell).
[[nodiscard]] PolygonCover greedy_gap_cover(const geom::Region& faults);

/// Greedy splitter for `CoverRule::Touching`: recursively apply the
/// axis-aligned cut (between two adjacent rows or columns) that most
/// reduces the total closure size; stop when no cut helps. Touching pieces
/// are allowed, so this can cut zig-zag chains the Separated rule cannot.
[[nodiscard]] PolygonCover greedy_cut_cover(const geom::Region& faults);

}  // namespace ocp::labeling
