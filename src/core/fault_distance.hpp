// Directional fault-distance vectors — the aggregated fault information
// that limited-global-information routing schemes (Wu's extended safety
// levels [9] and successors) build on.
//
// Every nonfaulty node learns, for each of the four directions, how many
// hops its straight row/column run extends before hitting an unsafe node
// (or the machine boundary). The information is gathered the same way the
// labeling itself is: iterative message exchanges with neighbors, one hop
// of extra visibility per round. With these vectors a source can locally
// certify minimal L-shaped paths (see `l_path_certified`), which is the
// mechanism behind minimal routing with limited fault information.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

#include "core/status.hpp"
#include "grid/cell_set.hpp"
#include "grid/node_grid.hpp"
#include "simkernel/protocol.hpp"

namespace ocp::labeling {

/// Per-direction clear-run lengths. `run[d]` counts the consecutive
/// non-unsafe nodes strictly in direction `d` before the first unsafe node;
/// runs ending at the machine boundary are clamped to `kUnbounded` (no
/// unsafe node that way at all).
struct FaultDistanceVector {
  static constexpr std::int32_t kUnbounded =
      std::numeric_limits<std::int32_t>::max() / 2;

  std::array<std::int32_t, mesh::kNumDirs> run{};

  [[nodiscard]] std::int32_t operator[](mesh::Dir d) const noexcept {
    return run[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::int32_t& operator[](mesh::Dir d) noexcept {
    return run[static_cast<std::size_t>(d)];
  }

  friend constexpr bool operator==(const FaultDistanceVector&,
                                   const FaultDistanceVector&) = default;
};

/// Node-local protocol computing the vectors by neighbor exchanges. State
/// values only ever decrease (they start unbounded), so the computation is
/// monotone and schedule-independent like the labeling itself.
class FaultDistanceProtocol {
 public:
  struct State {
    Safety safety = Safety::Safe;
    Health health = Health::Nonfaulty;
    FaultDistanceVector vector;

    friend constexpr bool operator==(const State&, const State&) = default;
  };
  struct Message {
    Safety safety = Safety::Safe;
    FaultDistanceVector vector;
  };

  FaultDistanceProtocol(const grid::CellSet& faults,
                        const grid::NodeGrid<Safety>& safety)
      : faults_(&faults), safety_(&safety) {}

  [[nodiscard]] State init(mesh::Coord c) const {
    State s;
    s.health = faults_->contains(c) ? Health::Faulty : Health::Nonfaulty;
    s.safety = (*safety_)[c];
    s.vector.run.fill(FaultDistanceVector::kUnbounded);
    return s;
  }

  [[nodiscard]] Message announce(const State& s) const {
    return {s.safety, s.vector};
  }

  /// Ghost nodes are safe with unbounded runs (a run reaching the mesh
  /// boundary never meets an unsafe node).
  [[nodiscard]] Message ghost_message() const {
    Message msg;
    msg.vector.run.fill(FaultDistanceVector::kUnbounded);
    return msg;
  }

  [[nodiscard]] bool participates(const State& s) const noexcept {
    return s.health == Health::Nonfaulty;
  }

  [[nodiscard]] bool update(State& s, const sim::Inbox<Message>& inbox) const {
    bool changed = false;
    for (mesh::Dir d : mesh::kAllDirs) {
      const Message& m = inbox[d];
      const std::int32_t candidate =
          m.safety == Safety::Unsafe
              ? 0
              : std::min(FaultDistanceVector::kUnbounded, m.vector[d] + 1);
      if (candidate < s.vector[d]) {
        s.vector[d] = candidate;
        changed = true;
      }
    }
    return changed;
  }

 private:
  const grid::CellSet* faults_;           // non-owning
  const grid::NodeGrid<Safety>* safety_;  // non-owning
};

static_assert(sim::SyncProtocol<FaultDistanceProtocol>);

/// Convenience: runs the protocol to quiescence and extracts the vectors
/// (faulty nodes keep all-unbounded placeholders).
[[nodiscard]] grid::NodeGrid<FaultDistanceVector> compute_fault_distances(
    const grid::CellSet& faults, const grid::NodeGrid<Safety>& safety,
    sim::RoundStats* stats = nullptr);

/// Certifies a minimal L-shaped path from `src` to `dst` (one dimension
/// fully corrected, then the other) using only the vectors at `src` and at
/// the turning corner. Sufficient, not necessary: a certified pair always
/// has a minimal path over non-unsafe nodes, but staircase paths are not
/// covered. This is the locally-checkable test limited-information routing
/// uses before committing to a minimal route.
[[nodiscard]] bool l_path_certified(
    const grid::NodeGrid<FaultDistanceVector>& vectors,
    const grid::NodeGrid<Safety>& safety, mesh::Coord src, mesh::Coord dst);

}  // namespace ocp::labeling
