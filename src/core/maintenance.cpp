#include "core/maintenance.hpp"

#include <queue>
#include <vector>

#include "core/reference.hpp"

namespace ocp::labeling {

namespace {

Safety safety_at(const grid::NodeGrid<Safety>& g, mesh::Coord c) {
  const mesh::Mesh2D& m = g.topology();
  if (m.contains(c)) return g[c];
  if (m.is_torus()) return g[m.wrap(c)];
  return Safety::Safe;  // ghost
}

/// Definition 2a/2b: does the unsafe rule fire for nonfaulty node `c` under
/// the current safety labeling?
bool rule_fires(SafeUnsafeDef def, const grid::NodeGrid<Safety>& safety,
                mesh::Coord c) {
  if (def == SafeUnsafeDef::Def2a) {
    int unsafe_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (safety_at(safety, c.step(d)) == Safety::Unsafe) {
        ++unsafe_neighbors;
      }
    }
    return unsafe_neighbors >= 2;
  }
  const bool ux =
      safety_at(safety, c.step(mesh::Dir::East)) == Safety::Unsafe ||
      safety_at(safety, c.step(mesh::Dir::West)) == Safety::Unsafe;
  const bool uy =
      safety_at(safety, c.step(mesh::Dir::North)) == Safety::Unsafe ||
      safety_at(safety, c.step(mesh::Dir::South)) == Safety::Unsafe;
  return ux && uy;
}

}  // namespace

MaintainedLabeling::MaintainedLabeling(grid::CellSet faults,
                                       SafeUnsafeDef def)
    : def_(def),
      faults_(std::move(faults)),
      safety_(reference_safety(faults_, def)),
      activation_(reference_activation(faults_, safety_)) {
  refresh_regions();
}

std::size_t MaintainedLabeling::add_fault(mesh::Coord node) {
  const mesh::Mesh2D& m = faults_.topology();
  if (!m.contains(node) || faults_.contains(node)) return 0;
  faults_.insert(node);

  // Incremental phase one: the rule is monotone in the fault set, so
  // resuming the worklist from the new unsafe node reaches the fixpoint of
  // the enlarged instance. This mirrors what the distributed system does —
  // only the neighborhood of the new fault exchanges messages.
  std::size_t changed = 0;
  std::queue<mesh::Coord> worklist;
  if (safety_[node] != Safety::Unsafe) {
    safety_[node] = Safety::Unsafe;
    ++changed;
  }
  worklist.push(node);

  while (!worklist.empty()) {
    const mesh::Coord u = worklist.front();
    worklist.pop();
    for (const mesh::Link& l : m.neighbors(u)) {
      if (safety_[l.to] == Safety::Unsafe || faults_.contains(l.to)) continue;
      if (rule_fires(def_, safety_, l.to)) {
        safety_[l.to] = Safety::Unsafe;
        ++changed;
        worklist.push(l.to);
      }
    }
  }

  // Phase two is not monotone in the fault set: re-derive it from the new
  // safety labeling. (The reference solver is O(N); a distributed system
  // would rerun Definition 3 inside the affected blocks only.)
  activation_ = reference_activation(faults_, safety_);
  refresh_regions();
  return changed;
}

std::size_t MaintainedLabeling::remove_fault(mesh::Coord node) {
  const mesh::Mesh2D& m = faults_.topology();
  if (!m.contains(node) || !faults_.contains(node)) return 0;
  faults_.erase(node);

  // The faulty block the node belonged to: the maximal 4-connected unsafe
  // component around it. Unsafe labels derive only from faults of their own
  // component (every derived-unsafe node has an unsafe 4-neighbor, so
  // support chains never leave the component), and cells adjacent to the
  // component are safe and — by monotonicity in the fault set — stay safe
  // after the removal. The repair is therefore exact when confined to the
  // block: reset it, then re-close the fixpoint from its remaining faults.
  std::vector<mesh::Coord> block;
  {
    grid::CellSet seen(m);
    std::queue<mesh::Coord> bfs;
    bfs.push(node);
    seen.insert(node);
    while (!bfs.empty()) {
      const mesh::Coord u = bfs.front();
      bfs.pop();
      block.push_back(u);
      for (const mesh::Link& l : m.neighbors(u)) {
        if (seen.contains(l.to) || safety_[l.to] != Safety::Unsafe) continue;
        seen.insert(l.to);
        bfs.push(l.to);
      }
    }
  }

  const grid::NodeGrid<Safety> before = safety_;

  // Reset: remaining faults stay unsafe and seed the closure.
  std::queue<mesh::Coord> worklist;
  for (mesh::Coord c : block) {
    if (faults_.contains(c)) {
      safety_[c] = Safety::Unsafe;
      worklist.push(c);
    } else {
      safety_[c] = Safety::Safe;
    }
  }

  // Same worklist closure as `add_fault`: a cell turns unsafe only when the
  // rule fires on the current labeling, and every flip re-examines its
  // neighborhood. Propagation cannot escape the old block (its surroundings
  // are safe before and after), so the loop is local in practice.
  while (!worklist.empty()) {
    const mesh::Coord u = worklist.front();
    worklist.pop();
    for (const mesh::Link& l : m.neighbors(u)) {
      if (safety_[l.to] == Safety::Unsafe || faults_.contains(l.to)) continue;
      if (rule_fires(def_, safety_, l.to)) {
        safety_[l.to] = Safety::Unsafe;
        worklist.push(l.to);
      }
    }
  }

  std::size_t changed = 0;
  for (mesh::Coord c : block) {
    if (safety_[c] != before[c]) ++changed;
  }

  // Phase two is not monotone in the fault set in either direction:
  // re-derive it from the repaired safety labeling, exactly like add_fault.
  activation_ = reference_activation(faults_, safety_);
  refresh_regions();
  return changed;
}

void MaintainedLabeling::refresh_regions() {
  blocks_ = extract_faulty_blocks(faults_, safety_);
  regions_ = extract_disabled_regions(faults_, activation_, blocks_);
}

}  // namespace ocp::labeling
