#include "core/maintenance.hpp"

#include <queue>

#include "core/reference.hpp"

namespace ocp::labeling {

namespace {

Safety safety_at(const grid::NodeGrid<Safety>& g, mesh::Coord c) {
  const mesh::Mesh2D& m = g.topology();
  if (m.contains(c)) return g[c];
  if (m.is_torus()) return g[m.wrap(c)];
  return Safety::Safe;  // ghost
}

}  // namespace

MaintainedLabeling::MaintainedLabeling(grid::CellSet faults,
                                       SafeUnsafeDef def)
    : def_(def),
      faults_(std::move(faults)),
      safety_(reference_safety(faults_, def)),
      activation_(reference_activation(faults_, safety_)) {
  refresh_regions();
}

std::size_t MaintainedLabeling::add_fault(mesh::Coord node) {
  const mesh::Mesh2D& m = faults_.topology();
  if (!m.contains(node) || faults_.contains(node)) return 0;
  faults_.insert(node);

  // Incremental phase one: the rule is monotone in the fault set, so
  // resuming the worklist from the new unsafe node reaches the fixpoint of
  // the enlarged instance. This mirrors what the distributed system does —
  // only the neighborhood of the new fault exchanges messages.
  std::size_t changed = 0;
  std::queue<mesh::Coord> worklist;
  if (safety_[node] != Safety::Unsafe) {
    safety_[node] = Safety::Unsafe;
    ++changed;
  }
  worklist.push(node);

  const auto rule_fires = [&](mesh::Coord c) {
    if (def_ == SafeUnsafeDef::Def2a) {
      int unsafe_neighbors = 0;
      for (mesh::Dir d : mesh::kAllDirs) {
        if (safety_at(safety_, c.step(d)) == Safety::Unsafe) {
          ++unsafe_neighbors;
        }
      }
      return unsafe_neighbors >= 2;
    }
    const bool ux =
        safety_at(safety_, c.step(mesh::Dir::East)) == Safety::Unsafe ||
        safety_at(safety_, c.step(mesh::Dir::West)) == Safety::Unsafe;
    const bool uy =
        safety_at(safety_, c.step(mesh::Dir::North)) == Safety::Unsafe ||
        safety_at(safety_, c.step(mesh::Dir::South)) == Safety::Unsafe;
    return ux && uy;
  };

  while (!worklist.empty()) {
    const mesh::Coord u = worklist.front();
    worklist.pop();
    for (const mesh::Link& l : m.neighbors(u)) {
      if (safety_[l.to] == Safety::Unsafe || faults_.contains(l.to)) continue;
      if (rule_fires(l.to)) {
        safety_[l.to] = Safety::Unsafe;
        ++changed;
        worklist.push(l.to);
      }
    }
  }

  // Phase two is not monotone in the fault set: re-derive it from the new
  // safety labeling. (The reference solver is O(N); a distributed system
  // would rerun Definition 3 inside the affected blocks only.)
  activation_ = reference_activation(faults_, safety_);
  refresh_regions();
  return changed;
}

void MaintainedLabeling::refresh_regions() {
  blocks_ = extract_faulty_blocks(faults_, safety_);
  regions_ = extract_disabled_regions(faults_, activation_, blocks_);
}

}  // namespace ocp::labeling
