#include "core/maintenance.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>
#include <vector>

#include "core/reference.hpp"

namespace ocp::labeling {

namespace {

Safety safety_at(const grid::NodeGrid<Safety>& g, mesh::Coord c) {
  const mesh::Mesh2D& m = g.topology();
  if (m.contains(c)) return g[c];
  if (m.is_torus()) return g[m.wrap(c)];
  return Safety::Safe;  // ghost
}

Activation activation_at(const grid::NodeGrid<Activation>& g, mesh::Coord c) {
  const mesh::Mesh2D& m = g.topology();
  if (m.contains(c)) return g[c];
  if (m.is_torus()) return g[m.wrap(c)];
  return Activation::Enabled;  // ghost
}

/// Definition 2a/2b: does the unsafe rule fire for nonfaulty node `c` under
/// the current safety labeling?
bool rule_fires(SafeUnsafeDef def, const grid::NodeGrid<Safety>& safety,
                mesh::Coord c) {
  if (def == SafeUnsafeDef::Def2a) {
    int unsafe_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (safety_at(safety, c.step(d)) == Safety::Unsafe) {
        ++unsafe_neighbors;
      }
    }
    return unsafe_neighbors >= 2;
  }
  const bool ux =
      safety_at(safety, c.step(mesh::Dir::East)) == Safety::Unsafe ||
      safety_at(safety, c.step(mesh::Dir::West)) == Safety::Unsafe;
  const bool uy =
      safety_at(safety, c.step(mesh::Dir::North)) == Safety::Unsafe ||
      safety_at(safety, c.step(mesh::Dir::South)) == Safety::Unsafe;
  return ux && uy;
}

/// Minimum row-major node index over a component's physical cells — the
/// extraction-order sort key of `grid::connected_components` (each
/// component is seeded at exactly this cell).
std::size_t min_phys_index(const mesh::Mesh2D& m,
                           const grid::Component& comp) {
  std::size_t best = static_cast<std::size_t>(m.node_count());
  for (mesh::Coord c : comp.cells()) best = std::min(best, m.index(c));
  return best;
}

}  // namespace

MaintainedLabeling::MaintainedLabeling(grid::CellSet faults,
                                       SafeUnsafeDef def)
    : def_(def),
      faults_(std::move(faults)),
      safety_(reference_safety(faults_, def)),
      activation_(reference_activation(faults_, safety_)),
      disabled_(faults_.topology()),
      block_index_(faults_.topology(), -1),
      region_key_(faults_.topology(), -1),
      visit_scratch_(static_cast<std::size_t>(faults_.topology().node_count()),
                     0),
      area_unsafe_scratch_(faults_.topology()),
      area_disabled_scratch_(faults_.topology()) {
  refresh_regions();
}

EventDelta MaintainedLabeling::add_fault(mesh::Coord node) {
  EventDelta delta;
  const mesh::Mesh2D& m = faults_.topology();
  if (!m.contains(node) || faults_.contains(node)) return delta;
  faults_.insert(node);

  // Incremental phase one: the rule is monotone in the fault set, so
  // resuming the worklist from the new unsafe node reaches the fixpoint of
  // the enlarged instance. This mirrors what the distributed system does —
  // only the neighborhood of the new fault exchanges messages. The worklist
  // is a flat vector with a read cursor: same FIFO order as a queue without
  // the per-event deque allocation.
  std::vector<mesh::Coord>& worklist = worklist_scratch_;
  worklist.clear();
  if (safety_[node] != Safety::Unsafe) {
    safety_[node] = Safety::Unsafe;
    ++delta.safety_changed;
  }
  worklist.push_back(node);

  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const mesh::Coord u = worklist[head];
    for (const mesh::Link& l : m.neighbors(u)) {
      if (safety_[l.to] == Safety::Unsafe || faults_.contains(l.to)) continue;
      if (rule_fires(def_, safety_, l.to)) {
        safety_[l.to] = Safety::Unsafe;
        ++delta.safety_changed;
        worklist.push_back(l.to);
      }
    }
  }

  // The affected area is the merged unsafe component around the new fault:
  // every safety flip is chained to the fault through unsafe cells, so any
  // pre-existing block it touched has been absorbed into this component,
  // and nothing outside it changed. `visit_scratch_` is all-zero on entry
  // and restored to zeros below (every visited cell lands in `area`).
  std::vector<mesh::Coord> area;
  visit_scratch_[m.index(node)] = 1;
  area.push_back(node);
  for (std::size_t head = 0; head < area.size(); ++head) {
    const mesh::Coord u = area[head];
    for (const mesh::Link& l : m.neighbors(u)) {
      if (visit_scratch_[m.index(l.to)] != 0 ||
          safety_[l.to] != Safety::Unsafe) {
        continue;
      }
      visit_scratch_[m.index(l.to)] = 1;
      area.push_back(l.to);
    }
  }
  for (const mesh::Coord c : area) visit_scratch_[m.index(c)] = 0;

  rebuild_area(std::move(area), delta);
  return delta;
}

EventDelta MaintainedLabeling::remove_fault(mesh::Coord node) {
  EventDelta delta;
  const mesh::Mesh2D& m = faults_.topology();
  if (!m.contains(node) || !faults_.contains(node)) return delta;
  faults_.erase(node);

  // The faulty block the node belonged to: the maximal 4-connected unsafe
  // component around it. Unsafe labels derive only from faults of their own
  // component (every derived-unsafe node has an unsafe 4-neighbor, so
  // support chains never leave the component), and cells adjacent to the
  // component are safe and — by monotonicity in the fault set — stay safe
  // after the removal. The repair is therefore exact when confined to the
  // block: reset it, then re-close the fixpoint from its remaining faults.
  std::vector<mesh::Coord> footprint;
  visit_scratch_[m.index(node)] = 1;
  footprint.push_back(node);
  for (std::size_t head = 0; head < footprint.size(); ++head) {
    const mesh::Coord u = footprint[head];
    for (const mesh::Link& l : m.neighbors(u)) {
      if (visit_scratch_[m.index(l.to)] != 0 ||
          safety_[l.to] != Safety::Unsafe) {
        continue;
      }
      visit_scratch_[m.index(l.to)] = 1;
      footprint.push_back(l.to);
    }
  }
  for (const mesh::Coord c : footprint) visit_scratch_[m.index(c)] = 0;

  // Reset: remaining faults stay unsafe and seed the closure.
  std::vector<mesh::Coord>& worklist = worklist_scratch_;
  worklist.clear();
  for (mesh::Coord c : footprint) {
    if (faults_.contains(c)) {
      safety_[c] = Safety::Unsafe;
      worklist.push_back(c);
    } else {
      safety_[c] = Safety::Safe;
    }
  }

  // Same worklist closure as `add_fault`: a cell turns unsafe only when the
  // rule fires on the current labeling, and every flip re-examines its
  // neighborhood. Propagation cannot escape the old block (its surroundings
  // are safe before and after), so the loop is local by construction.
  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const mesh::Coord u = worklist[head];
    for (const mesh::Link& l : m.neighbors(u)) {
      if (safety_[l.to] == Safety::Unsafe || faults_.contains(l.to)) continue;
      if (rule_fires(def_, safety_, l.to)) {
        safety_[l.to] = Safety::Unsafe;
        worklist.push_back(l.to);
      }
    }
  }

  // Every footprint cell was unsafe before the repair, so the flips are
  // exactly the cells that came back safe.
  for (mesh::Coord c : footprint) {
    if (safety_[c] == Safety::Safe) ++delta.safety_changed;
  }

  rebuild_area(std::move(footprint), delta);
  return delta;
}

void MaintainedLabeling::rebuild_area(std::vector<mesh::Coord> area,
                                      EventDelta& delta) {
  const mesh::Mesh2D& m = faults_.topology();

  // Old blocks absorbed by the event: each one either lies entirely inside
  // the area (it merged into the new component, or it is the block being
  // repaired) or is disjoint from it, because blocks are maximal.
  std::vector<std::int32_t>& removed = removed_scratch_;
  removed.clear();
  for (mesh::Coord c : area) {
    const std::int32_t b = block_index_[c];
    if (b >= 0 &&
        std::find(removed.begin(), removed.end(), b) == removed.end()) {
      removed.push_back(b);
    }
  }
  std::sort(removed.begin(), removed.end());
  const auto was_removed = [&removed](std::size_t b) {
    return std::binary_search(removed.begin(), removed.end(),
                              static_cast<std::int32_t>(b));
  };

  // Phase two, locally: Definition 3's activation closure of an unsafe
  // component depends only on the component — its 4-neighborhood is safe
  // and therefore permanently enabled — and the closure of a monotone rule
  // is order-independent, so re-deriving it inside the area reproduces the
  // global fixpoint bit for bit.
  std::vector<Activation>& old_act = old_act_scratch_;
  old_act.clear();
  old_act.reserve(area.size());
  for (mesh::Coord c : area) {
    old_act.push_back(activation_[c]);
    activation_[c] = safety_[c] == Safety::Unsafe ? Activation::Disabled
                                                  : Activation::Enabled;
  }
  const auto can_enable = [this](mesh::Coord c) {
    if (faults_.contains(c)) return false;
    if (safety_[c] == Safety::Safe) return false;       // already enabled
    if (activation_[c] == Activation::Enabled) return false;  // monotone
    int enabled_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (activation_at(activation_, c.step(d)) == Activation::Enabled) {
        ++enabled_neighbors;
      }
    }
    return enabled_neighbors >= 2;
  };
  std::vector<mesh::Coord>& worklist = worklist_scratch_;
  worklist.clear();
  for (mesh::Coord c : area) {
    if (can_enable(c)) {
      activation_[c] = Activation::Enabled;
      worklist.push_back(c);
    }
  }
  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const mesh::Coord u = worklist[head];
    for (const mesh::Link& l : m.neighbors(u)) {
      if (can_enable(l.to)) {
        activation_[l.to] = Activation::Enabled;
        worklist.push_back(l.to);
      }
    }
  }
  for (std::size_t i = 0; i < area.size(); ++i) {
    if (activation_[area[i]] == old_act[i]) continue;
    ++delta.activation_changed;
    if (activation_[area[i]] == Activation::Disabled) {
      disabled_.insert(area[i]);
    } else {
      disabled_.erase(area[i]);
    }
  }

  // Re-extract blocks and regions inside the area with the same component
  // walker the from-scratch pipeline uses; seeded on a set holding only the
  // area's cells it produces bit-identical components in min-index order.
  // The scratch sets are emptied cell by cell below — never O(mesh).
  grid::CellSet& area_unsafe = area_unsafe_scratch_;
  grid::CellSet& area_disabled = area_disabled_scratch_;
  for (mesh::Coord c : area) {
    if (safety_[c] == Safety::Unsafe) area_unsafe.insert(c);
    if (activation_[c] == Activation::Disabled) area_disabled.insert(c);
  }
  std::vector<FaultyBlock> new_blocks;
  for (auto& comp : grid::connected_components_seeded(
           area_unsafe, grid::Connectivity::Four, area, component_scratch_)) {
    FaultyBlock block;
    for (mesh::Coord cell : comp.cells()) {
      if (faults_.contains(cell)) {
        ++block.fault_count;
      } else {
        ++block.unsafe_nonfaulty_count;
      }
    }
    block.component = std::move(comp);
    new_blocks.push_back(std::move(block));
  }
  std::vector<DisabledRegion> new_regions;
  for (auto& comp : grid::connected_components_seeded(
           area_disabled, grid::Connectivity::Eight, area,
           component_scratch_)) {
    DisabledRegion region;
    for (mesh::Coord cell : comp.cells()) {
      if (faults_.contains(cell)) {
        ++region.fault_count;
      } else {
        ++region.disabled_nonfaulty_count;
      }
    }
    region.component = std::move(comp);
    new_regions.push_back(std::move(region));
  }
  for (mesh::Coord c : area) {
    area_unsafe.erase(c);
    area_disabled.erase(c);
  }

  // Splice the block list. Surviving entries are identified across the
  // renumbering by their min-index sort key, which the event cannot have
  // changed (their cells are untouched).
  std::vector<std::size_t> removed_parent_keys;
  removed_parent_keys.reserve(removed.size());
  for (const std::int32_t b : removed) {
    removed_parent_keys.push_back(block_mins_[static_cast<std::size_t>(b)]);
  }
  std::vector<std::size_t>& surviving_region_parent_keys = parent_keys_scratch_;
  surviving_region_parent_keys.clear();
  surviving_region_parent_keys.reserve(regions_.size());
  for (const DisabledRegion& region : regions_) {
    surviving_region_parent_keys.push_back(
        was_removed(region.parent_block)
            ? static_cast<std::size_t>(-1)
            : block_mins_[region.parent_block]);
  }
  std::size_t first_touched = blocks_.size();
  for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
    const auto b = static_cast<std::size_t>(*it);
    blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(b));
    block_mins_.erase(block_mins_.begin() + static_cast<std::ptrdiff_t>(b));
    first_touched = b;
  }
  for (mesh::Coord c : area) block_index_[c] = -1;
  for (FaultyBlock& block : new_blocks) {
    const std::size_t key = min_phys_index(m, block.component);
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(block_mins_.begin(), block_mins_.end(), key) -
        block_mins_.begin());
    blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::move(block));
    block_mins_.insert(block_mins_.begin() + static_cast<std::ptrdiff_t>(pos),
                       key);
    first_touched = std::min(first_touched, pos);
  }
  // Renumber: every block at or past the first edit may have shifted.
  for (std::size_t b = first_touched; b < blocks_.size(); ++b) {
    for (mesh::Coord cell : blocks_[b].component.cells()) {
      block_index_[cell] = static_cast<std::int32_t>(b);
    }
  }

  // Splice the region list the same way. Regions of removed blocks are
  // exactly the regions re-derived above (disabled cells never leave their
  // block, and distinct blocks are never 8-adjacent under Def 2a/2b).
  for (std::size_t r = regions_.size(); r-- > 0;) {
    if (surviving_region_parent_keys[r] == static_cast<std::size_t>(-1)) {
      regions_.erase(regions_.begin() + static_cast<std::ptrdiff_t>(r));
      region_mins_.erase(region_mins_.begin() +
                         static_cast<std::ptrdiff_t>(r));
      surviving_region_parent_keys.erase(
          surviving_region_parent_keys.begin() +
          static_cast<std::ptrdiff_t>(r));
    }
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const auto it =
        std::lower_bound(block_mins_.begin(), block_mins_.end(),
                         surviving_region_parent_keys[r]);
    assert(it != block_mins_.end() &&
           *it == surviving_region_parent_keys[r] &&
           "a surviving region's parent block must survive too");
    regions_[r].parent_block =
        static_cast<std::size_t>(it - block_mins_.begin());
  }
  for (mesh::Coord c : area) region_key_[c] = -1;
  for (DisabledRegion& region : new_regions) {
    const std::size_t key = min_phys_index(m, region.component);
    const std::int32_t parent = block_index_[region.component.cells().front()];
    assert(parent >= 0 && "disabled cells live inside a faulty block");
    region.parent_block = static_cast<std::size_t>(parent);
    for (mesh::Coord cell : region.component.cells()) {
      region_key_[cell] = static_cast<std::int32_t>(key);
    }
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(region_mins_.begin(), region_mins_.end(), key) -
        region_mins_.begin());
    regions_.insert(regions_.begin() + static_cast<std::ptrdiff_t>(pos),
                    std::move(region));
    region_mins_.insert(region_mins_.begin() +
                        static_cast<std::ptrdiff_t>(pos), key);
  }

  delta.dirty_cells = std::move(area);
}

void MaintainedLabeling::refresh_regions() {
  const mesh::Mesh2D& m = faults_.topology();
  blocks_ = extract_faulty_blocks(faults_, safety_);
  regions_ = extract_disabled_regions(faults_, activation_, blocks_);
  disabled_ = disabled_cells(activation_);
  block_index_ = grid::NodeGrid<std::int32_t>(m, -1);
  region_key_ = grid::NodeGrid<std::int32_t>(m, -1);
  block_mins_.clear();
  region_mins_.clear();
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    block_mins_.push_back(min_phys_index(m, blocks_[b].component));
    for (mesh::Coord cell : blocks_[b].component.cells()) {
      block_index_[cell] = static_cast<std::int32_t>(b);
    }
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const std::size_t key = min_phys_index(m, regions_[r].component);
    region_mins_.push_back(key);
    for (mesh::Coord cell : regions_[r].component.cells()) {
      region_key_[cell] = static_cast<std::int32_t>(key);
    }
  }
}

}  // namespace ocp::labeling
