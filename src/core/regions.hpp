// Extraction of faulty blocks and disabled regions from labelings.
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.hpp"
#include "grid/cell_set.hpp"
#include "grid/connectivity.hpp"
#include "grid/node_grid.hpp"

namespace ocp::labeling {

/// A faulty block: a maximal 4-connected set of unsafe nodes (paper,
/// section 3). Under Definitions 2a/2b every faulty block is a rectangle.
struct FaultyBlock {
  grid::Component component;
  /// Number of faulty cells in the block.
  std::size_t fault_count = 0;
  /// Number of unsafe-but-nonfaulty cells in the block (the nodes the
  /// rectangle model sacrifices; phase two tries to win them back).
  std::size_t unsafe_nonfaulty_count = 0;

  [[nodiscard]] const geom::Region& region() const noexcept {
    return component.region;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return component.region.size();
  }
};

/// A disabled region: a maximal 8-connected set of disabled nodes left after
/// phase two. Theorem 1: each is an orthogonal convex polygon.
struct DisabledRegion {
  grid::Component component;
  /// Index into the faulty-block vector of the block this region descends
  /// from (every disabled node is unsafe, so the parent is unique).
  std::size_t parent_block = 0;
  std::size_t fault_count = 0;
  /// Nonfaulty nodes still sacrificed by the refined model.
  std::size_t disabled_nonfaulty_count = 0;

  [[nodiscard]] const geom::Region& region() const noexcept {
    return component.region;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return component.region.size();
  }
};

/// Groups unsafe nodes into faulty blocks and annotates fault content.
[[nodiscard]] std::vector<FaultyBlock> extract_faulty_blocks(
    const grid::CellSet& faults, const grid::NodeGrid<Safety>& safety);

/// Groups disabled nodes into disabled regions, annotates fault content and
/// resolves each region's parent faulty block.
[[nodiscard]] std::vector<DisabledRegion> extract_disabled_regions(
    const grid::CellSet& faults, const grid::NodeGrid<Activation>& activation,
    const std::vector<FaultyBlock>& blocks);

/// The set of unsafe cells of a safety labeling (faulty and nonfaulty).
[[nodiscard]] grid::CellSet unsafe_cells(const grid::NodeGrid<Safety>& safety);

/// The set of disabled cells of an activation labeling.
[[nodiscard]] grid::CellSet disabled_cells(
    const grid::NodeGrid<Activation>& activation);

}  // namespace ocp::labeling
