#include "core/pipeline.hpp"

#include "core/reference.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::labeling {

std::size_t PipelineResult::unsafe_nonfaulty_total() const {
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.unsafe_nonfaulty_count;
  return total;
}

std::size_t PipelineResult::disabled_nonfaulty_total() const {
  std::size_t total = 0;
  for (const auto& r : regions) total += r.disabled_nonfaulty_count;
  return total;
}

std::size_t PipelineResult::enabled_total() const {
  return unsafe_nonfaulty_total() - disabled_nonfaulty_total();
}

PipelineResult run_pipeline(const grid::CellSet& faults,
                            const PipelineOptions& opts) {
  const mesh::Mesh2D& m = faults.topology();
  sim::RunOptions run_opts;
  run_opts.mode = opts.run_mode;
  run_opts.parallel = opts.parallel;

  grid::NodeGrid<Safety> safety(m, Safety::Safe);
  grid::NodeGrid<Activation> activation(m, Activation::Enabled);
  sim::RoundStats safety_stats;
  sim::RoundStats activation_stats;

  if (opts.engine == Engine::Distributed) {
    // One adjacency table serves both phases — it depends only on topology,
    // so it is cached across pipeline runs on the same machine (Monte-Carlo
    // sweeps run thousands of pipelines per mesh shape).
    const mesh::AdjacencyTable& adj = mesh::AdjacencyTable::cached(m);

    const SafetyProtocol phase1(faults, opts.definition);
    auto r1 = sim::run_sync(adj, phase1, run_opts);
    safety_stats = r1.stats;
    for (std::size_t i = 0; i < safety.size(); ++i) {
      safety.at_index(i) = r1.states.at_index(i).safety;
    }

    const ActivationProtocol phase2(faults, safety);
    auto r2 = sim::run_sync(adj, phase2, run_opts);
    activation_stats = r2.stats;
    for (std::size_t i = 0; i < activation.size(); ++i) {
      activation.at_index(i) = r2.states.at_index(i).activation;
    }
  } else {
    safety = reference_safety(faults, opts.definition);
    activation = reference_activation(faults, safety);
  }

  PipelineResult result{std::move(safety), std::move(activation), {}, {},
                        safety_stats, activation_stats};
  result.blocks = extract_faulty_blocks(faults, result.safety);
  result.regions =
      extract_disabled_regions(faults, result.activation, result.blocks);
  return result;
}

}  // namespace ocp::labeling
