#include "core/pipeline.hpp"

#include "core/reference.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::labeling {

std::size_t PipelineResult::unsafe_nonfaulty_total() const {
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.unsafe_nonfaulty_count;
  return total;
}

std::size_t PipelineResult::disabled_nonfaulty_total() const {
  std::size_t total = 0;
  for (const auto& r : regions) total += r.disabled_nonfaulty_count;
  return total;
}

std::size_t PipelineResult::enabled_total() const {
  return unsafe_nonfaulty_total() - disabled_nonfaulty_total();
}

PipelineResult run_pipeline(const grid::CellSet& faults,
                            const PipelineOptions& opts) {
  const mesh::Mesh2D& m = faults.topology();
  const obs::Span pipeline_span(opts.trace, "pipeline.run");
  sim::RunOptions run_opts;
  run_opts.mode = opts.run_mode;
  run_opts.parallel = opts.parallel;
  run_opts.trace = opts.trace;

  grid::NodeGrid<Safety> safety(m, Safety::Safe);
  grid::NodeGrid<Activation> activation(m, Activation::Enabled);
  sim::RoundStats safety_stats;
  sim::RoundStats activation_stats;

  if (opts.engine == Engine::Distributed) {
    // One adjacency table serves both phases — it depends only on topology,
    // so it is cached across pipeline runs on the same machine (Monte-Carlo
    // sweeps run thousands of pipelines per mesh shape).
    const mesh::AdjacencyTable& adj = mesh::AdjacencyTable::cached(m);

    {
      const obs::Span phase_span(opts.trace, "pipeline.safety");
      const SafetyProtocol phase1(faults, opts.definition);
      auto r1 = sim::run_sync(adj, phase1, run_opts);
      safety_stats = r1.stats;
      for (std::size_t i = 0; i < safety.size(); ++i) {
        safety.at_index(i) = r1.states.at_index(i).safety;
      }
    }

    {
      const obs::Span phase_span(opts.trace, "pipeline.activation");
      const ActivationProtocol phase2(faults, safety);
      auto r2 = sim::run_sync(adj, phase2, run_opts);
      activation_stats = r2.stats;
      for (std::size_t i = 0; i < activation.size(); ++i) {
        activation.at_index(i) = r2.states.at_index(i).activation;
      }
    }
  } else {
    const obs::Span phase_span(opts.trace, "pipeline.reference");
    safety = reference_safety(faults, opts.definition);
    activation = reference_activation(faults, safety);
  }

  PipelineResult result{std::move(safety), std::move(activation), {}, {},
                        safety_stats, activation_stats};
  {
    const obs::Span extract_span(opts.trace, "pipeline.extract");
    result.blocks = extract_faulty_blocks(faults, result.safety);
    result.regions =
        extract_disabled_regions(faults, result.activation, result.blocks);
  }
  if (opts.trace.enabled()) {
    opts.trace.counter("pipeline.runs", 1);
    opts.trace.counter(
        "pipeline.nodes_flipped",
        static_cast<std::int64_t>(safety_stats.state_changes +
                                  activation_stats.state_changes));
    opts.trace.counter(
        "pipeline.messages_broadcast",
        static_cast<std::int64_t>(safety_stats.messages_broadcast +
                                  activation_stats.messages_broadcast));
    opts.trace.counter("pipeline.rounds",
                       safety_stats.rounds_to_quiesce +
                           activation_stats.rounds_to_quiesce);
    opts.trace.instant("pipeline.blocks",
                       static_cast<std::int64_t>(result.blocks.size()));
    opts.trace.instant("pipeline.regions",
                       static_cast<std::int64_t>(result.regions.size()));
  }
  return result;
}

}  // namespace ocp::labeling
