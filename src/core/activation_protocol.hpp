// Phase two: distributed enabled/disabled labeling (Definition 3, Wu's rule).
//
//   all unsafe nodes are initialized to disabled;
//   all safe nodes are initialized to enabled;
//   repeat
//     doall (1) nonfaulty but unsafe node u exchanges its status with its
//               neighbors;
//           (2) change u's status to enabled if it has two or more enabled
//               neighbors
//     odall
//   until there is no status change
//
// The transition is monotone (disabled -> enabled only) and starts from the
// all-disabled side, which resolves the double-status ambiguity of a
// recursive definition (paper, Figure 2): a nonfaulty pocket that could
// consistently be either all-enabled or all-disabled stays disabled unless
// actual enabled support reaches it from outside the block.
#pragma once

#include <span>

#include "core/status.hpp"
#include "grid/cell_set.hpp"
#include "grid/node_grid.hpp"
#include "simkernel/protocol.hpp"

namespace ocp::labeling {

/// Node-local protocol for the simkernel runners. Consumes the phase-one
/// safety labeling (by const reference; it must outlive the run).
class ActivationProtocol {
 public:
  struct State {
    Health health = Health::Nonfaulty;
    Safety safety = Safety::Safe;
    Activation activation = Activation::Enabled;

    friend constexpr bool operator==(const State&, const State&) = default;
  };
  using Message = Activation;

  ActivationProtocol(const grid::CellSet& faults,
                     const grid::NodeGrid<Safety>& safety)
      : faults_(&faults), safety_(&safety) {}

  [[nodiscard]] State init(mesh::Coord c) const {
    State s;
    s.health = faults_->contains(c) ? Health::Faulty : Health::Nonfaulty;
    s.safety = (*safety_)[c];
    // Faulty -> disabled; safe -> enabled; unsafe nonfaulty starts disabled
    // and may be activated by the update rule.
    s.activation = s.safety == Safety::Unsafe ? Activation::Disabled
                                              : Activation::Enabled;
    return s;
  }

  /// Bulk form of `init` over the dense row-major plane (simkernel hook):
  /// linear passes over the fault bitmap and the safety plane.
  void init_plane(const mesh::Mesh2D&, std::span<State> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const Safety sf = safety_->at_index(i);
      out[i] = {faults_->contains_index(i) ? Health::Faulty : Health::Nonfaulty,
                sf,
                sf == Safety::Unsafe ? Activation::Disabled
                                     : Activation::Enabled};
    }
  }

  [[nodiscard]] Message announce(const State& s) const noexcept {
    return s.activation;
  }

  /// Ghost nodes are safe and hence enabled (they are excluded from routing
  /// elsewhere; for labeling they only provide boundary support).
  [[nodiscard]] Message ghost_message() const noexcept {
    return Activation::Enabled;
  }

  /// Only nonfaulty-but-unsafe nodes run the update rule.
  [[nodiscard]] bool participates(const State& s) const noexcept {
    return s.health == Health::Nonfaulty && s.safety == Safety::Unsafe;
  }

  [[nodiscard]] bool update(State& s, const sim::Inbox<Message>& inbox) const {
    if (s.activation == Activation::Enabled) return false;  // monotone
    int enabled_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (inbox[d] == Activation::Enabled) ++enabled_neighbors;
    }
    if (enabled_neighbors >= 2) {
      s.activation = Activation::Enabled;
      return true;
    }
    return false;
  }

 private:
  const grid::CellSet* faults_;          // non-owning
  const grid::NodeGrid<Safety>* safety_;  // non-owning
};

static_assert(sim::SyncProtocol<ActivationProtocol>);

}  // namespace ocp::labeling
