#include "core/regions.hpp"

#include <cassert>
#include <stdexcept>

namespace ocp::labeling {

grid::CellSet unsafe_cells(const grid::NodeGrid<Safety>& safety) {
  grid::CellSet out(safety.topology());
  for (std::size_t i = 0; i < safety.size(); ++i) {
    if (safety.at_index(i) == Safety::Unsafe) out.insert_index(i);
  }
  return out;
}

grid::CellSet disabled_cells(const grid::NodeGrid<Activation>& activation) {
  grid::CellSet out(activation.topology());
  for (std::size_t i = 0; i < activation.size(); ++i) {
    if (activation.at_index(i) == Activation::Disabled) {
      out.insert_index(i);
    }
  }
  return out;
}

std::vector<FaultyBlock> extract_faulty_blocks(
    const grid::CellSet& faults, const grid::NodeGrid<Safety>& safety) {
  std::vector<FaultyBlock> out;
  for (auto& comp :
       grid::connected_components(unsafe_cells(safety),
                                  grid::Connectivity::Four)) {
    FaultyBlock block;
    for (mesh::Coord cell : comp.cells()) {
      if (faults.contains(cell)) {
        ++block.fault_count;
      } else {
        ++block.unsafe_nonfaulty_count;
      }
    }
    block.component = std::move(comp);
    out.push_back(std::move(block));
  }
  return out;
}

std::vector<DisabledRegion> extract_disabled_regions(
    const grid::CellSet& faults, const grid::NodeGrid<Activation>& activation,
    const std::vector<FaultyBlock>& blocks) {
  const mesh::Mesh2D& m = activation.topology();

  // Parent lookup: block id per unsafe cell.
  grid::NodeGrid<std::int32_t> block_id(m, -1);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (mesh::Coord cell : blocks[b].component.cells()) {
      block_id[cell] = static_cast<std::int32_t>(b);
    }
  }

  std::vector<DisabledRegion> out;
  for (auto& comp : grid::connected_components(disabled_cells(activation),
                                               grid::Connectivity::Eight)) {
    DisabledRegion region;
    const std::int32_t parent = block_id[comp.cells().front()];
    if (parent < 0) {
      // Disabled cells are unsafe by construction; a missing parent means
      // the safety and activation grids do not belong together.
      throw std::invalid_argument(
          "extract_disabled_regions: disabled cell outside any faulty block");
    }
    region.parent_block = static_cast<std::size_t>(parent);
    for (mesh::Coord cell : comp.cells()) {
      assert(block_id[cell] == parent &&
             "a disabled region never spans two faulty blocks");
      if (faults.contains(cell)) {
        ++region.fault_count;
      } else {
        ++region.disabled_nonfaulty_count;
      }
    }
    region.component = std::move(comp);
    out.push_back(std::move(region));
  }
  return out;
}

}  // namespace ocp::labeling
