// The three orthogonal node classifications of Wu, IPPS 2001, section 3:
// faulty/nonfaulty, safe/unsafe, enabled/disabled.
#pragma once

#include <cstdint>

namespace ocp::labeling {

/// Physical node health. Faulty nodes cease to work; link faults are treated
/// as node faults (paper, section 2).
enum class Health : std::uint8_t { Nonfaulty = 0, Faulty = 1 };

/// Phase-one classification. Unsafe nodes are those that cause routing
/// difficulties; connected unsafe nodes form rectangular faulty blocks.
enum class Safety : std::uint8_t { Safe = 0, Unsafe = 1 };

/// Phase-two classification. Only enabled nodes participate in routing;
/// connected disabled nodes form the orthogonal convex disabled regions.
enum class Activation : std::uint8_t { Enabled = 0, Disabled = 1 };

/// Which safe/unsafe rule phase one applies.
///
/// * `Def2a` (Definition 2a): a nonfaulty node is unsafe if it has two or
///   more unsafe neighbors (Boura-Das / Su-Shin style blocks).
/// * `Def2b` (Definition 2b): a nonfaulty node is unsafe if it has an unsafe
///   neighbor in *both* dimensions (the enhanced rule; fewer nonfaulty nodes
///   are swallowed). The paper's algorithm listing uses this rule.
enum class SafeUnsafeDef : std::uint8_t { Def2a = 0, Def2b = 1 };

[[nodiscard]] constexpr const char* to_string(Health h) noexcept {
  return h == Health::Faulty ? "faulty" : "nonfaulty";
}
[[nodiscard]] constexpr const char* to_string(Safety s) noexcept {
  return s == Safety::Unsafe ? "unsafe" : "safe";
}
[[nodiscard]] constexpr const char* to_string(Activation a) noexcept {
  return a == Activation::Disabled ? "disabled" : "enabled";
}
[[nodiscard]] constexpr const char* to_string(SafeUnsafeDef d) noexcept {
  return d == SafeUnsafeDef::Def2a ? "Def2a" : "Def2b";
}

}  // namespace ocp::labeling
