// Bounded MPSC queue of fault/repair events — the admission-controlled
// front door of the serving runtime (src/svc).
//
// Any number of producers submit events; exactly one consumer (the ingest
// loop) drains them in FIFO order. The queue is bounded so overload turns
// into a typed `Overloaded` rejection at the submitting edge instead of an
// unbounded memory ramp or a stalled producer: callers decide whether to
// retry, shed, or back off. `close()` wakes the consumer for shutdown and
// turns further submissions into `Closed`.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "chaos/plan.hpp"
#include "mesh/coord.hpp"

namespace ocp::svc {

/// What happened to a node.
enum class EventKind : std::uint8_t {
  /// The node failed; it must leave the serving labeling.
  Fault = 0,
  /// The node was repaired; it may rejoin the machine.
  Repair = 1,
};

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  return k == EventKind::Fault ? "fault" : "repair";
}

/// One fault-model change notification.
struct FaultEvent {
  EventKind kind = EventKind::Fault;
  mesh::Coord node;

  friend constexpr bool operator==(const FaultEvent&,
                                   const FaultEvent&) = default;
};

/// Typed admission verdict for a submission.
enum class SubmitStatus : std::uint8_t {
  Accepted = 0,
  /// The bounded queue is full; the event was NOT enqueued.
  Overloaded = 1,
  /// The queue was closed for shutdown; the event was NOT enqueued.
  Closed = 2,
};

[[nodiscard]] constexpr const char* to_string(SubmitStatus s) noexcept {
  switch (s) {
    case SubmitStatus::Accepted: return "accepted";
    case SubmitStatus::Overloaded: return "overloaded";
    case SubmitStatus::Closed: return "closed";
  }
  return "?";
}

class EventQueue {
 public:
  /// `chaos` (disabled by default) can force `Overloaded` verdicts at
  /// admission — the injection point overload-storm tests drive.
  explicit EventQueue(std::size_t capacity, chaos::ChaosConfig chaos = {})
      : capacity_(capacity), chaos_(chaos) {}

  /// Non-blocking admission: enqueues and wakes the consumer, or rejects
  /// with `Overloaded` (full) / `Closed` (shut down).
  SubmitStatus push(FaultEvent event);

  /// Crash-recovery path: puts events BACK at the head of the queue in the
  /// given order, preserving FIFO against everything submitted after them.
  /// Bypasses capacity and admission counters — these events were already
  /// accepted once; a restarted consumer re-drains them. Works on a closed
  /// queue (shutdown still owes accepted events an application).
  void requeue_front(std::vector<FaultEvent> events);

  /// Consumer side: blocks until at least one event is queued or the queue
  /// is closed, then drains up to `max_batch` events in FIFO order. An
  /// empty result means the queue was closed and fully drained.
  [[nodiscard]] std::vector<FaultEvent> wait_drain(std::size_t max_batch);

  /// Non-blocking drain (manual pumping in tests and deterministic
  /// drivers): up to `max_batch` events, possibly none.
  [[nodiscard]] std::vector<FaultEvent> try_drain(std::size_t max_batch);

  /// Stops admission and wakes any blocked consumer. Events already queued
  /// remain drainable.
  void close();
  [[nodiscard]] bool closed() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events currently queued (consumer lag).
  [[nodiscard]] std::size_t depth() const;
  /// Total admissions / `Overloaded` rejections since construction.
  [[nodiscard]] std::uint64_t accepted() const;
  [[nodiscard]] std::uint64_t rejected() const;
  /// `Overloaded` verdicts forced by the chaos plan (a subset of
  /// `rejected()`); always 0 without an armed plan.
  [[nodiscard]] std::uint64_t chaos_denied() const;

 private:
  std::vector<FaultEvent> drain_locked(std::size_t max_batch);

  const std::size_t capacity_;
  const chaos::ChaosConfig chaos_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<FaultEvent> queue_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t chaos_denied_ = 0;
};

}  // namespace ocp::svc
