// The long-lived serving runtime: one ingest thread, many query threads.
//
// `Service` owns the bounded event queue, the single-writer `IngestEngine`
// and the ingest thread that connects them, and exposes the multi-threaded
// query front. The read path is wait-free against the writer: a query
// acquires the current RCU-published snapshot, answers against that one
// consistent epoch, and releases it — queries running concurrently with a
// publication simply see the previous epoch. Overload degrades gracefully
// at both edges instead of stalling:
//
//  * ingest — `submit` returns a typed `Overloaded` verdict when the
//    bounded queue is full (the caller chooses retry/shed/backoff);
//  * queries — an optional in-flight cap returns `Overloaded` instead of
//    queueing unbounded readers, and batched queries carry a deadline that
//    turns into typed per-item `Timeout` answers.
//
// `pause`/`resume` hold the ingest loop (planned maintenance, deterministic
// overload tests); `flush` barriers until every accepted event is applied
// and published; `wait_for_epoch` gives submitters read-your-writes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/ingest.hpp"

namespace ocp::svc {

struct ServiceConfig {
  /// Bounded MPSC admission queue for fault/repair events.
  std::size_t queue_capacity = 1024;
  /// Max events drained into one ingest batch (burst coalescing window).
  std::size_t max_batch = 256;
  /// Query-front admission: maximum concurrently executing queries before
  /// `Overloaded` rejections. 0 = uncapped.
  std::size_t max_inflight_queries = 0;
  /// Start with the ingest loop held (as if `pause()` ran before any event
  /// was drained); call `resume()` to begin applying.
  bool start_paused = false;
  IngestConfig ingest;
};

/// Typed verdict of a query-front call.
enum class QueryStatus : std::uint8_t {
  Ok = 0,
  /// The in-flight cap was reached; the query was not executed.
  Overloaded = 1,
  /// The deadline expired before this (batch item / epoch wait) completed.
  Timeout = 2,
  /// The coordinates do not address machine nodes.
  InvalidArgument = 3,
};

[[nodiscard]] constexpr const char* to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::Ok: return "ok";
    case QueryStatus::Overloaded: return "overloaded";
    case QueryStatus::Timeout: return "timeout";
    case QueryStatus::InvalidArgument: return "invalid-argument";
  }
  return "?";
}

struct StatusAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::uint64_t epoch = 0;
  NodeStatus node = NodeStatus::Enabled;
};

struct RegionAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::uint64_t epoch = 0;
  /// Index into the snapshot's disabled-region list, or -1 when enabled.
  std::int32_t region_id = -1;
  std::size_t region_size = 0;
  std::size_t fault_count = 0;
  std::size_t parent_block = 0;
};

struct RouteAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::uint64_t epoch = 0;
  routing::Route route;
};

/// One item of a batched query.
enum class QueryKind : std::uint8_t { Status = 0, Region = 1, Route = 2 };

struct QueryItem {
  QueryKind kind = QueryKind::Status;
  mesh::Coord a;
  /// Route destination (Route items only).
  mesh::Coord b;
};

/// Compact per-item answer of a batch (routes are summarized; fetch the
/// full path with `query_route` when needed).
struct BatchItemAnswer {
  QueryStatus status = QueryStatus::Ok;
  NodeStatus node = NodeStatus::Enabled;
  std::int32_t region_id = -1;
  routing::RouteStatus route_status = routing::RouteStatus::Invalid;
  std::int32_t hops = 0;
};

struct BatchAnswer {
  QueryStatus status = QueryStatus::Ok;  // Ok, Overloaded, or Timeout
  std::uint64_t epoch = 0;
  /// Items actually executed before any deadline expiry.
  std::size_t completed = 0;
  std::vector<BatchItemAnswer> items;
};

/// Aggregated service health for dashboards and tests.
struct ServiceStats {
  std::uint64_t epoch = 0;
  std::size_t queue_depth = 0;
  std::uint64_t events_accepted = 0;
  std::uint64_t events_rejected = 0;
  std::uint64_t query_overloads = 0;
  IngestStats ingest;
};

class Service {
 public:
  /// Labels `initial_faults`, publishes epoch 0 and starts the ingest
  /// thread (held when `config.start_paused`).
  explicit Service(grid::CellSet initial_faults, ServiceConfig config = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // -- ingest edge ---------------------------------------------------------

  /// Admission-controlled event submission (any thread, non-blocking).
  SubmitStatus submit(FaultEvent event);

  /// Blocks until every accepted event has been drained and applied (and
  /// the resulting epoch published). Returns immediately when paused with
  /// an empty queue would deadlock — i.e. flush of a paused service with
  /// pending events resumes it first.
  void flush();

  /// Holds the ingest loop after the in-flight batch (if any) completes.
  /// Events keep accumulating up to the queue bound, then reject.
  void pause();
  void resume();

  /// Blocks until the serving epoch is >= `epoch` or the timeout expires.
  [[nodiscard]] QueryStatus wait_for_epoch(std::uint64_t epoch,
                                           std::chrono::milliseconds timeout);

  // -- query front ---------------------------------------------------------

  /// The current snapshot: the zero-copy bulk-read path. Hold it to answer
  /// any number of queries against one consistent epoch.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return engine_.snapshot();
  }

  [[nodiscard]] StatusAnswer query_status(mesh::Coord node) const;
  [[nodiscard]] RegionAnswer query_region(mesh::Coord node) const;
  [[nodiscard]] RouteAnswer query_route(mesh::Coord src, mesh::Coord dst) const;
  /// Executes all items against ONE snapshot acquisition. A default (epoch)
  /// deadline means no deadline.
  [[nodiscard]] BatchAnswer query_batch(
      const std::vector<QueryItem>& items,
      std::chrono::steady_clock::time_point deadline = {}) const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const IngestEngine& engine() const noexcept { return engine_; }

 private:
  class InflightGate;

  void ingest_loop();
  [[nodiscard]] bool admit_query() const;

  ServiceConfig config_;
  EventQueue queue_;
  IngestEngine engine_;

  mutable std::mutex mu_;
  std::condition_variable wake_;     // ingest loop wakeups
  mutable std::condition_variable progress_;  // flush / wait_for_epoch
  bool paused_ = false;
  bool stopping_ = false;
  bool draining_ = false;  // a batch is between drain and publish

  mutable std::atomic<std::int64_t> inflight_queries_{0};
  mutable std::atomic<std::uint64_t> query_overloads_{0};

  std::thread ingest_thread_;
};

}  // namespace ocp::svc
