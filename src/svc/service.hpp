// The long-lived serving runtime: one ingest thread, many query threads.
//
// `Service` owns the bounded event queue, the single-writer `IngestEngine`
// and the ingest thread that connects them, and exposes the multi-threaded
// query front. The read path is wait-free against the writer: a query
// acquires the current RCU-published snapshot, answers against that one
// consistent epoch, and releases it — queries running concurrently with a
// publication simply see the previous epoch. Overload degrades gracefully
// at both edges instead of stalling:
//
//  * ingest — `submit` returns a typed `Overloaded` verdict when the
//    bounded queue is full (the caller chooses retry/shed/backoff);
//  * queries — an optional in-flight cap returns `Overloaded` instead of
//    queueing unbounded readers, and batched queries carry a deadline that
//    turns into typed per-item `Timeout` answers.
//
// `pause`/`resume` hold the ingest loop (planned maintenance, deterministic
// overload tests); `flush` barriers until every accepted event is applied
// and published; `wait_for_epoch` gives submitters read-your-writes.
//
// Chaos (src/chaos, disabled by default): an armed `FaultPlan` in the
// ingest config injects failures at every seam of this runtime — admission
// denials in the queue, duplicate/deferred/stalled drain batches in the
// ingest loop, poisoned oracle verdicts that withhold publications, and
// mid-batch kills that terminate the ingest thread after the engine
// crash-recovers to its last published snapshot. A killed service keeps
// answering queries from the last good epoch (bounded staleness is exposed
// via `stale_epochs_pending`); `restart_ingest` brings the writer back and
// replays the crash's requeued backlog to digest-identical convergence.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/ingest.hpp"

namespace ocp::svc {

struct ServiceConfig {
  /// Bounded MPSC admission queue for fault/repair events.
  std::size_t queue_capacity = 1024;
  /// Max events drained into one ingest batch (burst coalescing window).
  std::size_t max_batch = 256;
  /// Query-front admission: maximum concurrently executing queries before
  /// `Overloaded` rejections. 0 = uncapped.
  std::size_t max_inflight_queries = 0;
  /// Start with the ingest loop held (as if `pause()` ran before any event
  /// was drained); call `resume()` to begin applying.
  bool start_paused = false;
  IngestConfig ingest;
};

/// Typed verdict of a query-front call.
enum class QueryStatus : std::uint8_t {
  Ok = 0,
  /// The in-flight cap was reached; the query was not executed.
  Overloaded = 1,
  /// The deadline expired before this (batch item / epoch wait) completed.
  Timeout = 2,
  /// The coordinates do not address machine nodes.
  InvalidArgument = 3,
};

[[nodiscard]] constexpr const char* to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::Ok: return "ok";
    case QueryStatus::Overloaded: return "overloaded";
    case QueryStatus::Timeout: return "timeout";
    case QueryStatus::InvalidArgument: return "invalid-argument";
  }
  return "?";
}

struct StatusAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::uint64_t epoch = 0;
  NodeStatus node = NodeStatus::Enabled;
};

struct RegionAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::uint64_t epoch = 0;
  /// Index into the snapshot's disabled-region list, or -1 when enabled.
  std::int32_t region_id = -1;
  std::size_t region_size = 0;
  std::size_t fault_count = 0;
  std::size_t parent_block = 0;
};

struct RouteAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::uint64_t epoch = 0;
  routing::Route route;
};

/// One item of a batched query.
enum class QueryKind : std::uint8_t { Status = 0, Region = 1, Route = 2 };

struct QueryItem {
  QueryKind kind = QueryKind::Status;
  mesh::Coord a;
  /// Route destination (Route items only).
  mesh::Coord b;
};

/// Compact per-item answer of a batch (routes are summarized; fetch the
/// full path with `query_route` when needed).
struct BatchItemAnswer {
  QueryStatus status = QueryStatus::Ok;
  NodeStatus node = NodeStatus::Enabled;
  std::int32_t region_id = -1;
  routing::RouteStatus route_status = routing::RouteStatus::Invalid;
  std::int32_t hops = 0;
};

struct BatchAnswer {
  QueryStatus status = QueryStatus::Ok;  // Ok, Overloaded, or Timeout
  std::uint64_t epoch = 0;
  /// Items actually executed before any deadline expiry.
  std::size_t completed = 0;
  std::vector<BatchItemAnswer> items;
};

/// Aggregated service health for dashboards and tests.
struct ServiceStats {
  std::uint64_t epoch = 0;
  std::size_t queue_depth = 0;
  std::uint64_t events_accepted = 0;
  std::uint64_t events_rejected = 0;
  std::uint64_t query_overloads = 0;
  /// `Overloaded` verdicts forced by the chaos plan (subset of rejected).
  std::uint64_t chaos_denied = 0;
  /// Bounded-staleness watermark: oracle-withheld publish attempts the
  /// serving epoch is currently behind by (0 = fully fresh).
  std::uint64_t stale_epochs_pending = 0;
  /// Queries answered from a stale (withheld-behind) epoch — the degraded
  /// mode in action: stale answers, never unavailability.
  std::uint64_t stale_queries_served = 0;
  /// True while the ingest thread is down after a chaos kill.
  bool ingest_crashed = false;
  IngestStats ingest;
};

class Service {
 public:
  /// Labels `initial_faults`, publishes epoch 0 and starts the ingest
  /// thread (held when `config.start_paused`).
  explicit Service(grid::CellSet initial_faults, ServiceConfig config = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // -- ingest edge ---------------------------------------------------------

  /// Admission-controlled event submission (any thread, non-blocking).
  SubmitStatus submit(FaultEvent event);

  /// Blocks until every accepted event has been drained and applied (and
  /// the resulting epoch published). Returns immediately when paused with
  /// an empty queue would deadlock — i.e. flush of a paused service with
  /// pending events resumes it first. Likewise returns (rather than hangs)
  /// when the ingest thread is down after a chaos kill; check
  /// `ingest_crashed()` and `restart_ingest()` to recover, then flush
  /// again.
  void flush();

  /// Holds the ingest loop after the in-flight batch (if any) completes.
  /// Events keep accumulating up to the queue bound, then reject.
  void pause();
  void resume();

  /// Blocks until the serving epoch is >= `epoch` or the timeout expires.
  /// Returns `Timeout` (never hangs) when the epoch is withheld by the
  /// oracle gate or the ingest thread is down after a chaos kill.
  [[nodiscard]] QueryStatus wait_for_epoch(std::uint64_t epoch,
                                           std::chrono::milliseconds timeout);

  /// Nudges the ingest loop to re-attempt a withheld publication without
  /// consuming events (the empty-batch retry path of `IngestEngine::apply`).
  /// No-op when nothing is pending; `flush()` afterwards barriers on the
  /// attempt having run.
  void retry_publish();

  /// True while the ingest thread is down after a chaos kill: submissions
  /// still enqueue (up to the bound) and queries keep answering from the
  /// last published epoch, but nothing drains until `restart_ingest`.
  [[nodiscard]] bool ingest_crashed() const;

  /// Restarts the ingest thread after a chaos kill; the crash's requeued
  /// backlog (already at the queue head) drains first, so the service
  /// converges to the same snapshots an uninterrupted run would publish.
  /// Returns false (and does nothing) when the thread is not crashed.
  bool restart_ingest();

  /// Bounded-staleness watermark (see ServiceStats::stale_epochs_pending).
  [[nodiscard]] std::uint64_t stale_epochs_pending() const {
    return engine_.stale_epochs_pending();
  }

  // -- query front ---------------------------------------------------------

  /// The current snapshot: the zero-copy bulk-read path. Hold it to answer
  /// any number of queries against one consistent epoch.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return engine_.snapshot();
  }

  [[nodiscard]] StatusAnswer query_status(mesh::Coord node) const;
  [[nodiscard]] RegionAnswer query_region(mesh::Coord node) const;
  [[nodiscard]] RouteAnswer query_route(mesh::Coord src, mesh::Coord dst) const;
  /// Executes all items against ONE snapshot acquisition. A default (epoch)
  /// deadline means no deadline.
  [[nodiscard]] BatchAnswer query_batch(
      const std::vector<QueryItem>& items,
      std::chrono::steady_clock::time_point deadline = {}) const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const IngestEngine& engine() const noexcept { return engine_; }

 private:
  class InflightGate;

  void ingest_loop();
  [[nodiscard]] bool admit_query() const;
  /// Counts a query answered while the serving epoch is withheld-behind.
  void note_staleness() const;

  ServiceConfig config_;
  EventQueue queue_;
  IngestEngine engine_;

  mutable std::mutex mu_;
  std::condition_variable wake_;     // ingest loop wakeups
  mutable std::condition_variable progress_;  // flush / wait_for_epoch
  bool paused_ = false;
  bool stopping_ = false;
  bool draining_ = false;  // a batch is between drain and publish
  /// Ingest thread terminated by a chaos kill; restart_ingest clears it.
  bool crashed_ = false;
  /// One-shot publish-retry nudge consumed by the next loop iteration.
  bool retry_publish_ = false;
  /// A chaos-deferred drain batch, re-drained (ahead of new events) on the
  /// next loop iteration. Part of the flush barrier's "accepted but not yet
  /// applied" accounting.
  std::vector<FaultEvent> deferred_;

  mutable std::atomic<std::int64_t> inflight_queries_{0};
  mutable std::atomic<std::uint64_t> query_overloads_{0};
  mutable std::atomic<std::uint64_t> stale_queries_served_{0};

  std::thread ingest_thread_;
};

}  // namespace ocp::svc
