#include "svc/loadgen.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "analysis/trial_pool.hpp"
#include "fault/generators.hpp"
#include "stats/histogram.hpp"

namespace ocp::svc {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Per-query-thread outcome, written only by its own thread.
struct WorkerRecord {
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t batches_ok = 0;
  std::size_t batch_items = 0;
  bool epochs_monotone = true;
  stats::Histogram latency_us{0.0, 1000.0, 2000};
};

mesh::Coord random_node(const mesh::Mesh2D& m, stats::Rng& rng) {
  return m.coord(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(m.node_count()) - 1)));
}

}  // namespace

SvcLoadConfig query_heavy_profile(std::size_t query_threads) {
  SvcLoadConfig config;
  config.mesh_side = 32;
  config.initial_faults = 10;
  config.events = 128;
  config.query_threads = query_threads;
  config.queries_per_thread = 2000;
  config.seed = 20010423;
  return config;
}

SvcLoadConfig ingest_heavy_profile(std::size_t query_threads) {
  SvcLoadConfig config = query_heavy_profile(query_threads);
  config.events = 1024;
  config.queries_per_thread = 500;
  return config;
}

SvcLoadConfig mixed_rate_profile(std::size_t query_threads) {
  SvcLoadConfig config = query_heavy_profile(query_threads);
  config.events = 512;
  config.queries_per_thread = 2000;
  return config;
}

std::vector<FaultEvent> generate_event_stream(const mesh::Mesh2D& machine,
                                              const grid::CellSet& initial,
                                              std::size_t events,
                                              double repair_fraction,
                                              std::uint64_t seed) {
  stats::Rng rng(seed);
  // Shadow fault model: tracks what the service's fault set will be after
  // each event, so repairs target genuinely faulty nodes (most of the
  // time — duplicate faults still occur and exercise coalescing).
  grid::CellSet shadow = initial;
  std::vector<FaultEvent> stream;
  stream.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    if (!shadow.empty() && rng.uniform() < repair_fraction) {
      const auto members = shadow.to_vector();
      const mesh::Coord node = members[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(members.size()) - 1))];
      shadow.erase(node);
      stream.push_back({EventKind::Repair, node});
    } else {
      const mesh::Coord node = random_node(machine, rng);
      shadow.insert(node);  // no-op when already faulty: a duplicate fault
      stream.push_back({EventKind::Fault, node});
    }
  }
  return stream;
}

std::uint64_t event_stream_digest(const std::vector<FaultEvent>& events) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const FaultEvent& e : events) {
    mix(static_cast<std::uint64_t>(e.kind) + 1);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.node.x)) + 1);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.node.y)) + 1);
  }
  return h;
}

SvcLoadResult run_svc_load(const SvcLoadConfig& config) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             config.topology);
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const auto worker_seeds =
      analysis::fork_trial_seeds(master, config.query_threads);

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<FaultEvent> stream = generate_event_stream(
      machine, initial, config.events, config.repair_fraction, stream_seed);

  SvcLoadResult result;
  result.stream_digest = event_stream_digest(stream);

  Service service(initial, config.service);

  // Writer: replays the stream in order with closed-loop backpressure.
  // An `Overloaded` verdict retries under the seeded backoff policy instead
  // of spinning; with the default unbounded budget nothing is ever dropped,
  // so (queue FIFO + retry-until-accepted) keeps the final fault set a pure
  // function of the stream. A finite budget sheds instead — accounted, and
  // forfeiting that purity by design.
  const BackoffPolicy& backoff = config.submit_backoff;
  std::uint64_t submit_retries = 0;
  std::uint64_t submit_backoff_us = 0;
  std::uint64_t submits_shed = 0;
  std::thread writer([&] {
    for (const FaultEvent& event : stream) {
      std::uint64_t attempt = 0;
      for (;;) {
        const SubmitStatus status = service.submit(event);
        if (status == SubmitStatus::Accepted) break;
        if (status == SubmitStatus::Closed) {
          // Shutdown raced the writer; nothing further can be delivered.
          ++submits_shed;
          break;
        }
        if (backoff.retry_budget != 0 && attempt >= backoff.retry_budget) {
          ++submits_shed;
          break;
        }
        ++submit_retries;
        const std::uint32_t delay_us = backoff_delay_us(backoff, attempt++);
        submit_backoff_us += delay_us;
        if (delay_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
      }
    }
  });

  std::vector<WorkerRecord> records(config.query_threads);
  std::vector<std::thread> workers;
  workers.reserve(config.query_threads);
  const auto start = Clock::now();
  for (std::size_t t = 0; t < config.query_threads; ++t) {
    workers.emplace_back([&, t] {
      stats::Rng rng(worker_seeds[t]);
      WorkerRecord& rec = records[t];
      std::uint64_t last_epoch = 0;
      const auto note_epoch = [&rec, &last_epoch](std::uint64_t epoch) {
        if (epoch < last_epoch) rec.epochs_monotone = false;
        last_epoch = epoch;
      };
      for (std::size_t q = 0; q < config.queries_per_thread; ++q) {
        const auto begin = Clock::now();
        if (config.batch_every != 0 && q % config.batch_every == 0) {
          std::vector<QueryItem> items(config.batch_size);
          for (auto& item : items) {
            const double pick = rng.uniform();
            if (pick < 0.5) {
              item = {QueryKind::Status, random_node(machine, rng), {}};
            } else if (pick < 0.8) {
              item = {QueryKind::Region, random_node(machine, rng), {}};
            } else {
              item = {QueryKind::Route, random_node(machine, rng),
                      random_node(machine, rng)};
            }
          }
          const BatchAnswer answer = service.query_batch(items);
          if (answer.status == QueryStatus::Ok) {
            ++rec.ok;
            ++rec.batches_ok;
            rec.batch_items += answer.items.size();
            note_epoch(answer.epoch);
          } else {
            ++rec.rejected;
          }
        } else {
          const double pick = rng.uniform();
          if (pick < 0.5) {
            const StatusAnswer answer =
                service.query_status(random_node(machine, rng));
            if (answer.status == QueryStatus::Ok) {
              ++rec.ok;
              note_epoch(answer.epoch);
            } else {
              ++rec.rejected;
            }
          } else if (pick < 0.8) {
            const RegionAnswer answer =
                service.query_region(random_node(machine, rng));
            if (answer.status == QueryStatus::Ok) {
              ++rec.ok;
              note_epoch(answer.epoch);
            } else {
              ++rec.rejected;
            }
          } else {
            const RouteAnswer answer = service.query_route(
                random_node(machine, rng), random_node(machine, rng));
            if (answer.status == QueryStatus::Ok) {
              ++rec.ok;
              note_epoch(answer.epoch);
            } else {
              ++rec.rejected;
            }
          }
        }
        rec.latency_us.add(us_between(begin, Clock::now()));
      }
    });
  }

  for (auto& worker : workers) worker.join();
  writer.join();
  // Quiesce: every accepted event applied and its epoch published.
  service.flush();
  const auto end = Clock::now();

  // 0.5us buckets: single queries answer in well under a microsecond, and
  // the overflow counter flags any tail past 1ms rather than hiding it.
  stats::Histogram latency{0.0, 1000.0, 2000};
  std::size_t batches_ok = 0;
  for (const WorkerRecord& rec : records) {
    result.queries_ok += rec.ok;
    result.queries_rejected += rec.rejected;
    result.batch_items += rec.batch_items;
    batches_ok += rec.batches_ok;
    result.epochs_monotone = result.epochs_monotone && rec.epochs_monotone;
    latency.merge(rec.latency_us);
  }
  result.submit_retries = submit_retries;
  result.submit_backoff_us = submit_backoff_us;
  result.submits_shed = submits_shed;
  result.wall_seconds = us_between(start, end) / 1e6;
  // Each batch counts once in queries_ok but delivers batch_size answers;
  // throughput counts delivered answers.
  const double answers = static_cast<double>(result.queries_ok - batches_ok +
                                             result.batch_items);
  result.qps =
      result.wall_seconds > 0 ? answers / result.wall_seconds : 0.0;
  result.p50_us = latency.median();
  result.p99_us = latency.p99();
  result.latency_overflow = latency.overflow();

  const auto final_snapshot = service.snapshot();
  result.final_digest = final_snapshot->label_digest();
  result.final_faults = final_snapshot->faults().size();
  result.final_epoch = final_snapshot->epoch();
  result.epochs_published = service.stats().ingest.epochs_published;
  return result;
}

ShardedLoadResult run_sharded_load(const SvcLoadConfig& config,
                                   const ShardedServiceConfig& service_config) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             config.topology);
  // Fork order matches run_svc_load exactly: identical (config, seed) means
  // identical initial faults, stream and query mixes, so the two runners'
  // replay digests are directly comparable.
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const auto worker_seeds =
      analysis::fork_trial_seeds(master, config.query_threads);

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<FaultEvent> stream = generate_event_stream(
      machine, initial, config.events, config.repair_fraction, stream_seed);

  ShardedLoadResult result;
  result.stream_digest = event_stream_digest(stream);

  ShardedService service(initial, service_config);
  const std::uint32_t shard_count = service.shard_grid().count();

  const BackoffPolicy& backoff = config.submit_backoff;
  std::uint64_t submit_retries = 0;
  std::uint64_t submit_backoff_us = 0;
  std::uint64_t submits_shed = 0;
  std::thread writer([&] {
    for (const FaultEvent& event : stream) {
      std::uint64_t attempt = 0;
      for (;;) {
        const SubmitStatus status = service.submit(event);
        if (status == SubmitStatus::Accepted) break;
        if (status == SubmitStatus::Closed) {
          ++submits_shed;
          break;
        }
        if (backoff.retry_budget != 0 && attempt >= backoff.retry_budget) {
          ++submits_shed;
          break;
        }
        ++submit_retries;
        const std::uint32_t delay_us = backoff_delay_us(backoff, attempt++);
        submit_backoff_us += delay_us;
        if (delay_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
      }
    }
  });

  std::vector<WorkerRecord> records(config.query_threads);
  std::vector<std::thread> workers;
  workers.reserve(config.query_threads);
  const auto start = Clock::now();
  for (std::size_t t = 0; t < config.query_threads; ++t) {
    workers.emplace_back([&, t] {
      stats::Rng rng(worker_seeds[t]);
      WorkerRecord& rec = records[t];
      // Epoch monotonicity is per shard: a point answer carries its owning
      // shard's epoch, and different shards' counters are incomparable.
      std::vector<std::uint64_t> last_epochs(shard_count, 0);
      const auto note_epoch = [&rec, &last_epochs](std::uint32_t shard,
                                                   std::uint64_t epoch) {
        if (epoch < last_epochs[shard]) rec.epochs_monotone = false;
        last_epochs[shard] = std::max(last_epochs[shard], epoch);
      };
      for (std::size_t q = 0; q < config.queries_per_thread; ++q) {
        const auto begin = Clock::now();
        if (config.batch_every != 0 && q % config.batch_every == 0) {
          std::vector<QueryItem> items(config.batch_size);
          for (auto& item : items) {
            const double pick = rng.uniform();
            if (pick < 0.5) {
              item = {QueryKind::Status, random_node(machine, rng), {}};
            } else if (pick < 0.8) {
              item = {QueryKind::Region, random_node(machine, rng), {}};
            } else {
              item = {QueryKind::Route, random_node(machine, rng),
                      random_node(machine, rng)};
            }
          }
          const ShardedBatchAnswer answer = service.query_batch(items);
          if (answer.status == QueryStatus::Ok) {
            ++rec.ok;
            ++rec.batches_ok;
            rec.batch_items += answer.items.size();
            for (const CompositeEpoch& e : answer.epochs) {
              note_epoch(e.shard, e.epoch);
            }
          } else {
            ++rec.rejected;
          }
        } else {
          const double pick = rng.uniform();
          if (pick < 0.5) {
            const mesh::Coord node = random_node(machine, rng);
            const StatusAnswer answer = service.query_status(node);
            if (answer.status == QueryStatus::Ok) {
              ++rec.ok;
              note_epoch(service.shard_of(node), answer.epoch);
            } else {
              ++rec.rejected;
            }
          } else if (pick < 0.8) {
            const mesh::Coord node = random_node(machine, rng);
            const RegionAnswer answer = service.query_region(node);
            if (answer.status == QueryStatus::Ok) {
              ++rec.ok;
              note_epoch(service.shard_of(node), answer.epoch);
            } else {
              ++rec.rejected;
            }
          } else {
            const mesh::Coord src = random_node(machine, rng);
            const RouteAnswer answer =
                service.query_route(src, random_node(machine, rng));
            if (answer.status == QueryStatus::Ok) {
              ++rec.ok;
              note_epoch(service.shard_of(src), answer.epoch);
            } else {
              ++rec.rejected;
            }
          }
        }
        rec.latency_us.add(us_between(begin, Clock::now()));
      }
    });
  }

  for (auto& worker : workers) worker.join();
  writer.join();
  // Quiesce: every accepted event applied, every halo delta drained.
  service.flush();
  const auto end = Clock::now();

  stats::Histogram latency{0.0, 1000.0, 2000};
  std::size_t batches_ok = 0;
  for (const WorkerRecord& rec : records) {
    result.queries_ok += rec.ok;
    result.queries_rejected += rec.rejected;
    result.batch_items += rec.batch_items;
    batches_ok += rec.batches_ok;
    result.epochs_monotone = result.epochs_monotone && rec.epochs_monotone;
    latency.merge(rec.latency_us);
  }
  result.submit_retries = submit_retries;
  result.submit_backoff_us = submit_backoff_us;
  result.submits_shed = submits_shed;
  result.wall_seconds = us_between(start, end) / 1e6;
  const double answers = static_cast<double>(result.queries_ok - batches_ok +
                                             result.batch_items);
  result.qps = result.wall_seconds > 0 ? answers / result.wall_seconds : 0.0;
  result.p50_us = latency.median();
  result.p99_us = latency.p99();
  result.latency_overflow = latency.overflow();

  result.final_digest = service.composite_digest();
  const auto snapshots = service.snapshots();
  const auto node_count = static_cast<std::size_t>(machine.node_count());
  for (std::size_t i = 0; i < node_count; ++i) {
    const mesh::Coord c = machine.coord(i);
    if (snapshots[service.shard_of(c)]->faults().contains(c)) {
      ++result.final_faults;
    }
  }
  const ShardedStats stats = service.stats();
  result.halo_deltas = stats.halo_deltas;
  result.halo_events = stats.halo_events;
  result.shard_epochs = stats.shard_epochs;
  return result;
}

}  // namespace ocp::svc
