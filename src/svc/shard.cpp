#include "svc/shard.hpp"

#include <algorithm>

namespace ocp::svc {

namespace {

/// Clamped, remainder-front-loaded split of `tiles` tile-slots into
/// `want` contiguous chunks; fills `assign[tile] = chunk`.
std::int32_t split_axis(std::int32_t tiles, std::int32_t want,
                        std::vector<std::uint32_t>& assign) {
  const std::int32_t chunks = std::clamp(want, std::int32_t{1}, tiles);
  assign.resize(static_cast<std::size_t>(tiles));
  const std::int32_t base = tiles / chunks;
  const std::int32_t extra = tiles % chunks;
  std::int32_t tile = 0;
  for (std::int32_t chunk = 0; chunk < chunks; ++chunk) {
    const std::int32_t len = base + (chunk < extra ? 1 : 0);
    for (std::int32_t i = 0; i < len; ++i) {
      assign[static_cast<std::size_t>(tile++)] =
          static_cast<std::uint32_t>(chunk);
    }
  }
  return chunks;
}

IngestConfig with_collection(IngestConfig config) {
  config.collect_applied = true;
  return config;
}

}  // namespace

ShardGrid::ShardGrid(const mesh::Mesh2D& m, std::int32_t rows,
                     std::int32_t cols)
    : tiles_(m) {
  // Clamp the total to 16 shards (acquire-slot capacity): shrink the larger
  // axis first — it has the most slack — until the product fits.
  rows = std::clamp(rows, std::int32_t{1}, tiles_.tiles_y());
  cols = std::clamp(cols, std::int32_t{1}, tiles_.tiles_x());
  while (rows * cols > 16) {
    (rows >= cols ? rows : cols) -= 1;
  }
  rows_ = split_axis(tiles_.tiles_y(), rows, shard_row_of_tile_row_);
  cols_ = split_axis(tiles_.tiles_x(), cols, shard_col_of_tile_col_);
}

Shard::Shard(std::uint32_t index, const ShardGrid& grid, grid::CellSet initial,
             IngestConfig config)
    : index_(index),
      grid_(&grid),
      engine_(std::move(initial), with_collection(std::move(config))),
      versions_(grid.machine(), 0) {}

Shard::ApplyResult Shard::apply(std::span<const FaultEvent> external,
                                std::span<const HaloDelta> halo) {
  ApplyResult result;
  batch_scratch_.assign(external.begin(), external.end());
  for (const HaloDelta& delta : halo) {
    for (const HaloCellState& state : delta.states) {
      if (grid_->owns(index_, state.cell)) {
        continue;  // single authority on owned cells: gossip never wins
      }
      std::uint64_t& stored = versions_[state.cell];
      if (state.version <= stored) continue;
      stored = state.version;
      // Queue the flip unconditionally: an earlier delta in this same batch
      // may hold the opposite state for this cell, pending in the scratch
      // but not yet applied, so the engine's labeling alone cannot tell
      // whether this state is news. The batch coalescer keeps the last
      // event per cell and drops already-satisfied states, so a redundant
      // event costs nothing — whereas skipping a genuine flip here is
      // permanent: the version gate would reject every re-delivery.
      batch_scratch_.push_back(
          {state.faulty ? EventKind::Fault : EventKind::Repair, state.cell});
      ++result.halo_events;
    }
  }
  if (batch_scratch_.empty() &&
      engine_.stale_epochs_pending() == 0) {
    result.outcome.epoch = engine_.snapshot()->epoch();
    return result;
  }

  result.outcome = engine_.apply(batch_scratch_);
  if (result.outcome.crashed) {
    result.interrupted = batch_scratch_;
    return result;
  }

  // Stamp the owned cells this batch flipped: these are the states the rest
  // of the fleet must be willing to adopt over anything older.
  for (const FaultEvent& event : result.outcome.applied_events) {
    if (grid_->owns(index_, event.node)) {
      versions_[event.node] = ++version_counter_;
    }
  }

  if (result.outcome.dirty_cells.empty()) return result;

  // Dedupe the extent and find which foreign shards it touches.
  extent_scratch_ = result.outcome.dirty_cells;
  const mesh::Mesh2D& m = grid_->machine();
  std::sort(extent_scratch_.begin(), extent_scratch_.end(),
            [&m](mesh::Coord a, mesh::Coord b) {
              return m.index(a) < m.index(b);
            });
  extent_scratch_.erase(
      std::unique(extent_scratch_.begin(), extent_scratch_.end()),
      extent_scratch_.end());
  // The extent is the merged unsafe component — faulty and unsafe cells
  // only, so on a replica that has not yet heard the foreign half of a
  // seam-spanning block it never *contains* foreign cells. The boundary
  // test therefore also walks each dirty cell's mesh neighbors (which
  // follows torus wrap links): a component one hop from foreign territory
  // can change labels there, so its owner must hear about it.
  std::vector<std::uint32_t> targets;
  const auto add_owner = [&](mesh::Coord c) {
    const std::uint32_t owner = grid_->shard_of(c);
    if (owner != index_ &&
        std::find(targets.begin(), targets.end(), owner) == targets.end()) {
      targets.push_back(owner);
    }
  };
  for (const mesh::Coord c : extent_scratch_) {
    add_owner(c);
    for (const mesh::Link& l : m.neighbors(c)) add_owner(l.to);
  }
  if (targets.empty()) return result;
  std::sort(targets.begin(), targets.end());

  // Every touched neighbor gets the whole extent (see header: a receiver
  // needs the full component, including third-party cells, to relabel a
  // seam-spanning region identically).
  HaloDelta delta;
  delta.source = index_;
  delta.states.reserve(extent_scratch_.size());
  const grid::CellSet& faults = engine_.labeling().faults();
  for (const mesh::Coord c : extent_scratch_) {
    delta.states.push_back({c, faults.contains(c), versions_[c]});
  }
  result.outgoing.reserve(targets.size());
  for (const std::uint32_t target : targets) {
    result.outgoing.emplace_back(target, delta);
  }
  return result;
}

}  // namespace ocp::svc
