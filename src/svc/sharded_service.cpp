#include "svc/sharded_service.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <utility>

namespace ocp::svc {

/// RAII admission token, identical in contract to Service::InflightGate:
/// one fleet-wide increment per executing query, rejected entries never
/// hold the slot.
class ShardedService::InflightGate {
 public:
  explicit InflightGate(const ShardedService& service)
      : service_(service), admitted_(service.admit_query()) {}
  ~InflightGate() {
    if (admitted_) {
      service_.inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  InflightGate(const InflightGate&) = delete;
  InflightGate& operator=(const InflightGate&) = delete;

  [[nodiscard]] bool admitted() const noexcept { return admitted_; }

 private:
  const ShardedService& service_;
  bool admitted_;
};

struct ShardedService::ShardRuntime {
  ShardRuntime(std::uint32_t index, const ShardGrid& grid,
               grid::CellSet initial, const IngestConfig& config,
               std::size_t capacity)
      : queue(capacity, config.chaos),
        shard(index, grid, std::move(initial), config) {}

  EventQueue queue;
  Shard shard;
  /// Halo deltas awaiting this shard's next batch; guarded by the service
  /// mutex, like the flags below.
  std::deque<HaloDelta> inbox;
  /// True between a drain and the corresponding apply completing — the
  /// window the flush barrier must not cross.
  bool draining = false;
  bool crashed = false;
  std::thread worker;
};

/// Per-call pin set: at most one `acquire` per shard per query, so every
/// read of a shard inside one query sees one epoch AND no pinned reference
/// can be retired by a later same-shard acquire observing a fresh publish
/// (acquire retires the thread's previous handle — see ingest.hpp).
struct ShardedService::ShardPinSet {
  const ShardedService& svc;
  std::array<const Snapshot*, 16> pinned{};

  explicit ShardPinSet(const ShardedService& s) : svc(s) {}

  const Snapshot& get(std::uint32_t shard) {
    const Snapshot*& slot = pinned[shard];
    if (slot == nullptr) slot = &svc.acquire(shard);
    return *slot;
  }
};

ShardedService::ShardedService(grid::CellSet initial_faults,
                               ShardedServiceConfig config)
    : config_(std::move(config)),
      grid_(initial_faults.topology(), config_.shard_rows,
            config_.shard_cols) {
  shards_.reserve(grid_.count());
  for (std::uint32_t i = 0; i < grid_.count(); ++i) {
    IngestConfig ingest = config_.ingest;
    if (i < config_.shard_chaos.size()) ingest.chaos = config_.shard_chaos[i];
    shards_.push_back(std::make_unique<ShardRuntime>(
        i, grid_, initial_faults, ingest, config_.queue_capacity));
  }
  for (std::uint32_t i = 0; i < grid_.count(); ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

ShardedService::~ShardedService() {
  // Dead writers still owe accepted events an application before shutdown.
  for (std::uint32_t i = 0; i < grid_.count(); ++i) restart_shard(i);
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  for (auto& rt : shards_) rt->queue.close();
  wake_.notify_all();
  progress_.notify_all();
  for (auto& rt : shards_) {
    if (rt->worker.joinable()) rt->worker.join();
  }
}

void ShardedService::worker_loop(std::uint32_t index) {
  ShardRuntime& rt = *shards_[index];
  const obs::TraceConfig& trace = config_.ingest.trace;
  for (;;) {
    std::vector<FaultEvent> external;
    std::vector<HaloDelta> halo;
    {
      std::unique_lock lock(mu_);
      wake_.wait(lock, [this, &rt] {
        return stopping_ || rt.queue.depth() > 0 || !rt.inbox.empty();
      });
      if (stopping_ && rt.queue.depth() == 0 && rt.inbox.empty()) break;
      halo.assign(std::make_move_iterator(rt.inbox.begin()),
                  std::make_move_iterator(rt.inbox.end()));
      rt.inbox.clear();
      external = rt.queue.try_drain(config_.max_batch);
      rt.draining = !external.empty() || !halo.empty();
    }
    if (external.empty() && halo.empty()) continue;

    Shard::ApplyResult result = rt.shard.apply(external, halo);
    if (result.outcome.crashed) {
      // Crash epilogue, as in Service::ingest_loop: unpublished backlog
      // first, then the interrupted batch (external + halo-derived — the
      // version gate already consumed the deltas, so the events are the
      // only carrier of that knowledge now). The thread "process" dies;
      // restart_shard resurrects it and replay converges.
      std::vector<FaultEvent> replay = std::move(result.outcome.requeue);
      replay.insert(replay.end(), result.interrupted.begin(),
                    result.interrupted.end());
      rt.queue.requeue_front(std::move(replay));
      {
        std::lock_guard lock(mu_);
        rt.crashed = true;
        rt.draining = false;
      }
      trace.counter("svc.shard_kills", 1);
      progress_.notify_all();
      return;
    }

    // Deliver outgoing halo deltas BEFORE clearing draining, under the same
    // lock: the flush barrier can therefore never observe "nothing queued,
    // nobody draining" while a delta is still in flight between shards.
    bool gossip = false;
    {
      std::lock_guard lock(mu_);
      for (auto& [target, delta] : result.outgoing) {
        shards_[target]->inbox.push_back(std::move(delta));
        ++halo_deltas_;
        gossip = true;
      }
      halo_events_ += result.halo_events;
      rt.draining = false;
    }
    if (gossip) {
      trace.counter("svc.halo_deltas",
                    static_cast<std::int64_t>(result.outgoing.size()));
      wake_.notify_all();
    }
    progress_.notify_all();
  }
}

SubmitStatus ShardedService::submit(FaultEvent event) {
  // Out-of-machine coordinates go to shard 0, whose engine counts them
  // invalid — never fatal, same contract as the single-shard service.
  const std::uint32_t target = grid_.machine().contains(event.node)
                                   ? grid_.shard_of(event.node)
                                   : 0;
  const SubmitStatus status = shards_[target]->queue.push(event);
  if (status == SubmitStatus::Accepted) {
    // Briefly serialize against the waiters so the wakeup cannot be lost
    // between a predicate check and its wait.
    { std::lock_guard lock(mu_); }
    wake_.notify_all();
  } else {
    config_.ingest.trace.counter("svc.submit_rejects", 1);
  }
  return status;
}

void ShardedService::flush() {
  wake_.notify_all();
  std::unique_lock lock(mu_);
  progress_.wait(lock, [this] {
    if (stopping_) return true;
    for (const auto& rt : shards_) {
      // A dead writer cannot barrier; flush returns with shard_crashed()
      // observable instead of hanging (recovery is an explicit restart).
      if (rt->crashed) return true;
      if (rt->queue.depth() > 0 || !rt->inbox.empty() || rt->draining) {
        return false;
      }
    }
    return true;  // fixpoint: no events, no deltas, nobody mid-apply
  });
}

bool ShardedService::shard_crashed(std::uint32_t shard) const {
  std::lock_guard lock(mu_);
  return shard < shards_.size() && shards_[shard]->crashed;
}

bool ShardedService::any_shard_crashed() const {
  std::lock_guard lock(mu_);
  return std::any_of(shards_.begin(), shards_.end(),
                     [](const auto& rt) { return rt->crashed; });
}

bool ShardedService::restart_shard(std::uint32_t shard) {
  if (shard >= shards_.size()) return false;
  ShardRuntime& rt = *shards_[shard];
  std::thread dead;
  {
    std::lock_guard lock(mu_);
    if (!rt.crashed) return false;
    rt.crashed = false;
    // The new thread blocks on mu_ until this scope releases it; the dead
    // one already left the loop (it set crashed as its last locked act).
    dead = std::move(rt.worker);
    rt.worker = std::thread([this, shard] { worker_loop(shard); });
  }
  if (dead.joinable()) dead.join();
  config_.ingest.trace.counter("svc.shard_restarts", 1);
  return true;
}

bool ShardedService::admit_query() const {
  const std::size_t cap = config_.max_inflight_queries;
  const std::int64_t running =
      inflight_queries_.fetch_add(1, std::memory_order_relaxed);
  if (cap != 0 && running >= static_cast<std::int64_t>(cap)) {
    inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    query_overloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

const Snapshot& ShardedService::acquire(std::uint32_t s) const {
  return shards_[s]->shard.engine().acquire();
}

StatusAnswer ShardedService::query_status(mesh::Coord node) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  if (!grid_.machine().contains(node)) {
    return {.status = QueryStatus::InvalidArgument,
            .epoch = acquire(0).epoch()};
  }
  const Snapshot& snap = acquire(grid_.shard_of(node));
  return {.status = QueryStatus::Ok,
          .epoch = snap.epoch(),
          .node = snap.status_of(node)};
}

RegionAnswer ShardedService::query_region(mesh::Coord node) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  if (!grid_.machine().contains(node)) {
    return {.status = QueryStatus::InvalidArgument,
            .epoch = acquire(0).epoch()};
  }
  const Snapshot& snap = acquire(grid_.shard_of(node));
  RegionAnswer answer{.status = QueryStatus::Ok,
                      .epoch = snap.epoch(),
                      .region_id = snap.region_id_of(node)};
  if (const labeling::DisabledRegion* region = snap.region_of(node)) {
    answer.region_size = region->size();
    answer.fault_count = region->fault_count;
    answer.parent_block = region->parent_block;
  }
  return answer;
}

routing::Route ShardedService::stitch_route(mesh::Coord src, mesh::Coord dst,
                                            ShardPinSet& pins) const {
  const obs::TraceConfig& trace = config_.ingest.trace;
  routing::Route out;
  mesh::Coord cur = src;
  out.path.push_back(cur);
  std::uint32_t authority = grid_.shard_of(src);
  // Authority switches are bounded: shard views disagree only on in-flight
  // gossip, so the cap is generous; exceeding it degrades to the router's
  // own typed Livelock verdict rather than an unbounded walk.
  const std::size_t max_switches =
      static_cast<std::size_t>(grid_.count()) * 4 + 4;
  std::size_t switches = 0;
  for (;;) {
    const Snapshot& snap = pins.get(authority);
    // The authoritative shard's cached segment for the remainder. The
    // reference is stable for the snapshot's lifetime; the pin set keeps
    // the snapshot alive for the whole query.
    const routing::Route& seg = snap.route(cur, dst);
    trace.counter("svc.route_segments", 1);
    if (seg.status != routing::RouteStatus::Delivered) {
      // The owner of the current position says the remainder fails; its
      // verdict stands (its view of remote cells may be stale, but a
      // livelock/blocked verdict is already best-effort under churn).
      out.status = seg.status;
      return out;
    }
    bool switched = false;
    for (std::size_t i = 1; i < seg.path.size(); ++i) {
      const mesh::Coord hop = seg.path[i];
      const std::uint32_t owner = grid_.shard_of(hop);
      if (owner != authority &&
          pins.get(owner).status_of(hop) != NodeStatus::Enabled) {
        // Boundary crossing onto a cell its owner serves as blocked: the
        // segment was computed from a stale ghost. Adopt nothing past the
        // crossing; the owner becomes the authority and re-routes the
        // remainder from the last validated cell.
        if (++switches > max_switches) {
          out.status = routing::RouteStatus::Livelock;
          return out;
        }
        trace.counter("svc.route_stitch_switches", 1);
        authority = owner;
        switched = true;
        break;
      }
      out.path.push_back(hop);
      out.phase.push_back(seg.phase[i - 1]);
      cur = hop;
    }
    if (!switched) {
      out.status = routing::RouteStatus::Delivered;
      return out;
    }
  }
}

RouteAnswer ShardedService::query_route(mesh::Coord src,
                                        mesh::Coord dst) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  if (!grid_.machine().contains(src) || !grid_.machine().contains(dst)) {
    return {.status = QueryStatus::InvalidArgument,
            .epoch = acquire(0).epoch()};
  }
  ShardPinSet pins(*this);
  const std::uint64_t epoch = pins.get(grid_.shard_of(src)).epoch();
  const obs::TraceConfig& trace = config_.ingest.trace;
  if (!trace.rounds()) {
    return {.status = QueryStatus::Ok,
            .epoch = epoch,
            .route = stitch_route(src, dst, pins)};
  }
  // Contention attribution (round-level tracing only): instants of the
  // shared-state touches this query's window saw on the pinned epochs'
  // route caches. Concurrent queries on the same epochs land in the same
  // window — exactly the contention being attributed.
  const auto cache_locks = [this, &pins] {
    std::uint64_t locks = 0;
    for (std::uint32_t s = 0; s < grid_.count(); ++s) {
      locks += pins.get(s).route_cache().shared_lock_acquisitions();
    }
    return locks;
  };
  const std::uint64_t before = cache_locks();
  RouteAnswer answer{.status = QueryStatus::Ok,
                     .epoch = epoch,
                     .route = stitch_route(src, dst, pins)};
  trace.instant("svc.query.cache_lock_touches",
                static_cast<std::int64_t>(cache_locks() - before));
  return answer;
}

ShardedBatchAnswer ShardedService::query_batch(
    const std::vector<QueryItem>& items,
    std::chrono::steady_clock::time_point deadline) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  ShardedBatchAnswer answer;
  answer.items.resize(items.size());
  const mesh::Mesh2D& m = grid_.machine();
  // Scatter-gather against a pin set: the first item touching a shard fixes
  // the epoch every later item reads that shard at — the batch's composite
  // epoch vector is exact even while shards publish concurrently.
  ShardPinSet pins(*this);
  const bool has_deadline =
      deadline != std::chrono::steady_clock::time_point{};
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      for (std::size_t j = i; j < items.size(); ++j) {
        answer.items[j].status = QueryStatus::Timeout;
      }
      answer.status = QueryStatus::Timeout;
      break;
    }
    const QueryItem& item = items[i];
    BatchItemAnswer& out = answer.items[i];
    if (!m.contains(item.a) ||
        (item.kind == QueryKind::Route && !m.contains(item.b))) {
      out.status = QueryStatus::InvalidArgument;
      ++answer.completed;
      continue;
    }
    switch (item.kind) {
      case QueryKind::Status:
        out.node = pins.get(grid_.shard_of(item.a)).status_of(item.a);
        break;
      case QueryKind::Region: {
        const Snapshot& snap = pins.get(grid_.shard_of(item.a));
        out.node = snap.status_of(item.a);
        out.region_id = snap.region_id_of(item.a);
        break;
      }
      case QueryKind::Route: {
        const routing::Route route = stitch_route(item.a, item.b, pins);
        out.route_status = route.status;
        out.hops = route.hops();
        break;
      }
    }
    ++answer.completed;
  }
  for (std::uint32_t s = 0; s < grid_.count(); ++s) {
    if (pins.pinned[s] != nullptr) {
      answer.epochs.push_back({s, pins.pinned[s]->epoch()});
    }
  }
  return answer;
}

std::vector<std::shared_ptr<const Snapshot>> ShardedService::snapshots()
    const {
  std::vector<std::shared_ptr<const Snapshot>> out;
  out.reserve(shards_.size());
  for (const auto& rt : shards_) {
    out.push_back(rt->shard.engine().snapshot());
  }
  return out;
}

std::uint64_t ShardedService::composite_digest() const {
  return composite_label_digest(grid_, snapshots());
}

ShardedStats ShardedService::stats() const {
  ShardedStats stats;
  for (const auto& rt : shards_) {
    stats.shard_epochs.push_back(rt->shard.engine().snapshot()->epoch());
    stats.queue_depth += rt->queue.depth();
    stats.events_accepted += rt->queue.accepted();
    stats.events_rejected += rt->queue.rejected();
    const IngestStats ingest = rt->shard.engine().stats();
    stats.ingest.batches += ingest.batches;
    stats.ingest.events += ingest.events;
    stats.ingest.applied += ingest.applied;
    stats.ingest.coalesced += ingest.coalesced;
    stats.ingest.invalid += ingest.invalid;
    stats.ingest.epochs_published += ingest.epochs_published;
    stats.ingest.oracle_rejects += ingest.oracle_rejects;
    stats.ingest.crashes += ingest.crashes;
  }
  stats.query_overloads = query_overloads_.load(std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  stats.halo_deltas = halo_deltas_;
  stats.halo_events = halo_events_;
  for (const auto& rt : shards_) {
    if (rt->crashed) ++stats.shards_crashed;
  }
  return stats;
}

std::uint64_t composite_label_digest(
    const ShardGrid& grid,
    const std::vector<std::shared_ptr<const Snapshot>>& snapshots) {
  // Mirrors Snapshot::label_digest bit for bit: same FNV-1a constants, same
  // fold order — per-cell planes row-major (each cell read from its owning
  // shard), then block count, then region count, then (size, fault_count)
  // per region in min-cell-index order (the order the single-writer
  // maintains its regions() vector in).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  const mesh::Mesh2D& m = grid.machine();
  const std::size_t n = static_cast<std::size_t>(m.node_count());
  for (std::size_t i = 0; i < n; ++i) {
    const Snapshot& snap = *snapshots[grid.shard_of(m.coord(i))];
    std::uint64_t v = snap.faults().contains_index(i) ? 4u : 0u;
    v |= snap.safety().at_index(i) == labeling::Safety::Unsafe ? 2u : 0u;
    v |= snap.activation().at_index(i) == labeling::Activation::Disabled ? 1u
                                                                         : 0u;
    mix(v + 1);
  }
  // Blocks and regions are collected from each shard only when they
  // intersect its OWNED cells (ghost areas of a replica may hold stale
  // structure for components the shard never hears about) and deduped by
  // min-cell-index: a seam-spanning entry is extracted identically by every
  // owner — same converged fault knowledge, same deterministic extraction —
  // so duplicates collapse to one key.
  std::map<std::size_t, std::uint8_t> block_keys;
  std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> regions;
  for (std::uint32_t s = 0; s < grid.count(); ++s) {
    const Snapshot& snap = *snapshots[s];
    for (const labeling::FaultyBlock& block : snap.blocks()) {
      std::size_t key = n;
      bool owned = false;
      for (const mesh::Coord c : block.component.cells()) {
        key = std::min(key, m.index(c));
        owned = owned || grid.owns(s, c);
      }
      if (owned) block_keys.emplace(key, 0);
    }
    for (const labeling::DisabledRegion& region : snap.regions()) {
      std::size_t key = n;
      bool owned = false;
      for (const mesh::Coord c : region.component.cells()) {
        key = std::min(key, m.index(c));
        owned = owned || grid.owns(s, c);
      }
      if (owned) {
        regions.emplace(
            key, std::make_pair(static_cast<std::uint64_t>(region.size()),
                                static_cast<std::uint64_t>(region.fault_count)));
      }
    }
  }
  mix(block_keys.size());
  mix(regions.size());
  for (const auto& [key, entry] : regions) {
    mix(entry.first);
    mix(entry.second);
  }
  return h;
}

ShardedRoundsResult run_sharded_rounds(const ShardGrid& grid,
                                       const grid::CellSet& initial,
                                       std::span<const FaultEvent> stream,
                                       std::size_t max_batch,
                                       IngestConfig config) {
  const std::uint32_t count = grid.count();
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    shards.push_back(std::make_unique<Shard>(s, grid, initial, config));
  }

  const mesh::Mesh2D& m = grid.machine();
  std::vector<std::vector<FaultEvent>> backlog(count);
  for (const FaultEvent& event : stream) {
    const std::uint32_t target =
        m.contains(event.node) ? grid.shard_of(event.node) : 0;
    backlog[target].push_back(event);
  }

  std::vector<std::size_t> cursor(count, 0);
  std::vector<std::vector<HaloDelta>> inbox(count);
  std::vector<std::vector<HaloDelta>> next_inbox(count);
  std::vector<Shard::ApplyResult> results(count);
  ShardedRoundsResult out;
  for (;;) {
    bool pending = false;
    for (std::uint32_t s = 0; s < count; ++s) {
      if (cursor[s] < backlog[s].size() || !inbox[s].empty()) {
        pending = true;
        break;
      }
    }
    if (!pending) break;
    ++out.rounds;

    // Parallel section: shards touch disjoint state (their own engine,
    // their own inbox slice); results land in per-shard slots. Identical
    // for any thread count.
    const auto shard_count = static_cast<std::int64_t>(count);
#ifdef OCP_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t s = 0; s < shard_count; ++s) {
      const auto idx = static_cast<std::size_t>(s);
      const std::size_t take =
          std::min(max_batch, backlog[idx].size() - cursor[idx]);
      const std::span<const FaultEvent> external(
          backlog[idx].data() + cursor[idx], take);
      results[idx] = shards[idx]->apply(external, inbox[idx]);
      cursor[idx] += take;
    }

    // Serial delta routing in ascending shard order: the inter-round
    // delivery order — and with it every downstream batch — is fixed.
    for (std::uint32_t s = 0; s < count; ++s) {
      Shard::ApplyResult& result = results[s];
      // Attribute applies to the external stream vs gossip; a halo-derived
      // event can itself coalesce away, so clamp instead of underflowing.
      const std::size_t halo_share =
          std::min(result.halo_events, result.outcome.applied);
      out.applied += result.outcome.applied - halo_share;
      out.halo_events += result.halo_events;
      for (auto& [target, delta] : result.outgoing) {
        next_inbox[target].push_back(std::move(delta));
        ++out.halo_deltas;
      }
      result = {};
    }
    for (std::uint32_t s = 0; s < count; ++s) {
      inbox[s] = std::move(next_inbox[s]);
      next_inbox[s].clear();
    }
  }

  out.snapshots.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    out.snapshots.push_back(shards[s]->engine().snapshot());
  }
  out.composite_digest = composite_label_digest(grid, out.snapshots);
  return out;
}

}  // namespace ocp::svc
