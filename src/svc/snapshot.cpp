#include "svc/snapshot.hpp"

#include "core/regions.hpp"

namespace ocp::svc {

Snapshot::Snapshot(std::uint64_t epoch, grid::CellSet faults,
                   grid::NodeGrid<labeling::Safety> safety,
                   grid::NodeGrid<labeling::Activation> activation,
                   std::vector<labeling::FaultyBlock> blocks,
                   std::vector<labeling::DisabledRegion> regions,
                   routing::Hand hand)
    : epoch_(epoch),
      faults_(std::move(faults)),
      safety_(std::move(safety)),
      activation_(std::move(activation)),
      blocks_(std::move(blocks)),
      regions_(std::move(regions)),
      blocked_(labeling::disabled_cells(activation_)),
      region_index_(static_cast<std::size_t>(machine().node_count()), -1),
      router_(machine(), blocked_, hand),
      cache_(router_, machine()) {
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    for (mesh::Coord c : regions_[r].component.cells()) {
      region_index_[machine().index(c)] = static_cast<std::int32_t>(r);
    }
  }
}

std::shared_ptr<const Snapshot> Snapshot::build(
    std::uint64_t epoch, const labeling::MaintainedLabeling& labeling,
    routing::Hand hand) {
  return std::make_shared<const Snapshot>(epoch, labeling.faults(),
                                          labeling.safety(),
                                          labeling.activation(),
                                          labeling.blocks(),
                                          labeling.regions(), hand);
}

check::ViolationReport Snapshot::validate(labeling::SafeUnsafeDef def,
                                          std::uint32_t checks) const {
  // The oracle consumes a PipelineResult; assemble one from the frozen
  // planes. Round statistics stay zeroed, which the oracle reads as
  // "reference engine" and skips the convergence checks for.
  labeling::PipelineResult view{.safety = safety_,
                               .activation = activation_,
                               .blocks = blocks_,
                               .regions = regions_,
                               .safety_stats = {},
                               .activation_stats = {}};
  return check::check_pipeline(
      faults_, view, {.definition = def, .checks = checks});
}

std::uint64_t Snapshot::label_digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  const std::size_t n = safety_.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = faults_.contains_index(i) ? 4u : 0u;
    v |= safety_.at_index(i) == labeling::Safety::Unsafe ? 2u : 0u;
    v |= activation_.at_index(i) == labeling::Activation::Disabled ? 1u : 0u;
    mix(v + 1);
  }
  mix(blocks_.size());
  mix(regions_.size());
  for (const auto& region : regions_) {
    mix(region.size());
    mix(static_cast<std::uint64_t>(region.fault_count));
  }
  return h;
}

}  // namespace ocp::svc
