#include "svc/snapshot.hpp"

#include <algorithm>

#include "core/regions.hpp"

namespace ocp::svc {

namespace {

std::size_t min_cell_index(const mesh::Mesh2D& m,
                           const labeling::DisabledRegion& region) {
  std::size_t best = static_cast<std::size_t>(m.node_count());
  for (const mesh::Coord c : region.component.cells()) {
    best = std::min(best, m.index(c));
  }
  return best;
}

}  // namespace

Snapshot::Snapshot(std::uint64_t epoch,
                   const labeling::MaintainedLabeling& labeling,
                   const Snapshot* prev, std::uint64_t dirty_tiles,
                   std::uint64_t padded_dirty_tiles, routing::Hand hand)
    : epoch_(epoch),
      faults_(labeling.faults()),
      safety_(labeling.safety()),
      activation_(labeling.activation()),
      blocks_(labeling.blocks()),
      regions_(labeling.regions()),
      blocked_(labeling.disabled()),
      tiles_(faults_.topology()),
      hand_(hand),
      router_(machine(), blocked_, hand),
      cache_(router_, machine()) {
  const auto status_value = [this](mesh::Coord c) {
    if (faults_.contains(c)) return NodeStatus::Faulty;
    return activation_[c] == labeling::Activation::Disabled
               ? NodeStatus::Disabled
               : NodeStatus::Enabled;
  };
  const grid::NodeGrid<std::int32_t>& keys = labeling.region_keys();
  const auto key_value = [&keys](mesh::Coord c) { return keys[c]; };
  dirty_tiles_ = dirty_tiles;
  if (prev == nullptr) {
    status_pages_ =
        PagedPlane<NodeStatus>::build(tiles_, status_value, page_stats_);
    region_key_pages_ =
        PagedPlane<std::int32_t>::build(tiles_, key_value, page_stats_);
    tile_generations_.assign(tiles_.tile_count(), epoch_);
  } else {
    status_pages_ = PagedPlane<NodeStatus>::next(
        prev->status_pages_, tiles_, dirty_tiles, status_value, page_stats_);
    region_key_pages_ = PagedPlane<std::int32_t>::next(
        prev->region_key_pages_, tiles_, dirty_tiles, key_value, page_stats_);
    tile_generations_ = prev->tile_generations_;
    for (std::uint32_t t = 0; t < tiles_.tile_count(); ++t) {
      if ((dirty_tiles >> t) & 1u) tile_generations_[t] = epoch_;
    }
    // Warm start: routes that never probed a dirtied neighborhood are
    // still correct under the new blocked set.
    cache_carry_stats_ = cache_.adopt(prev->cache_, padded_dirty_tiles);
  }
  index_regions();
}

Snapshot::Snapshot(std::uint64_t epoch, grid::CellSet faults,
                   grid::NodeGrid<labeling::Safety> safety,
                   grid::NodeGrid<labeling::Activation> activation,
                   std::vector<labeling::FaultyBlock> blocks,
                   std::vector<labeling::DisabledRegion> regions,
                   routing::Hand hand)
    : epoch_(epoch),
      faults_(std::move(faults)),
      safety_(std::move(safety)),
      activation_(std::move(activation)),
      blocks_(std::move(blocks)),
      regions_(std::move(regions)),
      blocked_(labeling::disabled_cells(activation_)),
      tiles_(faults_.topology()),
      hand_(hand),
      router_(machine(), blocked_, hand),
      cache_(router_, machine()) {
  const auto status_value = [this](mesh::Coord c) {
    if (faults_.contains(c)) return NodeStatus::Faulty;
    return activation_[c] == labeling::Activation::Disabled
               ? NodeStatus::Disabled
               : NodeStatus::Enabled;
  };
  grid::NodeGrid<std::int32_t> keys(machine(), -1);
  for (const labeling::DisabledRegion& region : regions_) {
    const auto key =
        static_cast<std::int32_t>(min_cell_index(machine(), region));
    for (const mesh::Coord c : region.component.cells()) keys[c] = key;
  }
  const auto key_value = [&keys](mesh::Coord c) { return keys[c]; };
  status_pages_ =
      PagedPlane<NodeStatus>::build(tiles_, status_value, page_stats_);
  region_key_pages_ =
      PagedPlane<std::int32_t>::build(tiles_, key_value, page_stats_);
  tile_generations_.assign(tiles_.tile_count(), epoch_);
  index_regions();
}

void Snapshot::index_regions() {
  key_to_region_.assign(static_cast<std::size_t>(machine().node_count()), -1);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    key_to_region_[min_cell_index(machine(), regions_[r])] =
        static_cast<std::int32_t>(r);
  }
}

std::shared_ptr<const Snapshot> Snapshot::build(
    std::uint64_t epoch, const labeling::MaintainedLabeling& labeling,
    routing::Hand hand) {
  return std::shared_ptr<const Snapshot>(
      new Snapshot(epoch, labeling, nullptr, ~std::uint64_t{0},
                   ~std::uint64_t{0}, hand));
}

std::shared_ptr<const Snapshot> Snapshot::next(
    const Snapshot& prev, std::uint64_t epoch,
    const labeling::MaintainedLabeling& labeling, std::uint64_t dirty_tiles,
    std::uint64_t padded_dirty_tiles) {
  return std::shared_ptr<const Snapshot>(
      new Snapshot(epoch, labeling, &prev, dirty_tiles, padded_dirty_tiles,
                   prev.hand_));
}

check::ViolationReport Snapshot::validate(labeling::SafeUnsafeDef def,
                                          std::uint32_t checks) const {
  // The oracle consumes a PipelineResult; assemble one from the frozen
  // planes. Round statistics stay zeroed, which the oracle reads as
  // "reference engine" and skips the convergence checks for.
  labeling::PipelineResult view{.safety = safety_,
                               .activation = activation_,
                               .blocks = blocks_,
                               .regions = regions_,
                               .safety_stats = {},
                               .activation_stats = {}};
  return check::check_pipeline(
      faults_, view, {.definition = def, .checks = checks});
}

std::uint64_t Snapshot::label_digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  const std::size_t n = safety_.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = faults_.contains_index(i) ? 4u : 0u;
    v |= safety_.at_index(i) == labeling::Safety::Unsafe ? 2u : 0u;
    v |= activation_.at_index(i) == labeling::Activation::Disabled ? 1u : 0u;
    mix(v + 1);
  }
  mix(blocks_.size());
  mix(regions_.size());
  for (const auto& region : regions_) {
    mix(region.size());
    mix(static_cast<std::uint64_t>(region.fault_count));
  }
  return h;
}

}  // namespace ocp::svc
