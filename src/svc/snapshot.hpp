// The immutable serving artifact of the query runtime (src/svc).
//
// A `Snapshot` freezes one epoch of the labeled machine — fault set, both
// labelings, faulty blocks, disabled regions — together with the derived
// structures queries need at serving speed: a dense per-node region index
// (O(1) "which disabled region am I in"), the blocked set routers must
// avoid, a `FaultRingRouter` over that set, and a per-epoch
// `routing::RouteCache` that memoizes routes lazily. Snapshots are published
// by the single-writer ingest loop through an RCU-style `shared_ptr`
// swap (see ingest.hpp): readers acquire a snapshot, answer any number of
// queries against perfectly consistent state, and drop it; old epochs die
// when their last reader releases them. Nothing in a snapshot mutates after
// publication except the route cache's internal memo table, which is
// thread-safe and invisible to results (routing is deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/oracle.hpp"
#include "core/maintenance.hpp"
#include "core/pipeline.hpp"
#include "routing/route_cache.hpp"

namespace ocp::svc {

/// What a node is, as served to routers and schedulers. The three-valued
/// collapse of the paper's status lattice: consumers route through Enabled
/// nodes, detour around Disabled ones, and treat Faulty as dead hardware.
enum class NodeStatus : std::uint8_t {
  Enabled = 0,
  /// Nonfaulty but disabled — sacrificed to keep fault regions convex.
  Disabled = 1,
  Faulty = 2,
};

[[nodiscard]] constexpr const char* to_string(NodeStatus s) noexcept {
  switch (s) {
    case NodeStatus::Enabled: return "enabled";
    case NodeStatus::Disabled: return "disabled";
    case NodeStatus::Faulty: return "faulty";
  }
  return "?";
}

class Snapshot {
 public:
  /// Freezes the current state of a maintained labeling as epoch `epoch`.
  [[nodiscard]] static std::shared_ptr<const Snapshot> build(
      std::uint64_t epoch, const labeling::MaintainedLabeling& labeling,
      routing::Hand hand = routing::Hand::Right);

  /// Raw-component constructor; prefer `build`. Public so tests can
  /// assemble deliberately inconsistent snapshots and exercise `validate`'s
  /// rejection path.
  Snapshot(std::uint64_t epoch, grid::CellSet faults,
           grid::NodeGrid<labeling::Safety> safety,
           grid::NodeGrid<labeling::Activation> activation,
           std::vector<labeling::FaultyBlock> blocks,
           std::vector<labeling::DisabledRegion> regions, routing::Hand hand);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const mesh::Mesh2D& machine() const noexcept {
    return faults_.topology();
  }
  [[nodiscard]] const grid::CellSet& faults() const noexcept {
    return faults_;
  }
  /// Union of the disabled regions (faulty and sacrificed nodes): what
  /// routing treats as impassable.
  [[nodiscard]] const grid::CellSet& blocked() const noexcept {
    return blocked_;
  }
  [[nodiscard]] const grid::NodeGrid<labeling::Safety>& safety()
      const noexcept {
    return safety_;
  }
  [[nodiscard]] const grid::NodeGrid<labeling::Activation>& activation()
      const noexcept {
    return activation_;
  }
  [[nodiscard]] const std::vector<labeling::FaultyBlock>& blocks()
      const noexcept {
    return blocks_;
  }
  [[nodiscard]] const std::vector<labeling::DisabledRegion>& regions()
      const noexcept {
    return regions_;
  }

  /// O(1). Precondition: machine().contains(c).
  [[nodiscard]] NodeStatus status_of(mesh::Coord c) const noexcept {
    if (faults_.contains(c)) return NodeStatus::Faulty;
    return activation_[c] == labeling::Activation::Disabled
               ? NodeStatus::Disabled
               : NodeStatus::Enabled;
  }

  /// Index into `regions()` of the disabled region containing `c`, or -1
  /// when `c` is enabled. O(1) via the dense per-node index.
  [[nodiscard]] std::int32_t region_id_of(mesh::Coord c) const noexcept {
    return region_index_[machine().index(c)];
  }

  /// The disabled region containing `c`, or nullptr when `c` is enabled.
  [[nodiscard]] const labeling::DisabledRegion* region_of(
      mesh::Coord c) const noexcept {
    const std::int32_t id = region_id_of(c);
    return id < 0 ? nullptr : &regions_[static_cast<std::size_t>(id)];
  }

  /// Route over enabled nodes, memoized in this epoch's cache. The
  /// reference is stable for the snapshot's lifetime (per-epoch caches are
  /// never cleared).
  [[nodiscard]] const routing::Route& route(mesh::Coord src,
                                            mesh::Coord dst) const {
    return cache_.lookup(src, dst);
  }

  [[nodiscard]] const routing::RouteCache& route_cache() const noexcept {
    return cache_;
  }

  /// Runs the 16-check invariant oracle against this snapshot's labeling
  /// (convergence checks skip automatically: a snapshot carries no round
  /// statistics). The publish gate of the ingest loop.
  [[nodiscard]] check::ViolationReport validate(
      labeling::SafeUnsafeDef def,
      std::uint32_t checks = check::kAllChecks) const;

  /// FNV-1a digest over the fault/safety/activation planes and the region
  /// structure — the replay-identity fingerprint (epoch-independent).
  [[nodiscard]] std::uint64_t label_digest() const noexcept;

 private:
  std::uint64_t epoch_;
  grid::CellSet faults_;
  grid::NodeGrid<labeling::Safety> safety_;
  grid::NodeGrid<labeling::Activation> activation_;
  std::vector<labeling::FaultyBlock> blocks_;
  std::vector<labeling::DisabledRegion> regions_;
  grid::CellSet blocked_;
  std::vector<std::int32_t> region_index_;
  routing::FaultRingRouter router_;  // reads blocked_; declared after it
  mutable routing::RouteCache cache_;
};

}  // namespace ocp::svc
