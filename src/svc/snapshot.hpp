// The immutable serving artifact of the query runtime (src/svc).
//
// A `Snapshot` freezes one epoch of the labeled machine — fault set, both
// labelings, faulty blocks, disabled regions — together with the derived
// structures queries need at serving speed: a paged per-node status plane
// (O(1) "what is this node", doubling as the blocked set: a node is blocked
// iff its status is not Enabled), a paged per-node region-key plane plus a
// dense key->id table (O(1) "which disabled region am I in"), a
// `FaultRingRouter` over the blocked set, and a per-epoch
// `routing::RouteCache` that memoizes routes lazily.
//
// Epoch turnover is copy-on-write: `next()` builds a successor snapshot
// that shares every serving page whose tile the delta did not touch (see
// pages.hpp) and carries the predecessor's route cache, dropping only the
// entries whose footprint intersects the dirty tiles. The region-key
// indirection exists precisely for this: a region's key (the minimum
// row-major node index of its cells) is stable across events that renumber
// the `regions()` vector without touching the region itself, so pages of
// untouched regions stay shareable; only the small dense key->id table is
// rebuilt per epoch.
//
// Snapshots are published by the single-writer ingest loop through an
// RCU-style `shared_ptr` swap (see ingest.hpp): readers acquire a snapshot,
// answer any number of queries against perfectly consistent state, and drop
// it; old epochs die when their last reader releases them. Nothing in a
// snapshot mutates after publication except the route cache's internal
// memo table, which is thread-safe and invisible to results (routing is
// deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/oracle.hpp"
#include "core/maintenance.hpp"
#include "core/pipeline.hpp"
#include "routing/route_cache.hpp"
#include "svc/pages.hpp"

namespace ocp::svc {

/// What a node is, as served to routers and schedulers. The three-valued
/// collapse of the paper's status lattice: consumers route through Enabled
/// nodes, detour around Disabled ones, and treat Faulty as dead hardware.
enum class NodeStatus : std::uint8_t {
  Enabled = 0,
  /// Nonfaulty but disabled — sacrificed to keep fault regions convex.
  Disabled = 1,
  Faulty = 2,
};

[[nodiscard]] constexpr const char* to_string(NodeStatus s) noexcept {
  switch (s) {
    case NodeStatus::Enabled: return "enabled";
    case NodeStatus::Disabled: return "disabled";
    case NodeStatus::Faulty: return "faulty";
  }
  return "?";
}

class Snapshot {
 public:
  /// Freezes the current state of a maintained labeling as epoch `epoch`.
  /// Every serving page is built fresh and the route cache starts cold.
  [[nodiscard]] static std::shared_ptr<const Snapshot> build(
      std::uint64_t epoch, const labeling::MaintainedLabeling& labeling,
      routing::Hand hand = routing::Hand::Right);

  /// Copy-on-write successor of `prev`: serving pages of tiles outside
  /// `dirty_tiles` are shared with `prev`, dirty ones are rebuilt from
  /// `labeling`, and `prev`'s route cache is carried over minus the entries
  /// whose footprint intersects `padded_dirty_tiles` (the dirty tiles plus
  /// their neighborhoods — what a routing decision can have probed).
  /// Precondition: the labels outside the dirty tiles are identical between
  /// `prev` and `labeling` — exactly what the maintained labeling's
  /// `EventDelta::dirty_cells` guarantees for the accumulated deltas since
  /// `prev` was built.
  [[nodiscard]] static std::shared_ptr<const Snapshot> next(
      const Snapshot& prev, std::uint64_t epoch,
      const labeling::MaintainedLabeling& labeling,
      std::uint64_t dirty_tiles, std::uint64_t padded_dirty_tiles);

  /// Raw-component constructor; prefer `build`. Public so tests can
  /// assemble deliberately inconsistent snapshots and exercise `validate`'s
  /// rejection path.
  Snapshot(std::uint64_t epoch, grid::CellSet faults,
           grid::NodeGrid<labeling::Safety> safety,
           grid::NodeGrid<labeling::Activation> activation,
           std::vector<labeling::FaultyBlock> blocks,
           std::vector<labeling::DisabledRegion> regions, routing::Hand hand);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const mesh::Mesh2D& machine() const noexcept {
    return faults_.topology();
  }
  [[nodiscard]] const grid::CellSet& faults() const noexcept {
    return faults_;
  }
  /// Union of the disabled regions (faulty and sacrificed nodes): what
  /// routing treats as impassable. Always equals the set of nodes whose
  /// `status_of` is not Enabled.
  [[nodiscard]] const grid::CellSet& blocked() const noexcept {
    return blocked_;
  }
  [[nodiscard]] const grid::NodeGrid<labeling::Safety>& safety()
      const noexcept {
    return safety_;
  }
  [[nodiscard]] const grid::NodeGrid<labeling::Activation>& activation()
      const noexcept {
    return activation_;
  }
  [[nodiscard]] const std::vector<labeling::FaultyBlock>& blocks()
      const noexcept {
    return blocks_;
  }
  [[nodiscard]] const std::vector<labeling::DisabledRegion>& regions()
      const noexcept {
    return regions_;
  }

  /// O(1) from the paged status plane. Precondition: machine().contains(c).
  [[nodiscard]] NodeStatus status_of(mesh::Coord c) const noexcept {
    return status_pages_.at(tiles_, c);
  }

  /// Index into `regions()` of the disabled region containing `c`, or -1
  /// when `c` is enabled. O(1): paged region key, then the per-epoch dense
  /// key->id table.
  [[nodiscard]] std::int32_t region_id_of(mesh::Coord c) const noexcept {
    const std::int32_t key = region_key_pages_.at(tiles_, c);
    return key < 0 ? -1 : key_to_region_[static_cast<std::size_t>(key)];
  }

  /// The disabled region containing `c`, or nullptr when `c` is enabled.
  [[nodiscard]] const labeling::DisabledRegion* region_of(
      mesh::Coord c) const noexcept {
    const std::int32_t id = region_id_of(c);
    return id < 0 ? nullptr : &regions_[static_cast<std::size_t>(id)];
  }

  /// Route over enabled nodes, memoized in this epoch's cache. The
  /// reference is stable for the snapshot's lifetime (per-epoch caches are
  /// never cleared).
  [[nodiscard]] const routing::Route& route(mesh::Coord src,
                                            mesh::Coord dst) const {
    return cache_.lookup(src, dst);
  }

  [[nodiscard]] const routing::RouteCache& route_cache() const noexcept {
    return cache_;
  }

  /// The tile decomposition the serving pages and cache footprints use.
  [[nodiscard]] const grid::TileGrid& tiles() const noexcept {
    return tiles_;
  }
  /// Tile mask this snapshot was built against: the dirty tiles of the
  /// delta for a `next()` successor, every tile for a fresh `build`.
  /// Consumers deriving incremental structures from epoch turnover (the
  /// allocation layer's free-region index) scan only these tiles.
  [[nodiscard]] std::uint64_t dirty_tiles() const noexcept {
    return dirty_tiles_;
  }
  /// Epoch at which each tile's serving pages were last rebuilt; carried
  /// across `next()` so a page's provenance is inspectable.
  [[nodiscard]] const std::vector<std::uint64_t>& tile_generations()
      const noexcept {
    return tile_generations_;
  }
  /// Serving pages rebuilt vs shared when this snapshot was created (a
  /// fresh `build` counts every page as copied).
  [[nodiscard]] const PageStats& page_stats() const noexcept {
    return page_stats_;
  }
  /// Route-cache entries carried from / invalidated against the
  /// predecessor (both zero for a fresh `build`).
  [[nodiscard]] const routing::RouteCache::AdoptStats& cache_carry_stats()
      const noexcept {
    return cache_carry_stats_;
  }
  /// Test hook: whether tile `t`'s status and region-key pages are shared
  /// with `prev`'s.
  [[nodiscard]] bool shares_pages_with(const Snapshot& prev,
                                       std::uint32_t t) const noexcept {
    return status_pages_.shares_page_with(prev.status_pages_, t) &&
           region_key_pages_.shares_page_with(prev.region_key_pages_, t);
  }

  /// Runs the 16-check invariant oracle against this snapshot's labeling
  /// (convergence checks skip automatically: a snapshot carries no round
  /// statistics). The publish gate of the ingest loop.
  [[nodiscard]] check::ViolationReport validate(
      labeling::SafeUnsafeDef def,
      std::uint32_t checks = check::kAllChecks) const;

  /// FNV-1a digest over the fault/safety/activation planes and the region
  /// structure — the replay-identity fingerprint (epoch-independent).
  [[nodiscard]] std::uint64_t label_digest() const noexcept;

 private:
  /// Shared implementation of `build` (prev == nullptr: all tiles dirty)
  /// and `next`.
  Snapshot(std::uint64_t epoch, const labeling::MaintainedLabeling& labeling,
           const Snapshot* prev, std::uint64_t dirty_tiles,
           std::uint64_t padded_dirty_tiles, routing::Hand hand);
  /// Builds the dense region key->id table from `regions_`.
  void index_regions();

  std::uint64_t epoch_;
  grid::CellSet faults_;
  grid::NodeGrid<labeling::Safety> safety_;
  grid::NodeGrid<labeling::Activation> activation_;
  std::vector<labeling::FaultyBlock> blocks_;
  std::vector<labeling::DisabledRegion> regions_;
  grid::CellSet blocked_;
  grid::TileGrid tiles_;
  routing::Hand hand_;
  routing::FaultRingRouter router_;  // reads blocked_; declared after it
  mutable routing::RouteCache cache_;
  PagedPlane<NodeStatus> status_pages_;
  PagedPlane<std::int32_t> region_key_pages_;
  /// region key (min node index) -> index into regions_, -1 elsewhere;
  /// rebuilt per epoch (O(node_count) ints, the only dense per-epoch work).
  std::vector<std::int32_t> key_to_region_;
  std::uint64_t dirty_tiles_ = ~std::uint64_t{0};
  std::vector<std::uint64_t> tile_generations_;
  PageStats page_stats_;
  routing::RouteCache::AdoptStats cache_carry_stats_;
};

}  // namespace ocp::svc
