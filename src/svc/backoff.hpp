// Seeded capped exponential backoff for typed `Overloaded` retries.
//
// The serving runtime's admission edges reject with typed verdicts instead
// of blocking; what the submitter does next is policy. A bare retry spin
// (resubmit + yield) is correct under closed-loop load but degenerates into
// a busy-wait storm the moment the consumer stalls — every producer burns a
// core re-asking a full queue. This policy is the standard fix, made
// deterministic: the delay before retry `attempt` is a pure function of
// (policy, attempt) — exponential growth from `base_us` to `cap_us`, with a
// jitter fraction drawn from a seeded hash of the attempt index rather than
// a global RNG. Two runs with the same policy sleep the same schedule, so
// retry behavior is replayable and pinnable in tests (chaos denial tests
// assert exact per-attempt delays).
//
// `retry_budget` bounds how many retries a submitter spends per event
// before shedding it. The default 0 means unbounded — the closed-loop
// choice, where never dropping keeps the final fault set (and the published
// label digest) a pure function of the event stream.
#pragma once

#include <algorithm>
#include <cstdint>

namespace ocp::svc {

struct BackoffPolicy {
  /// Delay before the first retry; 0 disables sleeping entirely (pure
  /// yield-spin, the pre-policy behavior).
  std::uint32_t base_us = 2;
  /// Ceiling the exponential ramp saturates at.
  std::uint32_t cap_us = 256;
  /// Fraction of each step randomized away: delay is drawn uniformly from
  /// [step * (1 - jitter), step]. 0 = fully deterministic ladder.
  double jitter = 0.5;
  /// Seeds the jitter stream (and nothing else).
  std::uint64_t seed = 1;
  /// Retries allowed per event before the submitter sheds it; 0 = retry
  /// forever (closed-loop replay identity).
  std::uint64_t retry_budget = 0;
};

namespace detail {
/// splitmix64 finalizer — one hash per (seed, attempt) pair is the whole
/// jitter stream; no state, no cross-thread ordering sensitivity.
[[nodiscard]] constexpr std::uint64_t backoff_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace detail

/// Microseconds to sleep before retry number `attempt` (0-based). Pure in
/// (policy, attempt): exponential from base to cap, seeded jitter.
[[nodiscard]] constexpr std::uint32_t backoff_delay_us(
    const BackoffPolicy& policy, std::uint64_t attempt) noexcept {
  if (policy.base_us == 0) return 0;
  // Saturating shift: past 32 doublings the cap has long since won.
  const unsigned shift =
      static_cast<unsigned>(std::min<std::uint64_t>(attempt, 31));
  const std::uint64_t raw = static_cast<std::uint64_t>(policy.base_us) << shift;
  const auto step = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(raw, std::max(policy.cap_us, policy.base_us)));
  if (policy.jitter <= 0.0) return step;
  // Unit draw from the top 53 bits of the hash, as chaos::FaultPlan does.
  const std::uint64_t h =
      detail::backoff_mix(policy.seed ^ detail::backoff_mix(attempt));
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  const double jitter = std::min(policy.jitter, 1.0);
  const double scaled = static_cast<double>(step) * (1.0 - jitter * unit);
  // Never jitter below one microsecond: a zero delay would degrade the
  // policy back into the spin it exists to prevent.
  return scaled < 1.0 ? 1u : static_cast<std::uint32_t>(scaled);
}

}  // namespace ocp::svc
