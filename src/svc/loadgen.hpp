// Deterministic closed-loop load generator for the serving runtime.
//
// One seeded master RNG forks independent streams — initial fault pattern,
// churn event stream, one stream per query thread — with the same
// `fork_trial_seeds` discipline as the netsim load sweeps, so every run is
// reproducible from (config, seed). A writer thread replays the event
// stream through `Service::submit` with closed-loop backpressure (an
// `Overloaded` verdict retries rather than drops, so the final fault set —
// and therefore the final published labeling — is a pure function of the
// stream, independent of timing and of how many query threads race it).
// Query threads hammer the query front with a seeded mix of status /
// region / route / batch queries, recording per-query latency histograms
// and checking that the epochs they observe never decrease.
//
// Timing-derived outputs (qps, percentiles, epochs-published) vary run to
// run; the replay-identity outputs (`stream_digest`, `final_digest`,
// `final_faults`) are bit-identical for any query-thread count — the
// property the stress suite and the acceptance criteria pin down.
#pragma once

#include <cstdint>

#include "svc/backoff.hpp"
#include "svc/service.hpp"
#include "svc/sharded_service.hpp"

namespace ocp::svc {

struct SvcLoadConfig {
  std::int32_t mesh_side = 32;
  mesh::Topology topology = mesh::Topology::Mesh;
  /// Initial fault count labeled before serving starts (epoch 0).
  std::size_t initial_faults = 10;
  /// Churn events replayed while queries run.
  std::size_t events = 128;
  /// Fraction of events that repair a currently-faulty node (when one
  /// exists); the rest inject faults (possibly duplicates).
  double repair_fraction = 0.45;
  std::size_t query_threads = 2;
  std::size_t queries_per_thread = 2000;
  /// Every Nth query is a batched query of `batch_size` items.
  std::size_t batch_every = 16;
  std::size_t batch_size = 8;
  std::uint64_t seed = 1;
  /// Writer-side reaction to `Overloaded` verdicts: seeded capped
  /// exponential backoff instead of a yield spin. The default unbounded
  /// retry budget preserves replay identity (no event is ever shed); a
  /// finite budget turns sustained overload into typed shedding, counted in
  /// `SvcLoadResult::submits_shed`.
  BackoffPolicy submit_backoff;
  ServiceConfig service;
};

struct SvcLoadResult {
  // -- timing-derived (vary run to run) -----------------------------------
  std::size_t queries_ok = 0;
  std::size_t queries_rejected = 0;
  /// Individual answers delivered inside batched queries.
  std::size_t batch_items = 0;
  std::uint64_t epochs_published = 0;
  /// Final epoch number == epochs published; depends on how events batched.
  std::uint64_t final_epoch = 0;
  std::uint64_t submit_retries = 0;
  /// Total backoff the writer slept across all retries (microseconds), and
  /// events abandoned after exhausting a finite retry budget (always 0 with
  /// the default unbounded budget — the replay-identity invariant depends
  /// on it).
  std::uint64_t submit_backoff_us = 0;
  std::uint64_t submits_shed = 0;
  double wall_seconds = 0.0;
  /// Individual answers (single queries + batch items) per second.
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Latency samples beyond the histogram range (tail truncation marker).
  std::uint64_t latency_overflow = 0;

  // -- replay identity (bit-identical for any query-thread count) ---------
  /// FNV-1a over the generated event stream.
  std::uint64_t stream_digest = 0;
  /// `Snapshot::label_digest()` of the final quiesced snapshot.
  std::uint64_t final_digest = 0;
  std::size_t final_faults = 0;

  // -- serving invariants --------------------------------------------------
  /// Every query thread observed monotonically non-decreasing epochs.
  bool epochs_monotone = true;
};

/// Runs the closed-loop workload to completion (all events applied, all
/// queries answered) and reports throughput, tail latency and the replay
/// digests.
[[nodiscard]] SvcLoadResult run_svc_load(const SvcLoadConfig& config);

/// Canned profiles shared by the bench harness (`bench/svc_load`) and the
/// experiments table so both measure the same workloads.
///
/// Query-dominant steady state: light churn under a heavy query front (the
/// default SvcLoadConfig rates at `query_threads` threads).
[[nodiscard]] SvcLoadConfig query_heavy_profile(std::size_t query_threads);
/// Ingest-dominant: 8x the churn, a light query front — stresses epoch
/// turnover (incremental relabeling + copy-on-write publication).
[[nodiscard]] SvcLoadConfig ingest_heavy_profile(std::size_t query_threads);
/// Mixed-rate: heavy churn AND a full query front racing it — the regime
/// where route-cache carry-over and page sharing pay off together.
[[nodiscard]] SvcLoadConfig mixed_rate_profile(std::size_t query_threads);

/// Sharded twin of `SvcLoadResult`: same timing-derived and replay-identity
/// split, with the final digest being the composite digest at quiesce and
/// monotonicity checked per shard (a query's epoch is its owning shard's —
/// different shards' epochs are incomparable by design).
struct ShardedLoadResult {
  // -- timing-derived ------------------------------------------------------
  std::size_t queries_ok = 0;
  std::size_t queries_rejected = 0;
  std::size_t batch_items = 0;
  std::uint64_t submit_retries = 0;
  std::uint64_t submit_backoff_us = 0;
  std::uint64_t submits_shed = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t latency_overflow = 0;
  /// Halo exchange volume at quiesce (gossip overhead of the sharding).
  std::uint64_t halo_deltas = 0;
  std::uint64_t halo_events = 0;

  // -- replay identity (bit-identical for any query-thread count) ---------
  std::uint64_t stream_digest = 0;
  /// `composite_label_digest` over the quiesced fleet — comparable 1:1 with
  /// `SvcLoadResult::final_digest` for the same (config, seed).
  std::uint64_t final_digest = 0;
  std::size_t final_faults = 0;

  // -- serving invariants --------------------------------------------------
  /// Every query thread observed per-shard monotone epochs.
  bool epochs_monotone = true;
  std::vector<std::uint64_t> shard_epochs;
};

/// Runs the closed-loop workload against a `ShardedService`. The workload
/// shape and every seed fork come from `config` exactly as in
/// `run_svc_load` — identical (config, seed) produces the identical event
/// stream, so `final_digest` here must equal the single-writer run's
/// (`config.service` is ignored; the fleet shape comes from `service`).
[[nodiscard]] ShardedLoadResult run_sharded_load(
    const SvcLoadConfig& config, const ShardedServiceConfig& service);

/// The seeded churn stream the generator replays, exposed for tests that
/// drive `IngestEngine::apply` directly with deterministic batching.
[[nodiscard]] std::vector<FaultEvent> generate_event_stream(
    const mesh::Mesh2D& machine, const grid::CellSet& initial_faults,
    std::size_t events, double repair_fraction, std::uint64_t seed);

/// FNV-1a digest of an event stream.
[[nodiscard]] std::uint64_t event_stream_digest(
    const std::vector<FaultEvent>& events);

}  // namespace ocp::svc
