#include "svc/service.hpp"

#include <utility>

namespace ocp::svc {

/// RAII admission token for the query front: one increment per executing
/// query; rejected entries never hold the slot.
class Service::InflightGate {
 public:
  explicit InflightGate(const Service& service)
      : service_(service), admitted_(service.admit_query()) {}
  ~InflightGate() {
    if (admitted_) {
      service_.inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  InflightGate(const InflightGate&) = delete;
  InflightGate& operator=(const InflightGate&) = delete;

  [[nodiscard]] bool admitted() const noexcept { return admitted_; }

 private:
  const Service& service_;
  bool admitted_;
};

Service::Service(grid::CellSet initial_faults, ServiceConfig config)
    : config_(config),
      queue_(config.queue_capacity),
      engine_(std::move(initial_faults), config.ingest),
      paused_(config.start_paused) {
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

Service::~Service() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  queue_.close();
  wake_.notify_all();
  progress_.notify_all();
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

void Service::ingest_loop() {
  const obs::TraceConfig& trace = config_.ingest.trace;
  for (;;) {
    std::vector<FaultEvent> batch;
    {
      std::unique_lock lock(mu_);
      // Shutdown overrides pause: accepted events are applied, not dropped.
      wake_.wait(lock, [this] {
        return stopping_ || (!paused_ && queue_.depth() > 0);
      });
      if (queue_.depth() == 0 && stopping_) break;
      if (stopping_ || !paused_) {
        batch = queue_.try_drain(config_.max_batch);
        draining_ = !batch.empty();
      }
    }
    if (!batch.empty()) {
      trace.instant("svc.batch_drained",
                    static_cast<std::int64_t>(batch.size()));
      engine_.apply(batch);
      {
        std::lock_guard lock(mu_);
        draining_ = false;
      }
      progress_.notify_all();
    }
  }
}

SubmitStatus Service::submit(FaultEvent event) {
  const SubmitStatus status = queue_.push(event);
  if (status == SubmitStatus::Accepted) {
    // Briefly serialize against the waiter so the wakeup cannot be lost
    // between its predicate check and its wait.
    { std::lock_guard lock(mu_); }
    wake_.notify_one();
  } else {
    config_.ingest.trace.counter("svc.submit_rejects", 1);
  }
  config_.ingest.trace.instant("svc.queue_depth",
                               static_cast<std::int64_t>(queue_.depth()));
  return status;
}

void Service::flush() {
  {
    std::lock_guard lock(mu_);
    // Flushing a paused service with pending events would deadlock; the
    // barrier takes precedence over the hold.
    if (paused_ && queue_.depth() > 0) paused_ = false;
  }
  wake_.notify_all();
  std::unique_lock lock(mu_);
  progress_.wait(lock, [this] {
    return stopping_ || (queue_.depth() == 0 && !draining_);
  });
}

void Service::pause() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  wake_.notify_all();
}

QueryStatus Service::wait_for_epoch(std::uint64_t epoch,
                                    std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  const bool reached = progress_.wait_for(lock, timeout, [this, epoch] {
    return engine_.snapshot()->epoch() >= epoch;
  });
  return reached ? QueryStatus::Ok : QueryStatus::Timeout;
}

bool Service::admit_query() const {
  const std::size_t cap = config_.max_inflight_queries;
  const std::int64_t running =
      inflight_queries_.fetch_add(1, std::memory_order_relaxed);
  if (cap != 0 && running >= static_cast<std::int64_t>(cap)) {
    inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    query_overloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

StatusAnswer Service::query_status(mesh::Coord node) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  // Contention-free acquisition: the reference is pinned by this thread's
  // epoch handle for the duration of the query (see IngestEngine::acquire).
  const Snapshot& snap = engine_.acquire();
  if (!snap.machine().contains(node)) {
    return {.status = QueryStatus::InvalidArgument, .epoch = snap.epoch()};
  }
  return {.status = QueryStatus::Ok,
          .epoch = snap.epoch(),
          .node = snap.status_of(node)};
}

RegionAnswer Service::query_region(mesh::Coord node) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  const Snapshot& snap = engine_.acquire();
  if (!snap.machine().contains(node)) {
    return {.status = QueryStatus::InvalidArgument, .epoch = snap.epoch()};
  }
  RegionAnswer answer{.status = QueryStatus::Ok,
                      .epoch = snap.epoch(),
                      .region_id = snap.region_id_of(node)};
  if (const labeling::DisabledRegion* region = snap.region_of(node)) {
    answer.region_size = region->size();
    answer.fault_count = region->fault_count;
    answer.parent_block = region->parent_block;
  }
  return answer;
}

RouteAnswer Service::query_route(mesh::Coord src, mesh::Coord dst) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  const Snapshot& snap = engine_.acquire();
  if (!snap.machine().contains(src) || !snap.machine().contains(dst)) {
    return {.status = QueryStatus::InvalidArgument, .epoch = snap.epoch()};
  }
  return {.status = QueryStatus::Ok,
          .epoch = snap.epoch(),
          .route = snap.route(src, dst)};
}

BatchAnswer Service::query_batch(
    const std::vector<QueryItem>& items,
    std::chrono::steady_clock::time_point deadline) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  // One snapshot acquisition for the whole batch: every item is answered
  // against the same epoch. The thread's epoch handle pins the reference
  // across the loop (no further acquire happens on this thread meanwhile).
  const Snapshot& snapshot = engine_.acquire();
  const Snapshot* snap = &snapshot;
  BatchAnswer answer{.status = QueryStatus::Ok, .epoch = snap->epoch()};
  answer.items.resize(items.size());
  const bool has_deadline = deadline != std::chrono::steady_clock::time_point{};
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      // Typed partial result: executed items stand, the rest time out.
      for (std::size_t j = i; j < items.size(); ++j) {
        answer.items[j].status = QueryStatus::Timeout;
      }
      answer.status = QueryStatus::Timeout;
      break;
    }
    const QueryItem& item = items[i];
    BatchItemAnswer& out = answer.items[i];
    if (!snap->machine().contains(item.a) ||
        (item.kind == QueryKind::Route && !snap->machine().contains(item.b))) {
      out.status = QueryStatus::InvalidArgument;
      ++answer.completed;
      continue;
    }
    switch (item.kind) {
      case QueryKind::Status:
        out.node = snap->status_of(item.a);
        break;
      case QueryKind::Region:
        out.node = snap->status_of(item.a);
        out.region_id = snap->region_id_of(item.a);
        break;
      case QueryKind::Route: {
        const routing::Route& route = snap->route(item.a, item.b);
        out.route_status = route.status;
        out.hops = route.hops();
        break;
      }
    }
    ++answer.completed;
  }
  return answer;
}

ServiceStats Service::stats() const {
  return {.epoch = engine_.snapshot()->epoch(),
          .queue_depth = queue_.depth(),
          .events_accepted = queue_.accepted(),
          .events_rejected = queue_.rejected(),
          .query_overloads = query_overloads_.load(std::memory_order_relaxed),
          .ingest = engine_.stats()};
}

}  // namespace ocp::svc
