#include "svc/service.hpp"

#include <utility>

namespace ocp::svc {

/// RAII admission token for the query front: one increment per executing
/// query; rejected entries never hold the slot.
class Service::InflightGate {
 public:
  explicit InflightGate(const Service& service)
      : service_(service), admitted_(service.admit_query()) {}
  ~InflightGate() {
    if (admitted_) {
      service_.inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  InflightGate(const InflightGate&) = delete;
  InflightGate& operator=(const InflightGate&) = delete;

  [[nodiscard]] bool admitted() const noexcept { return admitted_; }

 private:
  const Service& service_;
  bool admitted_;
};

Service::Service(grid::CellSet initial_faults, ServiceConfig config)
    : config_(config),
      queue_(config.queue_capacity, config.ingest.chaos),
      engine_(std::move(initial_faults), config.ingest),
      paused_(config.start_paused) {
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

Service::~Service() {
  // A chaos-killed writer still owes accepted events an application — bring
  // it back so shutdown drains the queue instead of dropping it.
  restart_ingest();
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  queue_.close();
  wake_.notify_all();
  progress_.notify_all();
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

void Service::ingest_loop() {
  const obs::TraceConfig& trace = config_.ingest.trace;
  const chaos::ChaosConfig& chaos = config_.ingest.chaos;
  // Crash epilogue for a mid-batch chaos kill: the engine already recovered
  // itself to the last published snapshot; put the events the crash did not
  // lose — the unpublished backlog, then the whole interrupted batch — back
  // at the queue head (replaying an applied prefix is harmless: events are
  // state-setting) and let the thread die. `restart_ingest` resurrects it.
  const auto apply_batch = [&](const std::vector<FaultEvent>& b) -> bool {
    BatchOutcome outcome = engine_.apply(b);
    if (!outcome.crashed) return true;
    std::vector<FaultEvent> replay = std::move(outcome.requeue);
    replay.insert(replay.end(), b.begin(), b.end());
    queue_.requeue_front(std::move(replay));
    {
      std::lock_guard lock(mu_);
      crashed_ = true;
      draining_ = false;
    }
    trace.counter("svc.ingest_thread_kills", 1);
    progress_.notify_all();
    return false;
  };
  for (;;) {
    std::vector<FaultEvent> batch;
    bool nudge = false;
    bool stop_seen = false;
    {
      std::unique_lock lock(mu_);
      // Shutdown overrides pause: accepted events are applied, not dropped.
      wake_.wait(lock, [this] {
        return stopping_ || (!paused_ && (queue_.depth() > 0 ||
                                          !deferred_.empty() ||
                                          retry_publish_));
      });
      if (queue_.depth() == 0 && deferred_.empty() && stopping_) break;
      stop_seen = stopping_;
      if (stopping_ || !paused_) {
        nudge = std::exchange(retry_publish_, false);
        // A previously deferred batch drains first, ahead of anything
        // submitted since — FIFO application order is preserved; only the
        // batch boundary (and thus the epoch boundary) moved.
        batch = std::move(deferred_);
        deferred_.clear();
        std::vector<FaultEvent> drained = queue_.try_drain(config_.max_batch);
        batch.insert(batch.end(), drained.begin(), drained.end());
        draining_ = !batch.empty() || nudge;
      }
    }
    chaos::BatchDecision decision;
    if (!batch.empty() && chaos.enabled()) decision = chaos.on_batch();
    if (decision.stall_us > 0) {
      // Mid-drain stall: the batch is out of the queue but not applied —
      // the window the flush barrier must not cross early (draining_ stays
      // set) while overload pressure builds at the admission edge.
      trace.counter("svc.chaos_stalls", 1);
      std::this_thread::sleep_for(std::chrono::microseconds(decision.stall_us));
    }
    if (decision.defer && !stop_seen) {
      trace.counter("svc.chaos_defers", 1);
      std::lock_guard lock(mu_);
      deferred_ = std::move(batch);
      draining_ = false;
      continue;
    }
    if (!batch.empty() || nudge) {
      trace.instant("svc.batch_drained",
                    static_cast<std::int64_t>(batch.size()));
      if (!apply_batch(batch)) return;  // killed; thread "process" dies here
      if (decision.duplicate) {
        // Replay the whole batch as an at-least-once delivery fault; every
        // event re-coalesces to nothing, so this must not change the
        // published state (the digest invariant chaos tests pin).
        trace.counter("svc.chaos_duplicates", 1);
        if (!apply_batch(batch)) return;
      }
      {
        std::lock_guard lock(mu_);
        draining_ = false;
      }
      progress_.notify_all();
    }
  }
}

SubmitStatus Service::submit(FaultEvent event) {
  const SubmitStatus status = queue_.push(event);
  if (status == SubmitStatus::Accepted) {
    // Briefly serialize against the waiter so the wakeup cannot be lost
    // between its predicate check and its wait.
    { std::lock_guard lock(mu_); }
    wake_.notify_one();
  } else {
    config_.ingest.trace.counter("svc.submit_rejects", 1);
  }
  config_.ingest.trace.instant("svc.queue_depth",
                               static_cast<std::int64_t>(queue_.depth()));
  return status;
}

void Service::flush() {
  {
    std::lock_guard lock(mu_);
    // Flushing a paused service with pending events would deadlock; the
    // barrier takes precedence over the hold.
    if (paused_ &&
        (queue_.depth() > 0 || !deferred_.empty() || retry_publish_)) {
      paused_ = false;
    }
  }
  wake_.notify_all();
  std::unique_lock lock(mu_);
  progress_.wait(lock, [this] {
    // A dead writer cannot barrier: when a chaos kill takes the ingest
    // thread down (before or during the wait), flush returns — with
    // ingest_crashed() observable — instead of hanging on events nothing
    // will apply. Recovery is the caller's explicit restart_ingest().
    // An unconsumed retry_publish() nudge also holds the barrier: flush
    // after a nudge means the publish re-attempt has actually run.
    return stopping_ || crashed_ ||
           (queue_.depth() == 0 && deferred_.empty() && !draining_ &&
            !retry_publish_);
  });
}

void Service::pause() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  wake_.notify_all();
}

QueryStatus Service::wait_for_epoch(std::uint64_t epoch,
                                    std::chrono::milliseconds timeout) {
  // wait_for re-evaluates the predicate at the deadline regardless of
  // notifications, so a never-arriving epoch — withheld by the oracle gate,
  // or owed by a killed ingest thread — degrades to a typed Timeout instead
  // of a hang (pinned by the chaos regression tests).
  std::unique_lock lock(mu_);
  const bool reached = progress_.wait_for(lock, timeout, [this, epoch] {
    return engine_.snapshot()->epoch() >= epoch;
  });
  return reached ? QueryStatus::Ok : QueryStatus::Timeout;
}

void Service::retry_publish() {
  {
    std::lock_guard lock(mu_);
    retry_publish_ = true;
  }
  wake_.notify_all();
}

bool Service::ingest_crashed() const {
  std::lock_guard lock(mu_);
  return crashed_;
}

bool Service::restart_ingest() {
  std::thread dead;
  {
    std::lock_guard lock(mu_);
    if (!crashed_) return false;
    crashed_ = false;
    // The new thread blocks on mu_ until this scope releases it; the dead
    // one already left the loop (it set crashed_ as its last locked act).
    dead = std::move(ingest_thread_);
    ingest_thread_ = std::thread([this] { ingest_loop(); });
  }
  if (dead.joinable()) dead.join();
  config_.ingest.trace.counter("svc.ingest_restarts", 1);
  return true;
}

void Service::note_staleness() const {
  // One relaxed load on the hot path; the counters move only while the
  // oracle gate is actually withholding (degraded mode), never in steady
  // state.
  if (engine_.stale_epochs_pending() == 0) return;
  stale_queries_served_.fetch_add(1, std::memory_order_relaxed);
  config_.ingest.trace.counter("svc.stale_epochs_served", 1);
}

bool Service::admit_query() const {
  const std::size_t cap = config_.max_inflight_queries;
  const std::int64_t running =
      inflight_queries_.fetch_add(1, std::memory_order_relaxed);
  if (cap != 0 && running >= static_cast<std::int64_t>(cap)) {
    inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    query_overloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

StatusAnswer Service::query_status(mesh::Coord node) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  // Contention-free acquisition: the reference is pinned by this thread's
  // epoch handle for the duration of the query (see IngestEngine::acquire).
  const Snapshot& snap = engine_.acquire();
  note_staleness();
  if (!snap.machine().contains(node)) {
    return {.status = QueryStatus::InvalidArgument, .epoch = snap.epoch()};
  }
  return {.status = QueryStatus::Ok,
          .epoch = snap.epoch(),
          .node = snap.status_of(node)};
}

RegionAnswer Service::query_region(mesh::Coord node) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  const Snapshot& snap = engine_.acquire();
  note_staleness();
  if (!snap.machine().contains(node)) {
    return {.status = QueryStatus::InvalidArgument, .epoch = snap.epoch()};
  }
  RegionAnswer answer{.status = QueryStatus::Ok,
                      .epoch = snap.epoch(),
                      .region_id = snap.region_id_of(node)};
  if (const labeling::DisabledRegion* region = snap.region_of(node)) {
    answer.region_size = region->size();
    answer.fault_count = region->fault_count;
    answer.parent_block = region->parent_block;
  }
  return answer;
}

RouteAnswer Service::query_route(mesh::Coord src, mesh::Coord dst) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  const Snapshot& snap = engine_.acquire();
  note_staleness();
  if (!snap.machine().contains(src) || !snap.machine().contains(dst)) {
    return {.status = QueryStatus::InvalidArgument, .epoch = snap.epoch()};
  }
  const obs::TraceConfig& trace = config_.ingest.trace;
  if (!trace.rounds()) {
    return {.status = QueryStatus::Ok,
            .epoch = snap.epoch(),
            .route = snap.route(src, dst)};
  }
  // Contention attribution (round-level tracing only): how many reader-lock
  // acquisitions this query's window saw on the epoch's route cache —
  // concurrent route queries against the same epoch share that lock, so the
  // instant stream exposes exactly the shared state a flat qps curve hides.
  const std::uint64_t before = snap.route_cache().shared_lock_acquisitions();
  RouteAnswer answer{.status = QueryStatus::Ok,
                     .epoch = snap.epoch(),
                     .route = snap.route(src, dst)};
  trace.instant(
      "svc.query.cache_lock_touches",
      static_cast<std::int64_t>(snap.route_cache().shared_lock_acquisitions() -
                                before));
  return answer;
}

BatchAnswer Service::query_batch(
    const std::vector<QueryItem>& items,
    std::chrono::steady_clock::time_point deadline) const {
  InflightGate gate(*this);
  if (!gate.admitted()) return {.status = QueryStatus::Overloaded};
  // One snapshot acquisition for the whole batch: every item is answered
  // against the same epoch. The thread's epoch handle pins the reference
  // across the loop (no further acquire happens on this thread meanwhile).
  const Snapshot& snapshot = engine_.acquire();
  note_staleness();
  const Snapshot* snap = &snapshot;
  BatchAnswer answer{.status = QueryStatus::Ok, .epoch = snap->epoch()};
  answer.items.resize(items.size());
  const bool has_deadline = deadline != std::chrono::steady_clock::time_point{};
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      // Typed partial result: executed items stand, the rest time out.
      for (std::size_t j = i; j < items.size(); ++j) {
        answer.items[j].status = QueryStatus::Timeout;
      }
      answer.status = QueryStatus::Timeout;
      break;
    }
    const QueryItem& item = items[i];
    BatchItemAnswer& out = answer.items[i];
    if (!snap->machine().contains(item.a) ||
        (item.kind == QueryKind::Route && !snap->machine().contains(item.b))) {
      out.status = QueryStatus::InvalidArgument;
      ++answer.completed;
      continue;
    }
    switch (item.kind) {
      case QueryKind::Status:
        out.node = snap->status_of(item.a);
        break;
      case QueryKind::Region:
        out.node = snap->status_of(item.a);
        out.region_id = snap->region_id_of(item.a);
        break;
      case QueryKind::Route: {
        const routing::Route& route = snap->route(item.a, item.b);
        out.route_status = route.status;
        out.hops = route.hops();
        break;
      }
    }
    ++answer.completed;
  }
  return answer;
}

ServiceStats Service::stats() const {
  return {.epoch = engine_.snapshot()->epoch(),
          .queue_depth = queue_.depth(),
          .events_accepted = queue_.accepted(),
          .events_rejected = queue_.rejected(),
          .query_overloads = query_overloads_.load(std::memory_order_relaxed),
          .chaos_denied = queue_.chaos_denied(),
          .stale_epochs_pending = engine_.stale_epochs_pending(),
          .stale_queries_served =
              stale_queries_served_.load(std::memory_order_relaxed),
          .ingest_crashed = ingest_crashed(),
          .ingest = engine_.stats()};
}

}  // namespace ocp::svc
