#include "svc/event_queue.hpp"

namespace ocp::svc {

SubmitStatus EventQueue::push(FaultEvent event) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return SubmitStatus::Closed;
    // Chaos admission fault: a forced Overloaded is indistinguishable from
    // a genuinely full queue to the submitter — exactly the storm the
    // typed-retry/backoff contract is tested against. Decided under the
    // lock so the per-plan decision index is FIFO with real admissions.
    if (chaos_.enabled() && chaos_.deny_submit()) {
      ++rejected_;
      ++chaos_denied_;
      return SubmitStatus::Overloaded;
    }
    if (queue_.size() >= capacity_) {
      ++rejected_;
      return SubmitStatus::Overloaded;
    }
    queue_.push_back(event);
    ++accepted_;
  }
  ready_.notify_one();
  return SubmitStatus::Accepted;
}

void EventQueue::requeue_front(std::vector<FaultEvent> events) {
  if (events.empty()) return;
  {
    std::lock_guard lock(mu_);
    queue_.insert(queue_.begin(), events.begin(), events.end());
  }
  ready_.notify_one();
}

std::vector<FaultEvent> EventQueue::wait_drain(std::size_t max_batch) {
  std::unique_lock lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  return drain_locked(max_batch);
}

std::vector<FaultEvent> EventQueue::try_drain(std::size_t max_batch) {
  std::lock_guard lock(mu_);
  return drain_locked(max_batch);
}

std::vector<FaultEvent> EventQueue::drain_locked(std::size_t max_batch) {
  const std::size_t n = std::min(max_batch, queue_.size());
  std::vector<FaultEvent> batch(queue_.begin(),
                                queue_.begin() + static_cast<std::ptrdiff_t>(n));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  return batch;
}

void EventQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool EventQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t EventQueue::depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::uint64_t EventQueue::accepted() const {
  std::lock_guard lock(mu_);
  return accepted_;
}

std::uint64_t EventQueue::rejected() const {
  std::lock_guard lock(mu_);
  return rejected_;
}

std::uint64_t EventQueue::chaos_denied() const {
  std::lock_guard lock(mu_);
  return chaos_denied_;
}

}  // namespace ocp::svc
