#include "svc/event_queue.hpp"

namespace ocp::svc {

SubmitStatus EventQueue::push(FaultEvent event) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return SubmitStatus::Closed;
    if (queue_.size() >= capacity_) {
      ++rejected_;
      return SubmitStatus::Overloaded;
    }
    queue_.push_back(event);
    ++accepted_;
  }
  ready_.notify_one();
  return SubmitStatus::Accepted;
}

std::vector<FaultEvent> EventQueue::wait_drain(std::size_t max_batch) {
  std::unique_lock lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  return drain_locked(max_batch);
}

std::vector<FaultEvent> EventQueue::try_drain(std::size_t max_batch) {
  std::lock_guard lock(mu_);
  return drain_locked(max_batch);
}

std::vector<FaultEvent> EventQueue::drain_locked(std::size_t max_batch) {
  const std::size_t n = std::min(max_batch, queue_.size());
  std::vector<FaultEvent> batch(queue_.begin(),
                                queue_.begin() + static_cast<std::ptrdiff_t>(n));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  return batch;
}

void EventQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool EventQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t EventQueue::depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::uint64_t EventQueue::accepted() const {
  std::lock_guard lock(mu_);
  return accepted_;
}

std::uint64_t EventQueue::rejected() const {
  std::lock_guard lock(mu_);
  return rejected_;
}

}  // namespace ocp::svc
