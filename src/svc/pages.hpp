// Copy-on-write per-node planes, chunked into per-tile pages.
//
// A `PagedPlane<T>` stores one value per mesh node, split along a
// `grid::TileGrid` into refcounted pages (one per tile, dense row-major
// inside the tile). Publication of a new epoch builds a successor plane
// that *shares* every page whose tile the epoch's delta did not touch and
// rebuilds only the dirty ones — so the per-epoch cost of the serving
// planes is O(dirty tiles), not O(mesh), and untouched pages are owned
// jointly by every epoch that serves them. Planes are immutable after
// construction; sharing needs no synchronization beyond the shared_ptr
// refcounts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "grid/tiles.hpp"

namespace ocp::svc {

/// How many pages a plane-building step copied (rebuilt) vs shared with
/// its predecessor. A fresh build counts every page as copied.
struct PageStats {
  std::size_t copied = 0;
  std::size_t shared = 0;
};

template <typename T>
class PagedPlane {
 public:
  PagedPlane() = default;

  /// Fresh plane: every page materialized from `value_of(coord)`.
  template <typename Fn>
  static PagedPlane build(const grid::TileGrid& tiles, Fn&& value_of,
                          PageStats& stats) {
    PagedPlane plane;
    plane.pages_.reserve(tiles.tile_count());
    for (std::uint32_t t = 0; t < tiles.tile_count(); ++t) {
      plane.pages_.push_back(make_page(tiles, t, value_of));
      ++stats.copied;
    }
    return plane;
  }

  /// Successor plane: pages of tiles outside `dirty_tiles` are shared with
  /// `prev` (a refcount bump); dirty tiles are rebuilt from `value_of`.
  template <typename Fn>
  static PagedPlane next(const PagedPlane& prev, const grid::TileGrid& tiles,
                         std::uint64_t dirty_tiles, Fn&& value_of,
                         PageStats& stats) {
    PagedPlane plane;
    plane.pages_.reserve(tiles.tile_count());
    for (std::uint32_t t = 0; t < tiles.tile_count(); ++t) {
      if ((dirty_tiles >> t) & 1u) {
        plane.pages_.push_back(make_page(tiles, t, value_of));
        ++stats.copied;
      } else {
        plane.pages_.push_back(prev.pages_[t]);
        ++stats.shared;
      }
    }
    return plane;
  }

  /// The value at node `c`. Precondition: the plane was built over a tile
  /// grid congruent to `tiles` and `tiles.machine().contains(c)`.
  [[nodiscard]] T at(const grid::TileGrid& tiles, mesh::Coord c) const {
    return (*pages_[tiles.tile_of(c)])[tiles.offset_in_tile(c)];
  }

  [[nodiscard]] std::size_t page_count() const noexcept {
    return pages_.size();
  }

  /// True when this plane and `other` serve tile `t` from the same page
  /// object (test hook for the sharing structure).
  [[nodiscard]] bool shares_page_with(const PagedPlane& other,
                                      std::uint32_t t) const noexcept {
    return pages_[t] == other.pages_[t];
  }

 private:
  using Page = std::vector<T>;

  template <typename Fn>
  static std::shared_ptr<const Page> make_page(const grid::TileGrid& tiles,
                                               std::uint32_t t,
                                               Fn&& value_of) {
    auto page = std::make_shared<Page>(tiles.page_cells());
    const grid::TileGrid::TileRect b = tiles.bounds(t);
    for (std::int32_t y = b.y0; y < b.y1; ++y) {
      for (std::int32_t x = b.x0; x < b.x1; ++x) {
        const mesh::Coord c{x, y};
        (*page)[tiles.offset_in_tile(c)] = value_of(c);
      }
    }
    return page;
  }

  std::vector<std::shared_ptr<const Page>> pages_;
};

}  // namespace ocp::svc
