#include "svc/ingest.hpp"

#include <array>
#include <utility>
#include <vector>

namespace ocp::svc {

namespace {

std::uint64_t next_engine_id() {
  // Starts at 1 so a zero-initialized thread-local slot never matches.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// One thread-local epoch handle: the snapshot this thread last acquired
/// from engine `engine`, valid while the engine's publish stamp is still
/// `stamp`. The shared_ptr is the retirement mechanism — superseded epochs
/// die when the last thread re-acquires (or exits).
struct AcquireSlot {
  std::uint64_t engine = 0;
  std::uint64_t stamp = 0;
  std::shared_ptr<const Snapshot> snap;
};

}  // namespace

IngestEngine::IngestEngine(grid::CellSet initial_faults, IngestConfig config)
    : config_(config),
      labeling_(std::move(initial_faults), config.definition),
      tiles_(labeling_.faults().topology()),
      engine_id_(next_engine_id()) {
  latest_ = Snapshot::build(epoch_, labeling_, config_.hand);
  publish(latest_);
}

const Snapshot& IngestEngine::acquire() const {
  // 16 slots so every engine of one sharded runtime (consecutive ids,
  // shard grids are clamped to 16 shards) maps to a distinct slot: a
  // scatter-gather batch holds references into several shards' epochs at
  // once, and a slot collision mid-batch would retire a reference the
  // caller still dereferences.
  thread_local std::array<AcquireSlot, 16> slots;
  AcquireSlot& slot = slots[engine_id_ % slots.size()];
  const std::uint64_t stamp = stamp_.load(std::memory_order_acquire);
  if (slot.engine == engine_id_ && slot.stamp == stamp) {
    // Fast path: this thread already holds the current epoch. One atomic
    // load, no refcount traffic, no lock — the case every query after the
    // first takes until the next publish.
    config_.trace.counter("svc.acquire_fast", 1);
    return *slot.snap;
  }
  // Slow path: a shared-state touch (lock + refcount) the closed-loop
  // scaling diagnosis wants attributed — one per thread per publish in the
  // healthy steady state, one per query if something defeats the cache.
  config_.trace.counter("svc.acquire_slow", 1);
  std::shared_ptr<const Snapshot> snap;
  std::uint64_t observed;
  {
    std::shared_lock lock(publish_mu_);
    snap = published_;
    // Re-read under the lock so (stamp, snapshot) is a consistent pair; a
    // publish between the load above and here would otherwise let the slot
    // cache a newer snapshot under an older stamp.
    observed = stamp_.load(std::memory_order_relaxed);
  }
  slot.engine = engine_id_;
  slot.stamp = observed;
  slot.snap = std::move(snap);  // retires this thread's previous epoch
  return *slot.snap;
}

BatchOutcome IngestEngine::apply(std::span<const FaultEvent> batch) {
  obs::Span span(config_.trace, "svc.ingest.batch");
  BatchOutcome outcome;
  outcome.epoch = epoch_;

  // Coalesce: fold the batch into the net fault-set delta. `desired` tracks
  // the would-be health of every touched node after the events seen so far,
  // so duplicate faults, repairs of healthy nodes, and fault+repair pairs
  // inside one batch all collapse before any relabeling work happens.
  const mesh::Mesh2D& m = labeling_.faults().topology();
  std::vector<std::pair<mesh::Coord, bool>> desired;  // (node, faulty)
  const auto find = [&desired](mesh::Coord c) -> bool* {
    for (auto& [node, faulty] : desired) {
      if (node == c) return &faulty;
    }
    return nullptr;
  };
  for (const FaultEvent& event : batch) {
    if (!m.contains(event.node)) {
      ++outcome.invalid;
      continue;
    }
    const bool want_faulty = event.kind == EventKind::Fault;
    if (bool* pending = find(event.node)) {
      *pending = want_faulty;
    } else if (labeling_.faults().contains(event.node) != want_faulty) {
      desired.emplace_back(event.node, want_faulty);
    }
    // else: already in the desired state and untouched this batch — drop.
  }

  // A chaos kill scheduled for the epoch this apply would publish: fires
  // true and performs the crash (recover to the last published snapshot,
  // hand back the unpublished backlog) exactly once per armed stamp.
  const auto chaos_kill = [&]() -> bool {
    if (!config_.chaos.enabled() || !config_.chaos.kill_now(epoch_ + 1)) {
      return false;
    }
    outcome.crashed = true;
    outcome.requeue = crash_and_recover();
    outcome.applied = 0;
    outcome.coalesced = 0;
    outcome.epoch = epoch_;
    config_.trace.counter("svc.ingest_crashes", 1);
    std::lock_guard lock(stats_mu_);
    ++stats_.batches;
    ++stats_.crashes;
    stats_.events += batch.size();
    return true;
  };

  // Apply the net delta in first-touched order (deterministic; the final
  // labeling depends only on the final fault set), folding each event's
  // dirty extent into the pending publication masks. A chaos kill scheduled
  // for the epoch this batch would publish fires here — mid-batch, before
  // the rest of the delta mutates the labeling — so crash recovery is
  // exercised against genuinely partial in-memory state.
  for (const auto& [node, want_faulty] : desired) {
    if (labeling_.faults().contains(node) == want_faulty) {
      continue;  // an intra-batch fault+repair pair cancelled out
    }
    if (chaos_kill()) return outcome;
    const labeling::EventDelta delta = want_faulty
                                           ? labeling_.add_fault(node)
                                           : labeling_.remove_fault(node);
    for (const mesh::Coord c : delta.dirty_cells) {
      pending_dirty_tiles_ |= tiles_.bit_of(c);
      pending_padded_tiles_ |= tiles_.padded_bits(c);
    }
    pending_dirty_cells_ += delta.dirty_cells.size();
    const FaultEvent applied{want_faulty ? EventKind::Fault : EventKind::Repair,
                             node};
    unpublished_.push_back(applied);
    if (config_.on_publish) {
      unpublished_dirty_cells_.insert(unpublished_dirty_cells_.end(),
                                      delta.dirty_cells.begin(),
                                      delta.dirty_cells.end());
    }
    if (config_.collect_applied) {
      outcome.applied_events.push_back(applied);
      outcome.dirty_cells.insert(outcome.dirty_cells.end(),
                                 delta.dirty_cells.begin(),
                                 delta.dirty_cells.end());
    }
    ++outcome.applied;
  }
  outcome.coalesced = batch.size() - outcome.applied;
  config_.trace.counter("svc.events_applied",
                        static_cast<std::int64_t>(outcome.applied));
  config_.trace.counter("svc.events_coalesced",
                        static_cast<std::int64_t>(outcome.coalesced));

  bool rejected = false;
  std::optional<check::ViolationReport> violation;
  // `applied > 0` is the normal publish; `pending_dirty_cells_ > 0` with an
  // empty net delta is the retry path — earlier epochs were withheld and a
  // (possibly empty) later batch re-attempts publication of the labeling
  // the serving snapshot is still behind on.
  if (outcome.applied > 0 || pending_dirty_cells_ > 0) {
    // The retry path (applied == 0) never ran the per-event kill check, yet
    // it is about to publish epoch_ + 1 — consult the stamp here too, or a
    // kill armed for this epoch would be skipped forever once the epoch
    // counter moves past it.
    if (outcome.applied == 0 && chaos_kill()) return outcome;
    obs::Span publish_span(config_.trace, "svc.publish");
    // Copy-on-write against the epoch actually serving: the pending masks
    // cover every change since `latest_`, including changes from batches
    // the oracle withheld.
    auto next = Snapshot::next(*latest_, epoch_ + 1, labeling_,
                               pending_dirty_tiles_, pending_padded_tiles_);
    if (config_.chaos.enabled() && config_.chaos.poison_publish()) {
      // Chaos: the oracle "finds" a violation in a perfectly good snapshot.
      // Exercises the withholding path — bounded staleness, armed pending
      // masks, eventual retry — without a real engine bug to provoke it.
      rejected = true;
      violation = check::ViolationReport{};
      violation->violations.push_back(
          {check::kChaosPoisoned, "chaos plan poisoned the oracle verdict"});
      config_.trace.counter("svc.oracle_rejects", 1);
    }
    if (!rejected && config_.validate) {
      obs::Span gate_span(config_.trace, "svc.oracle_gate");
      auto report = next->validate(config_.definition, config_.oracle_checks);
      if (!report.ok()) {
        // Tripwire: withhold the bad epoch, keep serving the previous one.
        // The pending masks stay armed for the next attempt.
        rejected = true;
        violation = std::move(report);
        config_.trace.counter("svc.oracle_rejects", 1);
      }
    }
    if (rejected) {
      withheld_since_publish_.fetch_add(1, std::memory_order_relaxed);
      config_.trace.counter("svc.epochs_withheld", 1);
    } else {
      ++epoch_;
      config_.trace.counter(
          "svc.pages_copied",
          static_cast<std::int64_t>(next->page_stats().copied));
      config_.trace.counter(
          "svc.pages_shared",
          static_cast<std::int64_t>(next->page_stats().shared));
      config_.trace.counter(
          "svc.cache_routes_carried",
          static_cast<std::int64_t>(next->cache_carry_stats().carried));
      config_.trace.counter(
          "svc.cache_routes_invalidated",
          static_cast<std::int64_t>(next->cache_carry_stats().invalidated));
      config_.trace.counter(
          "svc.dirty_cells", static_cast<std::int64_t>(pending_dirty_cells_));
      pending_dirty_tiles_ = 0;
      pending_padded_tiles_ = 0;
      pending_dirty_cells_ = 0;
      unpublished_.clear();
      withheld_since_publish_.store(0, std::memory_order_relaxed);
      latest_ = next;
      publish(std::move(next));
      config_.trace.counter("svc.epochs_published", 1);
      outcome.published = true;
      outcome.epoch = epoch_;
      if (config_.on_publish) {
        // Writer-thread epoch hook: the new serving snapshot plus every
        // dirty cell since the previously published epoch (withheld
        // attempts included).
        config_.on_publish(*latest_, unpublished_dirty_cells_);
        unpublished_dirty_cells_.clear();
      }
    }
  }

  {
    std::lock_guard lock(stats_mu_);
    ++stats_.batches;
    stats_.events += batch.size();
    stats_.applied += outcome.applied;
    stats_.coalesced += outcome.coalesced;
    stats_.invalid += outcome.invalid;
    if (outcome.published) ++stats_.epochs_published;
    if (rejected) {
      ++stats_.oracle_rejects;
      last_violation_ = std::move(violation);
    }
  }
  return outcome;
}

std::vector<FaultEvent> IngestEngine::crash_and_recover() {
  // The crash loses everything not published: rebuild the labeling from the
  // last published snapshot's fault set (full rebuild and incremental
  // maintenance are bit-identical — the engine-equivalence invariant the
  // fuzzer pins), and disarm the pending masks that described the now
  // discarded progress. The unpublished backlog is the WAL the crash did
  // NOT lose: its events are state-setting (fault = make-faulty, repair =
  // make-healthy), so the caller replaying them — possibly on top of a
  // prefix already re-applied here — converges to the pre-crash fault set.
  labeling_ =
      labeling::MaintainedLabeling(latest_->faults(), config_.definition);
  pending_dirty_tiles_ = 0;
  pending_padded_tiles_ = 0;
  pending_dirty_cells_ = 0;
  unpublished_dirty_cells_.clear();
  withheld_since_publish_.store(0, std::memory_order_relaxed);
  return std::exchange(unpublished_, {});
}

IngestStats IngestEngine::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

std::optional<check::ViolationReport> IngestEngine::last_violation() const {
  std::lock_guard lock(stats_mu_);
  return last_violation_;
}

void IngestEngine::publish(std::shared_ptr<const Snapshot> next) {
  // Swap under the exclusive lock, destroy the superseded handle outside it
  // (the last reader of an old epoch frees it via the refcount, never here).
  std::shared_ptr<const Snapshot> retired;
  {
    std::unique_lock lock(publish_mu_);
    retired = std::exchange(published_, std::move(next));
    // The stamp moves while the lock is still held, so a reader that sees
    // the new stamp under the shared lock is guaranteed to also see the new
    // snapshot (and the fast path can trust a matching stamp).
    stamp_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace ocp::svc
