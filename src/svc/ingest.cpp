#include "svc/ingest.hpp"

#include <utility>
#include <vector>

namespace ocp::svc {

IngestEngine::IngestEngine(grid::CellSet initial_faults, IngestConfig config)
    : config_(config),
      labeling_(std::move(initial_faults), config.definition) {
  publish(Snapshot::build(epoch_, labeling_, config_.hand));
}

BatchOutcome IngestEngine::apply(std::span<const FaultEvent> batch) {
  obs::Span span(config_.trace, "svc.ingest.batch");
  BatchOutcome outcome;
  outcome.epoch = epoch_;

  // Coalesce: fold the batch into the net fault-set delta. `desired` tracks
  // the would-be health of every touched node after the events seen so far,
  // so duplicate faults, repairs of healthy nodes, and fault+repair pairs
  // inside one batch all collapse before any relabeling work happens.
  const mesh::Mesh2D& m = labeling_.faults().topology();
  std::vector<std::pair<mesh::Coord, bool>> desired;  // (node, faulty)
  const auto find = [&desired](mesh::Coord c) -> bool* {
    for (auto& [node, faulty] : desired) {
      if (node == c) return &faulty;
    }
    return nullptr;
  };
  for (const FaultEvent& event : batch) {
    if (!m.contains(event.node)) {
      ++outcome.invalid;
      continue;
    }
    const bool want_faulty = event.kind == EventKind::Fault;
    if (bool* pending = find(event.node)) {
      *pending = want_faulty;
    } else if (labeling_.faults().contains(event.node) != want_faulty) {
      desired.emplace_back(event.node, want_faulty);
    }
    // else: already in the desired state and untouched this batch — drop.
  }

  // Apply the net delta in first-touched order (deterministic; the final
  // labeling depends only on the final fault set).
  for (const auto& [node, want_faulty] : desired) {
    if (labeling_.faults().contains(node) == want_faulty) {
      continue;  // an intra-batch fault+repair pair cancelled out
    }
    if (want_faulty) {
      labeling_.add_fault(node);
    } else {
      labeling_.remove_fault(node);
    }
    ++outcome.applied;
  }
  outcome.coalesced = batch.size() - outcome.applied;
  config_.trace.counter("svc.events_applied",
                        static_cast<std::int64_t>(outcome.applied));
  config_.trace.counter("svc.events_coalesced",
                        static_cast<std::int64_t>(outcome.coalesced));

  bool rejected = false;
  std::optional<check::ViolationReport> violation;
  if (outcome.applied > 0) {
    obs::Span publish_span(config_.trace, "svc.publish");
    auto next = Snapshot::build(epoch_ + 1, labeling_, config_.hand);
    if (config_.validate) {
      obs::Span gate_span(config_.trace, "svc.oracle_gate");
      auto report = next->validate(config_.definition, config_.oracle_checks);
      if (!report.ok()) {
        // Tripwire: withhold the bad epoch, keep serving the previous one.
        rejected = true;
        violation = std::move(report);
        config_.trace.counter("svc.oracle_rejects", 1);
      }
    }
    if (!rejected) {
      ++epoch_;
      publish(std::move(next));
      config_.trace.counter("svc.epochs_published", 1);
      outcome.published = true;
      outcome.epoch = epoch_;
    }
  }

  {
    std::lock_guard lock(stats_mu_);
    ++stats_.batches;
    stats_.events += batch.size();
    stats_.applied += outcome.applied;
    stats_.coalesced += outcome.coalesced;
    stats_.invalid += outcome.invalid;
    if (outcome.published) ++stats_.epochs_published;
    if (rejected) {
      ++stats_.oracle_rejects;
      last_violation_ = std::move(violation);
    }
  }
  return outcome;
}

IngestStats IngestEngine::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

std::optional<check::ViolationReport> IngestEngine::last_violation() const {
  std::lock_guard lock(stats_mu_);
  return last_violation_;
}

void IngestEngine::publish(std::shared_ptr<const Snapshot> next) {
  // Swap under the exclusive lock, destroy the superseded handle outside it
  // (the last reader of an old epoch frees it via the refcount, never here).
  std::shared_ptr<const Snapshot> retired;
  {
    std::unique_lock lock(publish_mu_);
    retired = std::exchange(published_, std::move(next));
  }
}

}  // namespace ocp::svc
