// Tile-partitioned sharding of the serving runtime: ownership geometry,
// typed halo deltas, and the per-shard single-writer world.
//
// `ShardGrid` splits the machine's tile decomposition (grid/tiles.hpp) into
// an S_r x S_c grid of contiguous tile-aligned rectangles; every cell has
// exactly one owning shard, and shard seams always coincide with tile
// seams, so a shard's snapshot pages are either fully owned or fully
// foreign. `Shard` is one shard's writer: an `IngestEngine` over a
// full-machine `MaintainedLabeling` replica that is *authoritative only on
// the shard's owned cells* — the rest of the replica is the ghost halo,
// kept approximately current by gossip. The paper's protocol has the same
// shape: each node maintains fault information locally and learns about
// remote faults through rounds of neighbor exchanges; a shard here plays
// the role of a node-group, and a `HaloDelta` is one exchange.
//
// The halo protocol (why it converges — DESIGN.md §13 carries the full
// argument):
//
//  * After applying a batch, a shard inspects the batch's dirty extent —
//    every cell whose served label may have changed, as reported by the
//    maintenance layer. If any extent cell is owned by another shard, that
//    shard is sent a `HaloDelta` carrying the fault state of the ENTIRE
//    extent (not only the receiver-owned slice): an extent is a merged
//    unsafe component or an old block footprint, and the receiver needs the
//    whole component's faults — including third-party-owned ones the sender
//    itself learned by gossip — to relabel its side of a seam-spanning
//    region identically.
//  * Relayed knowledge can be stale, so every cell state travels with a
//    version: the owner of a cell stamps it from a per-shard monotone
//    counter each time an event flips it, and a receiver adopts a non-owned
//    cell's state only when the carried version exceeds the one it stored
//    (`Shard::versions_`). Entries for cells the receiver owns are skipped
//    outright — a shard is the single authority on its own cells and never
//    lets gossip overwrite them. Version 0 (never flipped since
//    construction) needs no exchange: both sides still hold the identical
//    initial state.
//  * Adopting a state means feeding a synthetic fault/repair event through
//    the shard's own engine (`set_fault_state` semantics: idempotent,
//    state-asserting), which relabels, republished-snapshots, and — when
//    the resulting dirty extent again crosses a seam — emits follow-up
//    deltas. Shards therefore iterate to a fixpoint exactly like the
//    paper's exchange rounds; at quiesce (no queued events, no in-flight
//    deltas) every shard's replica agrees with the single-writer engine on
//    every component that overlaps its owned cells, which is all its
//    snapshot is ever asked about.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "grid/tiles.hpp"
#include "svc/ingest.hpp"

namespace ocp::svc {

/// Tile-aligned S_r x S_c partition of the machine. Rows split the tile
/// rows into contiguous chunks (sizes differing by at most one, remainder
/// front-loaded), columns likewise; requested extents are clamped to the
/// tile counts and the total shard count to 16 (the thread-local acquire
/// slot capacity — see IngestEngine::acquire).
class ShardGrid {
 public:
  ShardGrid(const mesh::Mesh2D& m, std::int32_t rows, std::int32_t cols);

  [[nodiscard]] const grid::TileGrid& tiles() const noexcept { return tiles_; }
  [[nodiscard]] const mesh::Mesh2D& machine() const noexcept {
    return tiles_.machine();
  }
  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(rows_ * cols_);
  }

  /// Owning shard of a node; precondition: machine().contains(c).
  [[nodiscard]] std::uint32_t shard_of(mesh::Coord c) const noexcept {
    const auto tx = static_cast<std::size_t>(c.x >> tiles_.shift());
    const auto ty = static_cast<std::size_t>(c.y >> tiles_.shift());
    return shard_row_of_tile_row_[ty] * static_cast<std::uint32_t>(cols_) +
           shard_col_of_tile_col_[tx];
  }

  [[nodiscard]] bool owns(std::uint32_t shard, mesh::Coord c) const noexcept {
    return shard_of(c) == shard;
  }

 private:
  grid::TileGrid tiles_;
  std::int32_t rows_;
  std::int32_t cols_;
  std::vector<std::uint32_t> shard_col_of_tile_col_;  // size tiles_x
  std::vector<std::uint32_t> shard_row_of_tile_row_;  // size tiles_y
};

/// One cell's asserted fault state inside a halo delta, with the version
/// its owner last stamped it with (see protocol notes above).
struct HaloCellState {
  mesh::Coord cell;
  bool faulty = false;
  std::uint64_t version = 0;
};

/// One boundary exchange: the full dirty extent of one applied batch, as
/// fault states + versions, addressed to a shard whose owned cells the
/// extent touched.
struct HaloDelta {
  /// Emitting shard (observability; receivers do not treat any sender as
  /// more authoritative — versions decide).
  std::uint32_t source = 0;
  std::vector<HaloCellState> states;
};

/// One shard's single-writer world: engine + halo bookkeeping. Thread-free
/// like `IngestEngine`; `ShardedService` serializes `apply` calls on the
/// shard's worker thread, the deterministic round driver calls it inline.
class Shard {
 public:
  /// `config.collect_applied` is forced on — the dirty extent is how halo
  /// deltas are derived.
  Shard(std::uint32_t index, const ShardGrid& grid, grid::CellSet initial,
        IngestConfig config);

  struct ApplyResult {
    BatchOutcome outcome;
    /// Deltas to deliver, grouped per target shard, in ascending target
    /// order. Empty when the batch's dirty extent stayed inside the shard.
    std::vector<std::pair<std::uint32_t, HaloDelta>> outgoing;
    /// Synthetic events derived from incoming halo deltas this call (the
    /// gossip overhead a fixpoint round pays, for stats).
    std::size_t halo_events = 0;
    /// Only on a crash: the exact batch the engine was interrupted on
    /// (external events plus the halo-derived ones), which the caller must
    /// requeue after `outcome.requeue` — the version gate has already
    /// recorded the halo entries, so the deltas themselves cannot simply be
    /// redelivered.
    std::vector<FaultEvent> interrupted;
  };

  /// Applies one batch: external events first, then events derived from
  /// `halo` (version-gated, own cells skipped). External events in a
  /// shard's queue address owned cells and halo-derived events address
  /// foreign cells, so the two halves never coalesce against each other;
  /// the halo half coming second still matters after a crash replay, when
  /// the requeued backlog holds *old* halo-derived events that a newer
  /// delta in the same batch must win against (the engine's coalescer keeps
  /// the last event per cell).
  ApplyResult apply(std::span<const FaultEvent> external,
                    std::span<const HaloDelta> halo);

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] IngestEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const IngestEngine& engine() const noexcept { return engine_; }

 private:
  std::uint32_t index_;
  const ShardGrid* grid_;
  IngestEngine engine_;
  /// Last version adopted (foreign cells) or stamped (owned cells) per
  /// cell. Lives outside the engine on purpose: an engine crash discards
  /// unpublished labeling progress, but what this shard has *heard* (and
  /// told others) is not lost in the crash — the requeued backlog replays
  /// against the same version knowledge.
  grid::NodeGrid<std::uint64_t> versions_;
  /// Monotone stamp source for this shard's owned-cell flips. Never reset
  /// (survives engine crashes), so receivers' version gates stay correct
  /// across replays.
  std::uint64_t version_counter_ = 0;
  std::vector<FaultEvent> batch_scratch_;
  std::vector<mesh::Coord> extent_scratch_;
};

}  // namespace ocp::svc
