// Single-writer ingest engine: fault/repair batches in, snapshots out.
//
// One writer owns a `labeling::MaintainedLabeling` and an RCU-style publish
// slot: a shared_ptr handle behind a shared_mutex whose critical sections
// are pointer-sized on both sides. (std::atomic<shared_ptr> would express
// the same thing, but libstdc++'s _Sp_atomic guards its pointer word with
// an embedded lock-bit protocol ThreadSanitizer cannot model, and its load
// path spins on that bit anyway — the shared_mutex form is equally cheap
// and tsan-clean.) Each `apply` call takes one drained batch, coalesces it
// against the current fault set (duplicate faults, repairs of healthy nodes
// and fault+repair pairs inside the batch collapse to nothing), applies the
// net adds/removes incrementally through `add_fault`/`remove_fault` while
// accumulating their dirty extents, and publishes exactly one new epoch —
// or none when the whole batch coalesced away. Publication is
// copy-on-write: the new snapshot is built with `Snapshot::next` against
// the previously published one, sharing every serving page outside the
// accumulated dirty tiles and carrying the warm route cache (see
// snapshot.hpp). Dirty extents accumulate across oracle-withheld epochs and
// reset only on a successful publish, so a later snapshot always diffs
// against the epoch actually being served.
//
// Readers have two acquisition paths. `snapshot()` copies the shared_ptr
// under the shared lock — safe, but every call bumps the snapshot refcount
// and takes the lock, both of which ping-pong cache lines between query
// threads. `acquire()` is the contention-free fast path: each thread caches
// a per-engine epoch handle (a shared_ptr slot in thread-local storage)
// keyed by the engine's publish stamp; while the stamp is unchanged — the
// overwhelmingly common case — acquisition is one atomic load and no shared
// writes at all. When the stamp moves, the thread re-reads the slot under
// the shared lock and retires its previous handle (epoch-based retirement:
// an idle thread holds at most one superseded epoch per engine slot until
// its next acquire or thread exit). Readers never block writers and vice
// versa.
//
// The engine is deliberately thread-free: the `Service` wraps it with the
// bounded queue and the ingest thread, while tests and the deterministic
// load generator drive `apply` directly for reproducible epoch sequences.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>

#include "chaos/plan.hpp"
#include "grid/tiles.hpp"
#include "obs/trace.hpp"
#include "svc/event_queue.hpp"
#include "svc/snapshot.hpp"

namespace ocp::svc {

struct IngestConfig {
  labeling::SafeUnsafeDef definition = labeling::SafeUnsafeDef::Def2b;
  /// Wall-following hand of the per-snapshot router.
  routing::Hand hand = routing::Hand::Right;
  /// Gate every publication through the invariant oracle: a snapshot that
  /// violates any selected check is withheld (the previous epoch keeps
  /// serving) and the violation is retained for inspection. An engine-bug
  /// tripwire, not a recovery mechanism — the maintained labeling itself is
  /// not rolled back.
  bool validate = false;
  std::uint32_t oracle_checks = check::kAllChecks;
  /// Observability: publish spans, event/epoch counters.
  obs::TraceConfig trace;
  /// Deterministic fault injection (disabled by default): oracle poisoning,
  /// mid-batch kills, and — read by the owning `Service` — admission
  /// denial and drained-batch scheduling faults. One plan serves the whole
  /// runtime so its decision streams compose into one chaos schedule.
  chaos::ChaosConfig chaos;
  /// Have `apply` report the applied net events and their combined dirty
  /// extent in the `BatchOutcome` (off by default: the single-writer service
  /// never reads them, and the extent vector is an extra allocation per
  /// batch). The sharded runtime turns this on — the dirty extent is what a
  /// shard inspects to decide which halo deltas to emit.
  bool collect_applied = false;
  /// Epoch hook: called on the writer thread immediately after every
  /// successful publication (never for the constructor's epoch-0 build)
  /// with the new serving snapshot and the dirty cells accumulated since
  /// the previously published epoch — including cells from oracle-withheld
  /// attempts in between, so a consumer deriving incremental state (the
  /// allocation layer) always diffs against what it last saw. Cells may
  /// repeat; consumers dedupe. The hook runs inside `apply`, so it must not
  /// re-enter the engine.
  std::function<void(const Snapshot&, std::span<const mesh::Coord>)>
      on_publish;
};

/// What one `apply` call did.
struct BatchOutcome {
  /// Net fault-set changes applied (adds + removes).
  std::size_t applied = 0;
  /// Events absorbed by coalescing (duplicates, no-op repairs, intra-batch
  /// fault+repair cancellations, out-of-machine addresses).
  std::size_t coalesced = 0;
  /// Events naming coordinates outside the machine (counted within
  /// `coalesced` as well; never fatal).
  std::size_t invalid = 0;
  /// True when a new epoch was published.
  bool published = false;
  /// Epoch of the serving snapshot after the call.
  std::uint64_t epoch = 0;
  /// True when a chaos kill fired mid-batch: the engine crashed and
  /// recovered itself from the last published snapshot, discarding every
  /// applied-but-unpublished change. `requeue` then holds the events that
  /// must be replayed (the WAL the crash did not lose): the unpublished
  /// backlog in application order. The caller owns requeuing them — and the
  /// interrupted batch after them — before restarting the ingest thread.
  bool crashed = false;
  std::vector<FaultEvent> requeue;
  /// Only when `IngestConfig::collect_applied` is set: the net events this
  /// call applied (in application order) and the union of their dirty
  /// extents — every cell whose served label may have changed. May contain
  /// duplicate cells across events; consumers dedupe.
  std::vector<FaultEvent> applied_events;
  std::vector<mesh::Coord> dirty_cells;
};

/// Monotone counters over the engine's lifetime.
struct IngestStats {
  std::uint64_t batches = 0;
  std::uint64_t events = 0;
  std::uint64_t applied = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t invalid = 0;
  std::uint64_t epochs_published = 0;
  /// Publications withheld by the oracle gate (genuine violations and
  /// chaos-poisoned verdicts alike).
  std::uint64_t oracle_rejects = 0;
  /// Mid-batch chaos kills the engine crash-recovered from.
  std::uint64_t crashes = 0;
};

class IngestEngine {
 public:
  /// Labels `initial_faults` and publishes it as epoch 0.
  explicit IngestEngine(grid::CellSet initial_faults, IngestConfig config = {});

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Applies one drained batch; single-writer (never call concurrently).
  /// An empty batch is the publish-retry path: when earlier epochs were
  /// withheld (pending dirty extents are armed), it re-attempts publication
  /// of the current labeling without consuming any events.
  BatchOutcome apply(std::span<const FaultEvent> batch);

  /// Chaos/test hook: crash the engine as a mid-batch kill would — rebuild
  /// the labeling from the last PUBLISHED snapshot (all in-memory progress
  /// beyond it is lost), disarm the pending dirty extents, and return the
  /// unpublished event backlog the caller must replay to converge back to
  /// the pre-crash fault set. Single-writer, like `apply`.
  [[nodiscard]] std::vector<FaultEvent> crash_and_recover();

  /// Bounded-staleness watermark: publish attempts withheld by the oracle
  /// gate since the last successful publication — how many epochs behind
  /// the net fault set the serving snapshot currently is. 0 in the healthy
  /// steady state; readable from any thread.
  [[nodiscard]] std::uint64_t stale_epochs_pending() const {
    return withheld_since_publish_.load(std::memory_order_relaxed);
  }

  /// The currently serving snapshot (safe from any thread; the shared lock
  /// is held only for the handle copy). Prefer `acquire()` on query hot
  /// paths; use this when the handle must outlive the calling frame.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    std::shared_lock lock(publish_mu_);
    return published_;
  }

  /// Contention-free acquisition of the currently serving snapshot via a
  /// thread-local epoch handle: one atomic load when the thread has already
  /// seen the current publish stamp, the `snapshot()` slow path otherwise.
  /// The returned reference is valid until the calling thread's next
  /// `acquire()` that observes a newer epoch (or thread exit) — answer the
  /// current query against it, do not stash it; callers that need an
  /// owning handle use `snapshot()`.
  [[nodiscard]] const Snapshot& acquire() const;

  /// The maintained labeling the engine applies events to. Single-writer
  /// like `apply`: only the thread driving the engine may read it, and only
  /// between `apply` calls — queries go through snapshots. The sharded
  /// runtime reads it to version-stamp halo deltas against the live fault
  /// set rather than the (possibly withheld) published one.
  [[nodiscard]] const labeling::MaintainedLabeling& labeling() const noexcept {
    return labeling_;
  }

  /// Counter snapshot; safe to call from any thread while the writer runs.
  [[nodiscard]] IngestStats stats() const;
  /// The violation report of the most recent withheld publication, if any.
  [[nodiscard]] std::optional<check::ViolationReport> last_violation() const;
  [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

 private:
  void publish(std::shared_ptr<const Snapshot> next);

  IngestConfig config_;
  /// Events applied to `labeling_` but not yet covered by a successful
  /// publication, in application order (net events of withheld epochs plus
  /// the in-flight batch's applied prefix). Cleared on publish; returned by
  /// `crash_and_recover` so a crash never silently drops accepted events.
  std::vector<FaultEvent> unpublished_;
  /// Dirty cells of `unpublished_` in application order, kept only when the
  /// `on_publish` hook is set (its delta argument); cleared on publish and
  /// on crash recovery.
  std::vector<mesh::Coord> unpublished_dirty_cells_;
  /// Withheld publish attempts since the last successful publication
  /// (the staleness watermark queries and dashboards read).
  std::atomic<std::uint64_t> withheld_since_publish_{0};
  labeling::MaintainedLabeling labeling_;
  /// Tile decomposition used to accumulate dirty masks for publication.
  grid::TileGrid tiles_;
  /// Distinguishes engines in the thread-local acquire slots; monotonically
  /// assigned so a slot can never alias a destroyed engine's cache.
  const std::uint64_t engine_id_;
  std::uint64_t epoch_ = 0;
  /// Writer-local handle to the snapshot currently serving — the `prev` of
  /// the next copy-on-write publication.
  std::shared_ptr<const Snapshot> latest_;
  /// Dirty accumulation since `latest_` (across oracle-withheld epochs):
  /// tiles whose cells changed, their padded neighborhoods (for route-cache
  /// invalidation), and the summed dirty-cell count (observability).
  std::uint64_t pending_dirty_tiles_ = 0;
  std::uint64_t pending_padded_tiles_ = 0;
  std::uint64_t pending_dirty_cells_ = 0;
  /// Guards only the publish slot; both critical sections are pointer-sized.
  mutable std::shared_mutex publish_mu_;
  std::shared_ptr<const Snapshot> published_;
  /// Bumped (under the exclusive lock) at every publish; the thread-local
  /// fast path of `acquire()` revalidates its cached handle against this.
  std::atomic<std::uint64_t> stamp_{0};
  /// Guards the cross-thread-readable bookkeeping (the labeling itself is
  /// single-writer and unguarded by design).
  mutable std::mutex stats_mu_;
  IngestStats stats_;
  std::optional<check::ViolationReport> last_violation_;
};

}  // namespace ocp::svc
