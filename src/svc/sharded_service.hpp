// Sharded serving runtime: tile-partitioned multi-writer ingest with halo
// exchange, composite snapshots, and a contention-free query front.
//
// `ShardedService` runs one `Shard` (shard.hpp) per cell of a `ShardGrid`,
// each with its own bounded `EventQueue`, its own worker thread applying
// batches through its own single-writer `IngestEngine`, and its own
// RCU-published snapshot chain. External events route to their owning
// shard's queue by coordinate; halo deltas emitted by one shard's apply are
// delivered synchronously (under the service mutex, before the producer
// clears its draining flag) into the target shards' inboxes, so the flush
// barrier's quiesce predicate is exact: every queue empty, every inbox
// empty, no shard mid-apply — precisely "no in-flight information anywhere",
// the paper's termination condition for its exchange rounds.
//
// Queries never funnel through shared mutable state. A point lookup maps
// the coordinate to its owning shard and acquires that shard's epoch via
// the thread-local one-atomic-load handle (`IngestEngine::acquire`);
// `query_batch` scatter-gathers one batch across shards against a composite
// epoch vector — the per-shard epochs all items of the batch were answered
// at. Cross-shard routes are stitched: each shard's snapshot computes (and
// memoizes, in its per-epoch `RouteCache`) the segment it is authoritative
// for, hops are adopted only after validation against the hopped-onto
// cell's owner, and authority switches at the first disagreement.
//
// `composite_label_digest` folds the per-shard snapshots into the exact
// digest `Snapshot::label_digest()` would produce on a single-writer engine
// fed the same stream: per-cell planes read from each cell's owner, blocks
// and regions deduped across shards by their min-cell-index key (a
// seam-spanning region is extracted identically by every shard that owns a
// piece of it — same converged fault knowledge, same deterministic
// extraction). Digest equality at quiesce is the sharding correctness
// invariant the property tests pin.
//
// `run_sharded_rounds` is the thread-free twin: the same shards driven in
// deterministic barrier-synchronized rounds (apply in parallel, route
// deltas serially by shard index), bit-identical for any OpenMP thread
// count — the form the seam-geometry property tests and the ingest bench
// use.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/service.hpp"
#include "svc/shard.hpp"

namespace ocp::svc {

struct ShardedServiceConfig {
  /// Requested shard grid; clamped to the tile grid and to 16 shards total
  /// (see ShardGrid).
  std::int32_t shard_rows = 2;
  std::int32_t shard_cols = 2;
  /// Per-shard queue capacity and drain batch cap (same semantics as
  /// ServiceConfig's).
  std::size_t queue_capacity = 1024;
  std::size_t max_batch = 256;
  /// Service-wide concurrent query cap (0 = unlimited).
  std::size_t max_inflight_queries = 0;
  /// Base engine configuration, shared by every shard. `chaos` applies to
  /// every shard unless overridden below; `collect_applied` is forced on.
  IngestConfig ingest;
  /// Per-shard chaos overrides, indexed by shard; shards beyond the vector
  /// use `ingest.chaos`. This is the per-shard kill/restart point: arm shard
  /// i's plan with publish stamps of shard i only.
  std::vector<chaos::ChaosConfig> shard_chaos;
};

/// One shard's contribution to a scatter-gather answer's consistency
/// vector: the epoch the batch read that shard at.
struct CompositeEpoch {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
};

/// `query_batch` answer: per-item results plus the composite epoch vector
/// (ascending shard order, only shards the batch actually touched).
struct ShardedBatchAnswer {
  QueryStatus status = QueryStatus::Ok;
  std::vector<CompositeEpoch> epochs;
  std::size_t completed = 0;
  std::vector<BatchItemAnswer> items;
};

/// Aggregate health counters across the fleet.
struct ShardedStats {
  std::vector<std::uint64_t> shard_epochs;
  std::size_t queue_depth = 0;  // summed
  std::uint64_t events_accepted = 0;
  std::uint64_t events_rejected = 0;
  std::uint64_t query_overloads = 0;
  /// Halo exchange volume: deltas delivered into inboxes, synthetic events
  /// they expanded to, fixpoint batches that were pure gossip (no external
  /// event). The coordination overhead of the sharding.
  std::uint64_t halo_deltas = 0;
  std::uint64_t halo_events = 0;
  std::size_t shards_crashed = 0;
  IngestStats ingest;  // summed across shards
};

class ShardedService {
 public:
  explicit ShardedService(grid::CellSet initial_faults,
                          ShardedServiceConfig config = {});
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  [[nodiscard]] const ShardGrid& shard_grid() const noexcept { return grid_; }
  [[nodiscard]] std::uint32_t shard_of(mesh::Coord c) const noexcept {
    return grid_.shard_of(c);
  }

  /// Routes the event to its owning shard's queue (out-of-machine
  /// coordinates go to shard 0, whose engine counts them invalid — same
  /// never-fatal contract as `Service::submit`).
  SubmitStatus submit(FaultEvent event);

  /// Blocks until the fleet is quiescent: every queue drained, every halo
  /// inbox empty, no shard mid-apply — the fixpoint of the exchange rounds.
  /// Returns early (with `shard_crashed` observable) when any shard's
  /// writer died; recovery is an explicit `restart_shard`.
  void flush();

  [[nodiscard]] bool shard_crashed(std::uint32_t shard) const;
  [[nodiscard]] bool any_shard_crashed() const;
  /// Resurrects shard `shard`'s worker after a chaos kill; replay of the
  /// requeued backlog converges it back (false when it was not crashed).
  bool restart_shard(std::uint32_t shard);

  /// Point queries: one thread-local epoch acquisition on the owning shard,
  /// no shared writes. Answer epochs are the owning shard's.
  [[nodiscard]] StatusAnswer query_status(mesh::Coord node) const;
  [[nodiscard]] RegionAnswer query_region(mesh::Coord node) const;
  /// Cross-shard stitched route (see file comment). The answer's epoch is
  /// the source-owning shard's.
  [[nodiscard]] RouteAnswer query_route(mesh::Coord src, mesh::Coord dst) const;
  [[nodiscard]] ShardedBatchAnswer query_batch(
      const std::vector<QueryItem>& items,
      std::chrono::steady_clock::time_point deadline = {}) const;

  /// Owning snapshot handles of every shard, in shard order (slow path;
  /// tests and the digest use it, queries never do).
  [[nodiscard]] std::vector<std::shared_ptr<const Snapshot>> snapshots() const;
  /// The composite digest at the current instant; equals the single-writer
  /// `label_digest` when called at quiesce (after a clean `flush`).
  [[nodiscard]] std::uint64_t composite_digest() const;

  [[nodiscard]] ShardedStats stats() const;
  [[nodiscard]] const ShardedServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ShardRuntime;
  class InflightGate;
  /// Per-query pin set: at most one acquire per shard per query, so the
  /// whole query reads consistent per-shard epochs and no pinned reference
  /// is retired mid-query (definition in the .cpp).
  struct ShardPinSet;

  void worker_loop(std::uint32_t shard);
  [[nodiscard]] bool admit_query() const;
  /// Cross-shard route stitching against pinned per-shard epochs.
  [[nodiscard]] routing::Route stitch_route(mesh::Coord src, mesh::Coord dst,
                                            ShardPinSet& pins) const;
  /// Acquires shard `s`'s current snapshot through the calling thread's
  /// epoch handle (valid until this thread's next acquire of the same slot).
  [[nodiscard]] const Snapshot& acquire(std::uint32_t s) const;

  ShardedServiceConfig config_;
  ShardGrid grid_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;

  /// One mutex for the fleet's control plane (queues' depth checks, halo
  /// inboxes, draining/crash flags). Never on the query path.
  mutable std::mutex mu_;
  std::condition_variable wake_;
  mutable std::condition_variable progress_;
  bool stopping_ = false;
  std::uint64_t halo_deltas_ = 0;  // guarded by mu_
  std::uint64_t halo_events_ = 0;  // guarded by mu_

  mutable std::atomic<std::int64_t> inflight_queries_{0};
  mutable std::atomic<std::uint64_t> query_overloads_{0};
};

/// Folds per-shard snapshots (one per `grid` shard, in shard order) into
/// the digest a single-writer `Snapshot::label_digest()` computes over the
/// same converged state: per-cell planes read from each cell's owner,
/// blocks/regions deduped by min-cell-index and regions folded in key
/// order. See file comment for why shards agree on seam-spanning entries.
[[nodiscard]] std::uint64_t composite_label_digest(
    const ShardGrid& grid,
    const std::vector<std::shared_ptr<const Snapshot>>& snapshots);

/// Result of the deterministic round driver.
struct ShardedRoundsResult {
  /// Net fault-set changes applied from the external stream (all shards).
  std::size_t applied = 0;
  /// Synthetic halo-derived events applied (gossip overhead).
  std::size_t halo_events = 0;
  /// Halo deltas exchanged.
  std::size_t halo_deltas = 0;
  /// Exchange rounds until fixpoint.
  std::size_t rounds = 0;
  std::uint64_t composite_digest = 0;
  /// Final per-shard snapshots, in shard order.
  std::vector<std::shared_ptr<const Snapshot>> snapshots;
};

/// Thread-free deterministic multi-writer driver: routes `stream` into
/// per-shard FIFO backlogs, then runs barrier-synchronized rounds — every
/// shard applies one batch (<= max_batch external events plus its whole
/// inbox) with the per-shard applies parallelized over OpenMP threads, then
/// the emitted deltas are routed serially in shard order — until no shard
/// has pending work. Bit-identical for any thread count: shards touch
/// disjoint state during the parallel section and the inter-round delivery
/// order is fixed by shard index.
[[nodiscard]] ShardedRoundsResult run_sharded_rounds(
    const ShardGrid& grid, const grid::CellSet& initial,
    std::span<const FaultEvent> stream, std::size_t max_batch = 256,
    IngestConfig config = {});

}  // namespace ocp::svc
