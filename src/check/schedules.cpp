#include "check/schedules.hpp"

#include <sstream>

#include "core/activation_protocol.hpp"
#include "core/safety_protocol.hpp"

namespace ocp::check {

namespace {

using labeling::ActivationProtocol;
using labeling::PipelineResult;
using labeling::SafetyProtocol;
using mesh::Coord;

template <typename State, typename Field>
void compare_plane(const mesh::Mesh2D& m,
                   const grid::NodeGrid<State>& scheduled,
                   const grid::NodeGrid<Field>& reference, Field State::*field,
                   Schedule sched, const char* phase,
                   ViolationReport& report) {
  std::size_t mismatches = 0;
  Coord first{};
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    if (scheduled.at_index(i).*field != reference.at_index(i)) {
      if (mismatches++ == 0) first = m.coord(i);
    }
  }
  if (mismatches == 0) return;
  std::ostringstream os;
  os << to_string(sched) << ": " << phase << " fixpoint differs from the "
     << "synchronous reference at " << mismatches
     << " nodes (first at " << mesh::to_string(first) << ")";
  report.violations.push_back({kScheduleIndependence, os.str()});
}

}  // namespace

ViolationReport check_schedules(const grid::CellSet& faults,
                                labeling::SafeUnsafeDef def,
                                std::uint64_t seed) {
  ViolationReport report;
  const mesh::Mesh2D& m = faults.topology();
  const mesh::AdjacencyTable adj(m);

  labeling::PipelineOptions popts;
  popts.definition = def;
  const PipelineResult sync = labeling::run_pipeline(faults, popts);

  const SafetyProtocol phase1(faults, def);
  const ActivationProtocol phase2(faults, sync.safety);
  for (Schedule sched : kAllSchedules) {
    stats::Rng rng(seed ^ (0x5eedull + static_cast<std::uint64_t>(sched)));
    const auto r1 = run_scheduled(adj, phase1, sched, rng);
    compare_plane(m, r1.states, sync.safety, &SafetyProtocol::State::safety,
                  sched, "phase one", report);
    const auto r2 = run_scheduled(adj, phase2, sched, rng);
    compare_plane(m, r2.states, sync.activation,
                  &ActivationProtocol::State::activation, sched, "phase two",
                  report);
  }
  return report;
}

}  // namespace ocp::check
