// Deterministic, time-boxed fuzzing of the full labeling pipeline.
//
// Every instance is derived from one master seed (machine shape, topology,
// definition, fault generator, fault count all come from forked per-instance
// streams), so a fuzz run is reproducible bit-for-bit from its seed and any
// failure can be replayed from its printed instance seed or trace. Per
// instance the harness runs the pipeline, the InvariantOracle, an engine
// cross-validation against the centralized reference solver, the metamorphic
// symmetry layer and the schedule-adversarial runners; failures are reduced
// by the delta-debugging shrinker to local-minimal counterexamples with
// replayable traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "grid/cell_set.hpp"
#include "obs/trace.hpp"

namespace ocp::check {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t instances = 200;
  /// Wall-clock budget; 0 = unbounded. The run stops early (cleanly) when
  /// exceeded and reports how many instances it completed.
  std::int64_t time_box_ms = 0;
  /// Machine extents are drawn uniformly from [min_size, max_size].
  std::int32_t min_size = 3;
  std::int32_t max_size = 24;
  bool meshes = true;
  bool tori = true;
  bool def2a = true;
  bool def2b = true;
  /// Fault counts are drawn from [0, max_density * nodes].
  double max_density = 0.2;
  /// Which layers run per instance.
  std::uint32_t checks = kAllChecks;
  bool cross_engine = true;
  bool metamorphic = true;
  bool schedules = true;
  bool shrink = true;
  /// The "max d(B) rounds" bound is not a worst case off the paper's sparse
  /// regime, and the fuzzer deliberately generates dense and clustered
  /// instances — so only the universal progress bound is asserted.
  RoundBound round_bound = RoundBound::ProgressOnly;
  /// At most this many failures are recorded (the run keeps counting).
  std::size_t max_failures = 8;
  /// Observability (src/obs): the run is a "fuzz.run" span with instance /
  /// failure / shrink-step counters; at TraceLevel::Round each instance is
  /// additionally a "fuzz.instance" span. Disabled by default.
  obs::TraceConfig trace;
};

/// One failing instance, shrunk and ready to replay.
struct FuzzFailure {
  /// Seed of the instance's forked stream (regenerates it exactly).
  std::uint64_t instance_seed = 0;
  /// "12x9 torus Def2b f=14 uniform" — for humans.
  std::string description;
  std::string definition;  // "2a" | "2b"
  ViolationReport report;
  /// The failing instance and its local-minimal shrink, as fault traces.
  std::string trace;
  std::string shrunk_trace;
  /// Violations of the shrunk instance (what the minimal repro exhibits).
  ViolationReport shrunk_report;
  std::size_t shrink_evaluations = 0;
};

struct FuzzReport {
  std::size_t instances_run = 0;
  std::size_t failure_count = 0;
  bool timed_out = false;
  std::vector<FuzzFailure> failures;  // capped at FuzzConfig::max_failures

  [[nodiscard]] bool ok() const noexcept { return failure_count == 0; }
};

/// Runs every selected layer on one concrete instance and merges the
/// reports. This is both the fuzzer's per-instance body and the replay
/// entrypoint for saved traces.
[[nodiscard]] ViolationReport check_instance(const grid::CellSet& faults,
                                             labeling::SafeUnsafeDef def,
                                             const FuzzConfig& config);

/// The deterministic fuzz loop.
[[nodiscard]] FuzzReport run_fuzz(const FuzzConfig& config);

}  // namespace ocp::check
