#include "check/metamorphic.hpp"

#include <sstream>

namespace ocp::check {

namespace {

using labeling::PipelineResult;
using mesh::Coord;
using mesh::Mesh2D;

/// One metamorphic comparison: `base` computed on the domain, `image`
/// computed on the transformed faults. Appends violations to `report`.
void compare_results(const Transform& t, const PipelineResult& base,
                     const PipelineResult& image, ViolationReport& report,
                     std::size_t max_violations) {
  const Mesh2D& m = t.domain;
  std::size_t mismatches = 0;
  for (std::int32_t y = 0; y < m.height(); ++y) {
    for (std::int32_t x = 0; x < m.width(); ++x) {
      const Coord c{x, y};
      const Coord tc = t.map(c);
      const bool safety_ok = base.safety[c] == image.safety[tc];
      const bool activation_ok = base.activation[c] == image.activation[tc];
      if (safety_ok && activation_ok) continue;
      if (++mismatches > 4) continue;  // summarized below
      std::ostringstream os;
      os << t.name() << ": node " << mesh::to_string(c) << " -> "
         << mesh::to_string(tc) << " labels differ ("
         << to_string(base.safety[c]) << "/" << to_string(base.activation[c])
         << " vs " << to_string(image.safety[tc]) << "/"
         << to_string(image.activation[tc]) << ")";
      if (report.violations.size() < max_violations) {
        report.violations.push_back({kMetamorphic, os.str()});
      } else {
        report.truncated = true;
      }
    }
  }
  if (mismatches > 4) {
    std::ostringstream os;
    os << t.name() << ": " << mismatches << " mismatched nodes in total";
    if (report.violations.size() < max_violations) {
      report.violations.push_back({kMetamorphic, os.str()});
    } else {
      report.truncated = true;
    }
  }

  const auto compare_stats = [&](const char* phase,
                                 const sim::RoundStats& a,
                                 const sim::RoundStats& b) {
    if (a.rounds_to_quiesce == b.rounds_to_quiesce &&
        a.state_changes == b.state_changes &&
        a.messages_broadcast == b.messages_broadcast) {
      return;
    }
    std::ostringstream os;
    os << t.name() << ": " << phase << " statistics do not commute (rounds "
       << a.rounds_to_quiesce << " vs " << b.rounds_to_quiesce
       << ", changes " << a.state_changes << " vs " << b.state_changes
       << ", broadcast " << a.messages_broadcast << " vs "
       << b.messages_broadcast << ")";
    if (report.violations.size() < max_violations) {
      report.violations.push_back({kMetamorphic, os.str()});
    } else {
      report.truncated = true;
    }
  };
  compare_stats("phase one", base.safety_stats, image.safety_stats);
  compare_stats("phase two", base.activation_stats, image.activation_stats);
}

}  // namespace

std::string Transform::name() const {
  switch (kind) {
    case Kind::Transpose: return "transpose";
    case Kind::ReflectX: return "reflect-x";
    case Kind::ReflectY: return "reflect-y";
    case Kind::Rotate90: return "rotate-90";
    case Kind::Rotate180: return "rotate-180";
    case Kind::Rotate270: return "rotate-270";
    case Kind::Translate:
      return "translate(" + std::to_string(dx) + "," + std::to_string(dy) +
             ")";
  }
  return "transform";
}

Coord Transform::map(Coord c) const noexcept {
  const std::int32_t w = domain.width();
  const std::int32_t h = domain.height();
  switch (kind) {
    case Kind::Transpose: return {c.y, c.x};
    case Kind::ReflectX: return {w - 1 - c.x, c.y};
    case Kind::ReflectY: return {c.x, h - 1 - c.y};
    case Kind::Rotate90: return {c.y, w - 1 - c.x};
    case Kind::Rotate180: return {w - 1 - c.x, h - 1 - c.y};
    case Kind::Rotate270: return {h - 1 - c.y, c.x};
    case Kind::Translate: return codomain.wrap({c.x + dx, c.y + dy});
  }
  return c;
}

std::vector<Transform> symmetry_transforms(const Mesh2D& m) {
  const Mesh2D swapped(m.height(), m.width(), m.topology());
  std::vector<Transform> out = {
      {Transform::Kind::Transpose, m, swapped},
      {Transform::Kind::ReflectX, m, m},
      {Transform::Kind::ReflectY, m, m},
      {Transform::Kind::Rotate90, m, swapped},
      {Transform::Kind::Rotate180, m, m},
      {Transform::Kind::Rotate270, m, swapped},
  };
  if (m.is_torus()) {
    out.push_back({Transform::Kind::Translate, m, m, 1, 0});
    out.push_back({Transform::Kind::Translate, m, m, 0, 1});
    out.push_back(
        {Transform::Kind::Translate, m, m, m.width() / 2, m.height() / 2});
  }
  return out;
}

grid::CellSet transform_faults(const Transform& t,
                               const grid::CellSet& faults) {
  grid::CellSet out(t.codomain);
  faults.for_each([&](Coord c) { out.insert(t.map(c)); });
  return out;
}

ViolationReport check_metamorphic(const grid::CellSet& faults,
                                  const labeling::PipelineOptions& opts) {
  constexpr std::size_t kMaxViolations = 32;
  ViolationReport report;
  const PipelineResult base = labeling::run_pipeline(faults, opts);
  for (const Transform& t : symmetry_transforms(faults.topology())) {
    const grid::CellSet image_faults = transform_faults(t, faults);
    const PipelineResult image = labeling::run_pipeline(image_faults, opts);
    compare_results(t, base, image, report, kMaxViolations);
    if (report.truncated) break;
  }
  return report;
}

}  // namespace ocp::check
