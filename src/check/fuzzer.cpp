#include "check/fuzzer.hpp"

#include <chrono>
#include <sstream>

#include "check/metamorphic.hpp"
#include "check/schedules.hpp"
#include "check/shrink.hpp"
#include "core/reference.hpp"
#include "fault/generators.hpp"
#include "fault/trace.hpp"
#include "stats/rng.hpp"

namespace ocp::check {

namespace {

using labeling::PipelineResult;
using labeling::SafeUnsafeDef;
using mesh::Mesh2D;
using mesh::Topology;

/// Engine cross-validation: the distributed fixpoint must match the
/// centralized reference solver label for label.
ViolationReport check_cross_engine(const grid::CellSet& faults,
                                   SafeUnsafeDef def,
                                   const PipelineResult& distributed) {
  ViolationReport report;
  const auto ref_safety = labeling::reference_safety(faults, def);
  const auto ref_activation =
      labeling::reference_activation(faults, ref_safety);
  std::size_t mismatches = 0;
  mesh::Coord first{};
  const mesh::Mesh2D& m = faults.topology();
  for (std::size_t i = 0; i < ref_safety.size(); ++i) {
    if (distributed.safety.at_index(i) != ref_safety.at_index(i) ||
        distributed.activation.at_index(i) != ref_activation.at_index(i)) {
      if (mismatches++ == 0) first = m.coord(i);
    }
  }
  if (mismatches != 0) {
    std::ostringstream os;
    os << "distributed and reference labelings differ at " << mismatches
       << " nodes (first at " << mesh::to_string(first) << ")";
    report.violations.push_back({kEngineEquivalence, os.str()});
  }
  return report;
}

grid::CellSet generate_faults(const Mesh2D& m, std::size_t generator,
                              std::size_t f, stats::Rng& rng) {
  switch (generator % 3) {
    case 0: return fault::uniform_random(m, f, rng);
    case 1: {
      const double p =
          static_cast<double>(f) / static_cast<double>(m.node_count());
      return fault::bernoulli(m, p, rng);
    }
    default: {
      const std::size_t clusters =
          1 + std::min<std::size_t>(3, f / 4);
      return fault::clustered(m, clusters,
                              std::max<std::size_t>(1, f / clusters), rng);
    }
  }
}

const char* generator_name(std::size_t generator) {
  switch (generator % 3) {
    case 0: return "uniform";
    case 1: return "bernoulli";
    default: return "clustered";
  }
}

}  // namespace

ViolationReport check_instance(const grid::CellSet& faults,
                               SafeUnsafeDef def, const FuzzConfig& config) {
  labeling::PipelineOptions popts;
  popts.definition = def;
  const PipelineResult result = labeling::run_pipeline(faults, popts);

  OracleOptions oopts;
  oopts.definition = def;
  oopts.checks = config.checks;
  oopts.round_bound = config.round_bound;
  ViolationReport report = check_pipeline(faults, result, oopts);

  if (config.cross_engine) {
    report.merge(check_cross_engine(faults, def, result));
  }
  if (config.metamorphic) {
    report.merge(check_metamorphic(faults, popts));
  }
  if (config.schedules) {
    report.merge(check_schedules(faults, def, config.seed));
  }
  return report;
}

FuzzReport run_fuzz(const FuzzConfig& config) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto out_of_time = [&] {
    if (config.time_box_ms <= 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - start);
    return elapsed.count() >= config.time_box_ms;
  };

  std::vector<Topology> topologies;
  if (config.meshes) topologies.push_back(Topology::Mesh);
  if (config.tori) topologies.push_back(Topology::Torus);
  std::vector<SafeUnsafeDef> defs;
  if (config.def2a) defs.push_back(SafeUnsafeDef::Def2a);
  if (config.def2b) defs.push_back(SafeUnsafeDef::Def2b);

  FuzzReport fuzz;
  if (topologies.empty() || defs.empty()) return fuzz;

  const obs::Span run_span(config.trace, "fuzz.run");
  stats::Rng master(config.seed);
  for (std::size_t k = 0; k < config.instances; ++k) {
    if (out_of_time()) {
      fuzz.timed_out = true;
      break;
    }
    const obs::Span instance_span(config.trace, "fuzz.instance",
                                  config.trace.rounds());
    const std::uint64_t instance_seed = master.fork_seed();
    stats::Rng rng(instance_seed);

    const auto w = static_cast<std::int32_t>(
        rng.uniform_int(config.min_size, config.max_size));
    const auto h = static_cast<std::int32_t>(
        rng.uniform_int(config.min_size, config.max_size));
    const Topology topology = topologies[k % topologies.size()];
    const SafeUnsafeDef def = defs[(k / topologies.size()) % defs.size()];
    const Mesh2D m(w, h, topology);
    const auto max_faults = static_cast<std::int64_t>(
        config.max_density * static_cast<double>(m.node_count()));
    const auto f =
        static_cast<std::size_t>(rng.uniform_int(0, std::max<std::int64_t>(
                                                        0, max_faults)));
    const grid::CellSet faults = generate_faults(m, k, f, rng);

    ViolationReport report = check_instance(faults, def, config);
    ++fuzz.instances_run;
    config.trace.counter("fuzz.instances", 1);
    if (report.ok()) continue;

    ++fuzz.failure_count;
    config.trace.counter("fuzz.failures", 1);
    if (fuzz.failures.size() >= config.max_failures) continue;

    FuzzFailure failure;
    failure.instance_seed = instance_seed;
    failure.definition =
        def == SafeUnsafeDef::Def2a ? std::string("2a") : std::string("2b");
    {
      std::ostringstream os;
      os << m.describe() << " " << to_string(def) << " f=" << faults.size()
         << " " << generator_name(k) << " seed=" << instance_seed;
      failure.description = os.str();
    }
    failure.report = std::move(report);
    failure.trace = fault::to_trace_string(faults);

    if (config.shrink) {
      const ShrinkResult shrunk = shrink_faults(
          faults, [&](const grid::CellSet& candidate) {
            return !check_instance(candidate, def, config).ok();
          });
      failure.shrunk_trace = shrunk.trace;
      failure.shrink_evaluations = shrunk.evaluations;
      config.trace.counter("fuzz.shrink_steps",
                           static_cast<std::int64_t>(shrunk.evaluations));
      failure.shrunk_report = check_instance(shrunk.faults, def, config);
    }
    fuzz.failures.push_back(std::move(failure));
  }
  return fuzz;
}

}  // namespace ocp::check
