#include "check/mutants.hpp"

#include "core/activation_protocol.hpp"
#include "core/regions.hpp"
#include "core/safety_protocol.hpp"
#include "simkernel/sync_runner.hpp"

namespace ocp::check {

namespace {

using labeling::Activation;
using labeling::Health;
using labeling::SafeUnsafeDef;
using labeling::Safety;

/// Phase-one protocol with an injectable threshold (Definition 2a style
/// counting) and ghost message. `threshold == 0` keeps the genuine rule of
/// `def`; otherwise the rule is "unsafe with >= threshold unsafe neighbors".
class MutantSafetyProtocol {
 public:
  using State = labeling::SafetyProtocol::State;
  using Message = Safety;

  MutantSafetyProtocol(const grid::CellSet& faults, SafeUnsafeDef def,
                       int threshold, Safety ghost)
      : genuine_(faults, def), threshold_(threshold), ghost_(ghost) {}

  [[nodiscard]] State init(mesh::Coord c) const { return genuine_.init(c); }
  [[nodiscard]] Message announce(const State& s) const noexcept {
    return genuine_.announce(s);
  }
  [[nodiscard]] Message ghost_message() const noexcept { return ghost_; }
  [[nodiscard]] bool participates(const State& s) const noexcept {
    return genuine_.participates(s);
  }
  [[nodiscard]] bool update(State& s, const sim::Inbox<Message>& inbox) const {
    if (threshold_ == 0) return genuine_.update(s, inbox);
    if (s.safety == Safety::Unsafe) return false;
    int unsafe_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (inbox[d] == Safety::Unsafe) ++unsafe_neighbors;
    }
    if (unsafe_neighbors >= threshold_) {
      s.safety = Safety::Unsafe;
      return true;
    }
    return false;
  }

 private:
  labeling::SafetyProtocol genuine_;
  int threshold_;
  Safety ghost_;
};

static_assert(sim::SyncProtocol<MutantSafetyProtocol>);

/// Phase-two protocol with an injectable enabling threshold and ghost
/// message (the genuine Definition 3 is threshold 2, ghost enabled).
class MutantActivationProtocol {
 public:
  using State = labeling::ActivationProtocol::State;
  using Message = Activation;

  MutantActivationProtocol(const grid::CellSet& faults,
                           const grid::NodeGrid<Safety>& safety,
                           int threshold, Activation ghost)
      : genuine_(faults, safety), threshold_(threshold), ghost_(ghost) {}

  [[nodiscard]] State init(mesh::Coord c) const { return genuine_.init(c); }
  [[nodiscard]] Message announce(const State& s) const noexcept {
    return genuine_.announce(s);
  }
  [[nodiscard]] Message ghost_message() const noexcept { return ghost_; }
  [[nodiscard]] bool participates(const State& s) const noexcept {
    return genuine_.participates(s);
  }
  [[nodiscard]] bool update(State& s, const sim::Inbox<Message>& inbox) const {
    if (s.activation == Activation::Enabled) return false;
    int enabled_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      if (inbox[d] == Activation::Enabled) ++enabled_neighbors;
    }
    if (enabled_neighbors >= threshold_) {
      s.activation = Activation::Enabled;
      return true;
    }
    return false;
  }

 private:
  labeling::ActivationProtocol genuine_;
  int threshold_;
  Activation ghost_;
};

static_assert(sim::SyncProtocol<MutantActivationProtocol>);

}  // namespace

labeling::PipelineResult run_mutant_pipeline(const grid::CellSet& faults,
                                             Mutant mutant,
                                             SafeUnsafeDef def) {
  const mesh::Mesh2D& m = faults.topology();
  const mesh::AdjacencyTable adj(m);

  int safety_threshold = 0;  // 0 = genuine rule of `def`
  Safety safety_ghost = Safety::Safe;
  int activation_threshold = 2;
  Activation activation_ghost = Activation::Enabled;
  switch (mutant) {
    case Mutant::ActivationThresholdOne: activation_threshold = 1; break;
    case Mutant::ActivationGhostDisabled:
      activation_ghost = Activation::Disabled;
      break;
    case Mutant::SafetyGhostUnsafe: safety_ghost = Safety::Unsafe; break;
    case Mutant::SafetyThresholdOne: safety_threshold = 1; break;
  }

  labeling::PipelineResult result{
      grid::NodeGrid<Safety>(m, Safety::Safe),
      grid::NodeGrid<Activation>(m, Activation::Enabled),
      {}, {}, {}, {}};

  const MutantSafetyProtocol phase1(faults, def, safety_threshold,
                                    safety_ghost);
  const auto r1 = sim::run_sync(adj, phase1);
  result.safety_stats = r1.stats;
  for (std::size_t i = 0; i < result.safety.size(); ++i) {
    result.safety.at_index(i) = r1.states.at_index(i).safety;
  }

  const MutantActivationProtocol phase2(faults, result.safety,
                                        activation_threshold,
                                        activation_ghost);
  const auto r2 = sim::run_sync(adj, phase2);
  result.activation_stats = r2.stats;
  for (std::size_t i = 0; i < result.activation.size(); ++i) {
    result.activation.at_index(i) = r2.states.at_index(i).activation;
  }

  result.blocks = labeling::extract_faulty_blocks(faults, result.safety);
  result.regions = labeling::extract_disabled_regions(faults, result.activation,
                                                      result.blocks);
  return result;
}

}  // namespace ocp::check
