#include "check/shrink.hpp"

#include <stdexcept>
#include <vector>

#include "fault/trace.hpp"

namespace ocp::check {

namespace {

grid::CellSet without(const grid::CellSet& base,
                      const std::vector<mesh::Coord>& cells, std::size_t lo,
                      std::size_t hi) {
  grid::CellSet out(base.topology());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i < lo || i >= hi) out.insert(cells[i]);
  }
  return out;
}

}  // namespace

ShrinkResult shrink_faults(const grid::CellSet& failing,
                           const FailurePredicate& fails) {
  ShrinkResult result(failing);
  const auto check = [&](const grid::CellSet& candidate) {
    ++result.evaluations;
    return fails(candidate);
  };
  if (!check(failing)) {
    throw std::invalid_argument(
        "shrink_faults: the input fault set does not fail the predicate");
  }

  // ddmin phase: drop progressively smaller chunks while any removal keeps
  // the failure alive. Chunks are contiguous row-major slices.
  std::vector<mesh::Coord> cells = result.faults.to_vector();
  for (std::size_t chunk = cells.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any && cells.size() > 1) {
      removed_any = false;
      for (std::size_t lo = 0; lo < cells.size();) {
        const std::size_t hi = std::min(lo + chunk, cells.size());
        const grid::CellSet candidate =
            without(result.faults, cells, lo, hi);
        if (candidate.size() < cells.size() && check(candidate)) {
          result.faults = candidate;
          cells.erase(cells.begin() + static_cast<std::ptrdiff_t>(lo),
                      cells.begin() + static_cast<std::ptrdiff_t>(hi));
          removed_any = true;
          // Do not advance lo: the next chunk slid into this position.
        } else {
          lo = hi;
        }
      }
      if (chunk == 1) break;  // the single-fault fixpoint loop runs below
    }
  }

  // Local-minimality: iterate single-fault removal to a fixpoint. On exit,
  // removing any one fault makes the predicate pass.
  bool removed_any = true;
  while (removed_any) {
    removed_any = false;
    cells = result.faults.to_vector();
    for (const mesh::Coord c : cells) {
      grid::CellSet candidate = result.faults;
      candidate.erase(c);
      if (check(candidate)) {
        result.faults = std::move(candidate);
        removed_any = true;
      }
    }
  }

  result.trace = fault::to_trace_string(result.faults);
  return result;
}

std::string repro_command(const std::string& trace_path,
                          const std::string& definition) {
  return "check_fuzz --replay " + trace_path + " --def " + definition;
}

}  // namespace ocp::check
