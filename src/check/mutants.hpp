// Deliberately broken protocol variants, proving the oracle has teeth.
//
// A verification harness that never fires is worse than none. Each mutant
// below miscomputes the labeling in a way a careless engine rewrite could
// (wrong activation threshold, dropped ghost support, a degenerate safety
// rule); the mutation smoke tests assert that the InvariantOracle flags
// every one of them on crafted fixtures and fuzzed instances alike.
#pragma once

#include <array>
#include <cstdint>

#include "core/pipeline.hpp"
#include "grid/cell_set.hpp"

namespace ocp::check {

enum class Mutant : std::uint8_t {
  /// Definition 3 with threshold >= 1 instead of >= 2: pockets that must
  /// stay disabled get re-enabled, leaving concave disabled regions
  /// (Theorem 1 / Theorem 2 violations on pocketed fault patterns).
  ActivationThresholdOne = 0,
  /// Ghost nodes stop providing enabled support in phase two: boundary
  /// pockets stay disabled, inflating regions past the convex closure and
  /// planting nonfaulty corners (Lemma 1 / Theorem 2 violations).
  ActivationGhostDisabled = 1,
  /// Ghost nodes announce unsafe in phase one: the unsafe front sweeps in
  /// from the boundary, swallowing the machine (block exceeds the bounding
  /// box of its faults).
  SafetyGhostUnsafe = 2,
  /// Definition 2a with threshold >= 1: a single fault cascades the whole
  /// machine unsafe (block-fault-content violations; on a torus the whole
  /// machine becomes one fault-free-cornered disabled region).
  SafetyThresholdOne = 3,
};

inline constexpr std::array<Mutant, 4> kAllMutants = {
    Mutant::ActivationThresholdOne, Mutant::ActivationGhostDisabled,
    Mutant::SafetyGhostUnsafe, Mutant::SafetyThresholdOne};

[[nodiscard]] constexpr const char* to_string(Mutant m) noexcept {
  switch (m) {
    case Mutant::ActivationThresholdOne: return "activation-threshold-one";
    case Mutant::ActivationGhostDisabled: return "activation-ghost-disabled";
    case Mutant::SafetyGhostUnsafe: return "safety-ghost-unsafe";
    case Mutant::SafetyThresholdOne: return "safety-threshold-one";
  }
  return "mutant";
}

/// Runs the two-phase pipeline with the mutated protocol substituted for the
/// genuine one (the other phase runs unmodified), extracting blocks and
/// regions exactly like `labeling::run_pipeline`. Feed the result to
/// `check_pipeline` and expect violations.
[[nodiscard]] labeling::PipelineResult run_mutant_pipeline(
    const grid::CellSet& faults, Mutant mutant,
    labeling::SafeUnsafeDef def = labeling::SafeUnsafeDef::Def2b);

}  // namespace ocp::check
