// Schedule-adversarial execution of the labeling protocols.
//
// The paper assumes synchronous lock-step rounds "to simplify the
// discussion"; the rules being monotone makes the fixpoint independent of
// the update schedule. `run_scheduled` drives a protocol under deliberately
// hostile schedules — seeded random sweeps, a LIFO worklist that chases the
// newest changes depth-first, rotating-priority sweeps, and sweeps that
// randomly delay half the nodes — and `check_schedules` asserts each
// fixpoint equals the synchronous reference, turning the paper's
// schedule-independence argument into an executable property.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/pipeline.hpp"
#include "simkernel/async_runner.hpp"
#include "simkernel/sync_runner.hpp"
#include "stats/rng.hpp"

namespace ocp::check {

/// Adversarial update orders. All must reach the synchronous fixpoint.
enum class Schedule : std::uint8_t {
  /// Every sweep visits all nodes in a fresh seeded-random order.
  SeededRandom = 0,
  /// Event-driven LIFO worklist: the most recently disturbed node updates
  /// first, so changes propagate depth-first along a single chain before the
  /// rest of the machine moves at all.
  Lifo = 1,
  /// Cyclic sweeps whose starting node rotates by a large coprime stride
  /// each sweep, biasing progress toward a moving hot spot.
  RotatingPriority = 2,
  /// Each sweep randomly skips about half the nodes (messages delayed
  /// indefinitely); every third sweep is full so quiescence is detectable.
  DelayedSweep = 3,
};

inline constexpr std::array<Schedule, 4> kAllSchedules = {
    Schedule::SeededRandom, Schedule::Lifo, Schedule::RotatingPriority,
    Schedule::DelayedSweep};

[[nodiscard]] constexpr const char* to_string(Schedule s) noexcept {
  switch (s) {
    case Schedule::SeededRandom: return "seeded-random";
    case Schedule::Lifo: return "lifo";
    case Schedule::RotatingPriority: return "rotating-priority";
    case Schedule::DelayedSweep: return "delayed-sweep";
  }
  return "schedule";
}

/// Runs `proto` to quiescence under the given schedule. Updates are applied
/// in place, so a node always sees the newest states of already-updated
/// neighbors — an arbitrary asynchronous interleaving, like
/// `sim::run_async` but with an adversarial visit order.
template <sim::SyncProtocol P>
sim::AsyncResult<P> run_scheduled(const mesh::AdjacencyTable& adj,
                                  const P& proto, Schedule sched,
                                  stats::Rng& rng,
                                  std::int32_t max_sweeps = 1 << 20) {
  const mesh::Mesh2D& m = adj.mesh();
  const std::size_t node_count = adj.node_count();
  grid::NodeGrid<typename P::State> states(m);
  for (std::size_t i = 0; i < node_count; ++i) {
    states.at_index(i) = proto.init(m.coord(i));
  }
  const typename P::Message ghost = proto.ghost_message();
  sim::AsyncStats stats;

  const auto activate = [&](std::size_t i) -> bool {
    typename P::State& s = states.at_index(i);
    if (!proto.participates(s)) return false;
    ++stats.activations;
    sim::Inbox<typename P::Message> inbox;
    sim::detail::gather(adj, proto, states.data(), ghost, i, inbox);
    if (proto.update(s, inbox)) {
      ++stats.state_changes;
      return true;
    }
    return false;
  };

  if (sched == Schedule::Lifo) {
    // Worklist semantics: seed with every node (pushed row-major, so the
    // last node pops first), and whenever a node changes, push its
    // neighbors so they re-run immediately — depth-first change chasing.
    // The monotone rules guarantee termination (each node changes at most
    // once per status) and confluence to the synchronous fixpoint.
    std::vector<std::size_t> stack(node_count);
    std::iota(stack.begin(), stack.end(), std::size_t{0});
    std::vector<std::uint8_t> on_stack(node_count, 1);
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      on_stack[i] = 0;
      if (!activate(i)) continue;
      for (const std::int32_t j32 : adj.physical_neighbors(i)) {
        const auto j = static_cast<std::size_t>(j32);
        if (!on_stack[j]) {
          on_stack[j] = 1;
          stack.push_back(j);
        }
      }
    }
    stats.sweeps = 1;
    return sim::AsyncResult<P>{std::move(states), stats};
  }

  std::vector<std::size_t> order(node_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::int32_t sweep = 1; sweep <= max_sweeps; ++sweep) {
    stats.sweeps = sweep;
    bool any_change = false;
    bool full_sweep = true;
    switch (sched) {
      case Schedule::SeededRandom:
        std::shuffle(order.begin(), order.end(), rng.engine());
        for (std::size_t i : order) any_change |= activate(i);
        break;
      case Schedule::RotatingPriority: {
        // 7919 is prime, hence coprime with any node count that is not a
        // multiple of it; the start point hops almost half the machine each
        // sweep either way, which is all the adversary needs.
        const std::size_t start =
            (static_cast<std::size_t>(sweep) * 7919) % node_count;
        for (std::size_t k = 0; k < node_count; ++k) {
          any_change |= activate((start + k) % node_count);
        }
        break;
      }
      case Schedule::DelayedSweep:
        full_sweep = sweep % 3 == 0;
        for (std::size_t i = 0; i < node_count; ++i) {
          if (!full_sweep && rng.bernoulli(0.5)) continue;  // message delayed
          any_change |= activate(i);
        }
        break;
      case Schedule::Lifo: break;  // handled above
    }
    // Quiescence is only observable after a sweep that visited every node.
    if (!any_change && full_sweep) {
      return sim::AsyncResult<P>{std::move(states), stats};
    }
  }
  throw std::runtime_error(
      "run_scheduled: protocol did not quiesce within max_sweeps");
}

/// Runs both labeling phases under every adversarial schedule and compares
/// the fixpoints to the synchronous reference (`kScheduleIndependence`
/// violations on mismatch). Phase two consumes the synchronous phase-one
/// labeling, so each phase is checked in isolation.
[[nodiscard]] ViolationReport check_schedules(
    const grid::CellSet& faults,
    labeling::SafeUnsafeDef def = labeling::SafeUnsafeDef::Def2b,
    std::uint64_t seed = 1);

}  // namespace ocp::check
