// Delta-debugging shrinker for failing fault sets.
//
// When the fuzzer finds an instance that violates the oracle (or any other
// predicate), the raw counterexample typically carries dozens of irrelevant
// faults. `shrink_faults` reduces it with a ddmin-style pass (drop whole
// chunks first, then single faults) to a *local-minimal* failing set:
// removing any one remaining fault makes the failure disappear. The result
// ships as a replayable `fault::trace` plus a one-line repro command.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "grid/cell_set.hpp"

namespace ocp::check {

/// Predicate driven by the shrinker: true when the fault set still fails.
using FailurePredicate = std::function<bool(const grid::CellSet&)>;

struct ShrinkResult {
  /// Local-minimal failing fault set (same machine as the input).
  grid::CellSet faults;
  /// Predicate evaluations spent.
  std::size_t evaluations = 0;
  /// The minimal instance in `fault::trace` format, ready to save/replay.
  std::string trace;

  explicit ShrinkResult(grid::CellSet f) : faults(std::move(f)) {}
};

/// Reduces `failing` (for which `fails` must return true) to a local-minimal
/// failing subset. Deterministic: chunks and faults are tried in row-major
/// order, so the same input always shrinks to the same counterexample.
[[nodiscard]] ShrinkResult shrink_faults(const grid::CellSet& failing,
                                         const FailurePredicate& fails);

/// One-line command that replays a trace file through the fuzz binary.
[[nodiscard]] std::string repro_command(const std::string& trace_path,
                                        const std::string& definition);

}  // namespace ocp::check
