// The InvariantOracle: every formal claim of Wu, IPPS 2001 as one reusable,
// machine-checkable specification.
//
// Given any `labeling::PipelineResult`, `check_pipeline` verifies the
// paper's theorems (1-2), lemmas (1-3), the corollary, faulty-block
// rectangularity/disjointness/separation, disabled-region separation,
// extraction bookkeeping, the status lattice, and the density-gated
// convergence bounds — returning a structured `ViolationReport` instead of
// asserting. The gtest theorem sweeps, the deterministic fuzzer, the
// metamorphic layer, the schedule-adversarial runners and the mutation smoke
// tests all consume this one oracle, so every engine rewrite is vetted
// against the same spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "grid/cell_set.hpp"

namespace ocp::check {

/// Individual invariants, usable as a bitmask in `OracleOptions::checks`.
enum Check : std::uint32_t {
  /// Section 3: every faulty block is a rectangle.
  kBlockRectangle = 1u << 0,
  /// Section 3: inter-block distance >= 3 (Def 2a) / >= 2 (Def 2b).
  kBlockSeparation = 1u << 1,
  /// A faulty block contains at least one fault, its fault/nonfaulty counts
  /// add up, and the block rectangle is exactly the bounding box of its
  /// faults (unsafe status only ever grows between faults, never past their
  /// bounding rectangle).
  kBlockFaultContent = 1u << 2,
  /// Theorem 1: every disabled region is an orthogonal convex polygon
  /// (definitional test, 8-connectivity, and the O(n) staircase
  /// characterization must all agree).
  kTheorem1 = 1u << 3,
  /// Lemma 1: every corner node of a disabled region is faulty.
  kLemma1 = 1u << 4,
  /// Lemma 2: each quadrant anchored at any node of a disabled region
  /// contains a corner node of the region.
  kLemma2 = 1u << 5,
  /// Lemma 3: a node just outside a disabled region has at least one
  /// quadrant free of region nodes.
  kLemma3 = 1u << 6,
  /// Theorem 2: each disabled region equals the rectilinear convex closure
  /// of the faults it contains (the unique minimal orthogonal convex cover).
  kTheorem2 = 1u << 7,
  /// Corollary: per block, nonfaulty nodes kept disabled by its regions
  /// number at most those inside the minimal single polygon covering all
  /// the block's faults.
  kCorollary = 1u << 8,
  /// Disabled regions are pairwise at machine distance >= 2.
  kRegionSeparation = 1u << 9,
  /// A disabled region contains at least one fault and its counts add up.
  kRegionFaultContent = 1u << 10,
  /// Status lattice: faulty => unsafe and disabled; disabled => unsafe.
  kStatusLattice = 1u << 11,
  /// Extraction bookkeeping: blocks partition the unsafe set, regions
  /// partition the disabled set, parent links resolve, fault totals match.
  kExtraction = 1u << 12,
  /// Convergence: the universal progress bound always; the paper's
  /// "max d(B) rounds" bound per `OracleOptions::round_bound`.
  kConvergence = 1u << 13,
  /// Fault rings of disabled regions trace as simple closed walks covering
  /// every ring cell (the structure boundary-following routers rely on).
  kRingTrace = 1u << 14,
  /// The labeling is a quiesced, locally justified fixpoint of the genuine
  /// rules: no safe node currently satisfies the unsafe condition and no
  /// disabled node has enough enabled support (quiescence — catches runners
  /// that stop early), and every unsafe/enabled transition is still
  /// supported by the final neighborhood (justification — the monotone
  /// rules keep support once gained, so a label the final planes cannot
  /// explain was never derivable).
  kFixpoint = 1u << 15,
};

/// All invariants `check_pipeline` knows.
inline constexpr std::uint32_t kAllChecks = (1u << 16) - 1;

/// Pseudo-check codes used by the layers above the oracle (metamorphic
/// transforms, schedule-adversarial runs, engine cross-validation). Not part
/// of `kAllChecks`; they appear only in reports produced by those layers.
inline constexpr std::uint32_t kMetamorphic = 1u << 16;
inline constexpr std::uint32_t kScheduleIndependence = 1u << 17;
inline constexpr std::uint32_t kEngineEquivalence = 1u << 18;
/// A publication withheld by a chaos-poisoned oracle verdict (src/chaos):
/// the gate was forced to reject a healthy snapshot to exercise the serving
/// runtime's degraded modes. Appears only in reports fabricated by the
/// ingest engine's poisoning hook, never in a genuine oracle pass.
inline constexpr std::uint32_t kChaosPoisoned = 1u << 19;
/// Allocation-layer checks (src/alloc): the placement oracle reports with
/// these codes and `alloc::check_engine` masks on them. Like the other
/// pseudo-checks they are outside `kAllChecks` — `check_pipeline` never
/// evaluates them.
/// No live job overlaps a faulty block, a disabled region, or another job.
inline constexpr std::uint32_t kAllocOverlap = 1u << 20;
/// The incremental free-region index equals a from-scratch recompute from
/// the serving snapshot and the live placements.
inline constexpr std::uint32_t kAllocIndex = 1u << 21;
/// Eviction completeness: after an epoch turnover no live job intersects a
/// newly blocked cell.
inline constexpr std::uint32_t kAllocEviction = 1u << 22;
/// Conservation: every submitted job is live, pending, completed, rejected
/// at admission, or shed after bounded retries — none lost, none doubled.
inline constexpr std::uint32_t kAllocConservation = 1u << 23;

/// Human-readable name of a single check bit.
[[nodiscard]] const char* check_name(std::uint32_t check) noexcept;

/// One violated invariant.
struct Violation {
  std::uint32_t check = 0;
  std::string detail;
};

/// Result of an oracle pass: empty means every selected invariant held.
struct ViolationReport {
  std::vector<Violation> violations;
  /// True when `max_violations` stopped the pass early (the report is a
  /// prefix of the full violation list).
  bool truncated = false;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return violations.size(); }
  /// Multi-line rendering: one "check: detail" line per violation.
  [[nodiscard]] std::string to_string() const;
  /// Appends another report's violations (used by the fuzzer to merge the
  /// oracle, metamorphic and schedule layers).
  void merge(ViolationReport other);
};

/// How the paper's "within max d(B) rounds" claim is asserted. It holds in
/// the paper's sparse regime (f about 1% of the nodes) but is NOT a worst
/// case: at high densities chain-reaction block merging (phase one) and
/// snaking re-enables (phase two) can exceed the final block diameter by a
/// few rounds (documented deviation; see EXPERIMENTS.md). The universal
/// progress bound (every counted round changes at least one status) is
/// asserted at every density regardless.
enum class RoundBound : std::uint8_t {
  /// Strict bound only when the fault density is within the sparse regime
  /// (<= kStrictBoundDensity of the nodes).
  Auto = 0,
  /// Always assert the strict diameter bound.
  Strict = 1,
  /// Only the universal progress bound.
  ProgressOnly = 2,
};

/// Density threshold for `RoundBound::Auto` (fraction of faulty nodes).
inline constexpr double kStrictBoundDensity = 0.02;

struct OracleOptions {
  /// The safe/unsafe definition the pipeline ran with (sets the required
  /// inter-block separation distance).
  labeling::SafeUnsafeDef definition = labeling::SafeUnsafeDef::Def2b;
  /// Bitmask of `Check` values to verify.
  std::uint32_t checks = kAllChecks;
  RoundBound round_bound = RoundBound::Auto;
  /// Stop collecting after this many violations (the pass still returns).
  std::size_t max_violations = 32;
};

/// Verifies every selected invariant of `result` against the fault set it
/// was computed from. Convergence checks are skipped automatically for
/// reference-engine results (which carry zeroed round statistics).
[[nodiscard]] ViolationReport check_pipeline(
    const grid::CellSet& faults, const labeling::PipelineResult& result,
    const OracleOptions& opts = {});

/// The faults of a component, in its planar frame coordinates (on a torus
/// the frame is the unwrapped footprint). Shared by the Theorem 2, Corollary
/// and block-content checks; exposed for tests and tools.
[[nodiscard]] geom::Region component_frame_faults(const grid::Component& comp,
                                                  const grid::CellSet& faults);

/// Minimum machine distance between the cells of two components (uses the
/// machine metric, so torus wraparound counts).
[[nodiscard]] std::int32_t component_distance(const mesh::Mesh2D& m,
                                              const grid::Component& a,
                                              const grid::Component& b);

}  // namespace ocp::check
