#include "check/oracle.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <sstream>

#include "geometry/boundary.hpp"
#include "geometry/convexity.hpp"
#include "geometry/staircase.hpp"
#include "mesh/adjacency.hpp"

namespace ocp::check {

namespace {

using labeling::Activation;
using labeling::PipelineResult;
using labeling::SafeUnsafeDef;
using labeling::Safety;
using mesh::Coord;

/// Accumulates violations, honouring the max_violations cap.
class Collector {
 public:
  explicit Collector(const OracleOptions& opts) : opts_(opts) {}

  [[nodiscard]] bool enabled(std::uint32_t check) const noexcept {
    return (opts_.checks & check) != 0;
  }

  /// True while the pass should keep looking.
  [[nodiscard]] bool open() const noexcept { return !report_.truncated; }

  void add(std::uint32_t check, std::string detail) {
    if (report_.violations.size() >= opts_.max_violations) {
      report_.truncated = true;
      return;
    }
    report_.violations.push_back({check, std::move(detail)});
  }

  [[nodiscard]] ViolationReport take() { return std::move(report_); }

 private:
  const OracleOptions& opts_;
  ViolationReport report_;
};

std::string region_context(const char* kind, std::size_t index,
                           const geom::Region& r) {
  std::ostringstream os;
  os << kind << " #" << index << " (" << r.size() << " cells):\n"
     << r.to_ascii();
  return os.str();
}

/// Whether a component's unwrapped frame spans a full torus dimension. The
/// paper's corner lemmas (Lemma 1-3), Theorem 2 and the Corollary are proven
/// for the planar case; a region that wraps a whole ring has no corners in
/// that dimension (any frame corner at the cut is an unwrapping artifact), so
/// those checks are replaced by the cylinder analogue below.
struct WrapFlags {
  bool x = false;
  bool y = false;

  [[nodiscard]] bool any() const noexcept { return x || y; }
};

WrapFlags component_wrap(const mesh::Mesh2D& m, const geom::Region& frame) {
  if (!m.is_torus() || frame.empty()) return {};
  const geom::Rect box = frame.bounding_box();
  return {box.hi.x - box.lo.x + 1 >= m.width(),
          box.hi.y - box.lo.y + 1 >= m.height()};
}

/// Torus-native orthogonal convexity: every row and column intersection of
/// the machine-coordinate cell set forms one contiguous arc on its ring
/// (possibly the full ring). This is what "no concavity" means once a shape
/// wraps; for non-wrapping shapes it coincides with the planar definition.
bool rows_and_cols_are_arcs(const mesh::Mesh2D& m,
                            std::span<const Coord> cells) {
  grid::CellSet present(m);
  for (Coord c : cells) present.insert(c);
  for (std::int32_t y = 0; y < m.height(); ++y) {
    int boundaries = 0;
    for (std::int32_t x = 0; x < m.width(); ++x) {
      if (present.contains({x, y}) &&
          !present.contains({(x + 1) % m.width(), y})) {
        ++boundaries;
      }
    }
    if (boundaries > 1) return false;
  }
  for (std::int32_t x = 0; x < m.width(); ++x) {
    int boundaries = 0;
    for (std::int32_t y = 0; y < m.height(); ++y) {
      if (present.contains({x, y}) &&
          !present.contains({x, (y + 1) % m.height()})) {
        ++boundaries;
      }
    }
    if (boundaries > 1) return false;
  }
  return true;
}

void check_blocks(const grid::CellSet& faults, const PipelineResult& result,
                  const OracleOptions& opts, Collector& out) {
  const mesh::Mesh2D& m = faults.topology();

  if (out.enabled(kBlockRectangle)) {
    for (std::size_t b = 0; b < result.blocks.size() && out.open(); ++b) {
      const auto& block = result.blocks[b];
      if (component_wrap(m, block.region()).any()) {
        if (!rows_and_cols_are_arcs(m, block.component.cells())) {
          out.add(kBlockRectangle,
                  "wrapped faulty block is not a band (some ring "
                  "intersection is not one arc): " +
                      region_context("block", b, block.region()));
        }
      } else if (!block.region().is_rectangle()) {
        out.add(kBlockRectangle,
                "non-rectangular faulty " +
                    region_context("block", b, block.region()));
      }
    }
  }

  if (out.enabled(kBlockSeparation)) {
    const std::int32_t min_dist =
        opts.definition == SafeUnsafeDef::Def2a ? 3 : 2;
    for (std::size_t i = 0; i < result.blocks.size() && out.open(); ++i) {
      for (std::size_t j = i + 1; j < result.blocks.size() && out.open();
           ++j) {
        const std::int32_t d = component_distance(
            m, result.blocks[i].component, result.blocks[j].component);
        if (d < min_dist) {
          std::ostringstream os;
          os << "blocks #" << i << " and #" << j << " at distance " << d
             << " < " << min_dist << " (" << to_string(opts.definition)
             << ")";
          out.add(kBlockSeparation, os.str());
        }
      }
    }
  }

  if (out.enabled(kBlockFaultContent)) {
    for (std::size_t b = 0; b < result.blocks.size() && out.open(); ++b) {
      const auto& block = result.blocks[b];
      const geom::Region block_faults =
          component_frame_faults(block.component, faults);
      if (block_faults.empty()) {
        out.add(kBlockFaultContent,
                "fault-free faulty " +
                    region_context("block", b, block.region()));
        continue;
      }
      if (block.fault_count != block_faults.size() ||
          block.fault_count + block.unsafe_nonfaulty_count != block.size()) {
        std::ostringstream os;
        os << "block #" << b << " count mismatch: fault_count="
           << block.fault_count << " unsafe_nonfaulty="
           << block.unsafe_nonfaulty_count << " size=" << block.size()
           << " actual faults=" << block_faults.size();
        out.add(kBlockFaultContent, os.str());
      }
      // The block rectangle never extends past the bounding box of its
      // faults: unsafe status grows only between faults. Bounding boxes are
      // frame-relative, so this is meaningful only for non-wrapping blocks
      // (a full ring of unsafe cells has no canonical frame window).
      if (!block.region().empty() && !component_wrap(m, block.region()).any() &&
          !(block.region().bounding_box() == block_faults.bounding_box())) {
        out.add(kBlockFaultContent,
                "block exceeds the bounding box of its faults in " +
                    region_context("block", b, block.region()));
      }
    }
  }
}

void check_regions(const grid::CellSet& faults, const PipelineResult& result,
                   Collector& out) {
  const mesh::Mesh2D& m = faults.topology();

  for (std::size_t r = 0; r < result.regions.size() && out.open(); ++r) {
    const auto& region = result.regions[r];
    const geom::Region& shape = region.region();
    // Regions wrapping a full torus dimension fall outside the paper's
    // planar theorems: Theorem 1 is asserted in its cylinder form and the
    // corner lemmas / closure equalities are skipped (frame corners at the
    // cut are unwrapping artifacts, not protocol corners).
    const bool wrapped = component_wrap(m, shape).any();

    if (out.enabled(kTheorem1)) {
      if (wrapped) {
        if (!rows_and_cols_are_arcs(m, region.component.cells())) {
          out.add(kTheorem1,
                  "wrapped disabled region is not orthogonally convex on "
                  "the torus (some ring intersection is not one arc): " +
                      region_context("region", r, shape));
        }
      } else {
        const bool definitional =
            geom::is_orthogonal_convex(shape) &&
            shape.is_connected(geom::Connectivity::Eight);
        const bool fast = geom::is_orthogonal_convex_polygon_fast(shape);
        if (!definitional || !fast) {
          std::ostringstream os;
          os << "not an orthogonal convex polygon (definitional="
             << definitional << ", staircase=" << fast << ") ";
          out.add(kTheorem1, os.str() + region_context("region", r, shape));
        }
      }
    }

    if (!wrapped && out.enabled(kLemma1)) {
      const auto frame_cells = shape.cells();
      const auto phys_cells = region.component.cells();
      for (std::size_t i = 0; i < frame_cells.size() && out.open(); ++i) {
        if (geom::is_corner_node(shape, frame_cells[i]) &&
            !faults.contains(phys_cells[i])) {
          out.add(kLemma1, "nonfaulty corner node at " +
                               mesh::to_string(phys_cells[i]) + " in " +
                               region_context("region", r, shape));
        }
      }
    }

    if (!wrapped && out.enabled(kLemma2)) {
      for (Coord u : shape.cells()) {
        if (!out.open()) break;
        for (geom::Quadrant q : geom::kAllQuadrants) {
          if (!geom::quadrant_has_corner(shape, u, q)) {
            out.add(kLemma2, "quadrant without corner, origin " +
                                 mesh::to_string(u) + " in " +
                                 region_context("region", r, shape));
            break;
          }
        }
      }
    }

    if (!wrapped && out.enabled(kLemma3)) {
      const geom::Rect box = shape.bounding_box();
      for (std::int32_t x = box.lo.x - 1; x <= box.hi.x + 1 && out.open();
           ++x) {
        for (std::int32_t y = box.lo.y - 1; y <= box.hi.y + 1 && out.open();
             ++y) {
          const Coord u{x, y};
          if (shape.contains(u)) continue;
          bool some_quadrant_empty = false;
          for (geom::Quadrant q : geom::kAllQuadrants) {
            bool any = false;
            for (Coord c : shape.cells()) {
              if (geom::in_quadrant(u, q, c)) {
                any = true;
                break;
              }
            }
            if (!any) {
              some_quadrant_empty = true;
              break;
            }
          }
          if (!some_quadrant_empty) {
            out.add(kLemma3, "outside node " + mesh::to_string(u) +
                                 " sees region cells in all quadrants of " +
                                 region_context("region", r, shape));
          }
        }
      }
    }

    if (!wrapped && out.enabled(kTheorem2)) {
      const geom::Region seed = component_frame_faults(region.component, faults);
      if (!(geom::rectilinear_convex_closure(seed) == shape)) {
        out.add(kTheorem2,
                "region is not the rectilinear convex closure of its "
                "faults: " +
                    region_context("region", r, shape));
      }
    }

    if (out.enabled(kRegionFaultContent)) {
      const geom::Region seed = component_frame_faults(region.component, faults);
      if (seed.empty()) {
        out.add(kRegionFaultContent,
                "fault-free disabled " + region_context("region", r, shape));
      } else if (region.fault_count != seed.size() ||
                 region.fault_count + region.disabled_nonfaulty_count !=
                     region.size()) {
        std::ostringstream os;
        os << "region #" << r << " count mismatch: fault_count="
           << region.fault_count << " disabled_nonfaulty="
           << region.disabled_nonfaulty_count << " size=" << region.size()
           << " actual faults=" << seed.size();
        out.add(kRegionFaultContent, os.str());
      }
    }

    if (!wrapped && out.enabled(kRingTrace)) {
      const geom::Region ring = geom::outer_ring(shape);
      const auto walk = geom::trace_outer_ring(shape);
      bool walk_ok = walk.size() == ring.size();
      for (Coord c : walk) {
        if (!ring.contains(c)) walk_ok = false;
      }
      if (!walk_ok) {
        std::ostringstream os;
        os << "ring walk covers " << walk.size() << " of " << ring.size()
           << " ring cells around ";
        out.add(kRingTrace, os.str() + region_context("region", r, shape));
      }
    }
  }

  if (out.enabled(kRegionSeparation)) {
    for (std::size_t i = 0; i < result.regions.size() && out.open(); ++i) {
      for (std::size_t j = i + 1; j < result.regions.size() && out.open();
           ++j) {
        const std::int32_t d = component_distance(
            m, result.regions[i].component, result.regions[j].component);
        if (d < 2) {
          std::ostringstream os;
          os << "regions #" << i << " and #" << j << " at distance " << d
             << " < 2";
          out.add(kRegionSeparation, os.str());
        }
      }
    }
  }

  if (out.enabled(kCorollary)) {
    std::vector<std::size_t> disabled_nonfaulty(result.blocks.size(), 0);
    bool parents_ok = true;
    for (const auto& region : result.regions) {
      if (region.parent_block >= result.blocks.size()) {
        parents_ok = false;  // reported by kExtraction
        continue;
      }
      disabled_nonfaulty[region.parent_block] +=
          region.disabled_nonfaulty_count;
    }
    if (parents_ok) {
      for (std::size_t b = 0; b < result.blocks.size() && out.open(); ++b) {
        // Rectilinear closure is a planar notion; a wrapped block's regions
        // wrap too (each region sits inside its parent block), so the
        // blockwise bound is asserted for non-wrapping blocks only.
        if (component_wrap(m, result.blocks[b].region()).any()) continue;
        const geom::Region seed =
            component_frame_faults(result.blocks[b].component, faults);
        if (seed.empty()) continue;  // reported by kBlockFaultContent
        const geom::Region closure = geom::rectilinear_convex_closure(seed);
        const std::size_t closure_nonfaulty = closure.size() - seed.size();
        if (disabled_nonfaulty[b] > closure_nonfaulty) {
          std::ostringstream os;
          os << "block #" << b << " keeps " << disabled_nonfaulty[b]
             << " nonfaulty nodes disabled; the minimal single polygon "
                "keeps "
             << closure_nonfaulty;
          out.add(kCorollary, os.str());
        }
      }
    }
  }
}

void check_labeling(const grid::CellSet& faults, const PipelineResult& result,
                    Collector& out) {
  const mesh::Mesh2D& m = faults.topology();
  const auto node_count = static_cast<std::size_t>(m.node_count());

  if (out.enabled(kStatusLattice)) {
    for (std::size_t i = 0; i < node_count && out.open(); ++i) {
      const bool faulty = faults.contains_index(i);
      const Safety sf = result.safety.at_index(i);
      const Activation ac = result.activation.at_index(i);
      if (faulty && (sf != Safety::Unsafe || ac != Activation::Disabled)) {
        out.add(kStatusLattice, "faulty node " + mesh::to_string(m.coord(i)) +
                                    " labeled " + to_string(sf) + "/" +
                                    to_string(ac));
      }
      if (ac == Activation::Disabled && sf != Safety::Unsafe) {
        out.add(kStatusLattice, "disabled node " +
                                    mesh::to_string(m.coord(i)) +
                                    " is not unsafe");
      }
    }
  }

  if (out.enabled(kExtraction)) {
    std::size_t unsafe_cells = 0;
    std::size_t disabled_cells = 0;
    for (std::size_t i = 0; i < node_count; ++i) {
      unsafe_cells += result.safety.at_index(i) == Safety::Unsafe;
      disabled_cells +=
          result.activation.at_index(i) == Activation::Disabled;
    }
    std::size_t block_cells = 0;
    std::size_t block_faults = 0;
    for (const auto& b : result.blocks) {
      block_cells += b.size();
      block_faults += b.fault_count;
    }
    std::size_t region_cells = 0;
    std::size_t region_faults = 0;
    for (const auto& r : result.regions) {
      region_cells += r.size();
      region_faults += r.fault_count;
    }
    if (block_cells != unsafe_cells) {
      std::ostringstream os;
      os << "blocks cover " << block_cells << " cells but the labeling has "
         << unsafe_cells << " unsafe cells";
      out.add(kExtraction, os.str());
    }
    if (region_cells != disabled_cells) {
      std::ostringstream os;
      os << "regions cover " << region_cells
         << " cells but the labeling has " << disabled_cells
         << " disabled cells";
      out.add(kExtraction, os.str());
    }
    if (block_faults != faults.size() || region_faults != faults.size()) {
      std::ostringstream os;
      os << "fault totals: blocks account for " << block_faults
         << ", regions for " << region_faults << ", machine has "
         << faults.size();
      out.add(kExtraction, os.str());
    }
    for (std::size_t r = 0; r < result.regions.size() && out.open(); ++r) {
      const auto& region = result.regions[r];
      if (region.parent_block >= result.blocks.size()) {
        std::ostringstream os;
        os << "region #" << r << " parent block index "
           << region.parent_block << " out of range ("
           << result.blocks.size() << " blocks)";
        out.add(kExtraction, os.str());
        continue;
      }
      // Every disabled cell is unsafe, so the region must sit inside its
      // parent block's cell set.
      grid::CellSet parent(m);
      for (Coord c : result.blocks[region.parent_block].component.cells()) {
        parent.insert(c);
      }
      for (Coord c : region.component.cells()) {
        if (!parent.contains(c)) {
          out.add(kExtraction, "region #" + std::to_string(r) + " cell " +
                                   mesh::to_string(c) +
                                   " outside its parent block");
          break;
        }
      }
    }
  }
}

void check_convergence(const grid::CellSet& faults,
                       const PipelineResult& result,
                       const OracleOptions& opts, Collector& out) {
  if (!out.enabled(kConvergence)) return;
  // Reference-engine results carry zeroed statistics; a distributed run
  // always executes at least the final all-quiet detection round.
  if (result.safety_stats.rounds_executed == 0 &&
      result.activation_stats.rounds_executed == 0) {
    return;
  }

  const auto progress = [&](const char* phase, const sim::RoundStats& stats,
                            std::size_t change_budget) {
    if (static_cast<std::size_t>(stats.rounds_to_quiesce) >
        change_budget + 1) {
      std::ostringstream os;
      os << phase << " took " << stats.rounds_to_quiesce
         << " rounds with only " << change_budget
         << " possible status changes";
      out.add(kConvergence, os.str());
    }
  };
  progress("phase one", result.safety_stats, result.unsafe_nonfaulty_total());
  progress("phase two", result.activation_stats, result.enabled_total());

  bool strict = opts.round_bound == RoundBound::Strict;
  if (opts.round_bound == RoundBound::Auto) {
    const double density =
        static_cast<double>(faults.size()) /
        static_cast<double>(faults.topology().node_count());
    strict = density <= kStrictBoundDensity;
  }
  if (strict) {
    std::int32_t max_diam = 0;
    for (const auto& block : result.blocks) {
      max_diam = std::max(max_diam, block.region().diameter());
    }
    const std::int32_t bound = std::max(max_diam, 1);
    const auto diameter_bound = [&](const char* phase,
                                    const sim::RoundStats& stats) {
      if (stats.rounds_to_quiesce > bound) {
        std::ostringstream os;
        os << phase << " took " << stats.rounds_to_quiesce
           << " rounds, above the max block diameter " << bound;
        out.add(kConvergence, os.str());
      }
    };
    diameter_bound("phase one", result.safety_stats);
    diameter_bound("phase two", result.activation_stats);
  }
}

/// Re-evaluates the genuine node-local rules against the FINAL planes. Both
/// rules are monotone, so support once gained persists to the fixpoint:
/// every unsafe / enabled transition must still be explainable by the final
/// neighborhood (justification), and no remaining safe / disabled node may
/// satisfy its transition condition (quiescence — a runner that stops a
/// round early leaves exactly this kind of enabled-but-unapplied rule).
void check_fixpoint(const grid::CellSet& faults, const PipelineResult& result,
                    const OracleOptions& opts, Collector& out) {
  if (!out.enabled(kFixpoint)) return;
  const mesh::Mesh2D& m = faults.topology();
  const mesh::AdjacencyTable adj(m);
  const auto node_count = static_cast<std::size_t>(m.node_count());

  for (std::size_t i = 0; i < node_count && out.open(); ++i) {
    if (faults.contains_index(i)) continue;
    const std::int32_t* nbr = adj.dir_row(i);

    // Phase one: <rule> of Definition 2a / 2b on the final safety plane
    // (ghost neighbors are permanently safe).
    const auto neighbor_safety = [&](mesh::Dir d) {
      const std::int32_t j = nbr[static_cast<std::size_t>(d)];
      return j == mesh::AdjacencyTable::kGhost
                 ? Safety::Safe
                 : result.safety.at_index(static_cast<std::size_t>(j));
    };
    bool rule_fires = false;
    if (opts.definition == SafeUnsafeDef::Def2a) {
      int unsafe_neighbors = 0;
      for (mesh::Dir d : mesh::kAllDirs) {
        if (neighbor_safety(d) == Safety::Unsafe) ++unsafe_neighbors;
      }
      rule_fires = unsafe_neighbors >= 2;
    } else {
      const bool unsafe_x = neighbor_safety(mesh::Dir::East) == Safety::Unsafe ||
                            neighbor_safety(mesh::Dir::West) == Safety::Unsafe;
      const bool unsafe_y =
          neighbor_safety(mesh::Dir::North) == Safety::Unsafe ||
          neighbor_safety(mesh::Dir::South) == Safety::Unsafe;
      rule_fires = unsafe_x && unsafe_y;
    }
    const bool is_unsafe = result.safety.at_index(i) == Safety::Unsafe;
    if (!is_unsafe && rule_fires) {
      out.add(kFixpoint, "phase one not quiesced: safe node " +
                             mesh::to_string(m.coord(i)) +
                             " satisfies the unsafe condition");
    } else if (is_unsafe && !rule_fires) {
      out.add(kFixpoint, "unjustified unsafe node " +
                             mesh::to_string(m.coord(i)) +
                             " (final neighborhood cannot derive it)");
    }

    // Phase two (unsafe nonfaulty nodes only): Definition 3 on the final
    // activation plane (ghost neighbors are permanently enabled).
    if (!is_unsafe) continue;
    int enabled_neighbors = 0;
    for (mesh::Dir d : mesh::kAllDirs) {
      const std::int32_t j = nbr[static_cast<std::size_t>(d)];
      const Activation a =
          j == mesh::AdjacencyTable::kGhost
              ? Activation::Enabled
              : result.activation.at_index(static_cast<std::size_t>(j));
      if (a == Activation::Enabled) ++enabled_neighbors;
    }
    const bool enabled = result.activation.at_index(i) == Activation::Enabled;
    if (!enabled && enabled_neighbors >= 2) {
      out.add(kFixpoint, "phase two not quiesced: disabled node " +
                             mesh::to_string(m.coord(i)) + " has " +
                             std::to_string(enabled_neighbors) +
                             " enabled neighbors");
    } else if (enabled && enabled_neighbors < 2) {
      out.add(kFixpoint, "unjustified enabled node " +
                             mesh::to_string(m.coord(i)) +
                             " (fewer than two enabled neighbors at the "
                             "fixpoint)");
    }
  }
}

}  // namespace

const char* check_name(std::uint32_t check) noexcept {
  switch (check) {
    case kBlockRectangle: return "block-rectangle";
    case kBlockSeparation: return "block-separation";
    case kBlockFaultContent: return "block-fault-content";
    case kTheorem1: return "theorem1-orthogonal-convex";
    case kLemma1: return "lemma1-corners-faulty";
    case kLemma2: return "lemma2-quadrant-corners";
    case kLemma3: return "lemma3-empty-quadrant";
    case kTheorem2: return "theorem2-fault-closure";
    case kCorollary: return "corollary-blockwise";
    case kRegionSeparation: return "region-separation";
    case kRegionFaultContent: return "region-fault-content";
    case kStatusLattice: return "status-lattice";
    case kExtraction: return "extraction";
    case kConvergence: return "convergence";
    case kRingTrace: return "ring-trace";
    case kFixpoint: return "fixpoint";
    case kMetamorphic: return "metamorphic";
    case kScheduleIndependence: return "schedule-independence";
    case kEngineEquivalence: return "engine-equivalence";
    case kChaosPoisoned: return "chaos-poisoned";
    case kAllocOverlap: return "alloc-overlap";
    case kAllocIndex: return "alloc-index-equivalence";
    case kAllocEviction: return "alloc-eviction-completeness";
    case kAllocConservation: return "alloc-conservation";
    default: return "unknown-check";
  }
}

std::string ViolationReport::to_string() const {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << check_name(v.check) << ": " << v.detail << "\n";
  }
  if (truncated) os << "(report truncated)\n";
  return os.str();
}

void ViolationReport::merge(ViolationReport other) {
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
  truncated = truncated || other.truncated;
}

geom::Region component_frame_faults(const grid::Component& comp,
                                    const grid::CellSet& faults) {
  std::vector<Coord> cells;
  const auto frame_cells = comp.region.cells();
  const auto phys_cells = comp.cells();
  for (std::size_t i = 0; i < frame_cells.size(); ++i) {
    if (faults.contains(phys_cells[i])) cells.push_back(frame_cells[i]);
  }
  return geom::Region(std::move(cells));
}

std::int32_t component_distance(const mesh::Mesh2D& m,
                                const grid::Component& a,
                                const grid::Component& b) {
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  for (Coord u : a.cells()) {
    for (Coord v : b.cells()) {
      best = std::min(best, m.distance(u, v));
    }
  }
  return best;
}

ViolationReport check_pipeline(const grid::CellSet& faults,
                               const labeling::PipelineResult& result,
                               const OracleOptions& opts) {
  Collector out(opts);
  check_blocks(faults, result, opts, out);
  check_regions(faults, result, out);
  check_labeling(faults, result, out);
  check_convergence(faults, result, opts, out);
  check_fixpoint(faults, result, opts, out);
  return out.take();
}

}  // namespace ocp::check
