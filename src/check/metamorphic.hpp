// Metamorphic testing of the labeling pipeline: the paper's protocols are
// symmetric under the lattice symmetries of the machine, so the full
// pipeline must commute with them. For a symmetry T and fault set F,
// `pipeline(T(F))` must equal `T(pipeline(F))` node for node — and the
// convergence statistics (rounds, state changes, broadcast messages) must be
// identical, because the protocols' update rules are invariant under
// transposition, reflection, rotation, and (on a torus) translation.
//
// These relations need no expected outputs, which makes them ideal fuzzing
// oracles: any engine rewrite that breaks a boundary case, a dimension swap
// or the ghost frame shows up as a commutation failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/pipeline.hpp"
#include "grid/cell_set.hpp"
#include "mesh/coord.hpp"
#include "mesh/mesh2d.hpp"

namespace ocp::check {

/// A lattice symmetry of a machine: a bijection from the nodes of `domain`
/// onto the nodes of `codomain` that maps links to links and preserves the
/// ghost frame (mesh) or the wraparound structure (torus).
struct Transform {
  enum class Kind : std::uint8_t {
    Transpose,
    ReflectX,   // mirror across the vertical axis
    ReflectY,   // mirror across the horizontal axis
    Rotate90,   // counterclockwise
    Rotate180,
    Rotate270,
    Translate,  // torus only
  };

  Kind kind = Kind::Transpose;
  mesh::Mesh2D domain;
  mesh::Mesh2D codomain;
  /// Translation offsets (Kind::Translate only).
  std::int32_t dx = 0;
  std::int32_t dy = 0;

  [[nodiscard]] std::string name() const;
  /// Image of a domain node.
  [[nodiscard]] mesh::Coord map(mesh::Coord c) const noexcept;
};

/// All symmetries exercised for a machine: the six geometric ones always,
/// plus three wraparound translations on a torus.
[[nodiscard]] std::vector<Transform> symmetry_transforms(const mesh::Mesh2D& m);

/// The image of a fault set under a transform.
[[nodiscard]] grid::CellSet transform_faults(const Transform& t,
                                             const grid::CellSet& faults);

/// Runs the pipeline on `faults` and on every symmetric image, and reports a
/// `kMetamorphic` violation for each node whose mapped label differs or each
/// statistic that fails to commute. Both phases are compared.
[[nodiscard]] ViolationReport check_metamorphic(
    const grid::CellSet& faults, const labeling::PipelineOptions& opts = {});

}  // namespace ocp::check
