#include "chaos/alloc_schedule.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "alloc/loadgen.hpp"
#include "alloc/oracle.hpp"
#include "fault/generators.hpp"
#include "svc/ingest.hpp"
#include "svc/loadgen.hpp"

namespace ocp::chaos {

namespace {

/// One execution of a schedule (chaotic or shadow) and what it ended with.
struct ExecOutcome {
  std::uint64_t placement_digest = 0;
  std::uint64_t label_digest = 0;
  std::uint64_t kills = 0;
  std::uint64_t epochs_published = 0;
  std::uint64_t storm_evictions = 0;
  std::size_t live_final = 0;
  /// (id, rect) of every live job at quiesce, ascending id.
  std::vector<std::pair<std::uint64_t, geom::Rect>> live_set;
  check::ViolationReport oracle;
};

ExecOutcome execute(const AllocScheduleConfig& config,
                    const std::vector<AllocOp>& schedule, bool with_chaos) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             config.topology);
  // Same fork order as run_alloc_load minus the reader seeds.
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const std::uint64_t job_seed = master.fork_seed();
  stats::Rng storm_rng(master.fork_seed());

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<svc::FaultEvent> stream = svc::generate_event_stream(
      machine, initial, config.events, config.repair_fraction, stream_seed);
  const std::vector<alloc::JobRequest> jobs = alloc::generate_job_stream(
      machine, config.jobs, config.max_job_side, config.min_lifetime,
      config.max_lifetime, job_seed);
  const mesh::Coord storm_center{
      static_cast<std::int32_t>(storm_rng.uniform_int(0, machine.width() - 1)),
      static_cast<std::int32_t>(storm_rng.uniform_int(0, machine.height() - 1))};
  const std::vector<svc::FaultEvent> storm =
      alloc::storm_events(machine, storm_center, config.storm_side);

  FaultPlan plan(PlanSpec{.seed = config.seed});
  std::unique_ptr<alloc::AllocEngine> engine;
  svc::IngestConfig ingest_config;
  if (with_chaos) ingest_config.chaos.plan = &plan;
  ingest_config.on_publish = [&engine](const svc::Snapshot& snap,
                                       std::span<const mesh::Coord> dirty) {
    if (engine) engine->observe_epoch(snap, dirty);
  };
  svc::IngestEngine ingest(initial, ingest_config);

  alloc::AllocConfig alloc_config;
  alloc_config.strategy = config.strategy;
  alloc_config.queue_capacity = config.queue_capacity;
  alloc_config.max_retries = config.max_retries;
  engine =
      std::make_unique<alloc::AllocEngine>(*ingest.snapshot(), alloc_config);

  ExecOutcome out;

  // Apply one event per batch; on a chaos crash, synchronously restart and
  // replay (backlog first, interrupted event after) until the event lands.
  // Each armed stamp kills once, so the loop terminates — and the
  // (epoch, dirty) turnover sequence alloc observes matches the
  // uninterrupted run exactly.
  const auto apply_event = [&](const svc::FaultEvent& event) {
    std::vector<svc::FaultEvent> todo{event};
    while (!todo.empty()) {
      const svc::FaultEvent next = todo.front();
      const svc::BatchOutcome outcome =
          ingest.apply(std::span<const svc::FaultEvent>(&next, 1));
      if (outcome.crashed) {
        ++out.kills;
        std::vector<svc::FaultEvent> replay = outcome.requeue;
        replay.push_back(next);
        replay.insert(replay.end(), todo.begin() + 1, todo.end());
        todo = std::move(replay);
      } else {
        todo.erase(todo.begin());
      }
    }
  };

  std::size_t job_pos = 0;
  std::size_t stream_pos = 0;
  for (const AllocOp& op : schedule) {
    switch (op.kind) {
      case AllocOpKind::SubmitJobs:
        for (std::uint16_t i = 0; i < op.count && job_pos < jobs.size(); ++i) {
          static_cast<void>(engine->submit(jobs[job_pos++]));
        }
        break;
      case AllocOpKind::Faults:
        for (std::uint16_t i = 0; i < op.count && stream_pos < stream.size();
             ++i) {
          apply_event(stream[stream_pos++]);
        }
        break;
      case AllocOpKind::Storm: {
        const std::uint64_t before = engine->stats().evicted;
        for (const svc::FaultEvent& event : storm) apply_event(event);
        out.storm_evictions += engine->stats().evicted - before;
        break;
      }
      case AllocOpKind::Tick:
        for (std::uint16_t i = 0; i < std::max<std::uint16_t>(op.count, 1);
             ++i) {
          static_cast<void>(engine->tick());
        }
        break;
      case AllocOpKind::Release: {
        for (std::uint16_t i = 0; i < std::max<std::uint16_t>(op.count, 1);
             ++i) {
          if (engine->live().empty()) break;
          static_cast<void>(engine->release(engine->live().begin()->first));
        }
        break;
      }
      case AllocOpKind::Kill:
        // Shadow runs strip Kill ops before calling execute; arming is
        // still gated so a hand-built schedule replays cleanly too.
        if (with_chaos) {
          plan.arm_kill(ingest.snapshot()->epoch() + 1);
        }
        break;
    }
  }

  // Quiesce: disarm, run the clock long enough for every lifetime to
  // expire and the queue to settle. The tick count is fixed, so both runs
  // quiesce identically.
  plan.disarm();
  for (std::uint32_t t = 0; t < config.max_lifetime + 32; ++t) {
    static_cast<void>(engine->tick());
  }

  const auto snapshot = ingest.snapshot();
  out.placement_digest = engine->placement_digest();
  out.label_digest = snapshot->label_digest();
  out.epochs_published = ingest.stats().epochs_published;
  out.live_final = engine->live().size();
  for (const auto& [id, job] : engine->live()) {
    out.live_set.emplace_back(id, job.rect);
  }
  out.oracle = alloc::check_engine(*engine, *snapshot);
  return out;
}

}  // namespace

std::vector<AllocOp> generate_alloc_schedule(std::uint64_t seed,
                                             std::size_t ops,
                                             std::size_t max_burst) {
  stats::Rng rng(seed);
  const auto burst = [&] {
    return static_cast<std::uint16_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(std::max<std::size_t>(
                               max_burst, 1))));
  };
  std::vector<AllocOp> schedule;
  schedule.reserve(ops + 3);
  const std::size_t mid = ops / 2;
  for (std::size_t i = 0; i < ops; ++i) {
    if (i == mid) {
      // Guaranteed coverage: kill the writer while the storm's evictions
      // are being applied (the Faults burst keeps publishing epochs the
      // armed stamp can land on).
      schedule.push_back({AllocOpKind::Storm, 0});
      schedule.push_back({AllocOpKind::Kill, 0});
      schedule.push_back({AllocOpKind::Faults, burst()});
      continue;
    }
    const std::int64_t roll = rng.uniform_int(0, 99);
    if (roll < 35) {
      schedule.push_back({AllocOpKind::SubmitJobs, burst()});
    } else if (roll < 60) {
      schedule.push_back({AllocOpKind::Faults, burst()});
    } else if (roll < 80) {
      schedule.push_back({AllocOpKind::Tick, burst()});
    } else if (roll < 90) {
      schedule.push_back({AllocOpKind::Release, burst()});
    } else {
      schedule.push_back({AllocOpKind::Kill, 0});
    }
  }
  return schedule;
}

AllocScheduleResult run_alloc_schedule(const AllocScheduleConfig& config,
                                       const std::vector<AllocOp>& schedule) {
  std::vector<AllocOp> stripped;
  stripped.reserve(schedule.size());
  for (const AllocOp& op : schedule) {
    if (op.kind != AllocOpKind::Kill) stripped.push_back(op);
  }

  const ExecOutcome chaotic = execute(config, schedule, /*with_chaos=*/true);
  const ExecOutcome shadow = execute(config, stripped, /*with_chaos=*/false);

  AllocScheduleResult result;
  result.placement_digest = chaotic.placement_digest;
  result.expected_placement_digest = shadow.placement_digest;
  result.final_label_digest = chaotic.label_digest;
  result.expected_label_digest = shadow.label_digest;
  result.kills = chaotic.kills;
  result.epochs_published = chaotic.epochs_published;
  result.live_final = chaotic.live_final;
  result.storm_evictions = chaotic.storm_evictions;

  auto fail = [&](std::string detail) {
    result.violations.push_back(std::move(detail));
  };
  if (chaotic.placement_digest != shadow.placement_digest) {
    fail("placement digest diverged from the kill-stripped shadow run");
  }
  if (chaotic.label_digest != shadow.label_digest) {
    fail("label digest diverged from the kill-stripped shadow run");
  }
  if (chaotic.live_set != shadow.live_set) {
    fail("final live placements diverged from the kill-stripped shadow run");
  }
  if (!chaotic.oracle.ok()) {
    fail("allocation oracle failed at quiesce (chaotic run): " +
         chaotic.oracle.to_string());
  }
  if (!shadow.oracle.ok()) {
    fail("allocation oracle failed at quiesce (shadow run): " +
         shadow.oracle.to_string());
  }
  return result;
}

std::string to_string(const std::vector<AllocOp>& schedule) {
  std::ostringstream os;
  bool first = true;
  for (const AllocOp& op : schedule) {
    if (!first) os << ' ';
    first = false;
    switch (op.kind) {
      case AllocOpKind::SubmitJobs: os << 'J' << op.count; break;
      case AllocOpKind::Faults: os << 'F' << op.count; break;
      case AllocOpKind::Storm: os << 'W'; break;
      case AllocOpKind::Tick: os << 'T' << op.count; break;
      case AllocOpKind::Release: os << 'R' << op.count; break;
      case AllocOpKind::Kill: os << 'K'; break;
    }
  }
  return os.str();
}

}  // namespace ocp::chaos
