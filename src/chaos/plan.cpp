#include "chaos/plan.hpp"

#include <algorithm>

namespace ocp::chaos {

namespace {

/// splitmix64: the standard 64-bit finalizer — decisions must be a pure
/// function of (seed, point, index) with no shared RNG state, so threads
/// racing a plan cannot perturb each other's verdict streams.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, Point point,
                            std::uint64_t index) {
  return mix(mix(seed ^ (static_cast<std::uint64_t>(point) + 1) *
                            0xd6e8feb86659fd93ULL) ^
             index);
}

/// Uniform double in [0, 1) from the top 53 bits.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(PlanSpec spec) : spec_(std::move(spec)) {
  pending_kills_ = spec_.kill_at_stamps;
  std::sort(pending_kills_.begin(), pending_kills_.end());
}

bool FaultPlan::roll(Point point, double prob, std::uint64_t cap,
                     std::atomic<std::uint64_t>& index,
                     std::atomic<std::uint64_t>& taken) {
  if (prob <= 0.0 || !armed()) return false;
  const std::uint64_t i = index.fetch_add(1, std::memory_order_relaxed);
  if (to_unit(decision_hash(spec_.seed, point, i)) >= prob) return false;
  // Reserve a take under the cap; back out on overshoot so concurrent
  // callers never exceed it.
  const std::uint64_t t = taken.fetch_add(1, std::memory_order_relaxed);
  if (cap != 0 && t >= cap) {
    taken.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultPlan::deny_submit() {
  return roll(Point::SubmitDeny, spec_.deny_submit, spec_.max_denies,
              deny_index_, denies_);
}

BatchDecision FaultPlan::on_batch() {
  // One batch index feeds all three per-batch decision streams, each hashed
  // through its own point so they stay independent.
  if (!armed()) return {};
  const std::uint64_t i = batch_index_.fetch_add(1, std::memory_order_relaxed);
  BatchDecision decision;
  const auto take = [&](Point point, double prob, std::uint64_t cap,
                        std::atomic<std::uint64_t>& taken) {
    if (prob <= 0.0) return false;
    if (to_unit(decision_hash(spec_.seed, point, i)) >= prob) return false;
    const std::uint64_t t = taken.fetch_add(1, std::memory_order_relaxed);
    if (cap != 0 && t >= cap) {
      taken.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  };
  decision.duplicate = take(Point::BatchDuplicate, spec_.duplicate_batch,
                            spec_.max_duplicates, duplicates_);
  decision.defer =
      take(Point::BatchDefer, spec_.defer_batch, spec_.max_defers, defers_);
  if (take(Point::BatchStall, spec_.stall_batch, spec_.max_stalls, stalls_)) {
    const std::uint64_t h = decision_hash(spec_.seed, Point::BatchStall, ~i);
    const std::uint32_t cap_us = std::max<std::uint32_t>(1, spec_.stall_max_us);
    decision.stall_us = 1 + static_cast<std::uint32_t>(h % cap_us);
  }
  return decision;
}

bool FaultPlan::poison_publish() {
  return roll(Point::PoisonPublish, spec_.poison_publish, spec_.max_poisons,
              poison_index_, poisons_);
}

bool FaultPlan::kill_now(std::uint64_t publish_stamp) {
  if (!armed()) return false;
  std::lock_guard lock(kill_mu_);
  const auto it = std::find(pending_kills_.begin(), pending_kills_.end(),
                            publish_stamp);
  if (it == pending_kills_.end()) return false;
  pending_kills_.erase(it);  // each stamp kills exactly once
  kills_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultPlan::arm_kill(std::uint64_t publish_stamp) {
  std::lock_guard lock(kill_mu_);
  pending_kills_.push_back(publish_stamp);
}

PlanStats FaultPlan::stats() const {
  return {.denies = denies_.load(std::memory_order_relaxed),
          .duplicates = duplicates_.load(std::memory_order_relaxed),
          .defers = defers_.load(std::memory_order_relaxed),
          .stalls = stalls_.load(std::memory_order_relaxed),
          .poisons = poisons_.load(std::memory_order_relaxed),
          .kills = kills_.load(std::memory_order_relaxed)};
}

}  // namespace ocp::chaos
