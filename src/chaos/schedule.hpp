// Seeded schedule exploration for the serving runtime, with ddmin repros.
//
// A schedule is a short program of driver ops — submit bursts, pause /
// resume, flush barriers, query bursts, publish-retry nudges, ingest
// restarts — executed against a live `svc::Service` while a chaos plan
// injects faults underneath (denied admissions, duplicated / deferred /
// stalled batches, poisoned oracle verdicts, mid-batch kills). The explorer
// generates schedules from a seed, runs them, and checks the degraded-mode
// guarantees as invariants:
//
//   * epochs observed by queries never decrease;
//   * queries always answer from the last good epoch (typed verdicts only,
//     never a hang — and never a violation while publications are
//     withheld);
//   * a flush barrier of an un-crashed service leaves the queue empty;
//   * after quiescing (plan disarmed, thread restarted, retries drained)
//     the published labeling is bit-identical — same `label_digest` — to a
//     clean labeling of the net fault set, and the staleness watermark
//     reads zero.
//
// When a schedule fails, `shrink_schedule` reduces it with the same
// ddmin-style discipline as check::shrink_faults (drop op chunks while the
// violation reproduces), and `to_string`/`parse_schedule` round-trip the
// survivor as a one-line repro (e.g. "S8 P Q16 R F K"), replayable with
// `bench/chaos_soak --replay`.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/plan.hpp"
#include "svc/loadgen.hpp"
#include "svc/sharded_service.hpp"

namespace ocp::chaos {

/// One driver op of a schedule.
enum class OpKind : std::uint8_t {
  /// Submit the next `count` events of the seeded stream (retrying typed
  /// rejections with backoff, so no event is ever lost to the schedule).
  Submit = 0,
  Pause = 1,
  Resume = 2,
  /// Barrier: every accepted event applied (or the writer crashed).
  Flush = 3,
  /// `count` queries (status/region/route mix) checked for monotone epochs.
  Query = 4,
  /// Nudge the empty-batch publication retry path.
  RetryPublish = 5,
  /// Restart the ingest thread if a chaos kill took it down (no-op else).
  Restart = 6,
};

struct Op {
  OpKind kind = OpKind::Query;
  /// Event count (Submit) or query count (Query); ignored otherwise.
  std::uint16_t count = 0;

  friend bool operator==(const Op&, const Op&) = default;
};

/// Workload + chaos parameters for one schedule run. The schedule itself
/// (the op list) is passed separately so ddmin can vary it while the
/// config stays fixed.
struct ScheduleConfig {
  std::int32_t mesh_side = 16;
  std::size_t initial_faults = 6;
  /// Length of the seeded event stream the Submit ops consume. Ops past
  /// the end submit nothing; leftover events are submitted at quiesce so
  /// the expected final fault set never depends on the schedule shape.
  std::size_t events = 96;
  double repair_fraction = 0.45;
  std::uint64_t seed = 1;
  /// Chaos injected while the schedule runs (armed only during the ops;
  /// the quiesce phase disarms it).
  PlanSpec plan;
  /// Service shape; queue_capacity is clamped up to hold the whole stream
  /// so only chaos denials — never genuine overload — reject a Submit op.
  svc::ServiceConfig service;
};

struct ScheduleResult {
  /// Human-readable invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  std::uint64_t final_digest = 0;
  std::uint64_t expected_digest = 0;
  std::size_t final_faults = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t stale_epochs_pending = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_rejected = 0;
  std::uint64_t submit_retries = 0;
  std::uint64_t restarts = 0;
  PlanStats injected;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Seeded schedule generation: `ops` driver ops with a weighted kind mix
/// (submit/query heavy, occasional pause/resume/flush/nudge/restart).
[[nodiscard]] std::vector<Op> generate_schedule(std::uint64_t seed,
                                                std::size_t ops,
                                                std::size_t max_burst = 16);

/// Executes one schedule against a fresh Service and checks every
/// invariant, quiescing (disarm, restart, drain, retry) before the final
/// digest comparison.
[[nodiscard]] ScheduleResult run_schedule(const ScheduleConfig& config,
                                          const std::vector<Op>& schedule);

/// Failure predicate ddmin minimizes against: true = still failing. The
/// default (empty) oracle is `!run_schedule(config, ops).ok()`; tests
/// inject synthetic oracles to pin the minimization itself.
using ScheduleOracle =
    std::function<bool(const ScheduleConfig&, const std::vector<Op>&)>;

/// ddmin over the op list: returns the smallest subsequence of `schedule`
/// whose run still violates an invariant (or `schedule` itself if the
/// failure vanished). `runs` counts the executions spent shrinking.
[[nodiscard]] std::vector<Op> shrink_schedule(const ScheduleConfig& config,
                                              std::vector<Op> schedule,
                                              std::size_t* runs = nullptr,
                                              ScheduleOracle oracle = {});

/// One-line schedule rendering: "S8 P R F Q16 Y K" (S=submit, Q=query with
/// counts; P/R/F/Y/K = pause/resume/flush/retry-publish/restart).
[[nodiscard]] std::string to_string(const std::vector<Op>& schedule);

/// Inverse of `to_string`; nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<Op>> parse_schedule(
    std::string_view text);

// ---------------------------------------------------------------------------
// Sharded schedule exploration (svc::ShardedService).
//
// The sharded explorer adds the one failure mode the single-writer explorer
// cannot exercise: a shard dying *mid-gossip* — its worker killed at its next
// publish while a neighbor is still draining the halo deltas the victim just
// emitted. The invariants are the sharded runtime's degraded-mode
// guarantees: per-shard query epochs never decrease, point queries keep
// answering from the owner's last good epoch while a sibling is down, a
// flush of an un-crashed fleet leaves every queue and inbox empty, and after
// quiescing (kills disarmed, shards restarted, backlogs replayed to
// fixpoint) the composite digest is bit-identical to a clean single-writer
// labeling of the net fault set.

/// One driver op of a sharded schedule.
enum class ShardedOpKind : std::uint8_t {
  /// Submit the next `count` stream events (coordinate-routed; retries
  /// typed rejections with backoff, so no event is lost to the schedule).
  Submit = 0,
  /// Barrier: fleet quiescent or some shard crashed.
  Flush = 1,
  /// `count` mixed queries checked for per-shard monotone epochs.
  Query = 2,
  /// Arm a kill on shard `shard` at its *next* publish stamp, then submit
  /// `count` events — the burst is what drives the victim to publish (and
  /// die) while its neighbors drain the halo deltas it emitted.
  KillShard = 3,
  /// Restart shard `shard` if a kill took its worker down (no-op else).
  RestartShard = 4,
};

struct ShardedOp {
  ShardedOpKind kind = ShardedOpKind::Query;
  /// Event count (Submit/KillShard) or query count (Query).
  std::uint16_t count = 0;
  /// Target shard (KillShard/RestartShard), taken modulo the fleet size.
  std::uint8_t shard = 0;

  friend bool operator==(const ShardedOp&, const ShardedOp&) = default;
};

/// Workload shape for one sharded schedule run. Chaos plans are created
/// internally (one per shard, kills armed dynamically against live epochs);
/// `service.shard_chaos` in the embedded config is overwritten.
struct ShardedScheduleConfig {
  std::int32_t mesh_side = 16;
  mesh::Topology topology = mesh::Topology::Mesh;
  std::size_t initial_faults = 6;
  std::size_t events = 96;
  double repair_fraction = 0.45;
  std::uint64_t seed = 1;
  svc::ShardedServiceConfig service;
};

struct ShardedScheduleResult {
  /// Human-readable invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  std::uint64_t final_digest = 0;
  std::uint64_t expected_digest = 0;
  std::size_t final_faults = 0;
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
  std::uint64_t halo_deltas = 0;
  std::uint64_t halo_events = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t submit_retries = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Seeded sharded schedule generation: submit/query heavy with kill and
/// restart ops sprinkled across a `shards`-sized fleet.
[[nodiscard]] std::vector<ShardedOp> generate_sharded_schedule(
    std::uint64_t seed, std::size_t ops, std::uint32_t shards,
    std::size_t max_burst = 16);

/// Executes one sharded schedule against a fresh ShardedService and checks
/// every invariant, quiescing (disarm, restart, drain to fixpoint) before
/// the composite-digest comparison.
[[nodiscard]] ShardedScheduleResult run_sharded_schedule(
    const ShardedScheduleConfig& config,
    const std::vector<ShardedOp>& schedule);

}  // namespace ocp::chaos
