// Seeded schedule exploration for the serving runtime, with ddmin repros.
//
// A schedule is a short program of driver ops — submit bursts, pause /
// resume, flush barriers, query bursts, publish-retry nudges, ingest
// restarts — executed against a live `svc::Service` while a chaos plan
// injects faults underneath (denied admissions, duplicated / deferred /
// stalled batches, poisoned oracle verdicts, mid-batch kills). The explorer
// generates schedules from a seed, runs them, and checks the degraded-mode
// guarantees as invariants:
//
//   * epochs observed by queries never decrease;
//   * queries always answer from the last good epoch (typed verdicts only,
//     never a hang — and never a violation while publications are
//     withheld);
//   * a flush barrier of an un-crashed service leaves the queue empty;
//   * after quiescing (plan disarmed, thread restarted, retries drained)
//     the published labeling is bit-identical — same `label_digest` — to a
//     clean labeling of the net fault set, and the staleness watermark
//     reads zero.
//
// When a schedule fails, `shrink_schedule` reduces it with the same
// ddmin-style discipline as check::shrink_faults (drop op chunks while the
// violation reproduces), and `to_string`/`parse_schedule` round-trip the
// survivor as a one-line repro (e.g. "S8 P Q16 R F K"), replayable with
// `bench/chaos_soak --replay`.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/plan.hpp"
#include "svc/loadgen.hpp"

namespace ocp::chaos {

/// One driver op of a schedule.
enum class OpKind : std::uint8_t {
  /// Submit the next `count` events of the seeded stream (retrying typed
  /// rejections with backoff, so no event is ever lost to the schedule).
  Submit = 0,
  Pause = 1,
  Resume = 2,
  /// Barrier: every accepted event applied (or the writer crashed).
  Flush = 3,
  /// `count` queries (status/region/route mix) checked for monotone epochs.
  Query = 4,
  /// Nudge the empty-batch publication retry path.
  RetryPublish = 5,
  /// Restart the ingest thread if a chaos kill took it down (no-op else).
  Restart = 6,
};

struct Op {
  OpKind kind = OpKind::Query;
  /// Event count (Submit) or query count (Query); ignored otherwise.
  std::uint16_t count = 0;

  friend bool operator==(const Op&, const Op&) = default;
};

/// Workload + chaos parameters for one schedule run. The schedule itself
/// (the op list) is passed separately so ddmin can vary it while the
/// config stays fixed.
struct ScheduleConfig {
  std::int32_t mesh_side = 16;
  std::size_t initial_faults = 6;
  /// Length of the seeded event stream the Submit ops consume. Ops past
  /// the end submit nothing; leftover events are submitted at quiesce so
  /// the expected final fault set never depends on the schedule shape.
  std::size_t events = 96;
  double repair_fraction = 0.45;
  std::uint64_t seed = 1;
  /// Chaos injected while the schedule runs (armed only during the ops;
  /// the quiesce phase disarms it).
  PlanSpec plan;
  /// Service shape; queue_capacity is clamped up to hold the whole stream
  /// so only chaos denials — never genuine overload — reject a Submit op.
  svc::ServiceConfig service;
};

struct ScheduleResult {
  /// Human-readable invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  std::uint64_t final_digest = 0;
  std::uint64_t expected_digest = 0;
  std::size_t final_faults = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t stale_epochs_pending = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_rejected = 0;
  std::uint64_t submit_retries = 0;
  std::uint64_t restarts = 0;
  PlanStats injected;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Seeded schedule generation: `ops` driver ops with a weighted kind mix
/// (submit/query heavy, occasional pause/resume/flush/nudge/restart).
[[nodiscard]] std::vector<Op> generate_schedule(std::uint64_t seed,
                                                std::size_t ops,
                                                std::size_t max_burst = 16);

/// Executes one schedule against a fresh Service and checks every
/// invariant, quiescing (disarm, restart, drain, retry) before the final
/// digest comparison.
[[nodiscard]] ScheduleResult run_schedule(const ScheduleConfig& config,
                                          const std::vector<Op>& schedule);

/// Failure predicate ddmin minimizes against: true = still failing. The
/// default (empty) oracle is `!run_schedule(config, ops).ok()`; tests
/// inject synthetic oracles to pin the minimization itself.
using ScheduleOracle =
    std::function<bool(const ScheduleConfig&, const std::vector<Op>&)>;

/// ddmin over the op list: returns the smallest subsequence of `schedule`
/// whose run still violates an invariant (or `schedule` itself if the
/// failure vanished). `runs` counts the executions spent shrinking.
[[nodiscard]] std::vector<Op> shrink_schedule(const ScheduleConfig& config,
                                              std::vector<Op> schedule,
                                              std::size_t* runs = nullptr,
                                              ScheduleOracle oracle = {});

/// One-line schedule rendering: "S8 P R F Q16 Y K" (S=submit, Q=query with
/// counts; P/R/F/Y/K = pause/resume/flush/retry-publish/restart).
[[nodiscard]] std::string to_string(const std::vector<Op>& schedule);

/// Inverse of `to_string`; nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<Op>> parse_schedule(
    std::string_view text);

}  // namespace ocp::chaos
