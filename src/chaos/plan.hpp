// Deterministic fault-injection plans for the serving runtime (src/svc).
//
// A `FaultPlan` is a seeded source of chaos decisions: given a spec of
// per-point probabilities (and hard kill schedules), it answers "should
// this submission be forced to Overloaded?", "what happens to this drained
// batch?", "is this publication poisoned?", "does the ingest thread die at
// this publish stamp?". Decisions are *counter-hashed*: the verdict for the
// i-th decision at a point is a pure function of (seed, point, i), so a
// plan replays identically however threads interleave around it — the
// property that lets a chaos run assert bit-identical final digests against
// an uninterrupted run over the same net fault set.
//
// Call sites hold a `ChaosConfig` — a plan pointer that is null by default.
// Every hook is a branch-on-null when chaos is disabled (the null-object
// discipline of obs::TraceConfig), so the serving hot paths pay nothing
// when no plan is installed; the committed BENCH_svc.json band is recorded
// with the hooks compiled in and disabled.
//
// The plan deliberately knows nothing about svc types: it deals in
// verdicts and counters only, so src/svc can depend on it without a cycle
// (the schedule explorer and load harness, which do need svc, live in
// chaos/schedule and chaos/harness).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ocp::chaos {

/// What a plan can inject; used to derive independent decision streams.
enum class Point : std::uint8_t {
  /// EventQueue::push — force a typed `Overloaded` rejection.
  SubmitDeny = 0,
  /// Ingest loop, per drained batch — append a duplicate of the batch.
  BatchDuplicate = 1,
  /// Ingest loop, per drained batch — hold the batch and prepend it to the
  /// next drain (a delayed batch; FIFO order is preserved).
  BatchDefer = 2,
  /// Ingest loop, per drained batch — stall mid-batch (between drain and
  /// apply) for a seeded duration while queries keep running.
  BatchStall = 3,
  /// IngestEngine publication gate — withhold the epoch via a poisoned
  /// oracle verdict (check::kChaosPoisoned).
  PoisonPublish = 4,
  /// IngestEngine, mid-batch — crash the ingest thread before the publish
  /// of a scheduled stamp completes.
  Kill = 5,
};

/// Seeded description of what to inject and how often. Probabilities are
/// per decision point; `max_*` caps bound the total injections so a
/// closed-loop run always drains to a quiesced, publishable state
/// (0 = unlimited).
struct PlanSpec {
  std::uint64_t seed = 1;

  double deny_submit = 0.0;
  std::uint64_t max_denies = 0;

  double duplicate_batch = 0.0;
  std::uint64_t max_duplicates = 0;

  double defer_batch = 0.0;
  std::uint64_t max_defers = 0;

  double stall_batch = 0.0;
  /// Stall duration for the i-th stall: seeded uniform in [1, stall_max_us].
  std::uint32_t stall_max_us = 200;
  std::uint64_t max_stalls = 0;

  double poison_publish = 0.0;
  std::uint64_t max_poisons = 0;

  /// Publish stamps (epoch numbers about to be created) at which the
  /// ingest thread is killed mid-batch. Each stamp kills exactly once:
  /// after the restart, the replayed batch publishes normally.
  std::vector<std::uint64_t> kill_at_stamps;
};

/// What happens to one drained batch.
struct BatchDecision {
  bool duplicate = false;
  bool defer = false;
  /// Microseconds to stall mid-batch (0 = no stall).
  std::uint32_t stall_us = 0;
};

/// Injections actually performed so far.
struct PlanStats {
  std::uint64_t denies = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t defers = 0;
  std::uint64_t stalls = 0;
  std::uint64_t poisons = 0;
  std::uint64_t kills = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(PlanSpec spec);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// One decision per call, keyed by an internal per-point counter.
  [[nodiscard]] bool deny_submit();
  [[nodiscard]] BatchDecision on_batch();
  [[nodiscard]] bool poison_publish();
  /// True exactly once per spec'd stamp: the caller must crash.
  [[nodiscard]] bool kill_now(std::uint64_t publish_stamp);

  /// Harness hook: arms one additional kill at `publish_stamp` after
  /// construction. The sharded schedule explorer uses this to target a live
  /// shard's *next* epoch — a stamp it cannot know when the plan is built.
  void arm_kill(std::uint64_t publish_stamp);

  /// Disarm turns every future decision into a no-op (injection counters
  /// keep their values); rearm restores the spec. Harnesses disarm a plan
  /// to drain a chaotic run to its final, publishable state.
  void disarm() { armed_.store(false, std::memory_order_relaxed); }
  void rearm() { armed_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] PlanStats stats() const;
  [[nodiscard]] const PlanSpec& spec() const noexcept { return spec_; }

 private:
  /// The i-th decision at `point`: true with probability `prob`, bounded by
  /// `cap` total takes. Deterministic in (seed, point, i).
  bool roll(Point point, double prob, std::uint64_t cap,
            std::atomic<std::uint64_t>& index,
            std::atomic<std::uint64_t>& taken);

  PlanSpec spec_;
  std::atomic<bool> armed_{true};

  std::atomic<std::uint64_t> deny_index_{0};
  std::atomic<std::uint64_t> batch_index_{0};
  std::atomic<std::uint64_t> poison_index_{0};

  std::atomic<std::uint64_t> denies_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> defers_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> poisons_{0};
  std::atomic<std::uint64_t> kills_{0};

  std::mutex kill_mu_;
  std::vector<std::uint64_t> pending_kills_;
};

/// The value-type handle chaos-instrumented code holds: a plan pointer
/// (null = disabled). Copy freely; default construction is the disabled
/// state and every hook is a single branch-on-null.
struct ChaosConfig {
  FaultPlan* plan = nullptr;

  [[nodiscard]] bool enabled() const noexcept { return plan != nullptr; }
  [[nodiscard]] bool deny_submit() const {
    return plan != nullptr && plan->deny_submit();
  }
  [[nodiscard]] BatchDecision on_batch() const {
    return plan != nullptr ? plan->on_batch() : BatchDecision{};
  }
  [[nodiscard]] bool poison_publish() const {
    return plan != nullptr && plan->poison_publish();
  }
  [[nodiscard]] bool kill_now(std::uint64_t publish_stamp) const {
    return plan != nullptr && plan->kill_now(publish_stamp);
  }
};

}  // namespace ocp::chaos
