#include "chaos/harness.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "analysis/trial_pool.hpp"
#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::chaos {

namespace {

/// Submits the whole stream with seeded backoff, never shedding. Returns
/// total retries.
std::uint64_t submit_stream(svc::Service& service,
                            const std::vector<svc::FaultEvent>& stream,
                            const svc::BackoffPolicy& backoff) {
  std::uint64_t retries = 0;
  for (const svc::FaultEvent& event : stream) {
    std::uint64_t attempt = 0;
    while (service.submit(event) != svc::SubmitStatus::Accepted) {
      ++retries;
      const std::uint32_t delay_us = backoff_delay_us(backoff, attempt++);
      if (delay_us == 0) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
    }
  }
  return retries;
}

}  // namespace

ChaosLoadResult run_chaos_load(const ChaosLoadConfig& config) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             mesh::Topology::Mesh);
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  const std::vector<std::uint64_t> worker_seeds =
      analysis::fork_trial_seeds(master, config.query_threads);

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<svc::FaultEvent> stream = svc::generate_event_stream(
      machine, initial, config.events, config.repair_fraction, stream_seed);

  ChaosLoadResult result;

  // Control: the same stream through an untouched service. Single-threaded
  // submit + flush is enough — the digest is timing-independent by the
  // runtime's own replay-identity contract.
  {
    svc::ServiceConfig clean_config = config.service;
    clean_config.queue_capacity =
        std::max(clean_config.queue_capacity, config.events + 16);
    svc::Service clean(initial, clean_config);
    result.submit_retries += submit_stream(clean, stream, {});
    clean.flush();
    const auto snap = clean.snapshot();
    result.clean_digest = snap->label_digest();
    result.clean_epoch = snap->epoch();
  }

  // Chaotic run: armed plan, racing query threads, supervisor restarts.
  FaultPlan plan(config.plan);
  svc::ServiceConfig chaos_config = config.service;
  chaos_config.queue_capacity =
      std::max(chaos_config.queue_capacity, 2 * config.events + 64);
  chaos_config.ingest.chaos.plan = &plan;
  svc::Service service(initial, chaos_config);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> max_stale{0};
  // Supervisor: restart a chaos-killed writer, track the staleness
  // high-water mark while the storm runs.
  std::thread monitor([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (service.ingest_crashed() && service.restart_ingest()) {
        restarts.fetch_add(1, std::memory_order_relaxed);
      }
      const std::uint64_t stale = service.stale_epochs_pending();
      std::uint64_t seen = max_stale.load(std::memory_order_relaxed);
      while (stale > seen &&
             !max_stale.compare_exchange_weak(seen, stale,
                                              std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::max(1u, config.monitor_poll_us)));
    }
  });

  struct WorkerRecord {
    std::size_t ok = 0;
    std::size_t rejected = 0;
    bool monotone = true;
  };
  std::vector<WorkerRecord> records(config.query_threads);
  std::vector<std::thread> workers;
  workers.reserve(config.query_threads);
  for (std::size_t t = 0; t < config.query_threads; ++t) {
    workers.emplace_back([&, t] {
      stats::Rng rng(worker_seeds[t]);
      WorkerRecord& rec = records[t];
      std::uint64_t last_epoch = 0;
      const auto node = [&] {
        return machine.coord(static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(machine.node_count()) - 1)));
      };
      for (std::size_t q = 0; q < config.queries_per_thread; ++q) {
        svc::QueryStatus status;
        std::uint64_t epoch;
        const double pick = rng.uniform();
        if (pick < 0.5) {
          const svc::StatusAnswer answer = service.query_status(node());
          status = answer.status;
          epoch = answer.epoch;
        } else if (pick < 0.8) {
          const svc::RegionAnswer answer = service.query_region(node());
          status = answer.status;
          epoch = answer.epoch;
        } else {
          const svc::RouteAnswer answer = service.query_route(node(), node());
          status = answer.status;
          epoch = answer.epoch;
        }
        if (status == svc::QueryStatus::Ok) {
          ++rec.ok;
          if (epoch < last_epoch) rec.monotone = false;
          last_epoch = std::max(last_epoch, epoch);
        } else {
          ++rec.rejected;
        }
      }
    });
  }

  svc::BackoffPolicy backoff = config.submit_backoff;
  if (backoff.base_us == 0) backoff.base_us = 2;  // never spin under chaos
  result.submit_retries += submit_stream(service, stream, backoff);

  for (std::thread& worker : workers) worker.join();

  // Drain the accepted backlog with the plan still ARMED: kill stamps are
  // keyed to publish stamps the epoch counter only reaches while the
  // backlog applies, so disarming while events are still queued would gate
  // off any stamp the storm had not reached yet. The supervisor keeps
  // restarting killed writers; this loop just waits (bounded) for the
  // queue to empty, polling instead of flush() so an adversarial plan
  // cannot wedge the barrier.
  for (int i = 0;
       i < 4000 && (service.ingest_crashed() || service.stats().queue_depth > 0);
       ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // Quiesce the chaotic run: stop injecting, let the supervisor catch any
  // in-flight kill, drain, and retry any withheld publication.
  plan.disarm();
  for (int i = 0; i < 8; ++i) {
    if (service.restart_ingest()) restarts.fetch_add(1);
    service.flush();
    if (!service.ingest_crashed()) break;
  }
  service.retry_publish();
  service.flush();
  done.store(true, std::memory_order_relaxed);
  monitor.join();

  const auto snap = service.snapshot();
  result.chaos_digest = snap->label_digest();
  result.chaos_epoch = snap->epoch();
  result.final_faults = snap->faults().size();
  result.digest_match = result.chaos_digest == result.clean_digest;
  result.stale_epochs_pending = service.stale_epochs_pending();
  result.max_stale_pending = max_stale.load(std::memory_order_relaxed);
  result.restarts = restarts.load(std::memory_order_relaxed);
  const svc::ServiceStats stats = service.stats();
  result.chaos_denied = stats.chaos_denied;
  result.stale_queries_served = stats.stale_queries_served;
  for (const WorkerRecord& rec : records) {
    result.queries_ok += rec.ok;
    result.queries_rejected += rec.rejected;
    result.epochs_monotone = result.epochs_monotone && rec.monotone;
  }
  result.injected = plan.stats();
  return result;
}

}  // namespace ocp::chaos
