// Chaos schedules for the allocation subsystem: kill the ingest writer
// mid-eviction-storm, replay, and prove the placement history converges.
//
// The driver owns a private `svc::IngestEngine` (epoch hook wired into an
// `AllocEngine`) and applies churn ONE EVENT PER BATCH. That granularity is
// the convergence argument: a chaos kill fires before the event mutates the
// labeling, `apply` reports the crash plus the unpublished backlog, and the
// driver synchronously restarts and replays (backlog first, interrupted
// event after) until the event lands. Each armed stamp kills exactly once,
// so replay terminates — and because the crash discarded nothing published
// and the epoch counter did not advance, the sequence of (epoch, dirty
// cells) turnovers the alloc engine observes is bit-identical to a run with
// no kills at all. `run_alloc_schedule` makes that the invariant: it
// executes the schedule twice — chaos armed, then a shadow run with the
// Kill ops stripped — and any difference in placement digest, label digest
// or final live set is a violation, as is an allocation-oracle failure at
// quiesce.
//
// Ops render as one-line repros ("J8 F4 W K F9 T4"): J=submit jobs,
// F=fault events, W=eviction storm (whirlwind), T=ticks, R=release,
// K=arm kill at the next publish stamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/engine.hpp"
#include "chaos/plan.hpp"

namespace ocp::chaos {

enum class AllocOpKind : std::uint8_t {
  /// Submit the next `count` jobs of the seeded job stream.
  SubmitJobs = 0,
  /// Apply the next `count` churn events, one per batch.
  Faults = 1,
  /// Apply the seeded clustered storm block, one event per batch (repeats
  /// coalesce away — the block stays faulty once injected).
  Storm = 2,
  /// Advance the alloc engine's virtual clock `count` ticks.
  Tick = 3,
  /// Release the `count` lowest live job ids.
  Release = 4,
  /// Arm a mid-batch kill at the ingest engine's next publish stamp.
  Kill = 5,
};

struct AllocOp {
  AllocOpKind kind = AllocOpKind::Tick;
  std::uint16_t count = 0;

  friend bool operator==(const AllocOp&, const AllocOp&) = default;
};

struct AllocScheduleConfig {
  std::int32_t mesh_side = 16;
  mesh::Topology topology = mesh::Topology::Mesh;
  std::size_t initial_faults = 6;
  /// Seeded churn stream length; Faults ops past the end apply nothing.
  std::size_t events = 64;
  double repair_fraction = 0.45;
  /// Seeded job stream length; SubmitJobs ops past the end submit nothing.
  std::size_t jobs = 64;
  std::int32_t max_job_side = 5;
  std::uint32_t min_lifetime = 4;
  std::uint32_t max_lifetime = 16;
  std::int32_t storm_side = 4;
  std::uint64_t seed = 1;
  alloc::StrategyKind strategy = alloc::StrategyKind::FirstFit;
  std::size_t queue_capacity = 32;
  std::uint32_t max_retries = 3;
};

struct AllocScheduleResult {
  /// Human-readable invariant violations; empty means the run passed.
  std::vector<std::string> violations;
  /// Chaotic run vs the kill-stripped shadow run.
  std::uint64_t placement_digest = 0;
  std::uint64_t expected_placement_digest = 0;
  std::uint64_t final_label_digest = 0;
  std::uint64_t expected_label_digest = 0;
  /// Mid-batch kills the driver crash-recovered from.
  std::uint64_t kills = 0;
  std::uint64_t epochs_published = 0;
  std::size_t live_final = 0;
  std::uint64_t storm_evictions = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Seeded schedule generation: submit/fault/tick-heavy mix with a
/// guaranteed Storm -> Kill -> Faults cluster at the midpoint (the
/// kill-during-eviction-storm scenario every generated schedule must
/// cover).
[[nodiscard]] std::vector<AllocOp> generate_alloc_schedule(
    std::uint64_t seed, std::size_t ops, std::size_t max_burst = 12);

/// Executes the schedule chaos-armed, then as a kill-stripped shadow, and
/// reports any divergence plus allocation-oracle violations at quiesce.
[[nodiscard]] AllocScheduleResult run_alloc_schedule(
    const AllocScheduleConfig& config, const std::vector<AllocOp>& schedule);

/// One-line repro rendering ("J8 F4 W K F9 T4").
[[nodiscard]] std::string to_string(const std::vector<AllocOp>& schedule);

}  // namespace ocp::chaos
