#include "chaos/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <memory>
#include <sstream>
#include <thread>

#include "fault/generators.hpp"
#include "stats/rng.hpp"

namespace ocp::chaos {

namespace {

/// Retries past this bound mean the schedule live-locked the submitter
/// (e.g. a crashed writer never restarted while the queue filled) — that is
/// itself an invariant violation, reported instead of hung on.
constexpr std::uint64_t kSubmitRetryLimit = 100000;

char op_letter(OpKind kind) {
  switch (kind) {
    case OpKind::Submit: return 'S';
    case OpKind::Pause: return 'P';
    case OpKind::Resume: return 'R';
    case OpKind::Flush: return 'F';
    case OpKind::Query: return 'Q';
    case OpKind::RetryPublish: return 'Y';
    case OpKind::Restart: return 'K';
  }
  return '?';
}

}  // namespace

std::vector<Op> generate_schedule(std::uint64_t seed, std::size_t ops,
                                  std::size_t max_burst) {
  stats::Rng rng(seed);
  const auto burst = [&rng, max_burst] {
    return static_cast<std::uint16_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::max<std::size_t>(1, max_burst))));
  };
  std::vector<Op> schedule;
  schedule.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    const double pick = rng.uniform();
    // Submit/query heavy so most schedules actually move state; barriers
    // and lifecycle ops are spice, not the meal.
    if (pick < 0.32) {
      schedule.push_back({OpKind::Submit, burst()});
    } else if (pick < 0.64) {
      schedule.push_back({OpKind::Query, burst()});
    } else if (pick < 0.74) {
      schedule.push_back({OpKind::Flush, 0});
    } else if (pick < 0.82) {
      schedule.push_back({OpKind::Pause, 0});
    } else if (pick < 0.92) {
      schedule.push_back({OpKind::Resume, 0});
    } else if (pick < 0.96) {
      schedule.push_back({OpKind::RetryPublish, 0});
    } else {
      schedule.push_back({OpKind::Restart, 0});
    }
  }
  return schedule;
}

ScheduleResult run_schedule(const ScheduleConfig& config,
                            const std::vector<Op>& schedule) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             mesh::Topology::Mesh);
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  stats::Rng query_rng(master.fork_seed());

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<svc::FaultEvent> stream = svc::generate_event_stream(
      machine, initial, config.events, config.repair_fraction, stream_seed);

  // The expected end state is schedule-independent: every stream event is
  // eventually submitted (leftovers at quiesce), nothing is ever shed, and
  // events are state-setting — so the net fault set is this shadow replay.
  grid::CellSet shadow = initial;
  for (const svc::FaultEvent& e : stream) {
    if (e.kind == svc::EventKind::Fault) {
      shadow.insert(e.node);
    } else {
      shadow.erase(e.node);
    }
  }

  FaultPlan plan(config.plan);
  svc::ServiceConfig svc_config = config.service;
  // Room for the whole stream plus crash-requeued backlogs: genuine
  // Overloaded must be impossible so the only denials are chaos's.
  svc_config.queue_capacity =
      std::max(svc_config.queue_capacity, 2 * config.events + 64);
  svc_config.ingest.chaos.plan = &plan;
  svc::Service service(initial, svc_config);

  ScheduleResult result;
  std::size_t next_event = 0;
  std::uint64_t last_epoch = 0;

  const auto violate = [&result](std::string what) {
    result.violations.push_back(std::move(what));
  };
  const auto note_epoch = [&](std::uint64_t epoch, const char* where) {
    if (epoch < last_epoch) {
      std::ostringstream msg;
      msg << where << ": epoch went backwards (" << last_epoch << " -> "
          << epoch << ")";
      violate(msg.str());
    }
    last_epoch = std::max(last_epoch, epoch);
  };

  const auto submit_n = [&](std::size_t n) {
    const svc::BackoffPolicy backoff{.seed = config.seed};
    for (; n > 0 && next_event < stream.size(); --n, ++next_event) {
      std::uint64_t attempt = 0;
      for (;;) {
        const svc::SubmitStatus status = service.submit(stream[next_event]);
        if (status == svc::SubmitStatus::Accepted) break;
        if (status == svc::SubmitStatus::Closed) {
          violate("submit: queue reported Closed while the service runs");
          return;
        }
        ++result.submit_retries;
        if (attempt >= kSubmitRetryLimit) {
          violate("submit: live-locked retrying an Overloaded verdict");
          return;
        }
        const std::uint32_t delay_us = backoff_delay_us(backoff, attempt++);
        if (delay_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
      }
    }
  };

  const auto query_burst = [&](std::size_t n) {
    for (std::size_t q = 0; q < n; ++q) {
      const auto node = [&] {
        return machine.coord(static_cast<std::size_t>(query_rng.uniform_int(
            0, static_cast<std::int64_t>(machine.node_count()) - 1)));
      };
      const double pick = query_rng.uniform();
      svc::QueryStatus status;
      std::uint64_t epoch;
      if (pick < 0.5) {
        const svc::StatusAnswer answer = service.query_status(node());
        status = answer.status;
        epoch = answer.epoch;
      } else if (pick < 0.8) {
        const svc::RegionAnswer answer = service.query_region(node());
        status = answer.status;
        epoch = answer.epoch;
      } else {
        const svc::RouteAnswer answer = service.query_route(node(), node());
        status = answer.status;
        epoch = answer.epoch;
      }
      if (status != svc::QueryStatus::Ok) {
        // Degraded-mode guarantee: valid queries answer from the last good
        // epoch no matter what chaos does to the write side.
        std::ostringstream msg;
        msg << "query: expected Ok, got " << svc::to_string(status);
        violate(msg.str());
        ++result.queries_rejected;
      } else {
        ++result.queries_ok;
        note_epoch(epoch, "query");
      }
    }
  };

  for (const Op& op : schedule) {
    switch (op.kind) {
      case OpKind::Submit:
        submit_n(op.count);
        break;
      case OpKind::Pause:
        service.pause();
        break;
      case OpKind::Resume:
        service.resume();
        break;
      case OpKind::Flush: {
        service.flush();
        const svc::ServiceStats stats = service.stats();
        if (!stats.ingest_crashed && stats.queue_depth != 0) {
          violate("flush: returned with a non-empty queue and a live writer");
        }
        break;
      }
      case OpKind::Query:
        query_burst(op.count);
        break;
      case OpKind::RetryPublish:
        service.retry_publish();
        break;
      case OpKind::Restart:
        if (service.restart_ingest()) ++result.restarts;
        break;
    }
  }

  // Quiesce: no further injections, every event delivered and drained, any
  // pending kill already disarmed, withheld publications retried. The loop
  // bound is defensive — one pass suffices once the plan is disarmed.
  plan.disarm();
  submit_n(stream.size() - next_event);
  service.resume();
  for (int i = 0; i < 8; ++i) {
    if (service.restart_ingest()) ++result.restarts;
    service.flush();
    if (!service.ingest_crashed()) break;
  }
  service.retry_publish();
  service.flush();

  const std::shared_ptr<const svc::Snapshot> snap = service.snapshot();
  result.final_digest = snap->label_digest();
  result.final_faults = snap->faults().size();
  result.final_epoch = snap->epoch();
  result.stale_epochs_pending = service.stale_epochs_pending();
  note_epoch(result.final_epoch, "final");
  const labeling::MaintainedLabeling expected(shadow,
                                              svc_config.ingest.definition);
  result.expected_digest =
      svc::Snapshot::build(0, expected, svc_config.ingest.hand)->label_digest();
  if (result.final_digest != result.expected_digest) {
    std::ostringstream msg;
    msg << "digest: final labeling diverged from the net fault set ("
        << std::hex << result.final_digest << " != " << result.expected_digest
        << std::dec << ", " << result.final_faults << " vs " << shadow.size()
        << " faults)";
    violate(msg.str());
  }
  if (result.stale_epochs_pending != 0) {
    violate("staleness: watermark non-zero after quiesce");
  }
  result.injected = plan.stats();
  return result;
}

std::vector<ShardedOp> generate_sharded_schedule(std::uint64_t seed,
                                                 std::size_t ops,
                                                 std::uint32_t shards,
                                                 std::size_t max_burst) {
  stats::Rng rng(seed);
  const auto burst = [&rng, max_burst] {
    return static_cast<std::uint16_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::max<std::size_t>(1, max_burst))));
  };
  const auto shard = [&rng, shards] {
    return static_cast<std::uint8_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(std::max<std::uint32_t>(1, shards)) - 1));
  };
  std::vector<ShardedOp> schedule;
  schedule.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    const double pick = rng.uniform();
    // Kill/restart ops are frequent by single-writer standards: the whole
    // point of the sharded explorer is shards dying mid-gossip.
    if (pick < 0.34) {
      schedule.push_back({ShardedOpKind::Submit, burst(), 0});
    } else if (pick < 0.62) {
      schedule.push_back({ShardedOpKind::Query, burst(), 0});
    } else if (pick < 0.74) {
      schedule.push_back({ShardedOpKind::Flush, 0, 0});
    } else if (pick < 0.87) {
      schedule.push_back({ShardedOpKind::KillShard, burst(), shard()});
    } else {
      schedule.push_back({ShardedOpKind::RestartShard, 0, shard()});
    }
  }
  return schedule;
}

ShardedScheduleResult run_sharded_schedule(
    const ShardedScheduleConfig& config,
    const std::vector<ShardedOp>& schedule) {
  const mesh::Mesh2D machine(config.mesh_side, config.mesh_side,
                             config.topology);
  stats::Rng master(config.seed);
  stats::Rng fault_rng(master.fork_seed());
  const std::uint64_t stream_seed = master.fork_seed();
  stats::Rng query_rng(master.fork_seed());

  const grid::CellSet initial =
      fault::uniform_random(machine, config.initial_faults, fault_rng);
  const std::vector<svc::FaultEvent> stream = svc::generate_event_stream(
      machine, initial, config.events, config.repair_fraction, stream_seed);

  // Schedule-independent expected end state: leftovers are submitted at
  // quiesce and events are state-setting, so the net fault set is this
  // shadow replay regardless of op order, kills or gossip interleaving.
  grid::CellSet shadow = initial;
  for (const svc::FaultEvent& e : stream) {
    if (e.kind == svc::EventKind::Fault) {
      shadow.insert(e.node);
    } else {
      shadow.erase(e.node);
    }
  }

  svc::ShardedServiceConfig svc_config = config.service;
  svc_config.queue_capacity =
      std::max(svc_config.queue_capacity, 2 * config.events + 64);
  const svc::ShardGrid grid(machine, svc_config.shard_rows,
                            svc_config.shard_cols);
  const std::uint32_t shard_count = grid.count();

  // One plan per shard, no probabilistic injections: kills are armed
  // dynamically (arm_kill) against the victim's live epoch, so the schedule
  // — not the spec — decides who dies and when.
  std::vector<std::unique_ptr<FaultPlan>> plans;
  plans.reserve(shard_count);
  svc_config.shard_chaos.clear();
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    plans.push_back(std::make_unique<FaultPlan>(
        PlanSpec{.seed = config.seed + s}));
    svc_config.shard_chaos.push_back(ChaosConfig{plans.back().get()});
  }
  svc::ShardedService service(initial, svc_config);

  ShardedScheduleResult result;
  std::size_t next_event = 0;
  std::vector<std::uint64_t> last_epochs(shard_count, 0);

  const auto violate = [&result](std::string what) {
    result.violations.push_back(std::move(what));
  };
  const auto note_epoch = [&](std::uint32_t shard, std::uint64_t epoch,
                              const char* where) {
    if (epoch < last_epochs[shard]) {
      std::ostringstream msg;
      msg << where << ": shard " << shard << " epoch went backwards ("
          << last_epochs[shard] << " -> " << epoch << ")";
      violate(msg.str());
    }
    last_epochs[shard] = std::max(last_epochs[shard], epoch);
  };

  const auto submit_n = [&](std::size_t n) {
    const svc::BackoffPolicy backoff{.seed = config.seed};
    for (; n > 0 && next_event < stream.size(); --n, ++next_event) {
      std::uint64_t attempt = 0;
      for (;;) {
        const svc::SubmitStatus status = service.submit(stream[next_event]);
        if (status == svc::SubmitStatus::Accepted) break;
        if (status == svc::SubmitStatus::Closed) {
          violate("submit: queue reported Closed while the service runs");
          return;
        }
        ++result.submit_retries;
        if (attempt >= kSubmitRetryLimit) {
          violate("submit: live-locked retrying an Overloaded verdict");
          return;
        }
        const std::uint32_t delay_us = backoff_delay_us(backoff, attempt++);
        if (delay_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
      }
    }
  };

  const auto query_burst = [&](std::size_t n) {
    for (std::size_t q = 0; q < n; ++q) {
      const auto node = [&] {
        return machine.coord(static_cast<std::size_t>(query_rng.uniform_int(
            0, static_cast<std::int64_t>(machine.node_count()) - 1)));
      };
      const double pick = query_rng.uniform();
      svc::QueryStatus status;
      std::uint64_t epoch;
      mesh::Coord owner_key;
      if (pick < 0.5) {
        const mesh::Coord n0 = node();
        const svc::StatusAnswer answer = service.query_status(n0);
        status = answer.status;
        epoch = answer.epoch;
        owner_key = n0;
      } else if (pick < 0.8) {
        const mesh::Coord n0 = node();
        const svc::RegionAnswer answer = service.query_region(n0);
        status = answer.status;
        epoch = answer.epoch;
        owner_key = n0;
      } else {
        const mesh::Coord src = node();
        const svc::RouteAnswer answer = service.query_route(src, node());
        status = answer.status;
        epoch = answer.epoch;
        owner_key = src;  // a route answer's epoch is the source owner's
      }
      if (status != svc::QueryStatus::Ok) {
        // Degraded-mode guarantee: point queries answer from the owner's
        // last good epoch even while a sibling shard is down.
        std::ostringstream msg;
        msg << "query: expected Ok, got " << svc::to_string(status);
        violate(msg.str());
      } else {
        ++result.queries_ok;
        note_epoch(service.shard_of(owner_key), epoch, "query");
      }
    }
  };

  for (const ShardedOp& op : schedule) {
    const std::uint32_t target = op.shard % shard_count;
    switch (op.kind) {
      case ShardedOpKind::Submit:
        submit_n(op.count);
        break;
      case ShardedOpKind::Flush: {
        service.flush();
        const svc::ShardedStats stats = service.stats();
        if (stats.shards_crashed == 0 && stats.queue_depth != 0) {
          violate("flush: returned with a non-empty queue and live writers");
        }
        break;
      }
      case ShardedOpKind::Query:
        query_burst(op.count);
        break;
      case ShardedOpKind::KillShard: {
        // Arm the kill at the victim's next publish, then push a burst: the
        // burst is what makes the victim publish (and die) while neighbors
        // keep draining the halo deltas its last good batches emitted.
        const std::uint64_t next_epoch =
            service.stats().shard_epochs[target] + 1;
        plans[target]->arm_kill(next_epoch);
        submit_n(op.count);
        break;
      }
      case ShardedOpKind::RestartShard:
        if (service.restart_shard(target)) ++result.restarts;
        break;
    }
  }

  // Quiesce: disarm every plan (un-fired armed kills become no-ops), submit
  // leftovers, then restart + flush until the whole fleet is alive and at
  // fixpoint. The loop bound is defensive — one pass suffices disarmed.
  for (const auto& plan : plans) plan->disarm();
  submit_n(stream.size() - next_event);
  for (int i = 0; i < 8; ++i) {
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      if (service.restart_shard(s)) ++result.restarts;
    }
    service.flush();
    if (!service.any_shard_crashed()) break;
  }
  service.flush();

  result.final_digest = service.composite_digest();
  const svc::ShardedStats stats = service.stats();
  result.halo_deltas = stats.halo_deltas;
  result.halo_events = stats.halo_events;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    note_epoch(s, stats.shard_epochs[s], "final");
    result.kills += plans[s]->stats().kills;
  }
  const labeling::MaintainedLabeling expected(shadow,
                                              svc_config.ingest.definition);
  const std::shared_ptr<const svc::Snapshot> expected_snap =
      svc::Snapshot::build(0, expected, svc_config.ingest.hand);
  result.expected_digest = expected_snap->label_digest();
  result.final_faults = expected_snap->faults().size();
  if (result.final_digest != result.expected_digest) {
    std::ostringstream msg;
    msg << "digest: composite labeling diverged from the net fault set ("
        << std::hex << result.final_digest << " != " << result.expected_digest
        << std::dec << ")";
    violate(msg.str());
  }
  return result;
}

std::vector<Op> shrink_schedule(const ScheduleConfig& config,
                                std::vector<Op> schedule, std::size_t* runs,
                                ScheduleOracle oracle) {
  std::size_t executed = 0;
  const auto fails = [&](const std::vector<Op>& candidate) {
    ++executed;
    if (oracle) return oracle(config, candidate);
    return !run_schedule(config, candidate).ok();
  };
  if (!fails(schedule)) {
    if (runs) *runs = executed;
    return schedule;  // not a failing schedule; nothing to shrink
  }
  // ddmin: drop chunks while the violation reproduces, halving chunk size
  // when no chunk can go (same discipline as check::shrink_faults).
  std::size_t chunk = std::max<std::size_t>(1, schedule.size() / 2);
  while (!schedule.empty()) {
    bool reduced = false;
    for (std::size_t start = 0; start < schedule.size(); start += chunk) {
      std::vector<Op> candidate;
      candidate.reserve(schedule.size());
      candidate.insert(candidate.end(), schedule.begin(),
                       schedule.begin() + static_cast<std::ptrdiff_t>(start));
      const std::size_t stop = std::min(schedule.size(), start + chunk);
      candidate.insert(candidate.end(),
                       schedule.begin() + static_cast<std::ptrdiff_t>(stop),
                       schedule.end());
      if (fails(candidate)) {
        schedule = std::move(candidate);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<std::size_t>(1, schedule.size() / 2));
    }
  }
  if (runs) *runs = executed;
  return schedule;
}

std::string to_string(const std::vector<Op>& schedule) {
  std::ostringstream out;
  bool first = true;
  for (const Op& op : schedule) {
    if (!first) out << ' ';
    first = false;
    out << op_letter(op.kind);
    if (op.kind == OpKind::Submit || op.kind == OpKind::Query) {
      out << op.count;
    }
  }
  return out.str();
}

std::optional<std::vector<Op>> parse_schedule(std::string_view text) {
  std::vector<Op> schedule;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
      continue;
    }
    Op op;
    switch (text[i]) {
      case 'S': op.kind = OpKind::Submit; break;
      case 'Q': op.kind = OpKind::Query; break;
      case 'P': op.kind = OpKind::Pause; break;
      case 'R': op.kind = OpKind::Resume; break;
      case 'F': op.kind = OpKind::Flush; break;
      case 'Y': op.kind = OpKind::RetryPublish; break;
      case 'K': op.kind = OpKind::Restart; break;
      default: return std::nullopt;
    }
    ++i;
    if (op.kind == OpKind::Submit || op.kind == OpKind::Query) {
      const char* begin = text.data() + i;
      const char* end = text.data() + text.size();
      std::uint16_t count = 0;
      const auto [ptr, ec] = std::from_chars(begin, end, count);
      if (ec != std::errc{} || ptr == begin) return std::nullopt;
      op.count = count;
      i += static_cast<std::size_t>(ptr - begin);
    }
    schedule.push_back(op);
  }
  return schedule;
}

}  // namespace ocp::chaos
