// Chaos load harness: one chaotic closed-loop run, one clean control run,
// digest-compared.
//
// `run_chaos_load` replays the same seeded event stream twice through a
// `svc::Service` — once with an armed chaos plan (denied admissions,
// duplicated / deferred / stalled batches, poisoned oracle verdicts,
// mid-batch kills with restart) while query threads race it, and once
// untouched — then asserts the degraded-mode contract: the chaotic run's
// final published labeling is bit-identical (`label_digest`) to the clean
// run's, every query thread observed monotone epochs, and the staleness
// watermark drained to zero. A monitor thread plays supervisor: it polls
// for a killed ingest thread and restarts it, the way an init system would
// restart a crashed process.
//
// This is the engine behind the `chaos`-labeled ctests (1/2/8 query
// threads) and the `bench/chaos_soak` CLI's seed sweeps.
#pragma once

#include <cstdint>

#include "chaos/plan.hpp"
#include "svc/loadgen.hpp"

namespace ocp::chaos {

struct ChaosLoadConfig {
  std::int32_t mesh_side = 24;
  std::size_t initial_faults = 8;
  std::size_t events = 192;
  double repair_fraction = 0.45;
  std::size_t query_threads = 2;
  std::size_t queries_per_thread = 400;
  std::uint64_t seed = 1;
  /// Injections for the chaotic run; the control run never sees a plan.
  PlanSpec plan;
  /// Supervisor poll interval for crashed-writer restarts.
  std::uint32_t monitor_poll_us = 50;
  svc::BackoffPolicy submit_backoff;
  svc::ServiceConfig service;
};

struct ChaosLoadResult {
  /// `label_digest` of the final quiesced snapshot of each run; the
  /// acceptance invariant is `digest_match` (chaos changed nothing about
  /// the converged state).
  std::uint64_t clean_digest = 0;
  std::uint64_t chaos_digest = 0;
  bool digest_match = false;
  std::size_t final_faults = 0;
  /// Epoch counts CAN differ between the runs (defers merge batches,
  /// withheld epochs retry); exposed for reporting, not asserted.
  std::uint64_t clean_epoch = 0;
  std::uint64_t chaos_epoch = 0;

  /// Chaotic-run observations.
  PlanStats injected;
  std::uint64_t restarts = 0;
  std::uint64_t submit_retries = 0;
  std::uint64_t chaos_denied = 0;
  std::uint64_t stale_queries_served = 0;
  std::uint64_t max_stale_pending = 0;
  std::size_t queries_ok = 0;
  std::size_t queries_rejected = 0;
  bool epochs_monotone = true;
  /// Staleness watermark after quiesce (must be 0).
  std::uint64_t stale_epochs_pending = 0;

  [[nodiscard]] bool ok() const noexcept {
    return digest_match && epochs_monotone && stale_epochs_pending == 0;
  }
};

[[nodiscard]] ChaosLoadResult run_chaos_load(const ChaosLoadConfig& config);

}  // namespace ocp::chaos
