#include "mesh/mesh2d.hpp"

namespace ocp::mesh {

const char* to_string(Topology t) noexcept {
  return t == Topology::Mesh ? "mesh" : "torus";
}

std::string Mesh2D::describe() const {
  return std::to_string(width_) + "x" + std::to_string(height_) + " " +
         to_string(topology_);
}

}  // namespace ocp::mesh
