// 2-D mesh / torus topology (Wu, IPPS 2001, section 2).
//
// A `Mesh2D` describes an `width x height` grid of nodes with addresses
// (x, y), 0 <= x < width, 0 <= y < height. In `Topology::Mesh` mode, boundary
// nodes have fewer than four physical neighbors; the labeling algorithms treat
// the missing neighbors as "ghost nodes" — permanently safe/enabled virtual
// nodes on four additional lines adjacent to the mesh boundary (paper,
// section 3). In `Topology::Torus` mode every node has four neighbors via
// wraparound links and no ghost nodes exist (the paper's footnote 1).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "mesh/coord.hpp"
#include "mesh/neighborhood.hpp"

namespace ocp::mesh {

/// Interconnect flavor: open mesh (ghost boundary) or wraparound torus.
enum class Topology : std::uint8_t { Mesh = 0, Torus = 1 };

[[nodiscard]] const char* to_string(Topology t) noexcept;

/// An immutable description of a 2-D mesh-connected multicomputer.
class Mesh2D {
 public:
  /// Builds a `width x height` machine. Both extents must be positive.
  constexpr Mesh2D(std::int32_t width, std::int32_t height,
                   Topology topology = Topology::Mesh)
      : width_(width), height_(height), topology_(topology) {
    assert(width > 0 && height > 0);
  }

  /// Convenience for the paper's square `n x n` mesh.
  [[nodiscard]] static constexpr Mesh2D square(std::int32_t n,
                                               Topology t = Topology::Mesh) {
    return Mesh2D(n, n, t);
  }

  [[nodiscard]] constexpr std::int32_t width() const noexcept { return width_; }
  [[nodiscard]] constexpr std::int32_t height() const noexcept {
    return height_;
  }
  [[nodiscard]] constexpr Topology topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] constexpr bool is_torus() const noexcept {
    return topology_ == Topology::Torus;
  }

  /// Total number of nodes.
  [[nodiscard]] constexpr std::int64_t node_count() const noexcept {
    return static_cast<std::int64_t>(width_) * height_;
  }

  /// Network diameter: 2(n-1) for an n x n mesh; floor(w/2)+floor(h/2) for a
  /// torus.
  [[nodiscard]] constexpr std::int32_t diameter() const noexcept {
    if (is_torus()) return width_ / 2 + height_ / 2;
    return (width_ - 1) + (height_ - 1);
  }

  /// True when `c` addresses a physical node.
  [[nodiscard]] constexpr bool contains(Coord c) const noexcept {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  /// True when `c` lies on one of the four ghost lines adjacent to the mesh
  /// boundary (mesh mode only; a torus has no ghost nodes).
  [[nodiscard]] constexpr bool is_ghost(Coord c) const noexcept {
    if (is_torus()) return false;
    if (contains(c)) return false;
    return c.x >= -1 && c.x <= width_ && c.y >= -1 && c.y <= height_ &&
           // Corners of the ghost frame are not adjacent to any mesh node.
           !((c.x == -1 || c.x == width_) && (c.y == -1 || c.y == height_));
  }

  /// Dense row-major index of a node; valid only when `contains(c)`.
  [[nodiscard]] constexpr std::size_t index(Coord c) const noexcept {
    assert(contains(c));
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(c.x);
  }

  /// Inverse of `index`.
  [[nodiscard]] constexpr Coord coord(std::size_t i) const noexcept {
    assert(i < static_cast<std::size_t>(node_count()));
    const auto w = static_cast<std::size_t>(width_);
    return {static_cast<std::int32_t>(i % w), static_cast<std::int32_t>(i / w)};
  }

  /// Canonicalizes a coordinate: identity on a mesh, modular wrap on a torus.
  [[nodiscard]] constexpr Coord wrap(Coord c) const noexcept {
    if (!is_torus()) return c;
    auto m = [](std::int32_t v, std::int32_t n) {
      const std::int32_t r = v % n;
      return r < 0 ? r + n : r;
    };
    return {m(c.x, width_), m(c.y, height_)};
  }

  /// The physical neighbor of `c` in direction `d`, or nullopt when the link
  /// leaves the machine (mesh boundary). On a torus every direction yields a
  /// neighbor.
  [[nodiscard]] constexpr std::optional<Coord> neighbor(Coord c,
                                                        Dir d) const noexcept {
    assert(contains(c));
    const Coord n = c.step(d);
    if (contains(n)) return n;
    if (is_torus()) return wrap(n);
    return std::nullopt;
  }

  /// All physical neighbors of `c` (2..4 on a mesh, exactly 4 on a torus),
  /// in `kAllDirs` order.
  [[nodiscard]] Neighborhood neighbors(Coord c) const noexcept {
    Neighborhood out;
    for (Dir d : kAllDirs) {
      if (auto n = neighbor(c, d)) out.push_back({d, *n});
    }
    return out;
  }

  /// Routing distance between two nodes: Manhattan on a mesh, per-dimension
  /// minimum of direct vs wraparound hops on a torus.
  [[nodiscard]] constexpr std::int32_t distance(Coord a,
                                                Coord b) const noexcept {
    assert(contains(a) && contains(b));
    if (!is_torus()) return manhattan(a, b);
    auto axial = [](std::int32_t u, std::int32_t v, std::int32_t n) {
      const std::int32_t d = std::abs(u - v);
      return d < n - d ? d : n - d;
    };
    return axial(a.x, b.x, width_) + axial(a.y, b.y, height_);
  }

  /// True when `a` and `b` share a link (including torus wraparound links).
  [[nodiscard]] constexpr bool linked(Coord a, Coord b) const noexcept {
    return distance(a, b) == 1;
  }

  friend constexpr bool operator==(const Mesh2D&, const Mesh2D&) = default;

  /// "100x100 mesh" / "16x8 torus" — for logs and experiment headers.
  [[nodiscard]] std::string describe() const;

 private:
  std::int32_t width_;
  std::int32_t height_;
  Topology topology_;
};

}  // namespace ocp::mesh
