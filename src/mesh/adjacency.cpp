#include "mesh/adjacency.hpp"

#include <memory>

namespace ocp::mesh {

AdjacencyTable::AdjacencyTable(const Mesh2D& m)
    : mesh_(m), node_count_(static_cast<std::size_t>(m.node_count())) {
  const std::int32_t w = m.width();
  const std::int32_t h = m.height();
  const bool torus = m.is_torus();

  dir_nbr_.resize(node_count_ * kNumDirs);
  dense_nbr_.resize(node_count_ * kNumDirs);
  ghost_flags_.resize(node_count_ * kNumDirs);
  offsets_.resize(node_count_ + 1);
  targets_.reserve(node_count_ * kNumDirs);

  // Closed-form neighbor indices in the row-major layout: East/West are
  // +/-1, North/South are +/-width; boundary nodes wrap (torus) or get the
  // ghost sentinel (open mesh). Matches `Mesh2D::neighbor` exactly (asserted
  // in tests) without its per-query coordinate math.
  const std::int32_t wrap_x = torus ? w - 1 : kGhost;
  const std::int32_t wrap_y = torus ? (h - 1) * w : kGhost;

  std::int32_t filled = 0;
  std::int32_t i = 0;
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x, ++i) {
      offsets_[static_cast<std::size_t>(i)] = filled;
      std::int32_t* row = &dir_nbr_[static_cast<std::size_t>(i) * kNumDirs];
      row[static_cast<std::size_t>(Dir::East)] =
          x + 1 < w ? i + 1 : (torus ? i - wrap_x : kGhost);
      row[static_cast<std::size_t>(Dir::West)] =
          x > 0 ? i - 1 : (torus ? i + wrap_x : kGhost);
      row[static_cast<std::size_t>(Dir::North)] =
          y + 1 < h ? i + w : (torus ? i - wrap_y : kGhost);
      row[static_cast<std::size_t>(Dir::South)] =
          y > 0 ? i - w : (torus ? i + wrap_y : kGhost);
      std::int32_t* drow = &dense_nbr_[static_cast<std::size_t>(i) * kNumDirs];
      std::uint8_t* grow =
          &ghost_flags_[static_cast<std::size_t>(i) * kNumDirs];
      for (std::size_t slot = 0; slot < kNumDirs; ++slot) {
        if (row[slot] != kGhost) {
          drow[slot] = row[slot];
          grow[slot] = 0;
          targets_.push_back(row[slot]);
          ++filled;
        } else {
          drow[slot] = static_cast<std::int32_t>(node_count_);  // pad index
          grow[slot] = 1;
        }
      }
    }
  }
  offsets_[node_count_] = filled;
}

const AdjacencyTable& AdjacencyTable::cached(const Mesh2D& m) {
  // One-entry per-thread cache: experiment sweeps run thousands of pipelines
  // on a single machine shape, and OpenMP trial workers each get their own
  // slot so no synchronization is needed.
  thread_local std::unique_ptr<AdjacencyTable> cache;
  if (!cache || !(cache->mesh() == m)) {
    cache = std::make_unique<AdjacencyTable>(m);
  }
  return *cache;
}

}  // namespace ocp::mesh
