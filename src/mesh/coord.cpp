#include "mesh/coord.hpp"

#include <ostream>

namespace ocp::mesh {

const char* to_string(Dir d) noexcept {
  switch (d) {
    case Dir::East: return "E";
    case Dir::West: return "W";
    case Dir::North: return "N";
    case Dir::South: return "S";
  }
  return "?";
}

std::string to_string(Coord c) {
  return "(" + std::to_string(c.x) + ", " + std::to_string(c.y) + ")";
}

std::ostream& operator<<(std::ostream& os, Coord c) {
  return os << to_string(c);
}

}  // namespace ocp::mesh
