// Fixed-capacity neighbor list: a 2-D mesh node has at most four neighbors,
// so neighbor queries never need heap allocation.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>

#include "mesh/coord.hpp"

namespace ocp::mesh {

/// One adjacent node together with the direction that reaches it.
struct Link {
  Dir dir;
  Coord to;

  friend constexpr bool operator==(const Link&, const Link&) = default;
};

/// A small inline vector of up to four links.
class Neighborhood {
 public:
  using value_type = Link;
  using const_iterator = const Link*;

  constexpr Neighborhood() = default;

  constexpr void push_back(Link l) noexcept {
    assert(size_ < kNumDirs);
    links_[size_++] = l;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] constexpr const Link& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return links_[i];
  }

  [[nodiscard]] constexpr const_iterator begin() const noexcept {
    return links_.data();
  }
  [[nodiscard]] constexpr const_iterator end() const noexcept {
    return links_.data() + size_;
  }

 private:
  std::array<Link, kNumDirs> links_{};
  std::size_t size_ = 0;
};

}  // namespace ocp::mesh
