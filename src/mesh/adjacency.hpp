// Precomputed flat adjacency of a 2-D mesh / torus (CSR layout).
//
// `Mesh2D::neighbor()` answers one query with coordinate arithmetic, bounds
// checks and an `std::optional` — fine for geometry code, too slow for the
// labeling round loop that asks the same four questions for every node every
// round. An `AdjacencyTable` asks them once per node at construction and
// stores the answers as flat index arrays, so the hot loop is pure index
// arithmetic over contiguous memory:
//
//  * `dir_row(i)` — four `std::int32_t` per node in `kAllDirs` order; the
//    neighbor's dense index, or `kGhost` where the open-mesh boundary
//    substitutes a ghost node (paper, section 3).
//  * `physical_neighbors(i)` — CSR (offsets + targets) over the 2..4 real
//    links, for frontier expansion and message accounting.
//
// The table is immutable and valid for exactly the `Mesh2D` it was built
// from (which it stores by value; a `Mesh2D` is three ints).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "mesh/mesh2d.hpp"

namespace ocp::mesh {

class AdjacencyTable {
 public:
  /// Sentinel in `dir_row`: no physical neighbor in that direction (the
  /// open-mesh ghost frame). Never appears on a torus.
  static constexpr std::int32_t kGhost = -1;

  explicit AdjacencyTable(const Mesh2D& m);

  /// Thread-local one-entry cache: returns a table for `m`, rebuilding only
  /// when the calling thread last asked for a *different* machine. The
  /// reference stays valid until this thread's next `cached()` call with
  /// another mesh — callers must not hold it across such calls.
  [[nodiscard]] static const AdjacencyTable& cached(const Mesh2D& m);

  [[nodiscard]] const Mesh2D& mesh() const noexcept { return mesh_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_count_;
  }

  /// The four per-direction entries of node `i`, in `kAllDirs` order.
  [[nodiscard]] const std::int32_t* dir_row(std::size_t i) const noexcept {
    assert(i < node_count_);
    return &dir_nbr_[i * kNumDirs];
  }

  /// Branchless variant of `dir_row`: ghost slots hold `node_count()` (the
  /// pad index) instead of `kGhost`, so a message plane padded with one
  /// trailing ghost entry can be indexed unconditionally.
  [[nodiscard]] const std::int32_t* dense_row(std::size_t i) const noexcept {
    assert(i < node_count_);
    return &dense_nbr_[i * kNumDirs];
  }

  /// Per-direction ghost flags of node `i` (1 where the neighbor is a
  /// ghost), laid out as four bytes so an inbox's `from_ghost` row can be
  /// filled with a single 4-byte copy.
  [[nodiscard]] const std::uint8_t* ghost_row(std::size_t i) const noexcept {
    assert(i < node_count_);
    return &ghost_flags_[i * kNumDirs];
  }

  /// Dense index of the neighbor of `i` in direction `d`, or `kGhost`.
  [[nodiscard]] std::int32_t neighbor_index(std::size_t i,
                                            Dir d) const noexcept {
    return dir_row(i)[static_cast<std::size_t>(d)];
  }

  /// Number of physical links of node `i` (2..4 on a mesh, 4 on a torus).
  [[nodiscard]] std::int32_t degree(std::size_t i) const noexcept {
    assert(i < node_count_);
    return offsets_[i + 1] - offsets_[i];
  }

  /// Dense indices of the physical neighbors of `i` (CSR slice).
  [[nodiscard]] std::span<const std::int32_t> physical_neighbors(
      std::size_t i) const noexcept {
    assert(i < node_count_);
    return {targets_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  /// Sum of all node degrees (= directed link count).
  [[nodiscard]] std::uint64_t total_degree() const noexcept {
    return targets_.size();
  }

 private:
  Mesh2D mesh_;
  std::size_t node_count_;
  std::vector<std::int32_t> dir_nbr_;    // node_count * kNumDirs, kGhost holes
  std::vector<std::int32_t> dense_nbr_;  // same, ghost -> node_count (pad)
  std::vector<std::uint8_t> ghost_flags_;  // node_count * kNumDirs, 0/1
  std::vector<std::int32_t> offsets_;    // node_count + 1
  std::vector<std::int32_t> targets_;    // total_degree()
};

}  // namespace ocp::mesh
