// Lattice coordinates, directions and dimensions for 2-D mesh-connected
// multicomputers (Wu, IPPS 2001, section 2).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>
#include <string>

namespace ocp::mesh {

/// The two dimensions of a 2-D mesh. The paper's safe/unsafe Definition 2b
/// ("an unsafe neighbor in *both* dimensions") and the enabled/disabled rule
/// classify neighbors by the dimension along which they are adjacent.
enum class Dim : std::uint8_t { X = 0, Y = 1 };

/// The four mesh directions. A node's neighbor in direction `d` differs by
/// exactly one in one dimension.
enum class Dir : std::uint8_t { East = 0, West = 1, North = 2, South = 3 };

/// Number of interior neighbors of a 2-D mesh node.
inline constexpr std::size_t kNumDirs = 4;

/// All four directions, in a fixed deterministic order.
inline constexpr std::array<Dir, kNumDirs> kAllDirs = {
    Dir::East, Dir::West, Dir::North, Dir::South};

/// Dimension along which a direction moves (East/West -> X, North/South -> Y).
[[nodiscard]] constexpr Dim dim_of(Dir d) noexcept {
  return (d == Dir::East || d == Dir::West) ? Dim::X : Dim::Y;
}

/// The opposite direction (East <-> West, North <-> South).
[[nodiscard]] constexpr Dir opposite(Dir d) noexcept {
  switch (d) {
    case Dir::East: return Dir::West;
    case Dir::West: return Dir::East;
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
  }
  return Dir::East;  // unreachable
}

/// Human-readable direction name ("E", "W", "N", "S").
[[nodiscard]] const char* to_string(Dir d) noexcept;

/// A node address (u_x, u_y) in a 2-D mesh. Coordinates are signed so that
/// ghost nodes one step outside the mesh (paper, section 3) and relative
/// frames used when unwrapping torus regions are representable.
struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr auto operator<=>(const Coord&, const Coord&) = default;

  /// Component along dimension `d`.
  [[nodiscard]] constexpr std::int32_t operator[](Dim d) const noexcept {
    return d == Dim::X ? x : y;
  }

  /// The adjacent coordinate in direction `d` (no bounds applied).
  [[nodiscard]] constexpr Coord step(Dir d) const noexcept {
    switch (d) {
      case Dir::East: return {x + 1, y};
      case Dir::West: return {x - 1, y};
      case Dir::North: return {x, y + 1};
      case Dir::South: return {x, y - 1};
    }
    return *this;  // unreachable
  }

  friend constexpr Coord operator+(Coord a, Coord b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Coord operator-(Coord a, Coord b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
};

/// L1 (Manhattan) distance d(u, v) = |u_x - v_x| + |u_y - v_y| — the routing
/// distance in a 2-D mesh without wraparound.
[[nodiscard]] constexpr std::int32_t manhattan(Coord a, Coord b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// True when `a` and `b` are mesh-adjacent (differ by one in exactly one
/// dimension).
[[nodiscard]] constexpr bool adjacent(Coord a, Coord b) noexcept {
  return manhattan(a, b) == 1;
}

/// "(x, y)" rendering for logs and test failure messages.
[[nodiscard]] std::string to_string(Coord c);
std::ostream& operator<<(std::ostream& os, Coord c);

}  // namespace ocp::mesh

template <>
struct std::hash<ocp::mesh::Coord> {
  [[nodiscard]] std::size_t operator()(ocp::mesh::Coord c) const noexcept {
    const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x));
    const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.y));
    std::uint64_t v = (ux << 32) | uy;
    // splitmix64 finalizer: cheap, well-distributed for grid coordinates.
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return static_cast<std::size_t>(v);
  }
};
