// Axis-aligned lattice rectangles with inclusive bounds.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "mesh/coord.hpp"

namespace ocp::geom {

/// Inclusive axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y] on the node
/// lattice. Faulty blocks (paper, section 3) are rectangles of this form.
struct Rect {
  mesh::Coord lo;
  mesh::Coord hi;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  [[nodiscard]] constexpr std::int32_t width() const noexcept {
    return hi.x - lo.x + 1;
  }
  [[nodiscard]] constexpr std::int32_t height() const noexcept {
    return hi.y - lo.y + 1;
  }
  [[nodiscard]] constexpr std::int64_t area() const noexcept {
    return static_cast<std::int64_t>(width()) * height();
  }

  [[nodiscard]] constexpr bool contains(mesh::Coord c) const noexcept {
    return c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y;
  }

  /// L1 diameter of the rectangle: the distance between opposite corners.
  [[nodiscard]] constexpr std::int32_t diameter() const noexcept {
    return (width() - 1) + (height() - 1);
  }

  /// Smallest rectangle containing both this one and `c`.
  [[nodiscard]] constexpr Rect expanded(mesh::Coord c) const noexcept {
    return {{std::min(lo.x, c.x), std::min(lo.y, c.y)},
            {std::max(hi.x, c.x), std::max(hi.y, c.y)}};
  }

  /// Degenerate single-cell rectangle.
  [[nodiscard]] static constexpr Rect cell(mesh::Coord c) noexcept {
    return {c, c};
  }
};

/// L1 distance between two rectangles (0 when they touch or overlap).
[[nodiscard]] constexpr std::int32_t distance(const Rect& a,
                                              const Rect& b) noexcept {
  const std::int32_t dx =
      std::max({a.lo.x - b.hi.x, b.lo.x - a.hi.x, 0});
  const std::int32_t dy =
      std::max({a.lo.y - b.hi.y, b.lo.y - a.hi.y, 0});
  return dx + dy;
}

}  // namespace ocp::geom
