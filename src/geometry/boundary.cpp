#include "geometry/boundary.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace ocp::geom {

namespace {

/// The full Moore neighborhood (used for ring membership).
constexpr std::array<mesh::Coord, 8> kMoore = {{{1, 0},
                                                {1, -1},
                                                {0, -1},
                                                {-1, -1},
                                                {-1, 0},
                                                {-1, 1},
                                                {0, 1},
                                                {1, 1}}};

/// Counterclockwise rotation (E -> N -> W -> S -> E).
constexpr mesh::Dir rot_ccw(mesh::Dir d) noexcept {
  switch (d) {
    case mesh::Dir::East: return mesh::Dir::North;
    case mesh::Dir::North: return mesh::Dir::West;
    case mesh::Dir::West: return mesh::Dir::South;
    case mesh::Dir::South: return mesh::Dir::East;
  }
  return mesh::Dir::East;  // unreachable
}

constexpr mesh::Dir rot_cw(mesh::Dir d) noexcept {
  return rot_ccw(rot_ccw(rot_ccw(d)));
}

}  // namespace

std::vector<mesh::Coord> boundary_cells(const Region& r) {
  std::vector<mesh::Coord> out;
  for (mesh::Coord c : r.cells()) {
    const bool boundary =
        !r.contains(c.step(mesh::Dir::East)) ||
        !r.contains(c.step(mesh::Dir::West)) ||
        !r.contains(c.step(mesh::Dir::North)) ||
        !r.contains(c.step(mesh::Dir::South));
    if (boundary) out.push_back(c);
  }
  return out;
}

std::int64_t edge_perimeter(const Region& r) {
  std::int64_t edges = 0;
  for (mesh::Coord c : r.cells()) {
    for (mesh::Dir d : mesh::kAllDirs) {
      if (!r.contains(c.step(d))) ++edges;
    }
  }
  return edges;
}

Region outer_ring(const Region& r) {
  std::unordered_set<mesh::Coord> ring;
  for (mesh::Coord c : r.cells()) {
    for (mesh::Coord off : kMoore) {
      const mesh::Coord n = c + off;
      if (!r.contains(n)) ring.insert(n);
    }
  }
  return Region(std::vector<mesh::Coord>(ring.begin(), ring.end()));
}

std::vector<mesh::Coord> trace_outer_ring(const Region& r) {
  if (r.empty()) return {};
  // Crack following: walk the rectilinear boundary of the region
  // counterclockwise, edge by edge. The state is (inside cell, outward
  // normal). Each edge contributes the outside cell across it; each convex
  // corner additionally contributes the diagonal corner cell. This emits
  // every ring cell: a ring cell is either edge-adjacent to the region or
  // the diagonal at a convex corner.
  const mesh::Coord start_cell = r.cells().front();  // min y, then min x
  const mesh::Dir start_out = mesh::Dir::South;      // its south edge is free

  std::vector<mesh::Coord> walk;
  std::unordered_set<mesh::Coord> emitted;
  const auto emit = [&](mesh::Coord c) {
    // Consecutive duplicates arise at concave turns; for the convex
    // polygons this is used on, non-consecutive repeats do not occur, but
    // the set keeps the walk simple for any input.
    if (emitted.insert(c).second) walk.push_back(c);
  };

  mesh::Coord cell = start_cell;
  mesh::Dir out = start_out;
  const std::size_t cap = 8 * r.size() + 16;
  std::size_t steps = 0;
  do {
    if (++steps > cap) {
      throw std::runtime_error("trace_outer_ring: boundary walk diverged");
    }
    emit(cell.step(out));
    const mesh::Dir dir = rot_ccw(out);  // walk direction along this edge
    const mesh::Coord ahead = cell.step(dir);
    const mesh::Coord diag = ahead.step(out);
    if (r.contains(ahead)) {
      if (r.contains(diag)) {
        // Concave turn: the boundary bends into the region.
        cell = diag;
        out = rot_cw(out);
      } else {
        cell = ahead;  // straight edge
      }
    } else if (r.contains(diag)) {
      // Diagonal pinch (8-connected checkerboard): the region continues
      // through the corner; follow it rather than cutting around, so the
      // walk covers the whole ring of diagonally-chained regions.
      cell = diag;
      out = rot_cw(out);
    } else {
      // Convex corner: the diagonal outside cell belongs to the ring, then
      // the boundary turns around this cell.
      emit(cell.step(out).step(dir));
      out = dir;
    }
  } while (!(cell == start_cell && out == start_out));
  return walk;
}

}  // namespace ocp::geom
