#include "geometry/convexity.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace ocp::geom {

namespace {

/// Per-line extent bookkeeping: for each row (or column) index, the min/max
/// coordinate of member cells along the line and the member count.
struct LineExtent {
  std::int32_t lo = std::numeric_limits<std::int32_t>::max();
  std::int32_t hi = std::numeric_limits<std::int32_t>::min();
  std::int64_t count = 0;

  void add(std::int32_t v) noexcept {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ++count;
  }

  /// A line is a contiguous run iff it holds exactly hi - lo + 1 cells.
  [[nodiscard]] bool is_run() const noexcept {
    return count == static_cast<std::int64_t>(hi) - lo + 1;
  }
};

}  // namespace

bool is_orthogonal_convex(const Region& r) {
  if (r.empty()) return true;
  std::map<std::int32_t, LineExtent> rows;
  std::map<std::int32_t, LineExtent> cols;
  for (mesh::Coord c : r.cells()) {
    rows[c.y].add(c.x);
    cols[c.x].add(c.y);
  }
  const auto all_runs = [](const auto& lines) {
    return std::all_of(lines.begin(), lines.end(),
                       [](const auto& kv) { return kv.second.is_run(); });
  };
  return all_runs(rows) && all_runs(cols);
}

bool is_orthogonal_convex_polygon(const Region& r, Connectivity conn) {
  return !r.empty() && r.is_connected(conn) && is_orthogonal_convex(r);
}

Region rectilinear_convex_closure(const Region& seed) {
  if (seed.empty()) return seed;
  // Work raster over the seed's bounding box; the closure never leaves it.
  const Rect box = seed.bounding_box();
  const auto w = static_cast<std::size_t>(box.width());
  const auto h = static_cast<std::size_t>(box.height());
  std::vector<std::uint8_t> raster(w * h, 0);
  const auto idx = [&](std::int32_t x, std::int32_t y) {
    return static_cast<std::size_t>(y - box.lo.y) * w +
           static_cast<std::size_t>(x - box.lo.x);
  };
  for (mesh::Coord c : seed.cells()) raster[idx(c.x, c.y)] = 1;

  // Alternate row fills and column fills to the fixpoint. Each pass fills a
  // line between its extreme member cells; membership only grows, so the loop
  // terminates within bbox-area additions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::int32_t y = box.lo.y; y <= box.hi.y; ++y) {
      std::int32_t lo = box.hi.x + 1;
      std::int32_t hi = box.lo.x - 1;
      for (std::int32_t x = box.lo.x; x <= box.hi.x; ++x) {
        if (raster[idx(x, y)] != 0) {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
      for (std::int32_t x = lo; x <= hi; ++x) {
        if (raster[idx(x, y)] == 0) {
          raster[idx(x, y)] = 1;
          changed = true;
        }
      }
    }
    for (std::int32_t x = box.lo.x; x <= box.hi.x; ++x) {
      std::int32_t lo = box.hi.y + 1;
      std::int32_t hi = box.lo.y - 1;
      for (std::int32_t y = box.lo.y; y <= box.hi.y; ++y) {
        if (raster[idx(x, y)] != 0) {
          lo = std::min(lo, y);
          hi = std::max(hi, y);
        }
      }
      for (std::int32_t y = lo; y <= hi; ++y) {
        if (raster[idx(x, y)] == 0) {
          raster[idx(x, y)] = 1;
          changed = true;
        }
      }
    }
  }

  std::vector<mesh::Coord> cells;
  for (std::int32_t y = box.lo.y; y <= box.hi.y; ++y) {
    for (std::int32_t x = box.lo.x; x <= box.hi.x; ++x) {
      if (raster[idx(x, y)] != 0) cells.push_back({x, y});
    }
  }
  return Region(std::move(cells));
}

bool is_corner_node(const Region& r, mesh::Coord c) {
  if (!r.contains(c)) return false;
  const bool out_x = !r.contains(c.step(mesh::Dir::East)) ||
                     !r.contains(c.step(mesh::Dir::West));
  const bool out_y = !r.contains(c.step(mesh::Dir::North)) ||
                     !r.contains(c.step(mesh::Dir::South));
  return out_x && out_y;
}

std::vector<mesh::Coord> corner_nodes(const Region& r) {
  std::vector<mesh::Coord> out;
  for (mesh::Coord c : r.cells()) {
    if (is_corner_node(r, c)) out.push_back(c);
  }
  return out;
}

bool quadrant_has_corner(const Region& r, mesh::Coord origin, Quadrant q) {
  return std::any_of(r.cells().begin(), r.cells().end(), [&](mesh::Coord c) {
    return in_quadrant(origin, q, c) && is_corner_node(r, c);
  });
}

}  // namespace ocp::geom
