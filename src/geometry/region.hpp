// A finite set of lattice nodes treated as a rectilinear polygon.
//
// Faulty blocks and disabled regions (Wu, IPPS 2001) are regions in this
// sense: sets of nodes whose boundary lines are horizontal or vertical. For
// torus machines, connected components are *unwrapped* into a planar frame
// before being stored here, so all geometry below is planar.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "mesh/coord.hpp"

namespace ocp::geom {

/// Lattice adjacency notion. `Four` is mesh-link adjacency; `Eight` adds the
/// diagonals. Fault regions (disabled regions) are grouped 8-connected while
/// the enabled regions separating them are 4-connected — the usual digital
/// topology duality (see grid::connected_components).
enum class Connectivity : std::uint8_t { Four = 4, Eight = 8 };

/// An immutable set of lattice cells with O(log n) membership, a cached
/// bounding box, and row/column run queries. Cells are kept sorted by
/// (y, x) — row-major.
class Region {
 public:
  Region() = default;

  /// Builds a region from arbitrary-order cells; duplicates are removed.
  explicit Region(std::vector<mesh::Coord> cells);
  Region(std::initializer_list<mesh::Coord> cells);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }

  /// Row-major (y, then x) sorted cells.
  [[nodiscard]] std::span<const mesh::Coord> cells() const noexcept {
    return cells_;
  }

  [[nodiscard]] bool contains(mesh::Coord c) const noexcept;

  /// Bounding box; valid only for non-empty regions.
  [[nodiscard]] const Rect& bounding_box() const noexcept { return bbox_; }

  /// True when the region fills its bounding box exactly (the paper's
  /// faulty-block shape).
  [[nodiscard]] bool is_rectangle() const noexcept {
    return !empty() &&
           static_cast<std::int64_t>(size()) == bbox_.area();
  }

  /// L1 diameter d(B): the maximum Manhattan distance between two cells.
  /// Computed in O(n) via the rotated-coordinate identity
  /// |dx| + |dy| = max(|d(x+y)|, |d(x-y)|).
  [[nodiscard]] std::int32_t diameter() const noexcept;

  /// True when the cells form a single connected component under `conn`.
  [[nodiscard]] bool is_connected(
      Connectivity conn = Connectivity::Four) const;

  /// Number of connected components under `conn` (0 for the empty region).
  [[nodiscard]] std::size_t component_count(
      Connectivity conn = Connectivity::Four) const;

  /// Minimum pairwise L1 distance to another region (brute force; intended
  /// for tests and small regions).
  [[nodiscard]] std::int32_t distance_to(const Region& other) const;

  /// Cells of `this` that are not in `other`.
  [[nodiscard]] Region difference(const Region& other) const;

  /// Union with another region.
  [[nodiscard]] Region united(const Region& other) const;

  friend bool operator==(const Region& a, const Region& b) {
    return a.cells_ == b.cells_;
  }

  /// Multi-line ASCII raster ('#' in-region, '.' outside) over the bounding
  /// box, top row = max y. For debugging and example programs.
  [[nodiscard]] std::string to_ascii() const;

 private:
  std::vector<mesh::Coord> cells_;
  Rect bbox_{};
};

std::ostream& operator<<(std::ostream& os, const Region& r);

}  // namespace ocp::geom
