// Staircase structure of orthogonal convex polygons.
//
// A connected orthogonal convex region is exactly a stack of contiguous row
// runs [xmin(y), xmax(y)] whose left profile xmin is valley-shaped (non-
// increasing, then non-decreasing) and whose right profile xmax is hill-
// shaped. Equivalently, the boundary decomposes into four monotone
// staircases meeting at the extreme cells — the structure fault-tolerant
// routers exploit when sliding along a region. This module computes the
// profiles, provides an O(n) convexity test based on them (cross-validated
// against the definitional test), and extracts the four staircases.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/region.hpp"

namespace ocp::geom {

/// Row profile of a region: per row (ascending y), the run extent.
struct RowProfile {
  std::int32_t y = 0;
  std::int32_t xmin = 0;
  std::int32_t xmax = 0;
  /// Number of region cells on this row; a contiguous run has
  /// xmax - xmin + 1.
  std::int64_t count = 0;

  friend constexpr bool operator==(const RowProfile&,
                                   const RowProfile&) = default;
};

/// Rows of the region in ascending y. Rows with no cells are omitted (a
/// connected region has none inside its bounding box).
[[nodiscard]] std::vector<RowProfile> row_profiles(const Region& r);

/// True when `v` is valley-shaped: non-increasing, then non-decreasing.
[[nodiscard]] bool is_valley(const std::vector<std::int32_t>& v);
/// True when `v` is hill-shaped: non-decreasing, then non-increasing.
[[nodiscard]] bool is_hill(const std::vector<std::int32_t>& v);

/// O(n) orthogonal-convex-polygon test via the profile characterization:
/// every row of the bounding box is one contiguous run, rows are gap-free,
/// xmin is a valley and xmax is a hill. Agrees with
/// `is_orthogonal_convex(r) && r.is_connected(Connectivity::Eight)` for
/// nonempty regions (tested exhaustively on small regions).
[[nodiscard]] bool is_orthogonal_convex_polygon_fast(const Region& r);

/// The four boundary staircases of an orthogonal convex polygon, each an
/// ordered cell chain:
///   south_west: left run ends, from the bottom row up to the leftmost row
///   north_west: left run ends, from the leftmost row up to the top row
///   south_east / north_east: right run ends, mirrored.
/// Chains share their corner cells. Requires
/// `is_orthogonal_convex_polygon_fast(r)`.
struct Staircases {
  std::vector<mesh::Coord> south_west;
  std::vector<mesh::Coord> north_west;
  std::vector<mesh::Coord> south_east;
  std::vector<mesh::Coord> north_east;
};

[[nodiscard]] Staircases staircase_decomposition(const Region& r);

}  // namespace ocp::geom
