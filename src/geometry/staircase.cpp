#include "geometry/staircase.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ocp::geom {

std::vector<RowProfile> row_profiles(const Region& r) {
  std::vector<RowProfile> rows;
  // Cells are sorted row-major (y, then x): one pass suffices.
  for (mesh::Coord c : r.cells()) {
    if (rows.empty() || rows.back().y != c.y) {
      rows.push_back({c.y, c.x, c.x, 1});
    } else {
      rows.back().xmax = c.x;  // sorted: always the max so far
      ++rows.back().count;
    }
  }
  return rows;
}

bool is_valley(const std::vector<std::int32_t>& v) {
  if (v.empty()) return true;
  std::size_t i = 1;
  while (i < v.size() && v[i] <= v[i - 1]) ++i;   // descending slope
  while (i < v.size() && v[i] >= v[i - 1]) ++i;   // ascending slope
  return i == v.size();
}

bool is_hill(const std::vector<std::int32_t>& v) {
  if (v.empty()) return true;
  std::size_t i = 1;
  while (i < v.size() && v[i] >= v[i - 1]) ++i;
  while (i < v.size() && v[i] <= v[i - 1]) ++i;
  return i == v.size();
}

bool is_orthogonal_convex_polygon_fast(const Region& r) {
  if (r.empty()) return false;
  const auto rows = row_profiles(r);
  std::vector<std::int32_t> xmin;
  std::vector<std::int32_t> xmax;
  xmin.reserve(rows.size());
  xmax.reserve(rows.size());
  std::int32_t prev_y = rows.front().y - 1;
  for (const RowProfile& row : rows) {
    // Row gaps split the region; non-run rows break row convexity.
    if (row.y != prev_y + 1) return false;
    if (row.count != static_cast<std::int64_t>(row.xmax) - row.xmin + 1) {
      return false;
    }
    prev_y = row.y;
    xmin.push_back(row.xmin);
    xmax.push_back(row.xmax);
  }
  // Valley/hill profiles <=> column convexity; together with contiguous,
  // gap-free rows this is exactly a connected orthogonal convex polygon.
  // (Consecutive runs may touch only diagonally, which 8-connectivity
  // accepts.)
  if (!is_valley(xmin) || !is_hill(xmax)) return false;
  // Consecutive rows must overlap or touch diagonally: with valley/hill
  // profiles a disconnect would need xmin(y+1) > xmax(y) + 1 (or the
  // mirrored case), which the profiles still allow; reject it explicitly.
  for (std::size_t i = 1; i < xmin.size(); ++i) {
    if (xmin[i] > xmax[i - 1] + 1 || xmax[i] < xmin[i - 1] - 1) return false;
  }
  return true;
}

Staircases staircase_decomposition(const Region& r) {
  assert(is_orthogonal_convex_polygon_fast(r));
  const auto rows = row_profiles(r);

  // Split rows at the extreme profiles.
  std::size_t leftmost = 0;
  std::size_t rightmost = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].xmin < rows[leftmost].xmin) leftmost = i;
    if (rows[i].xmax > rows[rightmost].xmax) rightmost = i;
  }

  Staircases out;
  for (std::size_t i = 0; i <= leftmost; ++i) {
    out.south_west.push_back({rows[i].xmin, rows[i].y});
  }
  for (std::size_t i = leftmost; i < rows.size(); ++i) {
    out.north_west.push_back({rows[i].xmin, rows[i].y});
  }
  for (std::size_t i = 0; i <= rightmost; ++i) {
    out.south_east.push_back({rows[i].xmax, rows[i].y});
  }
  for (std::size_t i = rightmost; i < rows.size(); ++i) {
    out.north_east.push_back({rows[i].xmax, rows[i].y});
  }
  return out;
}

}  // namespace ocp::geom
