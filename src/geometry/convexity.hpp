// Orthogonal convexity predicates and the rectilinear convex closure
// (Wu, IPPS 2001, Definition 1 and Theorem 2).
#pragma once

#include <vector>

#include "geometry/region.hpp"
#include "mesh/coord.hpp"

namespace ocp::geom {

/// Definition 1: a region is orthogonal convex iff for any horizontal or
/// vertical line, whenever two nodes on the line are inside the region, all
/// nodes on the line between them are inside too. Equivalently: every row and
/// every column of the region is a single contiguous run.
[[nodiscard]] bool is_orthogonal_convex(const Region& r);

/// An *orthogonal convex polygon* in the paper's sense is a connected
/// orthogonal convex region. Disabled regions are polygons under
/// `Connectivity::Eight` (see grid::connected_components).
[[nodiscard]] bool is_orthogonal_convex_polygon(
    const Region& r, Connectivity conn = Connectivity::Four);

/// The rectilinear convex closure of a cell set: the least superset that is
/// orthogonal convex. It is computed as the fixpoint of "fill every row and
/// every column between its extreme member cells". The fixpoint is the unique
/// minimum because every orthogonal convex superset is closed under that fill
/// rule. Theorem 2 states that each disabled region equals the closure of the
/// faults it contains.
[[nodiscard]] Region rectilinear_convex_closure(const Region& seed);

/// Definition 4: a corner node of a region has, along *each* dimension, at
/// least one mesh neighbor outside the region. Lemma 1 states every corner
/// node of a disabled region is faulty.
[[nodiscard]] bool is_corner_node(const Region& r, mesh::Coord c);

/// All corner nodes of a region, row-major.
[[nodiscard]] std::vector<mesh::Coord> corner_nodes(const Region& r);

/// The four closed quadrants induced by horizontal and vertical lines through
/// `origin` (Lemma 2). Each quadrant includes both axes and the origin.
enum class Quadrant : int { PosPos = 0, PosNeg = 1, NegPos = 2, NegNeg = 3 };

inline constexpr std::array<Quadrant, 4> kAllQuadrants = {
    Quadrant::PosPos, Quadrant::PosNeg, Quadrant::NegPos, Quadrant::NegNeg};

/// Membership of `c` in the closed quadrant `q` anchored at `origin`.
[[nodiscard]] constexpr bool in_quadrant(mesh::Coord origin, Quadrant q,
                                         mesh::Coord c) noexcept {
  const std::int32_t dx = c.x - origin.x;
  const std::int32_t dy = c.y - origin.y;
  switch (q) {
    case Quadrant::PosPos: return dx >= 0 && dy >= 0;
    case Quadrant::PosNeg: return dx >= 0 && dy <= 0;
    case Quadrant::NegPos: return dx <= 0 && dy >= 0;
    case Quadrant::NegNeg: return dx <= 0 && dy <= 0;
  }
  return false;
}

/// True when quadrant `q` anchored at `origin` contains at least one corner
/// node of `r` (the assertion of Lemma 2 for origins inside `r`).
[[nodiscard]] bool quadrant_has_corner(const Region& r, mesh::Coord origin,
                                       Quadrant q);

}  // namespace ocp::geom
