// Region boundaries and fault rings.
//
// Fault-tolerant routing schemes (Boura-Das, Su-Shin, Chalasani-Boppana)
// route misdirected messages along the *fault ring*: the cycle of nonfaulty
// nodes immediately surrounding a fault region. These helpers compute rings
// and perimeters for both the rectangle model and orthogonal convex polygons.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/region.hpp"

namespace ocp::geom {

/// Region cells that touch the complement through at least one mesh link.
[[nodiscard]] std::vector<mesh::Coord> boundary_cells(const Region& r);

/// Number of unit edges between the region and its complement (the length of
/// the rectilinear boundary polygon).
[[nodiscard]] std::int64_t edge_perimeter(const Region& r);

/// The fault ring: all cells outside `r` that are 8-adjacent to a cell of
/// `r` (unordered). May contain coordinates outside a finite mesh; callers
/// clip against their machine.
[[nodiscard]] Region outer_ring(const Region& r);

/// The fault ring as an ordered closed walk (Moore-neighbor tracing,
/// counterclockwise, starting from the row-major-smallest ring cell).
/// Consecutive cells are 8-adjacent; the last cell is 8-adjacent to the
/// first. Requires a non-empty region whose ring is a simple closed curve —
/// true for the connected orthogonal convex polygons this library produces.
[[nodiscard]] std::vector<mesh::Coord> trace_outer_ring(const Region& r);

}  // namespace ocp::geom
