#include "geometry/region.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>
#include <ostream>
#include <queue>
#include <unordered_set>

namespace ocp::geom {

namespace {

/// Row-major ordering: by y, then x. Matches the sort order of `cells_`.
constexpr bool row_major_less(mesh::Coord a, mesh::Coord b) noexcept {
  return a.y < b.y || (a.y == b.y && a.x < b.x);
}

}  // namespace

Region::Region(std::vector<mesh::Coord> cells) : cells_(std::move(cells)) {
  // Singletons are already sorted and unique; fault extraction produces
  // thousands of them on sparse fault patterns.
  if (cells_.size() > 1) {
    std::sort(cells_.begin(), cells_.end(), row_major_less);
    cells_.erase(std::unique(cells_.begin(), cells_.end()), cells_.end());
  }
  if (!cells_.empty()) {
    bbox_ = Rect::cell(cells_.front());
    for (mesh::Coord c : cells_) bbox_ = bbox_.expanded(c);
  }
}

Region::Region(std::initializer_list<mesh::Coord> cells)
    : Region(std::vector<mesh::Coord>(cells)) {}

bool Region::contains(mesh::Coord c) const noexcept {
  if (empty() || !bbox_.contains(c)) return false;
  return std::binary_search(cells_.begin(), cells_.end(), c, row_major_less);
}

std::int32_t Region::diameter() const noexcept {
  if (cells_.size() <= 1) return 0;
  std::int32_t min_sum = cells_.front().x + cells_.front().y;
  std::int32_t max_sum = min_sum;
  std::int32_t min_dif = cells_.front().x - cells_.front().y;
  std::int32_t max_dif = min_dif;
  for (mesh::Coord c : cells_) {
    min_sum = std::min(min_sum, c.x + c.y);
    max_sum = std::max(max_sum, c.x + c.y);
    min_dif = std::min(min_dif, c.x - c.y);
    max_dif = std::max(max_dif, c.x - c.y);
  }
  return std::max(max_sum - min_sum, max_dif - min_dif);
}

std::size_t Region::component_count(Connectivity conn) const {
  if (empty()) return 0;
  static constexpr std::array<mesh::Coord, 8> kOffsets = {
      {{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}};
  const std::size_t degree = conn == Connectivity::Four ? 4 : 8;
  std::unordered_set<mesh::Coord> unvisited(cells_.begin(), cells_.end());
  std::size_t components = 0;
  while (!unvisited.empty()) {
    ++components;
    std::queue<mesh::Coord> frontier;
    const mesh::Coord seed = *unvisited.begin();
    unvisited.erase(unvisited.begin());
    frontier.push(seed);
    while (!frontier.empty()) {
      const mesh::Coord u = frontier.front();
      frontier.pop();
      for (std::size_t i = 0; i < degree; ++i) {
        const mesh::Coord v = u + kOffsets[i];
        if (auto it = unvisited.find(v); it != unvisited.end()) {
          unvisited.erase(it);
          frontier.push(v);
        }
      }
    }
  }
  return components;
}

bool Region::is_connected(Connectivity conn) const {
  return component_count(conn) <= 1;
}

std::int32_t Region::distance_to(const Region& other) const {
  assert(!empty() && !other.empty());
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  for (mesh::Coord a : cells_) {
    for (mesh::Coord b : other.cells_) {
      best = std::min(best, mesh::manhattan(a, b));
    }
  }
  return best;
}

Region Region::difference(const Region& other) const {
  std::vector<mesh::Coord> out;
  out.reserve(cells_.size());
  for (mesh::Coord c : cells_) {
    if (!other.contains(c)) out.push_back(c);
  }
  return Region(std::move(out));
}

Region Region::united(const Region& other) const {
  std::vector<mesh::Coord> out(cells_.begin(), cells_.end());
  out.insert(out.end(), other.cells_.begin(), other.cells_.end());
  return Region(std::move(out));
}

std::string Region::to_ascii() const {
  if (empty()) return "(empty region)";
  std::string out;
  const auto w = static_cast<std::size_t>(bbox_.width());
  out.reserve((w + 1) * static_cast<std::size_t>(bbox_.height()));
  for (std::int32_t y = bbox_.hi.y; y >= bbox_.lo.y; --y) {
    for (std::int32_t x = bbox_.lo.x; x <= bbox_.hi.x; ++x) {
      out += contains({x, y}) ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Region& r) {
  os << "Region{" << r.size() << " cells";
  if (!r.empty()) {
    os << ", bbox " << r.bounding_box().lo << ".." << r.bounding_box().hi;
  }
  return os << "}";
}

}  // namespace ocp::geom
