// Tile decomposition of a 2-D mesh for page-granular change tracking.
//
// The incremental epoch engine (src/svc) tracks which parts of the machine
// an event batch touched at tile granularity: snapshot planes are chunked
// into per-tile pages shared copy-on-write across epochs, and route-cache
// entries carry the tile footprint their computation consulted. Both sides
// need the same decomposition and a cheap intersection test, so the tile
// shift adapts to the machine: tiles are square power-of-two blocks sized
// so that the machine never spans more than 8x8 = 64 of them. A tile set is
// therefore always one `std::uint64_t` bitmask and "does this route cross
// the dirty region" is a single AND, for every machine size.
#pragma once

#include <algorithm>
#include <cstdint>

#include "mesh/mesh2d.hpp"

namespace ocp::grid {

class TileGrid {
 public:
  explicit TileGrid(const mesh::Mesh2D& m)
      : mesh_(m), shift_(shift_for(std::max(m.width(), m.height()))) {
    tiles_x_ = (m.width() + tile_side() - 1) >> shift_;
    tiles_y_ = (m.height() + tile_side() - 1) >> shift_;
  }

  [[nodiscard]] const mesh::Mesh2D& machine() const noexcept { return mesh_; }
  /// log2 of the tile edge length in cells (>= 3, so tiles are 8x8 at
  /// minimum and the densest machine still amortizes page headers).
  [[nodiscard]] std::uint32_t shift() const noexcept { return shift_; }
  [[nodiscard]] std::int32_t tile_side() const noexcept {
    return std::int32_t{1} << shift_;
  }
  [[nodiscard]] std::int32_t tiles_x() const noexcept { return tiles_x_; }
  [[nodiscard]] std::int32_t tiles_y() const noexcept { return tiles_y_; }
  /// Total number of tiles; by construction <= 64.
  [[nodiscard]] std::uint32_t tile_count() const noexcept {
    return static_cast<std::uint32_t>(tiles_x_ * tiles_y_);
  }

  /// Tile id of a node; precondition: machine().contains(c).
  [[nodiscard]] std::uint32_t tile_of(mesh::Coord c) const noexcept {
    return static_cast<std::uint32_t>((c.y >> shift_) * tiles_x_ +
                                      (c.x >> shift_));
  }

  /// Dense offset of a node within its tile's page.
  [[nodiscard]] std::uint32_t offset_in_tile(mesh::Coord c) const noexcept {
    const std::int32_t mask = tile_side() - 1;
    return static_cast<std::uint32_t>(((c.y & mask) << shift_) + (c.x & mask));
  }

  /// Number of cells a page must hold (edge tiles leave slots unused).
  [[nodiscard]] std::uint32_t page_cells() const noexcept {
    return static_cast<std::uint32_t>(tile_side()) *
           static_cast<std::uint32_t>(tile_side());
  }

  /// Single-tile bitmask of the tile containing `c`.
  [[nodiscard]] std::uint64_t bit_of(mesh::Coord c) const noexcept {
    return std::uint64_t{1} << tile_of(c);
  }

  /// Bitmask of the tiles containing `c` and its (up to four) physical
  /// neighbors — wrapped on a torus, clipped at a mesh boundary. This is
  /// the footprint a labeling or routing decision at `c` can consult.
  [[nodiscard]] std::uint64_t padded_bits(mesh::Coord c) const noexcept {
    std::uint64_t bits = bit_of(c);
    for (mesh::Dir d : mesh::kAllDirs) {
      if (const auto n = mesh_.neighbor(c, d)) bits |= bit_of(*n);
    }
    return bits;
  }

  /// Inclusive-exclusive cell bounds [x0, x1) x [y0, y1) of tile `t`,
  /// clipped to the machine.
  struct TileRect {
    std::int32_t x0, y0, x1, y1;
  };
  [[nodiscard]] TileRect bounds(std::uint32_t t) const noexcept {
    const auto tx = static_cast<std::int32_t>(t) % tiles_x_;
    const auto ty = static_cast<std::int32_t>(t) / tiles_x_;
    return {tx << shift_, ty << shift_,
            std::min(mesh_.width(), (tx + 1) << shift_),
            std::min(mesh_.height(), (ty + 1) << shift_)};
  }

 private:
  [[nodiscard]] static constexpr std::uint32_t shift_for(
      std::int32_t longest_side) noexcept {
    std::uint32_t s = 3;  // 8x8 tiles at minimum
    while ((std::int64_t{8} << s) < longest_side) ++s;
    return s;
  }

  mesh::Mesh2D mesh_;
  std::uint32_t shift_;
  std::int32_t tiles_x_;
  std::int32_t tiles_y_;
};

}  // namespace ocp::grid
