#include "grid/cell_set.hpp"

#include <cassert>

namespace ocp::grid {

CellSet& CellSet::operator|=(const CellSet& other) {
  assert(mesh_ == other.mesh_);
  count_ = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = static_cast<std::uint8_t>(bits_[i] | other.bits_[i]);
    count_ += bits_[i];
  }
  return *this;
}

CellSet& CellSet::operator-=(const CellSet& other) {
  assert(mesh_ == other.mesh_);
  count_ = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = static_cast<std::uint8_t>(bits_[i] & ~other.bits_[i] & 1);
    count_ += bits_[i];
  }
  return *this;
}

CellSet& CellSet::operator&=(const CellSet& other) {
  assert(mesh_ == other.mesh_);
  count_ = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = static_cast<std::uint8_t>(bits_[i] & other.bits_[i]);
    count_ += bits_[i];
  }
  return *this;
}

}  // namespace ocp::grid
