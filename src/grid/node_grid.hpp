// Dense per-node storage for a 2-D mesh.
#pragma once

#include <cassert>
#include <vector>

#include "mesh/mesh2d.hpp"

namespace ocp::grid {

/// A value of type `T` per mesh node, stored row-major. This is the canonical
/// container for node labels (health, safety, activation) and per-node
/// protocol state.
template <typename T>
class NodeGrid {
 public:
  explicit NodeGrid(const mesh::Mesh2D& m, const T& init = T{})
      : mesh_(m), data_(static_cast<std::size_t>(m.node_count()), init) {}

  [[nodiscard]] const mesh::Mesh2D& topology() const noexcept { return mesh_; }

  [[nodiscard]] T& operator[](mesh::Coord c) noexcept {
    return data_[mesh_.index(c)];
  }
  [[nodiscard]] const T& operator[](mesh::Coord c) const noexcept {
    return data_[mesh_.index(c)];
  }

  [[nodiscard]] T& at_index(std::size_t i) noexcept {
    assert(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] const T& at_index(std::size_t i) const noexcept {
    assert(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Raw contiguous storage (row-major). The labeling engines index state
  /// planes through this to avoid per-access coordinate arithmetic.
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] auto begin() noexcept { return data_.begin(); }
  [[nodiscard]] auto end() noexcept { return data_.end(); }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  friend bool operator==(const NodeGrid&, const NodeGrid&) = default;

 private:
  mesh::Mesh2D mesh_;
  std::vector<T> data_;
};

}  // namespace ocp::grid
