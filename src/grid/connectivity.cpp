#include "grid/connectivity.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace ocp::grid {

namespace {

/// BFS work item: a physical cell together with its planar frame coordinate.
struct Visit {
  mesh::Coord cell;
  mesh::Coord frame;
};

constexpr std::array<mesh::Coord, 8> kOffsets8 = {{
    {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}};

}  // namespace

std::vector<Component> connected_components(const CellSet& cells,
                                            Connectivity conn) {
  const mesh::Mesh2D& m = cells.topology();
  const std::size_t degree = conn == Connectivity::Four ? 4 : 8;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(m.node_count()), 0);
  std::vector<Component> out;
  out.reserve(cells.size());  // upper bound: one component per cell

  // BFS scratch, reused across components: `frontier` is a flat vector with
  // a read cursor (sparse fault patterns produce many small components, and
  // a fresh std::queue would pay one deque-block allocation for each).
  std::vector<Visit> frontier;
  std::vector<std::pair<mesh::Coord, mesh::Coord>> frame_to_cell;

  cells.for_each([&](mesh::Coord seed) {
    if (seen[m.index(seed)] != 0) return;
    // Gather one component by BFS, assigning unwrapped frame coordinates as
    // we go. A component that wraps all the way around a torus ring revisits
    // cells through `seen` and simply stops expanding there; the frame then
    // covers each physical cell once.
    frame_to_cell.clear();
    frontier.clear();
    seen[m.index(seed)] = 1;
    frontier.push_back({seed, seed});
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const Visit v = frontier[head];
      frame_to_cell.emplace_back(v.frame, v.cell);
      for (std::size_t i = 0; i < degree; ++i) {
        const mesh::Coord off = kOffsets8[i];
        mesh::Coord next = v.cell + off;
        if (m.is_torus()) {
          next = m.wrap(next);
        } else if (!m.contains(next)) {
          continue;
        }
        if (!cells.contains(next) || seen[m.index(next)] != 0) continue;
        seen[m.index(next)] = 1;
        frontier.push_back({next, v.frame + off});
      }
    }
    // Canonical row-major order on frame coordinates, keeping the physical
    // address of each frame cell aligned with Region's internal sort.
    if (frame_to_cell.size() > 1) {
      std::sort(frame_to_cell.begin(), frame_to_cell.end(),
                [](const auto& a, const auto& b) {
                  return a.first.y < b.first.y ||
                         (a.first.y == b.first.y && a.first.x < b.first.x);
                });
    }
    Component comp;
    std::vector<mesh::Coord> frame_cells;
    frame_cells.reserve(frame_to_cell.size());
    // Physical addresses are materialized only when they can differ from the
    // frame (torus); on a mesh `Component::cells()` reuses the region cells.
    if (m.is_torus()) comp.mesh_cells.reserve(frame_to_cell.size());
    for (const auto& [frame, cell] : frame_to_cell) {
      frame_cells.push_back(frame);
      if (m.is_torus()) comp.mesh_cells.push_back(cell);
    }
    comp.region = geom::Region(std::move(frame_cells));
    out.push_back(std::move(comp));
  });

  return out;
}

std::vector<geom::Region> component_regions(const CellSet& cells,
                                            Connectivity conn) {
  std::vector<geom::Region> out;
  for (auto& comp : connected_components(cells, conn)) {
    out.push_back(std::move(comp.region));
  }
  return out;
}

}  // namespace ocp::grid
