#include "grid/connectivity.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace ocp::grid {

namespace {

constexpr std::array<mesh::Coord, 8> kOffsets8 = {{
    {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}};

/// Gathers the component of `seed` (which must be an unvisited member of
/// `cells`), appending it to `out` and marking every visited cell in `seen`.
/// When `touched` is non-null the visited indices are recorded there so the
/// caller can restore `seen` in O(component) instead of O(mesh).
void gather_component(
    const CellSet& cells, std::size_t degree, mesh::Coord seed,
    std::uint8_t* seen,
    std::vector<std::pair<mesh::Coord, mesh::Coord>>& frontier,
    std::vector<std::pair<mesh::Coord, mesh::Coord>>& frame_to_cell,
    std::vector<std::size_t>* touched, std::vector<Component>& out) {
  const mesh::Mesh2D& m = cells.topology();
  // Gather one component by BFS, assigning unwrapped frame coordinates as
  // we go. A component that wraps all the way around a torus ring revisits
  // cells through `seen` and simply stops expanding there; the frame then
  // covers each physical cell once.
  frame_to_cell.clear();
  frontier.clear();
  seen[m.index(seed)] = 1;
  if (touched != nullptr) touched->push_back(m.index(seed));
  frontier.push_back({seed, seed});
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const auto [cell, frame] = frontier[head];
    frame_to_cell.emplace_back(frame, cell);
    for (std::size_t i = 0; i < degree; ++i) {
      const mesh::Coord off = kOffsets8[i];
      mesh::Coord next = cell + off;
      if (m.is_torus()) {
        next = m.wrap(next);
      } else if (!m.contains(next)) {
        continue;
      }
      if (!cells.contains(next) || seen[m.index(next)] != 0) continue;
      seen[m.index(next)] = 1;
      if (touched != nullptr) touched->push_back(m.index(next));
      frontier.push_back({next, frame + off});
    }
  }
  // Canonical row-major order on frame coordinates, keeping the physical
  // address of each frame cell aligned with Region's internal sort.
  if (frame_to_cell.size() > 1) {
    std::sort(frame_to_cell.begin(), frame_to_cell.end(),
              [](const auto& a, const auto& b) {
                return a.first.y < b.first.y ||
                       (a.first.y == b.first.y && a.first.x < b.first.x);
              });
  }
  Component comp;
  std::vector<mesh::Coord> frame_cells;
  frame_cells.reserve(frame_to_cell.size());
  // Physical addresses are materialized only when they can differ from the
  // frame (torus); on a mesh `Component::cells()` reuses the region cells.
  if (m.is_torus()) comp.mesh_cells.reserve(frame_to_cell.size());
  for (const auto& [frame, cell] : frame_to_cell) {
    frame_cells.push_back(frame);
    if (m.is_torus()) comp.mesh_cells.push_back(cell);
  }
  comp.region = geom::Region(std::move(frame_cells));
  out.push_back(std::move(comp));
}

}  // namespace

std::vector<Component> connected_components(const CellSet& cells,
                                            Connectivity conn) {
  const mesh::Mesh2D& m = cells.topology();
  const std::size_t degree = conn == Connectivity::Four ? 4 : 8;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(m.node_count()), 0);
  std::vector<Component> out;
  out.reserve(cells.size());  // upper bound: one component per cell

  // BFS scratch, reused across components: `frontier` is a flat vector with
  // a read cursor (sparse fault patterns produce many small components, and
  // a fresh std::queue would pay one deque-block allocation for each).
  std::vector<std::pair<mesh::Coord, mesh::Coord>> frontier;
  std::vector<std::pair<mesh::Coord, mesh::Coord>> frame_to_cell;

  cells.for_each([&](mesh::Coord seed) {
    if (seen[m.index(seed)] != 0) return;
    gather_component(cells, degree, seed, seen.data(), frontier, frame_to_cell,
                     nullptr, out);
  });

  return out;
}

std::vector<Component> connected_components_seeded(
    const CellSet& cells, Connectivity conn,
    std::span<const mesh::Coord> candidates, ComponentScratch& scratch) {
  const mesh::Mesh2D& m = cells.topology();
  const std::size_t degree = conn == Connectivity::Four ? 4 : 8;
  // The visited plane grows zeroed and is restored to zeros on return, so
  // across calls it stays all-zero without a per-call O(mesh) clear.
  scratch.seen_.resize(static_cast<std::size_t>(m.node_count()), 0);
  scratch.touched_.clear();

  // Deduplicated member seeds in row-major index order: the same seed order
  // `connected_components` derives from its full-grid sweep.
  scratch.seeds_.clear();
  for (const mesh::Coord c : candidates) {
    if (cells.contains(c)) scratch.seeds_.push_back(m.index(c));
  }
  std::sort(scratch.seeds_.begin(), scratch.seeds_.end());
  scratch.seeds_.erase(
      std::unique(scratch.seeds_.begin(), scratch.seeds_.end()),
      scratch.seeds_.end());

  std::vector<Component> out;
  out.reserve(scratch.seeds_.size());
  for (const std::size_t seed : scratch.seeds_) {
    if (scratch.seen_[seed] != 0) continue;
    gather_component(cells, degree, m.coord(seed), scratch.seen_.data(),
                     scratch.frontier_, scratch.frame_to_cell_,
                     &scratch.touched_, out);
  }
  for (const std::size_t i : scratch.touched_) scratch.seen_[i] = 0;
  return out;
}

std::vector<geom::Region> component_regions(const CellSet& cells,
                                            Connectivity conn) {
  std::vector<geom::Region> out;
  for (auto& comp : connected_components(cells, conn)) {
    out.push_back(std::move(comp.region));
  }
  return out;
}

}  // namespace ocp::grid
