// Connected-component extraction over mesh node sets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/region.hpp"
#include "grid/cell_set.hpp"

namespace ocp::grid {

/// Adjacency notion used when grouping cells into components.
///
/// Faulty blocks use `Four` (mesh links; under Definitions 2a/2b diagonal
/// contact between unsafe sets cannot occur, so Four and Eight coincide).
/// Disabled regions use `Eight`: the paper's section 3 example — faults
/// (1,3), (2,1), (3,2) yielding the two disabled regions {(1,3)} and
/// {(2,1), (3,2)} — groups the diagonal pair (2,1)/(3,2) into one region,
/// which is exactly 8-connectivity.
using Connectivity = geom::Connectivity;

/// A connected component of a `CellSet`, described both as mesh cells and as
/// a planar region. On a torus, a component may cross wraparound links; it is
/// *unwrapped* into a planar frame (BFS from a seed, each hop shifting the
/// frame coordinate) so that rectilinear geometry applies unchanged. On a
/// mesh, frame coordinates equal mesh coordinates.
struct Component {
  /// Planar (possibly unwrapped) footprint; use for all geometry.
  geom::Region region;
  /// Physical addresses parallel to `region.cells()`, stored only when they
  /// differ from the frame (torus). Empty on a mesh — use `cells()`, which
  /// falls back to the region cells. Sparse fault patterns produce thousands
  /// of components per extraction, so not materializing the duplicate vector
  /// halves the allocation cost of the common case.
  std::vector<mesh::Coord> mesh_cells;

  /// The physical addresses of the component's cells, parallel to
  /// `region.cells()`.
  [[nodiscard]] std::span<const mesh::Coord> cells() const noexcept {
    return mesh_cells.empty() ? region.cells()
                              : std::span<const mesh::Coord>(mesh_cells);
  }
};

/// Extracts all connected components of `cells` under the given adjacency,
/// in deterministic (row-major seed) order. Connectivity follows the set's
/// topology: torus components may span wraparound links.
[[nodiscard]] std::vector<Component> connected_components(
    const CellSet& cells, Connectivity conn = Connectivity::Four);

/// Reusable state for `connected_components_seeded`: a visited plane that is
/// restored to all-zeros before each call returns, plus the BFS work
/// vectors. Lets per-event extractions over small dirty areas cost O(area)
/// instead of O(mesh) — no full-grid scan, no fresh zeroed allocation.
class ComponentScratch {
 public:
  ComponentScratch() = default;

 private:
  friend std::vector<Component> connected_components_seeded(
      const CellSet&, Connectivity, std::span<const mesh::Coord>,
      ComponentScratch&);
  std::vector<std::uint8_t> seen_;
  std::vector<std::size_t> seeds_;
  std::vector<std::size_t> touched_;
  std::vector<std::pair<mesh::Coord, mesh::Coord>> frontier_;
  std::vector<std::pair<mesh::Coord, mesh::Coord>> frame_to_cell_;
};

/// `connected_components` restricted to the components that contain at least
/// one of `candidates`. When `candidates` covers every member of `cells`
/// (the incremental-relabeling case: the set holds only a dirty area's
/// cells), the result is bit-identical to the full extraction — seeds are
/// deduplicated and processed in the same row-major order, and the BFS is
/// the same walker. Candidates outside the set are ignored; components are
/// still explored to their full extent within `cells`.
[[nodiscard]] std::vector<Component> connected_components_seeded(
    const CellSet& cells, Connectivity conn,
    std::span<const mesh::Coord> candidates, ComponentScratch& scratch);

/// Convenience: just the planar regions of `connected_components`.
[[nodiscard]] std::vector<geom::Region> component_regions(
    const CellSet& cells, Connectivity conn = Connectivity::Four);

}  // namespace ocp::grid
