// A subset of the nodes of a 2-D mesh, stored as a dense bit grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/mesh2d.hpp"

namespace ocp::grid {

/// Set of mesh nodes with O(1) membership and cheap iteration. Used for fault
/// sets, unsafe sets, disabled sets, and region rasters.
class CellSet {
 public:
  explicit CellSet(const mesh::Mesh2D& m)
      : mesh_(m), bits_(static_cast<std::size_t>(m.node_count()), 0) {}

  /// Builds a set from an explicit list of member coordinates.
  CellSet(const mesh::Mesh2D& m, std::initializer_list<mesh::Coord> cells)
      : CellSet(m) {
    for (mesh::Coord c : cells) insert(c);
  }

  [[nodiscard]] const mesh::Mesh2D& topology() const noexcept { return mesh_; }

  /// Membership; coordinates outside the mesh are never members.
  [[nodiscard]] bool contains(mesh::Coord c) const noexcept {
    return mesh_.contains(c) && bits_[mesh_.index(c)] != 0;
  }

  /// Membership by dense row-major index (no coordinate arithmetic).
  [[nodiscard]] bool contains_index(std::size_t i) const noexcept {
    return bits_[i] != 0;
  }

  void insert(mesh::Coord c) noexcept {
    if (bits_[mesh_.index(c)] == 0) {
      bits_[mesh_.index(c)] = 1;
      ++count_;
    }
  }

  /// Insertion by dense row-major index (no coordinate arithmetic).
  void insert_index(std::size_t i) noexcept {
    if (bits_[i] == 0) {
      bits_[i] = 1;
      ++count_;
    }
  }

  void erase(mesh::Coord c) noexcept {
    if (bits_[mesh_.index(c)] != 0) {
      bits_[mesh_.index(c)] = 0;
      --count_;
    }
  }

  void clear() noexcept {
    std::fill(bits_.begin(), bits_.end(), std::uint8_t{0});
    count_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Materializes the members in row-major order.
  [[nodiscard]] std::vector<mesh::Coord> to_vector() const {
    std::vector<mesh::Coord> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i] != 0) out.push_back(mesh_.coord(i));
    }
    return out;
  }

  /// Calls `fn(Coord)` for every member, row-major.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i] != 0) fn(mesh_.coord(i));
    }
  }

  /// Set union (topologies must match).
  CellSet& operator|=(const CellSet& other);
  /// Set difference (topologies must match).
  CellSet& operator-=(const CellSet& other);
  /// Set intersection (topologies must match).
  CellSet& operator&=(const CellSet& other);

  friend bool operator==(const CellSet&, const CellSet&) = default;

 private:
  mesh::Mesh2D mesh_;
  std::vector<std::uint8_t> bits_;
  std::size_t count_ = 0;
};

}  // namespace ocp::grid
