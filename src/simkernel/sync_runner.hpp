// Synchronous lock-step execution of a node-local protocol (the paper's
// "iterative message exchanges among neighboring nodes").
//
// The round loop runs over a precomputed `mesh::AdjacencyTable`: per-node
// inboxes are gathered by indexing flat neighbor arrays (no coordinate
// arithmetic, no `std::optional`). Dense mode isolates rounds through the
// message plane (plane sweeps read only previous-round announcements) or
// through deferred writes (sparse participant-list sweeps), so states update
// in place; Frontier mode double-buffers the state planes. Either way a
// round reads only previous-round data, which makes it embarrassingly
// parallel: with `RunOptions::parallel` dense rounds are evaluated across
// OpenMP threads with integer reductions, producing bit-identical states and
// statistics for any thread count.
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "grid/node_grid.hpp"
#include "mesh/adjacency.hpp"
#include "simkernel/protocol.hpp"

namespace ocp::sim {

/// Result of a synchronous run: the stable per-node states plus cost metrics.
template <typename P>
struct RunResult {
  grid::NodeGrid<typename P::State> states;
  RoundStats stats;
};

namespace detail {

/// Builds the round-`r` inbox of node `i` from the previous-round plane.
template <SyncProtocol P>
inline void gather(const mesh::AdjacencyTable& adj, const P& proto,
                   const typename P::State* prev,
                   const typename P::Message& ghost, std::size_t i,
                   Inbox<typename P::Message>& inbox) {
  const std::int32_t* row = adj.dir_row(i);
  for (std::size_t slot = 0; slot < mesh::kNumDirs; ++slot) {
    const std::int32_t j = row[slot];
    if (j >= 0) {
      inbox.by_dir[slot] = proto.announce(prev[static_cast<std::size_t>(j)]);
      inbox.from_ghost[slot] = false;
    } else {
      // Open mesh boundary: the missing neighbor is a ghost node whose
      // status never changes (paper, section 3).
      inbox.by_dir[slot] = ghost;
      inbox.from_ghost[slot] = true;
    }
  }
}

}  // namespace detail

/// Runs `proto` to quiescence on the machine described by `adj` and returns
/// the fixpoint.
///
/// Dense mode evaluates every participating node every round — a literal
/// transcription of the paper's algorithm skeleton. Frontier mode evaluates
/// only nodes that received a changed message; since `update` is a pure
/// function of the inbox, the per-round states are identical. Both stop
/// after the first round with no change anywhere.
template <SyncProtocol P>
RunResult<P> run_sync(const mesh::AdjacencyTable& adj, const P& proto,
                      const RunOptions& opts = {}) {
  using State = typename P::State;
  const mesh::Mesh2D& m = adj.mesh();
  const std::size_t node_count = adj.node_count();

  grid::NodeGrid<State> curr(m);
  if constexpr (requires(std::span<State> sp) { proto.init_plane(m, sp); }) {
    // Optional bulk initializer (see SyncProtocol docs): one linear fill of
    // the dense plane instead of per-node coordinate arithmetic.
    proto.init_plane(m, std::span<State>(&curr.at_index(0), node_count));
  } else {
    std::size_t i = 0;
    for (std::int32_t y = 0; y < m.height(); ++y) {
      for (std::int32_t x = 0; x < m.width(); ++x, ++i) {
        curr.at_index(i) = proto.init({x, y});
      }
    }
  }
  // Frontier mode keeps a second state plane (invariant: next == curr at
  // round start). Dense mode updates `curr` in place — plane sweeps are
  // isolated by the message plane, list sweeps by deferred writes — so it
  // never needs the copy.
  std::optional<grid::NodeGrid<State>> next;
  if (opts.mode == RunMode::Frontier) next.emplace(curr);

  const typename P::Message ghost = proto.ghost_message();

  RoundStats stats;

  // Per-round broadcast cost of the paper's model: every *currently*
  // participating node announces to each physical neighbor. Dense mode
  // recomputes the sum as a byproduct of each sweep (round 1 reads the
  // initial plane, so its sum doubles as the round-0 announcement count);
  // frontier mode seeds the sum here and maintains it incrementally as state
  // changes flip `participates()`. Both give the same per-round value
  // because participation is a pure function of node state.
  std::uint64_t broadcast_now = 0;

  // Dense bookkeeping. Two sweep strategies, chosen per round from the
  // previous round's participating-node count; both produce identical
  // inboxes, states, and statistics — the choice is pure performance.
  //
  //  * Plane sweep (participation >= ~25%, e.g. the safety phase where every
  //    nonfaulty node runs the rule): double-buffered message planes, padded
  //    with one trailing ghost entry so `AdjacencyTable::dense_row` can be
  //    indexed branchlessly. Announce is a pure function of state, so only
  //    changed nodes re-announce into the next plane.
  //  * List sweep (sparse participation, e.g. the activation phase where
  //    only unsafe nodes run the rule): evaluate just the participants —
  //    exactly the paper's model, where non-participating nodes are idle. A
  //    node outside the set can never enter it (only `update` changes state,
  //    and only participants run `update`), so the list is maintained by
  //    filtering when a sweep records participation flips.
  std::vector<typename P::Message> msgs;
  std::vector<typename P::Message> msgs_next;
  bool msgs_valid = false;  // msgs mirrors announce() over the curr plane
  std::vector<std::size_t> participants;
  std::vector<std::pair<std::size_t, typename P::State>> pending;
  bool list_valid = false;
  std::uint64_t part_flips = 0;
  std::uint64_t part_nodes_prev = 0;

  // Frontier bookkeeping: nodes to (re-)evaluate this round. `queued` is a
  // generation counter — bumping `generation` invalidates the whole array in
  // O(1) instead of an O(N) fill per round.
  std::vector<std::size_t> active;
  std::vector<std::uint32_t> queued;
  std::uint32_t generation = 0;
  if (opts.mode == RunMode::Frontier) {
    for (std::size_t i = 0; i < node_count; ++i) {
      if (proto.participates(curr.at_index(i))) {
        broadcast_now += static_cast<std::uint64_t>(adj.degree(i));
      }
    }
    // Round 0 of the event-driven refinement: everyone announces once.
    stats.messages_event_driven = broadcast_now;
    queued.assign(node_count, 0);
    active.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) active.push_back(i);
  } else {
    msgs.resize(node_count + 1);
    msgs_next.resize(node_count + 1);
    msgs[node_count] = ghost;
    msgs_next[node_count] = ghost;
    for (std::size_t i = 0; i < node_count; ++i) {
      part_nodes_prev +=
          static_cast<std::uint64_t>(proto.participates(curr.at_index(i)));
    }
  }

  std::vector<std::size_t> changed;
  changed.reserve(node_count);

  // Observability: frontier sizes summed over the run (one counter at the
  // end); per-round spans/instants only at TraceLevel::Round.
  std::uint64_t nodes_evaluated_total = 0;

  for (std::int32_t round = 1; round <= opts.max_rounds; ++round) {
    stats.rounds_executed = round;
    const obs::Span round_span(opts.trace, "sync.round",
                               opts.trace.rounds());

    if (opts.mode == RunMode::Dense) {
      State* cur = curr.data();
      typename P::Message* msg = msgs.data();
      typename P::Message* msg_out = msgs_next.data();
      std::uint64_t round_changes = 0;
      std::uint64_t changed_degree = 0;
      std::uint64_t part_degree = 0;
      std::uint64_t part_nodes = 0;
      std::uint64_t flips = 0;

      // Plane sweeps pay one announce per node; list sweeps pay one per
      // participating link. Break-even is ~1/4 participation.
      const bool sparse = part_nodes_prev * 4 < node_count;

      // Round isolation. Plane sweeps gather exclusively from the previous
      // round's message plane, so states can be updated in place; list
      // sweeps gather from neighbor states directly, so their (few) state
      // writes are deferred to `pending` and applied after the sweep. Either
      // way no full state-plane copy is ever made.

      /// Generic plane-sweep evaluation: CSR rows, correct for any node.
      const auto eval_node = [&](std::size_t i, std::uint64_t& chg,
                                 std::uint64_t& chg_deg,
                                 std::uint64_t& part_deg,
                                 std::uint64_t& part_cnt) {
        State s = cur[i];
        if (!proto.participates(s)) return;
        const auto deg = static_cast<std::uint64_t>(adj.degree(i));
        part_deg += deg;
        ++part_cnt;
        Inbox<typename P::Message> inbox;
        const std::int32_t* row = adj.dense_row(i);
        const std::uint8_t* gh = adj.ghost_row(i);
        for (std::size_t slot = 0; slot < mesh::kNumDirs; ++slot) {
          inbox.by_dir[slot] = msg[static_cast<std::size_t>(row[slot])];
          inbox.from_ghost[slot] = gh[slot] != 0;
        }
        if (proto.update(s, inbox)) {
          ++chg;
          chg_deg += deg;
          cur[i] = s;
          msg_out[i] = proto.announce(s);
        }
      };

      /// List-sweep evaluation: gathers from neighbor states, defers the
      /// state write to `pending[k]` (first == node_count flags no change).
      const auto eval_sparse = [&](std::size_t k, std::uint64_t& chg,
                                   std::uint64_t& chg_deg,
                                   std::uint64_t& part_deg,
                                   std::uint64_t& part_cnt,
                                   std::uint64_t& flp) {
        const std::size_t i = participants[k];
        pending[k].first = node_count;
        State s = cur[i];
        if (!proto.participates(s)) return;
        const auto deg = static_cast<std::uint64_t>(adj.degree(i));
        part_deg += deg;
        ++part_cnt;
        Inbox<typename P::Message> inbox;
        detail::gather(adj, proto, cur, ghost, i, inbox);
        if (proto.update(s, inbox)) {
          ++chg;
          chg_deg += deg;
          pending[k] = {i, s};
          if (!proto.participates(s)) ++flp;
        }
      };

      /// Interior evaluation (plane sweeps only): a node with 1 <= x <= w-2
      /// and 1 <= y <= h-2 has neighbors exactly {i+1, i-1, i+w, i-w} on
      /// mesh and torus alike, and never a ghost — no adjacency loads at
      /// all, just closed-form index arithmetic on the message plane.
      const std::size_t w = static_cast<std::size_t>(m.width());
      const auto eval_interior = [&](std::size_t i, std::uint64_t& chg,
                                     std::uint64_t& chg_deg,
                                     std::uint64_t& part_deg,
                                     std::uint64_t& part_cnt) {
        State s = cur[i];
        if (!proto.participates(s)) return;
        part_deg += 4;
        ++part_cnt;
        Inbox<typename P::Message> inbox;
        inbox.by_dir[static_cast<std::size_t>(mesh::Dir::East)] = msg[i + 1];
        inbox.by_dir[static_cast<std::size_t>(mesh::Dir::West)] = msg[i - 1];
        inbox.by_dir[static_cast<std::size_t>(mesh::Dir::North)] = msg[i + w];
        inbox.by_dir[static_cast<std::size_t>(mesh::Dir::South)] = msg[i - w];
        if (proto.update(s, inbox)) {
          ++chg;
          chg_deg += 4;
          cur[i] = s;
          msg_out[i] = proto.announce(s);
        }
      };

      /// One row of a plane sweep: boundary rows (and the first/last column
      /// of interior rows) go through the generic path; the interior span
      /// takes the closed-form path.
      const std::int32_t height = m.height();
      const auto eval_row = [&](std::int32_t y, std::uint64_t& chg,
                                std::uint64_t& chg_deg,
                                std::uint64_t& part_deg,
                                std::uint64_t& part_cnt) {
        const std::size_t base = static_cast<std::size_t>(y) * w;
        if (y == 0 || y == height - 1 || w < 3) {
          for (std::size_t i = base; i < base + w; ++i) {
            eval_node(i, chg, chg_deg, part_deg, part_cnt);
          }
        } else {
          eval_node(base, chg, chg_deg, part_deg, part_cnt);
          for (std::size_t i = base + 1; i < base + w - 1; ++i) {
            eval_interior(i, chg, chg_deg, part_deg, part_cnt);
          }
          eval_node(base + w - 1, chg, chg_deg, part_deg, part_cnt);
        }
      };

      if (sparse) {
        // (Re)derive the participant list: built by scan on entry, filtered
        // in place after any sweep that recorded participation flips.
        if (!list_valid) {
          participants.clear();
          for (std::size_t i = 0; i < node_count; ++i) {
            if (proto.participates(cur[i])) participants.push_back(i);
          }
          list_valid = true;
        } else if (part_flips != 0) {
          std::erase_if(participants, [&](std::size_t i) {
            return !proto.participates(cur[i]);
          });
        }
        pending.resize(participants.size());
      } else {
        list_valid = false;
        if (!msgs_valid) {
          for (std::size_t i = 0; i < node_count; ++i) {
            msg[i] = proto.announce(cur[i]);
          }
          msgs_valid = true;
        }
        std::copy(msg, msg + node_count, msg_out);
      }

      if (opts.trace.enabled()) {
        const auto frontier = static_cast<std::int64_t>(
            sparse ? participants.size() : node_count);
        nodes_evaluated_total += static_cast<std::uint64_t>(frontier);
        if (opts.trace.rounds()) {
          opts.trace.instant("sync.frontier", frontier);
        }
      }

#ifdef OCP_HAVE_OPENMP
      if (opts.parallel) {
        if (sparse) {
#pragma omp parallel for schedule(static) \
    reduction(+ : round_changes, changed_degree, part_degree, part_nodes, \
                  flips)
          for (std::int64_t k = 0;
               k < static_cast<std::int64_t>(participants.size()); ++k) {
            eval_sparse(static_cast<std::size_t>(k), round_changes,
                        changed_degree, part_degree, part_nodes, flips);
          }
        } else {
#pragma omp parallel for schedule(static) \
    reduction(+ : round_changes, changed_degree, part_degree, part_nodes)
          for (std::int64_t y = 0; y < static_cast<std::int64_t>(height);
               ++y) {
            eval_row(static_cast<std::int32_t>(y), round_changes,
                     changed_degree, part_degree, part_nodes);
          }
        }
      } else
#endif
      {
        if (sparse) {
          for (std::size_t k = 0; k < participants.size(); ++k) {
            eval_sparse(k, round_changes, changed_degree, part_degree,
                        part_nodes, flips);
          }
        } else {
          for (std::int32_t y = 0; y < height; ++y) {
            eval_row(y, round_changes, changed_degree, part_degree,
                     part_nodes);
          }
        }
      }

      if (sparse) {
        // Apply the deferred writes; every slot was stamped by the sweep.
        for (std::size_t k = 0; k < participants.size(); ++k) {
          if (pending[k].first != node_count) {
            cur[pending[k].first] = pending[k].second;
          }
        }
      }

      part_flips = flips;
      part_nodes_prev = part_nodes;
      // `msgs` must mirror the updated states for the next round: swap in
      // the maintained plane, or mark it stale if none was kept.
      if (sparse) {
        msgs_valid = false;
      } else {
        msgs.swap(msgs_next);
      }
      if (opts.trace.rounds()) {
        opts.trace.instant("sync.changes",
                           static_cast<std::int64_t>(round_changes));
      }
      stats.messages_broadcast += part_degree;
      if (round == 1) {
        // Round 0 of the event-driven refinement: every initially
        // participating node announces once. Round 1 sweeps the initial
        // plane, so its participating-degree sum is exactly that count.
        stats.messages_event_driven += part_degree;
      }
      if (round_changes == 0) break;  // quiescent: this round had no change
      stats.rounds_to_quiesce = round;
      stats.state_changes += round_changes;
      // A node that changed announces its new state on each of its links.
      stats.messages_event_driven += changed_degree;
      continue;
    }

    // Frontier mode. Invariant at round start: next == curr, and `active`
    // contains every node whose inbox may differ from the previous round.
    if (opts.trace.enabled()) {
      nodes_evaluated_total += active.size();
      if (opts.trace.rounds()) {
        opts.trace.instant("sync.frontier",
                           static_cast<std::int64_t>(active.size()));
      }
    }
    stats.messages_broadcast += broadcast_now;
    changed.clear();
    for (std::size_t i : active) {
      State& s = next->at_index(i);
      if (!proto.participates(s)) continue;
      Inbox<typename P::Message> inbox;
      detail::gather(adj, proto, curr.data(), ghost, i, inbox);
      if (proto.update(s, inbox)) changed.push_back(i);
    }

    if (opts.trace.rounds()) {
      opts.trace.instant("sync.changes",
                         static_cast<std::int64_t>(changed.size()));
    }
    if (changed.empty()) break;
    stats.rounds_to_quiesce = round;
    stats.state_changes += changed.size();

    ++generation;
    active.clear();
    for (std::size_t i : changed) {
      const auto deg = static_cast<std::uint64_t>(adj.degree(i));
      stats.messages_event_driven += deg;
      // A state change may flip whether the node broadcasts next round.
      const bool was = proto.participates(curr.at_index(i));
      const bool is = proto.participates(next->at_index(i));
      if (was && !is) broadcast_now -= deg;
      if (!was && is) broadcast_now += deg;
      curr.at_index(i) = next->at_index(i);

      // Next round, only the changed nodes' neighborhoods can change.
      for (const std::int32_t j32 : adj.physical_neighbors(i)) {
        const auto j = static_cast<std::size_t>(j32);
        if (queued[j] != generation) {
          queued[j] = generation;
          active.push_back(j);
        }
      }
      if (queued[i] != generation) {
        queued[i] = generation;
        active.push_back(i);
      }
    }
  }

  if (stats.rounds_executed >= opts.max_rounds &&
      stats.rounds_to_quiesce == stats.rounds_executed) {
    throw std::runtime_error(
        "run_sync: protocol did not quiesce within max_rounds");
  }
  if (opts.trace.enabled()) {
    opts.trace.counter("sync.rounds", stats.rounds_executed);
    opts.trace.counter("sync.nodes_flipped",
                       static_cast<std::int64_t>(stats.state_changes));
    opts.trace.counter(
        "sync.messages_broadcast",
        static_cast<std::int64_t>(stats.messages_broadcast));
    opts.trace.counter("sync.nodes_evaluated",
                       static_cast<std::int64_t>(nodes_evaluated_total));
  }
  return RunResult<P>{std::move(curr), stats};
}

/// Convenience overload that builds the adjacency table for one run. Callers
/// running several protocols on the same machine (e.g. the two-phase
/// pipeline) should build one `AdjacencyTable` and reuse it.
template <SyncProtocol P>
RunResult<P> run_sync(const mesh::Mesh2D& m, const P& proto,
                      const RunOptions& opts = {}) {
  return run_sync(mesh::AdjacencyTable(m), proto, opts);
}

}  // namespace ocp::sim
