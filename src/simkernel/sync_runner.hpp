// Synchronous lock-step execution of a node-local protocol (the paper's
// "iterative message exchanges among neighboring nodes").
#pragma once

#include <cassert>
#include <stdexcept>
#include <vector>

#include "grid/node_grid.hpp"
#include "simkernel/protocol.hpp"

namespace ocp::sim {

/// Result of a synchronous run: the stable per-node states plus cost metrics.
template <typename P>
struct RunResult {
  grid::NodeGrid<typename P::State> states;
  RoundStats stats;
};

namespace detail {

/// Builds the round-`r` inbox of node `c` from the previous-round states.
template <SyncProtocol P>
Inbox<typename P::Message> gather(const mesh::Mesh2D& m, const P& proto,
                                  const grid::NodeGrid<typename P::State>& prev,
                                  mesh::Coord c) {
  Inbox<typename P::Message> inbox;
  for (mesh::Dir d : mesh::kAllDirs) {
    const auto slot = static_cast<std::size_t>(d);
    if (auto n = m.neighbor(c, d)) {
      inbox.by_dir[slot] = proto.announce(prev[*n]);
      inbox.from_ghost[slot] = false;
    } else {
      // Open mesh boundary: the missing neighbor is a ghost node whose
      // status never changes (paper, section 3).
      inbox.by_dir[slot] = proto.ghost_message();
      inbox.from_ghost[slot] = true;
    }
  }
  return inbox;
}

}  // namespace detail

/// Runs `proto` to quiescence on machine `m` and returns the fixpoint.
///
/// Dense mode evaluates every participating node every round — a literal
/// transcription of the paper's algorithm skeleton. Frontier mode evaluates
/// only nodes that received a changed message; since `update` is a pure
/// function of the inbox, the per-round states are identical. Both stop
/// after the first round with no change anywhere.
template <SyncProtocol P>
RunResult<P> run_sync(const mesh::Mesh2D& m, const P& proto,
                      const RunOptions& opts = {}) {
  const auto node_count = static_cast<std::size_t>(m.node_count());
  grid::NodeGrid<typename P::State> curr(m);
  for (std::size_t i = 0; i < node_count; ++i) {
    curr.at_index(i) = proto.init(m.coord(i));
  }
  grid::NodeGrid<typename P::State> next = curr;

  RoundStats stats;

  // Per-round broadcast cost of the paper's model: every participating node
  // announces to each physical neighbor.
  std::uint64_t broadcast_per_round = 0;
  for (std::size_t i = 0; i < node_count; ++i) {
    if (proto.participates(curr.at_index(i))) {
      broadcast_per_round += m.neighbors(m.coord(i)).size();
    }
  }
  // Round 0 of the event-driven refinement: everyone announces once.
  stats.messages_event_driven = broadcast_per_round;

  // Frontier bookkeeping: nodes to (re-)evaluate this round.
  std::vector<std::size_t> active;
  std::vector<std::uint8_t> queued(node_count, 0);
  if (opts.mode == RunMode::Frontier) {
    active.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) active.push_back(i);
  }

  std::vector<std::size_t> changed;
  changed.reserve(node_count);

  for (std::int32_t round = 1; round <= opts.max_rounds; ++round) {
    stats.rounds_executed = round;
    stats.messages_broadcast += broadcast_per_round;
    changed.clear();

    const auto evaluate = [&](std::size_t i) {
      const mesh::Coord c = m.coord(i);
      typename P::State& s = next.at_index(i);
      if (!proto.participates(s)) return;
      if (proto.update(s, detail::gather(m, proto, curr, c))) {
        changed.push_back(i);
      }
    };

    if (opts.mode == RunMode::Dense) {
      for (std::size_t i = 0; i < node_count; ++i) evaluate(i);
    } else {
      for (std::size_t i : active) evaluate(i);
    }

    if (changed.empty()) break;  // quiescent: this round had no change
    stats.rounds_to_quiesce = round;
    stats.state_changes += changed.size();

    // A node that changed announces its new state on each of its links.
    for (std::size_t i : changed) {
      stats.messages_event_driven += m.neighbors(m.coord(i)).size();
      curr.at_index(i) = next.at_index(i);
    }

    if (opts.mode == RunMode::Frontier) {
      // Next round, only the changed nodes' neighborhoods can change.
      std::fill(queued.begin(), queued.end(), std::uint8_t{0});
      active.clear();
      for (std::size_t i : changed) {
        const mesh::Coord c = m.coord(i);
        for (const mesh::Link& l : m.neighbors(c)) {
          const std::size_t j = m.index(l.to);
          if (!queued[j]) {
            queued[j] = 1;
            active.push_back(j);
          }
        }
        if (!queued[i]) {
          queued[i] = 1;
          active.push_back(i);
        }
      }
    }
  }

  if (stats.rounds_executed >= opts.max_rounds &&
      stats.rounds_to_quiesce == stats.rounds_executed) {
    throw std::runtime_error(
        "run_sync: protocol did not quiesce within max_rounds");
  }
  return RunResult<P>{std::move(curr), stats};
}

}  // namespace ocp::sim
