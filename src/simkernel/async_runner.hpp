// Asynchronous execution of a node-local protocol.
//
// The paper assumes synchronous lock-step rounds "to simplify the
// discussion". Because the labeling rules are monotone (safe -> unsafe and
// disabled -> enabled only), the fixpoint is independent of update order, so
// an asynchronous system — nodes updating at arbitrary times from their most
// recently received neighbor statuses — converges to the same labeling. This
// runner exercises that claim under randomized schedules; tests assert the
// async fixpoint equals the synchronous one.
#pragma once

#include <numeric>
#include <stdexcept>
#include <vector>

#include "simkernel/sync_runner.hpp"
#include "stats/rng.hpp"

namespace ocp::sim {

/// Cost metrics of an asynchronous run.
struct AsyncStats {
  /// Individual node update executions.
  std::uint64_t activations = 0;
  /// Updates that changed the node's state.
  std::uint64_t state_changes = 0;
  /// Full passes over the node set until a pass produced no change.
  std::int32_t sweeps = 0;
};

template <typename P>
struct AsyncResult {
  grid::NodeGrid<typename P::State> states;
  AsyncStats stats;
};

/// Runs `proto` to quiescence with randomized sweeps: each sweep visits all
/// nodes in a fresh random order, applying updates in place (so a node sees
/// the newest states of already-updated neighbors — an arbitrary asynchronous
/// interleaving). Stops when one whole sweep changes nothing.
template <SyncProtocol P>
AsyncResult<P> run_async(const mesh::AdjacencyTable& adj, const P& proto,
                         stats::Rng& rng, std::int32_t max_sweeps = 1 << 20) {
  const mesh::Mesh2D& m = adj.mesh();
  const std::size_t node_count = adj.node_count();
  grid::NodeGrid<typename P::State> states(m);
  for (std::size_t i = 0; i < node_count; ++i) {
    states.at_index(i) = proto.init(m.coord(i));
  }
  const typename P::Message ghost = proto.ghost_message();

  std::vector<std::size_t> order(node_count);
  std::iota(order.begin(), order.end(), std::size_t{0});

  AsyncStats stats;
  for (std::int32_t sweep = 1; sweep <= max_sweeps; ++sweep) {
    stats.sweeps = sweep;
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool any_change = false;
    for (std::size_t i : order) {
      typename P::State& s = states.at_index(i);
      if (!proto.participates(s)) continue;
      ++stats.activations;
      // In-place gather: neighbors may already hold this sweep's new states,
      // modelling arbitrary message timing.
      Inbox<typename P::Message> inbox;
      detail::gather(adj, proto, states.data(), ghost, i, inbox);
      if (proto.update(s, inbox)) {
        ++stats.state_changes;
        any_change = true;
      }
    }
    if (!any_change) return AsyncResult<P>{std::move(states), stats};
  }
  throw std::runtime_error(
      "run_async: protocol did not quiesce within max_sweeps");
}

/// Convenience overload that builds the adjacency table for one run.
template <SyncProtocol P>
AsyncResult<P> run_async(const mesh::Mesh2D& m, const P& proto,
                         stats::Rng& rng, std::int32_t max_sweeps = 1 << 20) {
  return run_async(mesh::AdjacencyTable(m), proto, rng, max_sweeps);
}

}  // namespace ocp::sim
