// Protocol concept and run statistics for the distributed labeling kernel.
//
// The paper's algorithms are synchronous iterative protocols: in each round
// every nonfaulty node sends its current status to its neighbors, receives
// theirs, and applies a local update rule; the protocol stops when a round
// produces no status change anywhere (quiescence). `SyncProtocol` captures
// exactly that node-local interface — an update rule may look only at the
// node's own state and the messages received from its (at most four)
// neighbors, which is what makes the algorithm distributed.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <optional>

#include "mesh/coord.hpp"
#include "mesh/mesh2d.hpp"
#include "obs/trace.hpp"

namespace ocp::sim {

/// Messages received by one node in one round, indexed by direction. On the
/// open mesh boundary the missing physical neighbor is replaced by the ghost
/// message (paper, section 3); `from_ghost` records that substitution.
template <typename Message>
struct Inbox {
  std::array<Message, mesh::kNumDirs> by_dir{};
  std::array<bool, mesh::kNumDirs> from_ghost{};

  [[nodiscard]] const Message& operator[](mesh::Dir d) const noexcept {
    return by_dir[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] bool is_ghost(mesh::Dir d) const noexcept {
    return from_ghost[static_cast<std::size_t>(d)];
  }
};

/// Node-local protocol interface. All methods must be pure functions of
/// their arguments — the kernel owns scheduling and delivery.
///
/// A protocol may additionally provide the optional bulk initializer
///   void init_plane(const mesh::Mesh2D& m, std::span<State> out) const;
/// filling `out[i]` (row-major dense index) with exactly `init(m.coord(i))`
/// for every node. Runners that hold a dense state plane detect the hook
/// with `if constexpr` and prefer it — a linear fill avoids 2-D coordinate
/// arithmetic per node — but semantics must match `init` exactly (the
/// per-coord runners still use `init`, and the equivalence tests compare
/// their fixpoints).
template <typename P>
concept SyncProtocol = requires(const P p, typename P::State s,
                                const typename P::State cs,
                                const Inbox<typename P::Message>& inbox,
                                mesh::Coord c) {
  /// Initial state of the node at `c` (round 0, before any exchange).
  { p.init(c) } -> std::same_as<typename P::State>;
  /// The status message a node broadcasts, derived from its current state.
  { p.announce(cs) } -> std::same_as<typename P::Message>;
  /// The constant message attributed to ghost neighbors outside an open mesh.
  { p.ghost_message() } -> std::same_as<typename P::Message>;
  /// Whether this node runs the update rule (faulty nodes cease to work).
  { p.participates(cs) } -> std::same_as<bool>;
  /// One local update from received messages; returns true iff `s` changed.
  { p.update(s, inbox) } -> std::same_as<bool>;
};

/// How the kernel schedules node updates. All modes compute the same
/// fixpoint; they differ in faithfulness vs speed.
enum class RunMode : std::uint8_t {
  /// Lock-step rounds, every node evaluated every round — the paper's model.
  Dense = 0,
  /// Lock-step rounds, but only nodes whose neighborhood changed in the
  /// previous round are re-evaluated. Identical round-by-round states to
  /// Dense (a node with an unchanged inbox cannot change), much faster on
  /// sparse fault patterns.
  Frontier = 1,
};

/// Convergence and cost metrics of one protocol run.
struct RoundStats {
  /// Rounds in which at least one node changed state — the paper's "number
  /// of rounds needed" metric (0 when the initial labeling is already
  /// stable).
  std::int32_t rounds_to_quiesce = 0;
  /// Rounds executed including the final all-quiet detection round.
  std::int32_t rounds_executed = 0;
  /// Total node state changes across the run.
  std::uint64_t state_changes = 0;
  /// Link messages under the paper's model (every participating node
  /// announces to every physical neighbor, every executed round).
  std::uint64_t messages_broadcast = 0;
  /// Link messages under an event-driven refinement (a node announces only
  /// when its state changed; round 0 announces initial state).
  std::uint64_t messages_event_driven = 0;
};

/// Kernel knobs.
struct RunOptions {
  RunMode mode = RunMode::Frontier;
  /// Evaluate dense rounds across OpenMP threads. Sound because `update` is
  /// a pure function of the previous-round plane (double-buffered states
  /// make a round embarrassingly parallel) and all round statistics are
  /// integer reductions, so results and stats are bit-identical for any
  /// thread count. Ignored in Frontier mode and without OpenMP.
  bool parallel = false;
  /// Safety cap; the monotone labeling protocols converge in at most
  /// max-fault-block-diameter rounds, so hitting this cap indicates a bug.
  std::int32_t max_rounds = 1 << 20;
  /// Observability: disabled by default. At TraceLevel::Round the runner
  /// emits one "sync.round" span plus frontier/changes instants per round.
  obs::TraceConfig trace;
};

}  // namespace ocp::sim
