// Online maintenance demo: a machine degrades fault by fault; after each
// event the labeling is patched incrementally and the demo reports the
// evolving fault model plus a health check of one long-haul route.
//
//   $ ./maintenance_demo [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/render.hpp"
#include "core/maintenance.hpp"
#include "routing/router.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3;

  const mesh::Mesh2D machine = mesh::Mesh2D::square(18);
  labeling::MaintainedLabeling live{grid::CellSet(machine)};
  stats::Rng rng(seed);

  const mesh::Coord src{0, 9};
  const mesh::Coord dst{17, 9};

  std::cout << "Machine " << machine.describe() << "; faults arrive one by "
            << "one, the labeling is patched incrementally (seed " << seed
            << ")\n\n";

  int delivered_checkpoints = 0;
  for (int event = 1; event <= 28; ++event) {
    const mesh::Coord failed = machine.coord(static_cast<std::size_t>(
        rng.uniform_int(0, machine.node_count() - 1)));
    const std::size_t changed = live.add_fault(failed).safety_changed;

    if (event % 7 != 0) continue;  // report every 7th event

    std::cout << "--- after " << event << " fault events ("
              << live.faults().size() << " distinct faults) ---\n";
    std::cout << "last event: " << mesh::to_string(failed) << " ("
              << changed << " safety change(s)); " << live.blocks().size()
              << " block(s), " << live.regions().size() << " region(s), "
              << live.regions().size() << " convex; healthy disabled: ";
    std::size_t disabled_nonfaulty = 0;
    for (const auto& region : live.regions()) {
      disabled_nonfaulty += region.disabled_nonfaulty_count;
    }
    std::cout << disabled_nonfaulty << "\n";

    const auto blocked = labeling::disabled_cells(live.activation());
    if (blocked.contains(src) || blocked.contains(dst)) {
      std::cout << "checkpoint route endpoints swallowed; skipping\n\n";
      continue;
    }
    const routing::FaultRingRouter router(machine, blocked);
    const auto route = router.route(src, dst);
    std::cout << "checkpoint route " << mesh::to_string(src) << " -> "
              << mesh::to_string(dst) << ": "
              << routing::to_string(route.status);
    if (route.delivered()) {
      ++delivered_checkpoints;
      std::cout << " in " << route.hops() << " hops ("
                << route.detour_hops() << " detour)";
    }
    std::cout << "\n\n";
  }

  // Final picture.
  labeling::PipelineResult snapshot{
      live.safety(), live.activation(), live.blocks(), live.regions(), {}, {}};
  std::cout << "final labeling (X faulty, d disabled, e re-enabled):\n"
            << analysis::render_labeling(live.faults(), snapshot);
  std::cout << "\n" << delivered_checkpoints
            << " checkpoint route(s) delivered while the machine degraded.\n";
  return 0;
}
