// Routing demo: the payoff of convex fault regions. Routes a packet across
// a faulty mesh under three obstacle models (raw faults, rectangular faulty
// blocks, orthogonal convex disabled regions) and draws each path.
//
//   $ ./routing_demo [seed]
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "routing/router.hpp"
#include "routing/traffic.hpp"

namespace {

using namespace ocp;

std::string render_route(const mesh::Mesh2D& m, const grid::CellSet& blocked,
                         const routing::Route& route, mesh::Coord src,
                         mesh::Coord dst) {
  std::unordered_map<mesh::Coord, char> overlay;
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    overlay[route.path[i]] = route.phase[i] == 0 ? 'o' : '*';
  }
  overlay[src] = 'S';
  overlay[dst] = 'D';

  std::string out;
  for (std::int32_t y = m.height() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < m.width(); ++x) {
      const mesh::Coord c{x, y};
      if (auto it = overlay.find(c); it != overlay.end()) {
        out += it->second;
      } else {
        out += blocked.contains(c) ? '#' : '.';
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 7;

  const mesh::Mesh2D machine = mesh::Mesh2D::square(20);
  stats::Rng rng(seed);
  // Clustered faults (e.g. a failing board) make the model differences
  // visible: the rectangle model swallows whole bounding boxes while the
  // orthogonal convex polygons hug the actual fault shapes.
  const grid::CellSet faults = fault::clustered(machine, 2, 9, rng);
  const auto result = labeling::run_pipeline(faults);

  const mesh::Coord src{0, 10};
  const mesh::Coord dst{19, 10};

  struct Model {
    const char* name;
    grid::CellSet blocked;
  };
  const Model models[] = {
      {"raw faults (no labeling)", faults},
      {"faulty blocks (rectangle model)",
       labeling::unsafe_cells(result.safety)},
      {"disabled regions (orthogonal convex polygons)",
       labeling::disabled_cells(result.activation)},
  };

  std::cout << "Routing " << mesh::to_string(src) << " -> "
            << mesh::to_string(dst) << " on a " << machine.describe()
            << " with " << faults.size() << " faults (seed " << seed
            << ")\n";
  std::cout << "Legend: S source, D destination, o e-cube hop, * detour hop, "
               "# blocked\n\n";

  for (const auto& model : models) {
    std::cout << "--- " << model.name << ": " << model.blocked.size()
              << " blocked nodes ("
              << model.blocked.size() - faults.size()
              << " healthy sacrificed) ---\n";
    if (model.blocked.contains(src) || model.blocked.contains(dst)) {
      std::cout << "endpoint swallowed by this model; skipping\n\n";
      continue;
    }
    const routing::FaultRingRouter router(machine, model.blocked);
    const routing::Route route = router.route(src, dst);
    std::cout << render_route(machine, model.blocked, route, src, dst);
    std::cout << "status " << routing::to_string(route.status) << ", "
              << route.hops() << " hops (" << route.detour_hops()
              << " detour), minimal " << machine.distance(src, dst)
              << "\n\n";
  }

  // Aggregate view: delivery and stretch over random traffic per model.
  for (const auto& model : models) {
    const routing::FaultRingRouter router(machine, model.blocked);
    stats::Rng traffic_rng(seed * 31 + 1);
    const auto t =
        routing::run_uniform_traffic(router, model.blocked, 2000, traffic_rng);
    std::cout << model.name << ": delivery "
              << 100.0 * t.delivery_rate() << "%, mean stretch "
              << (t.stretch.empty() ? 0.0 : t.stretch.mean()) << " hops\n";
  }
  return 0;
}
