// Torus demo: wraparound labeling. The same fault pattern is labeled on an
// open mesh and on a torus; faults placed across the seams merge into one
// block only on the torus, and the torus needs no ghost boundary.
//
//   $ ./torus_demo
#include <iostream>

#include "analysis/render.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace ocp;

  constexpr std::int32_t kSide = 12;
  // A diagonal fault pair straddling the x-seam and a plain interior pair.
  const std::initializer_list<mesh::Coord> pattern = {
      {11, 5}, {0, 6},  // seam-straddling diagonal
      {5, 2},  {6, 3},  // interior diagonal
  };

  for (auto topology : {mesh::Topology::Mesh, mesh::Topology::Torus}) {
    const mesh::Mesh2D machine(kSide, kSide, topology);
    const grid::CellSet faults(machine, pattern);
    const auto result = labeling::run_pipeline(faults);

    std::cout << "=== " << machine.describe() << " ===\n";
    std::cout << analysis::render_labeling(faults, result);
    std::cout << result.blocks.size() << " faulty block(s):\n";
    for (const auto& block : result.blocks) {
      std::cout << "  " << block.size() << " nodes, rectangle: "
                << std::boolalpha << block.region().is_rectangle()
                << ", frame bbox "
                << mesh::to_string(block.region().bounding_box().lo) << ".."
                << mesh::to_string(block.region().bounding_box().hi) << "\n";
    }
    std::cout << result.enabled_total() << "/"
              << result.unsafe_nonfaulty_total()
              << " healthy nodes re-enabled\n\n";
  }

  std::cout << "On the mesh the seam faults are isolated singletons; on the "
               "torus they are diagonal neighbors, form one 2x2 block across "
               "the seam, and its two healthy cells are re-enabled.\n";
  return 0;
}
