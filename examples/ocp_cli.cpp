// ocp_cli — command-line front end for the library.
//
//   ocp_cli generate --n 32 --faults 20 [--seed S] [--model uniform|clustered|bernoulli]
//       emit a fault trace on stdout
//   ocp_cli label [trace-file]
//       read a trace (stdin when no file), run the pipeline, render the
//       labeling and print block/region summaries
//   ocp_cli route <sx> <sy> <dx> <dy> [trace-file] [--router ring|adaptive|minimal|xy]
//       label, then route one packet across the machine
//   ocp_cli stats [trace-file]
//       one-trace summary table (rounds, blocks, regions, ratios)
//   ocp_cli partition [trace-file]
//       multi-polygon covers per disabled region (open problem, section 4)
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "analysis/render.hpp"
#include "analysis/svg.hpp"
#include "core/partition.hpp"
#include "core/pipeline.hpp"
#include "stats/table.hpp"
#include "fault/generators.hpp"
#include "fault/trace.hpp"
#include "routing/adaptive_router.hpp"
#include "routing/minimal_router.hpp"

namespace {

using namespace ocp;

int usage() {
  std::cerr
      << "usage:\n"
         "  ocp_cli generate --n N --faults F [--seed S] [--model M] [--torus]\n"
         "  ocp_cli label [trace-file] [--svg out.svg]\n"
         "  ocp_cli route SX SY DX DY [trace-file] [--router R]\n"
         "  ocp_cli stats [trace-file]\n"
         "  ocp_cli partition [trace-file]\n";
  return 2;
}

grid::CellSet read_input(const char* path) {
  if (path == nullptr) return fault::read_trace(std::cin);
  return fault::load_trace(path);
}

int cmd_generate(int argc, char** argv) {
  std::int32_t n = 32;
  std::size_t faults = 20;
  std::uint64_t seed = 1;
  std::string model = "uniform";
  bool torus = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n" && i + 1 < argc) n = std::atoi(argv[++i]);
    else if (arg == "--faults" && i + 1 < argc)
      faults = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (arg == "--model" && i + 1 < argc) model = argv[++i];
    else if (arg == "--torus") torus = true;
    else return usage();
  }
  const mesh::Mesh2D m = mesh::Mesh2D::square(
      n, torus ? mesh::Topology::Torus : mesh::Topology::Mesh);
  stats::Rng rng(seed);
  grid::CellSet set(m);
  if (model == "uniform") {
    set = fault::uniform_random(m, faults, rng);
  } else if (model == "clustered") {
    set = fault::clustered(m, std::max<std::size_t>(1, faults / 8), 8, rng);
  } else if (model == "bernoulli") {
    set = fault::bernoulli(
        m, static_cast<double>(faults) / static_cast<double>(m.node_count()),
        rng);
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return 2;
  }
  std::cout << "# generated: model=" << model << " seed=" << seed << "\n";
  fault::write_trace(std::cout, set);
  return 0;
}

int cmd_label(int argc, char** argv) {
  const char* file = nullptr;
  const char* svg_path = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--svg") == 0 && i + 1 < argc) {
      svg_path = argv[++i];
    } else {
      file = argv[i];
    }
  }
  const auto faults = read_input(file);
  const auto result = labeling::run_pipeline(faults);
  if (svg_path != nullptr) {
    std::ofstream out(svg_path);
    out << analysis::render_labeling_svg(faults, result);
    std::cout << "(svg written to " << svg_path << ")\n";
  }
  std::cout << faults.topology().describe() << ", " << faults.size()
            << " faults\n\n"
            << analysis::render_labeling(faults, result) << "\n";
  std::cout << "phase 1: " << result.safety_stats.rounds_to_quiesce
            << " rounds -> " << result.blocks.size() << " faulty block(s)\n";
  std::cout << "phase 2: " << result.activation_stats.rounds_to_quiesce
            << " rounds -> " << result.regions.size()
            << " disabled region(s)\n";
  std::cout << "healthy nodes re-enabled: " << result.enabled_total() << "/"
            << result.unsafe_nonfaulty_total() << "\n";
  return 0;
}

int cmd_route(int argc, char** argv) {
  if (argc < 4) return usage();
  const mesh::Coord src{std::atoi(argv[0]), std::atoi(argv[1])};
  const mesh::Coord dst{std::atoi(argv[2]), std::atoi(argv[3])};
  const char* file = nullptr;
  std::string router_name = "ring";
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--router") == 0 && i + 1 < argc) {
      router_name = argv[++i];
    } else {
      file = argv[i];
    }
  }
  const auto faults = read_input(file);
  const auto result = labeling::run_pipeline(faults);
  const auto blocked = labeling::disabled_cells(result.activation);
  const mesh::Mesh2D& m = faults.topology();

  std::unique_ptr<routing::Router> router;
  if (router_name == "ring") {
    router = std::make_unique<routing::FaultRingRouter>(m, blocked);
  } else if (router_name == "adaptive") {
    router = std::make_unique<routing::AdaptiveRouter>(m, blocked);
  } else if (router_name == "minimal") {
    router = std::make_unique<routing::MinimalRouter>(m, blocked);
  } else if (router_name == "xy") {
    router = std::make_unique<routing::XYRouter>(m, blocked);
  } else {
    std::cerr << "unknown router: " << router_name << "\n";
    return 2;
  }

  const auto route = router->route(src, dst);
  std::cout << router->name() << " " << mesh::to_string(src) << " -> "
            << mesh::to_string(dst) << ": "
            << routing::to_string(route.status);
  if (route.delivered()) {
    std::cout << ", " << route.hops() << " hops ("
              << route.detour_hops() << " detour, minimal "
              << m.distance(src, dst) << ")";
  }
  std::cout << "\n";
  for (mesh::Coord c : route.path) std::cout << "  " << mesh::to_string(c) << "\n";
  return route.delivered() ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
  const auto faults = read_input(argc > 0 ? argv[0] : nullptr);
  const auto result = labeling::run_pipeline(faults);

  stats::Table table({"metric", "value"});
  table.add_row({"machine", faults.topology().describe()});
  table.add_row({"faults", std::to_string(faults.size())});
  table.add_row({"phase-1 rounds",
                 std::to_string(result.safety_stats.rounds_to_quiesce)});
  table.add_row({"phase-2 rounds",
                 std::to_string(result.activation_stats.rounds_to_quiesce)});
  table.add_row({"faulty blocks", std::to_string(result.blocks.size())});
  table.add_row({"disabled regions", std::to_string(result.regions.size())});
  table.add_row({"unsafe nonfaulty",
                 std::to_string(result.unsafe_nonfaulty_total())});
  table.add_row({"re-enabled", std::to_string(result.enabled_total())});
  table.add_row({"still disabled",
                 std::to_string(result.disabled_nonfaulty_total())});
  std::size_t max_diam = 0;
  std::size_t max_size = 0;
  for (const auto& block : result.blocks) {
    max_diam = std::max(max_diam,
                        static_cast<std::size_t>(block.region().diameter()));
    max_size = std::max(max_size, block.size());
  }
  table.add_row({"max block size", std::to_string(max_size)});
  table.add_row({"max d(B)", std::to_string(max_diam)});
  table.add_row(
      {"event msgs/node",
       stats::format_double(
           static_cast<double>(
               result.safety_stats.messages_event_driven +
               result.activation_stats.messages_event_driven) /
               static_cast<double>(faults.topology().node_count()),
           2)});
  table.print(std::cout);
  return 0;
}

int cmd_partition(int argc, char** argv) {
  const auto faults = read_input(argc > 0 ? argv[0] : nullptr);
  const auto result = labeling::run_pipeline(faults);
  std::cout << result.regions.size() << " disabled region(s)\n";
  for (std::size_t i = 0; i < result.regions.size(); ++i) {
    const auto& region = result.regions[i];
    std::vector<mesh::Coord> fcells;
    const auto frame = region.region().cells();
    const auto phys = region.component.cells();
    for (std::size_t j = 0; j < frame.size(); ++j) {
      if (faults.contains(phys[j])) {
        fcells.push_back(frame[j]);
      }
    }
    const geom::Region region_faults(std::move(fcells));
    const auto touching = labeling::greedy_cut_cover(region_faults);
    std::cout << "region " << i << ": " << region.fault_count << " faults, "
              << region.disabled_nonfaulty_count
              << " healthy disabled; touching-rule cover: "
              << touching.polygon_count() << " polygon(s), "
              << touching.nonfaulty_cells << " healthy\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
  if (cmd == "label") return cmd_label(argc - 2, argv + 2);
  if (cmd == "route") return cmd_route(argc - 2, argv + 2);
  if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
  if (cmd == "partition") return cmd_partition(argc - 2, argv + 2);
  return usage();
}
