// Wormhole demo: watch worms traverse a faulty machine. Shows the classic
// turn-cycle deadlock on one virtual channel, then fault-tolerant traffic
// draining over the labeled convex regions with an escape channel.
//
//   $ ./wormhole_demo
#include <iostream>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/wormhole.hpp"
#include "routing/router.hpp"

namespace {

using namespace ocp;

void turn_cycle_act() {
  std::cout << "--- Act 1: the canonical turn-cycle deadlock ---\n"
            << "Four 32-flit worms route around a square, each turning the "
               "same way.\n";
  const mesh::Mesh2D m(10, 10);
  const mesh::Coord corners[] = {{2, 2}, {6, 2}, {6, 6}, {2, 6}};
  const auto leg = [](mesh::Coord from, mesh::Coord to) {
    std::vector<mesh::Coord> cells{from};
    mesh::Coord cur = from;
    while (cur != to) {
      if (cur.x != to.x) cur.x += to.x > cur.x ? 1 : -1;
      else cur.y += to.y > cur.y ? 1 : -1;
      cells.push_back(cur);
    }
    return cells;
  };
  for (int vcs = 1; vcs <= 2; ++vcs) {
    netsim::WormholeSim sim(m, {.num_vcs = static_cast<std::uint8_t>(vcs),
                                .vc_buffer_flits = 1,
                                .deadlock_threshold = 64});
    for (int w = 0; w < 4; ++w) {
      auto path = leg(corners[w], corners[(w + 1) % 4]);
      const auto second = leg(corners[(w + 1) % 4], corners[(w + 2) % 4]);
      path.insert(path.end(), second.begin() + 1, second.end());
      netsim::PacketSpec spec;
      spec.path = std::move(path);
      spec.vcs.assign(spec.path.size() - 1, 0);
      if (vcs == 2) {
        for (std::size_t h = spec.vcs.size() / 2; h < spec.vcs.size(); ++h) {
          spec.vcs[h] = 1;
        }
      }
      spec.length_flits = 32;
      sim.submit(std::move(spec));
    }
    const auto result = sim.run();
    std::cout << "  " << vcs << " virtual channel(s): "
              << (result.deadlocked ? "DEADLOCK after " : "all drained in ")
              << result.cycles << " cycles, " << result.delivered
              << "/4 delivered\n";
  }
  std::cout << "\n";
}

void labeled_traffic_act() {
  std::cout << "--- Act 2: traffic across a labeled faulty machine ---\n";
  const mesh::Mesh2D m(24, 24);
  stats::Rng rng(5);
  const auto faults = fault::clustered(m, 3, 8, rng);
  const auto labeled = labeling::run_pipeline(faults);
  const auto blocked = labeling::disabled_cells(labeled.activation);
  std::cout << "machine " << m.describe() << ", " << faults.size()
            << " faults in " << labeled.regions.size()
            << " orthogonal convex region(s); "
            << blocked.size() - faults.size()
            << " healthy nodes disabled\n";

  const routing::FaultRingRouter router(m, blocked);
  netsim::WormholeSim sim(m, {.num_vcs = 2, .vc_buffer_flits = 2});
  std::size_t submitted = 0;
  for (int i = 0; submitted < 100 && i < 2000; ++i) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
      continue;
    }
    const auto route = router.route(src, dst);
    if (!route.delivered()) continue;
    sim.submit(netsim::make_packet(route, 2, 8, rng.uniform_int(0, 100)));
    ++submitted;
  }
  const auto result = sim.run();
  std::cout << submitted << " worms, 8 flits each, detours on the escape "
            << "channel:\n  " << result.delivered << " delivered in "
            << result.cycles << " cycles, mean latency "
            << result.latency.mean() << " cycles, deadlock: "
            << (result.deadlocked ? "yes" : "no") << "\n";
}

}  // namespace

int main() {
  turn_cycle_act();
  labeled_traffic_act();
  return 0;
}
