// Region viewer: renders the paper's worked examples (section 3, Figures 1
// and 2) step by step — fault pattern, safe/unsafe labeling under both
// definitions, and the final enabled/disabled labeling.
//
//   $ ./region_viewer
#include <iostream>

#include "analysis/render.hpp"
#include "core/pipeline.hpp"
#include "fault/fixtures.hpp"

namespace {

using namespace ocp;

void show(const fault::Fixture& fx) {
  std::cout << "=== " << fx.name << " ===\n" << fx.description << "\n\n";

  for (auto def :
       {labeling::SafeUnsafeDef::Def2a, labeling::SafeUnsafeDef::Def2b}) {
    labeling::PipelineOptions opts;
    opts.definition = def;
    const auto result = labeling::run_pipeline(fx.faults, opts);

    std::cout << "-- " << labeling::to_string(def) << " --\n";
    std::cout << "phase 1 (X faulty, u unsafe nonfaulty, . safe), "
              << result.safety_stats.rounds_to_quiesce << " round(s):\n"
              << analysis::render_safety(fx.faults, result.safety);
    std::cout << "phase 2 (d disabled, e re-enabled), "
              << result.activation_stats.rounds_to_quiesce << " round(s):\n"
              << analysis::render_labeling(fx.faults, result);
    std::cout << result.blocks.size() << " faulty block(s) -> "
              << result.regions.size() << " disabled region(s); "
              << result.enabled_total() << "/"
              << result.unsafe_nonfaulty_total()
              << " healthy nodes re-enabled\n\n";
  }
}

}  // namespace

int main() {
  show(fault::worked_example());
  show(fault::figure1());
  show(fault::figure2a());
  show(fault::figure2b());
  return 0;
}
