// Quickstart: inject random faults into a mesh, run the two-phase distributed
// labeling, and inspect the resulting faulty blocks and orthogonal convex
// disabled regions.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/render.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "geometry/convexity.hpp"

int main(int argc, char** argv) {
  using namespace ocp;

  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 2001;

  // A 24x24 mesh-connected multicomputer with 20 random node faults.
  const mesh::Mesh2D machine = mesh::Mesh2D::square(24);
  stats::Rng rng(seed);
  const grid::CellSet faults = fault::uniform_random(machine, 20, rng);

  // Run both phases with the distributed engine (synchronous message
  // exchanges between neighbors, exactly the paper's algorithm).
  const labeling::PipelineResult result = labeling::run_pipeline(faults);

  std::cout << "Machine: " << machine.describe() << ", " << faults.size()
            << " faults (seed " << seed << ")\n\n";
  std::cout << "Legend: X faulty | d disabled nonfaulty | e re-enabled | "
               ". safe\n\n";
  std::cout << analysis::render_labeling(faults, result) << "\n";

  std::cout << "Phase 1 (safe/unsafe, Definition 2b): "
            << result.safety_stats.rounds_to_quiesce << " rounds, "
            << result.blocks.size() << " faulty block(s)\n";
  std::cout << "Phase 2 (enabled/disabled, Definition 3): "
            << result.activation_stats.rounds_to_quiesce << " rounds, "
            << result.regions.size() << " disabled region(s)\n\n";

  for (std::size_t b = 0; b < result.blocks.size(); ++b) {
    const auto& block = result.blocks[b];
    std::cout << "block " << b << ": " << block.size() << " nodes ("
              << block.fault_count << " faulty, "
              << block.unsafe_nonfaulty_count
              << " healthy-but-unsafe), bbox "
              << mesh::to_string(block.region().bounding_box().lo) << ".."
              << mesh::to_string(block.region().bounding_box().hi) << "\n";
  }
  std::cout << "\n";
  for (std::size_t r = 0; r < result.regions.size(); ++r) {
    const auto& region = result.regions[r];
    std::cout << "region " << r << " (from block " << region.parent_block
              << "): " << region.size() << " nodes, "
              << region.disabled_nonfaulty_count
              << " healthy nodes still disabled, orthogonal convex: "
              << std::boolalpha
              << geom::is_orthogonal_convex(region.region()) << "\n";
  }

  std::cout << "\nRe-enabled healthy nodes: " << result.enabled_total()
            << " of " << result.unsafe_nonfaulty_total()
            << " swallowed by the rectangle model\n";
  return 0;
}
