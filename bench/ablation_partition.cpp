// Open-problem study (paper, section 4): partitioning disabled regions into
// several orthogonal convex polygons. Compares the one-polygon-per-region
// model against the greedy gap partitioner and, for small regions, the
// exhaustive optimum.
#include <iostream>

#include "analysis/partition_study.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  const bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "Open problem (section 4): multi-polygon covers on a "
            << opts.n << "x" << opts.n << " mesh, " << opts.trials
            << " trials per point, seed " << opts.seed << "\n\n";

  analysis::PartitionStudyConfig config;
  config.n = opts.n;
  config.fault_counts = bench::sweep(opts);
  config.trials = opts.trials;
  config.seed = opts.seed;
  const auto rows = analysis::run_partition_study(config);
  bench::emit(opts, "ablation_partition_uniform",
              analysis::partition_study_table(rows));

  // Clustered faults produce the large, irregular regions where multi-
  // polygon covers actually pay off.
  config.clustered = true;
  const auto clustered_rows = analysis::run_partition_study(config);
  bench::emit(opts, "ablation_partition_clustered",
              analysis::partition_study_table(clustered_rows));

  std::cout
      << "Columns: healthy nodes sacrificed per machine under the as-is "
         "disabled regions, the Separated-rule greedy, the Touching-rule "
         "greedy, and the exhaustive Touching optimum (*greedy fallback "
         "above the per-region fault limit).\n"
      << "Expected shape: under the Separated rule the disabled regions are "
         "already optimal (the labeling performs every separated split "
         "itself); allowing touching polygons — the reading under which the "
         "paper's Figures 1(c)/(d) remark applies — splits a quarter of the "
         "clustered regions further and removes nearly all remaining "
         "healthy nodes (optimal <= touching <= separated <= DR).\n";
  return 0;
}
