// Figure 5 (a)/(b): average number of rounds to form faulty blocks and then
// disabled regions, versus the number of random faults f, on the paper's
// 100x100 mesh — swept under both safe/unsafe definitions (the two columns
// of Figure 5).
#include <iostream>

#include "analysis/fig5.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  const bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "Reproduction of Wu (IPPS 2001), Figure 5 (a)/(b): labeling "
               "rounds on a "
            << opts.n << "x" << opts.n << " mesh, " << opts.trials
            << " trials per point, seed " << opts.seed << "\n\n";

  for (auto def :
       {labeling::SafeUnsafeDef::Def2a, labeling::SafeUnsafeDef::Def2b}) {
    analysis::Fig5Config config;
    config.n = opts.n;
    config.definition = def;
    config.fault_counts = bench::sweep(opts);
    config.trials = opts.trials;
    config.seed = opts.seed;
    const auto rows = analysis::run_fig5(config);

    stats::Table table({"f", "rounds(FB)  [fig 5a/b top series]",
                        "rounds(DR)  [bottom series]", "max d(B)"});
    for (const auto& row : rows) {
      table.add_row({std::to_string(row.f),
                     stats::format_mean_ci(row.rounds_blocks.mean(),
                                           row.rounds_blocks.ci95(), 3),
                     stats::format_mean_ci(row.rounds_regions.mean(),
                                           row.rounds_regions.ci95(), 3),
                     stats::format_double(row.max_block_diameter.mean(), 2)});
    }
    bench::emit(opts,
                std::string("fig5_rounds_") + labeling::to_string(def),
                table);
  }

  std::cout << "Expected shape (paper section 5): both series stay far below "
               "the mesh diameter (2(n-1) = "
            << 2 * (opts.n - 1)
            << "), grow slowly with f, and rounds(DR) <= rounds(FB).\n";
  return 0;
}
