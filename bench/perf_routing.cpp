// Microbenchmarks of route computation: plain dimension-order routing and
// boundary-following fault-tolerant routing against labeled fault regions.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "routing/router.hpp"

namespace {

using namespace ocp;

struct Instance {
  mesh::Mesh2D machine;
  grid::CellSet blocked;
};

Instance labeled_instance(std::int32_t n, std::size_t f, std::uint64_t seed) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  stats::Rng rng(seed);
  const auto faults = fault::uniform_random(m, f, rng);
  const auto result = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});
  return {m, labeling::disabled_cells(result.activation)};
}

void BM_XYRouteFaultFree(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  const grid::CellSet blocked(m);
  const routing::XYRouter router(m, blocked);
  std::int64_t hops = 0;
  for (auto _ : state) {
    const auto r = router.route({0, 0}, {n - 1, n - 1});
    hops += r.hops();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(hops);
}
BENCHMARK(BM_XYRouteFaultFree)->Arg(32)->Arg(128);

void BM_RingRouteAcrossLabeledMesh(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto inst = labeled_instance(
      n, static_cast<std::size_t>(n), 17);  // ~n faults
  const routing::FaultRingRouter router(inst.machine, inst.blocked);
  stats::Rng rng(5);
  std::int64_t hops = 0;
  for (auto _ : state) {
    const auto src = inst.machine.coord(static_cast<std::size_t>(
        rng.uniform_int(0, inst.machine.node_count() - 1)));
    const auto dst = inst.machine.coord(static_cast<std::size_t>(
        rng.uniform_int(0, inst.machine.node_count() - 1)));
    const auto r = router.route(src, dst);
    hops += r.hops();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(hops);
}
BENCHMARK(BM_RingRouteAcrossLabeledMesh)->Arg(32)->Arg(100);

void BM_LabelingPlusRoutingEndToEnd(benchmark::State& state) {
  // Cost of the full stack a system would run after a failure event:
  // relabel, then route a batch of packets.
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  stats::Rng rng(23);
  const auto faults = fault::uniform_random(
      m, static_cast<std::size_t>(n / 2), rng);
  for (auto _ : state) {
    const auto result = labeling::run_pipeline(faults);
    const auto blocked = labeling::disabled_cells(result.activation);
    const routing::FaultRingRouter router(m, blocked);
    benchmark::DoNotOptimize(router.route({0, 0}, {n - 1, n - 1}));
  }
}
BENCHMARK(BM_LabelingPlusRoutingEndToEnd)
    ->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
