#!/usr/bin/env bash
# Fixture test for bench_to_json's --compare gate:
#   1. matching run vs baseline           -> exit 0
#   2. regression beyond the tolerance    -> exit 1
#   3. benchmark unknown to the baseline  -> exit 1 (the bug this guards:
#      a new benchmark must not slip past the gate just because the
#      committed baseline predates it)
#   4. same, with --allow-new             -> exit 0
#   5. baseline-only benchmark (filtered run) -> exit 0, reported only
#   6. failure preamble names the baseline file, and --ref stamps the run's
#      git ref into it (a CI log line is then self-contained)
#   7. a passing run never prints the failure preamble
#
# Usage: test_bench_to_json.sh <path-to-bench_to_json>
set -u

BIN="${1:?usage: test_bench_to_json.sh <bench_to_json>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

# Minimal google-benchmark-shaped output (one field per line, as the real
# tool emits) with two benchmarks.
make_full() {
  local file="$1" bm1_ns="$2" bm2_ns="$3"
  cat > "$file" <<EOF
{
  "context": {},
  "benchmarks": [
    {
      "name": "BM_One/16",
      "real_time": $bm1_ns,
      "cpu_time": $bm1_ns,
      "time_unit": "ns"
    },
    {
      "name": "BM_Two/32",
      "real_time": $bm2_ns,
      "cpu_time": $bm2_ns,
      "time_unit": "ns"
    }
  ]
}
EOF
}

expect() {
  local label="$1" want="$2"
  shift 2
  "$@" > /dev/null 2> "$TMP/stderr.log"
  local got=$?
  if [ "$got" != "$want" ]; then
    echo "FAIL $label: exit $got, expected $want" >&2
    sed 's/^/    /' "$TMP/stderr.log" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   $label"
  fi
}

make_full "$TMP/run.json" 2000000 3000000
"$BIN" "$TMP/run.json" > "$TMP/baseline.json" || {
  echo "FAIL: could not write fixture baseline" >&2
  exit 1
}

# 1. Identical run passes.
expect "matching run" 0 \
  "$BIN" "$TMP/run.json" --compare "$TMP/baseline.json"

# 2. A 3x slowdown on BM_One fails under the default 30% band, and the
# failure message names the offender with its delta — not just a count.
make_full "$TMP/slow.json" 6000000 3000000
expect "regression" 1 \
  "$BIN" "$TMP/slow.json" --compare "$TMP/baseline.json"
if ! grep -q "failed the gate" "$TMP/stderr.log"; then
  echo "FAIL regression: no enumerated failure summary on stderr" >&2
  FAILURES=$((FAILURES + 1))
fi
if ! grep -q -- "- BM_One/16: .*->.*band" "$TMP/stderr.log"; then
  echo "FAIL regression: offender BM_One/16 not named with its delta" >&2
  FAILURES=$((FAILURES + 1))
fi
if grep -q -- "- BM_Two/32:" "$TMP/stderr.log"; then
  echo "FAIL regression: unregressed BM_Two/32 listed as an offender" >&2
  FAILURES=$((FAILURES + 1))
fi

# 3. A benchmark the baseline has never seen fails by default...
grep -v "BM_Two" "$TMP/baseline.json" > "$TMP/baseline_one.json"
expect "unknown benchmark" 1 \
  "$BIN" "$TMP/run.json" --compare "$TMP/baseline_one.json"
if ! grep -q "UNKNOWN" "$TMP/stderr.log"; then
  echo "FAIL unknown benchmark: no UNKNOWN line on stderr" >&2
  FAILURES=$((FAILURES + 1))
fi
if ! grep -q -- "- BM_Two/32: not in baseline" "$TMP/stderr.log"; then
  echo "FAIL unknown benchmark: offender not named in failure summary" >&2
  FAILURES=$((FAILURES + 1))
fi

# 4. ...and passes when explicitly allowed.
expect "unknown benchmark --allow-new" 0 \
  "$BIN" "$TMP/run.json" --compare "$TMP/baseline_one.json" --allow-new

# 5. A filtered run (baseline entry missing from the run) only reports.
make_full "$TMP/full2.json" 2000000 3000000
grep -v "BM_Two" "$TMP/full2.json" > "$TMP/filtered_raw.json"
# grep leaves a trailing comma on the BM_One entry; the parser tolerates it.
expect "baseline-only benchmark" 0 \
  "$BIN" "$TMP/filtered_raw.json" --compare "$TMP/baseline.json"

# 6. The failure preamble names the baseline path, and --ref stamps the
# run's git ref next to it.
expect "failure preamble with --ref" 1 \
  "$BIN" "$TMP/slow.json" --compare "$TMP/baseline.json" --ref cafe1234
if ! grep -q "baseline: $TMP/baseline.json" "$TMP/stderr.log"; then
  echo "FAIL failure preamble: baseline path not named" >&2
  FAILURES=$((FAILURES + 1))
fi
if ! grep -q "run ref:  cafe1234" "$TMP/stderr.log"; then
  echo "FAIL failure preamble: --ref value not stamped" >&2
  FAILURES=$((FAILURES + 1))
fi
# Without --ref the preamble still names the baseline but carries no ref.
expect "failure preamble without --ref" 1 \
  "$BIN" "$TMP/slow.json" --compare "$TMP/baseline.json"
if ! grep -q "baseline: $TMP/baseline.json" "$TMP/stderr.log"; then
  echo "FAIL failure preamble (no ref): baseline path not named" >&2
  FAILURES=$((FAILURES + 1))
fi
if grep -q "run ref:" "$TMP/stderr.log"; then
  echo "FAIL failure preamble (no ref): spurious run ref line" >&2
  FAILURES=$((FAILURES + 1))
fi

# 7. A passing run never prints the failure preamble.
expect "passing run stays quiet" 0 \
  "$BIN" "$TMP/run.json" --compare "$TMP/baseline.json" --ref cafe1234
if grep -q "baseline:" "$TMP/stderr.log"; then
  echo "FAIL passing run: failure preamble printed on success" >&2
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" != 0 ]; then
  echo "$FAILURES case(s) failed" >&2
  exit 1
fi
echo "all bench_to_json compare cases passed"
