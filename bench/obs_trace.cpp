// Traced end-to-end demo: runs the labeling pipeline on a 64x64 mesh at 10%
// faults and a BM_TrafficSimEndToEnd-sized wormhole run (24x24, clustered
// faults, fault-ring routing) with tracing at TraceLevel::Round, then writes
// the capture in both export formats and prints the summarized tables.
//
// This is the harness behind `bench/run_bench.sh --trace` and the worked
// example in EXPERIMENTS.md; tests/obs/report_test.cpp asserts the same
// runs produce non-zero per-round span counts.
//
// Usage:
//   obs_trace [--out-dir DIR]     # writes DIR/trace.jsonl and
//                                 # DIR/trace_chrome.json (default: .)
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/traffic_sim.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ocp;

void run_traced_pipeline(const obs::TraceConfig& trace) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(64);
  stats::Rng rng(1);
  const auto fault_count =
      static_cast<std::size_t>(m.node_count() / 10);  // 10% faults
  const grid::CellSet faults = fault::uniform_random(m, fault_count, rng);

  labeling::PipelineOptions opts;
  opts.trace = trace;
  const labeling::PipelineResult result = labeling::run_pipeline(faults, opts);
  std::cerr << "pipeline: 64x64 mesh, " << faults.size() << " faults, "
            << result.blocks.size() << " blocks, " << result.regions.size()
            << " regions, "
            << result.safety_stats.rounds_to_quiesce +
                   result.activation_stats.rounds_to_quiesce
            << " rounds\n";
}

void run_traced_netsim(const obs::TraceConfig& trace) {
  // Mirrors BM_TrafficSimEndToEnd (bench/perf_netsim.cpp) so the traced run
  // corresponds to a benchmark in the committed baseline.
  const mesh::Mesh2D m = mesh::Mesh2D::square(24);
  stats::Rng rng(3);
  const auto faults = fault::clustered(m, 3, 8, rng);
  labeling::PipelineOptions label_opts;
  label_opts.engine = labeling::Engine::Reference;
  const auto labeled = labeling::run_pipeline(faults, label_opts);
  const auto blocked = labeling::disabled_cells(labeled.activation);
  const routing::FaultRingRouter router(m, blocked);

  netsim::TrafficSimConfig config;
  config.injection_rate = 0.004;
  config.warm_cycles = 256;
  config.num_vcs = 2;
  config.trace = trace;
  const auto result = netsim::run_traffic_sim(m, blocked, router, config);
  std::cerr << "netsim: 24x24 mesh, " << result.offered_packets
            << " offered, " << result.delivered_packets << " delivered, "
            << result.cycles << " cycles, " << result.flit_moves
            << " flit moves\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: obs_trace [--out-dir DIR]\n";
      return 0;
    } else {
      std::cerr << "obs_trace: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  obs::TraceSink sink;
  const obs::TraceConfig trace{&sink, obs::TraceLevel::Round};
#ifdef OCP_OBS_DISABLE
  std::cerr << "obs_trace: built with OCP_OBS=OFF; the trace will be empty\n";
#endif

  run_traced_pipeline(trace);
  run_traced_netsim(trace);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);  // best-effort

  const std::string jsonl_path = out_dir + "/trace.jsonl";
  const std::string chrome_path = out_dir + "/trace_chrome.json";
  {
    std::ofstream out(jsonl_path);
    if (!out) {
      std::cerr << "obs_trace: cannot write " << jsonl_path << "\n";
      return 1;
    }
    sink.write_jsonl(out);
  }
  {
    std::ofstream out(chrome_path);
    if (!out) {
      std::cerr << "obs_trace: cannot write " << chrome_path << "\n";
      return 1;
    }
    sink.write_chrome_trace(out);
  }
  std::cerr << "wrote " << jsonl_path << " and " << chrome_path << "\n";

  // Round-trip through the exporter/parser pair, exactly what obs_report
  // does, so the demo fails loudly if the formats ever drift apart.
  std::ifstream back(jsonl_path);
  const obs::TraceReport report = obs::summarize_jsonl(back);
#ifndef OCP_OBS_DISABLE
  if (report.spans.empty()) {
    std::cerr << "obs_trace: round-trip produced no spans\n";
    return 1;
  }
#endif
  obs::print_report(report, std::cout);
  return 0;
}
