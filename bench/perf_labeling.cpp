// Microbenchmarks of the labeling engines: distributed kernel (dense vs
// frontier scheduling) and the centralized reference solver, across machine
// sizes and fault densities.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "core/reference.hpp"
#include "fault/generators.hpp"
#include "mesh/adjacency.hpp"

namespace {

using namespace ocp;

grid::CellSet make_faults(std::int32_t n, std::int64_t per_mille,
                          std::uint64_t seed) {
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  stats::Rng rng(seed);
  const auto f = static_cast<std::size_t>(m.node_count() * per_mille / 1000);
  return fault::uniform_random(m, f, rng);
}

void BM_PipelineDistributedFrontier(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto faults = make_faults(n, state.range(1), 42);
  labeling::PipelineOptions opts;
  opts.engine = labeling::Engine::Distributed;
  opts.run_mode = sim::RunMode::Frontier;
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeling::run_pipeline(faults, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_PipelineDistributedFrontier)
    ->ArgsProduct({{32, 64, 100, 200}, {5, 20}})
    ->Unit(benchmark::kMillisecond);

void BM_PipelineDistributedDense(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto faults = make_faults(n, state.range(1), 42);
  labeling::PipelineOptions opts;
  opts.engine = labeling::Engine::Distributed;
  opts.run_mode = sim::RunMode::Dense;
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeling::run_pipeline(faults, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_PipelineDistributedDense)
    ->ArgsProduct({{32, 64, 100, 200}, {5, 20}})
    ->Unit(benchmark::kMillisecond);

// Same pipeline with OpenMP-parallel dense rounds; results are bit-identical
// to the serial engine, only wall-clock changes. Thread count follows
// OMP_NUM_THREADS.
void BM_PipelineDistributedDenseParallel(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto faults = make_faults(n, state.range(1), 42);
  labeling::PipelineOptions opts;
  opts.engine = labeling::Engine::Distributed;
  opts.run_mode = sim::RunMode::Dense;
  opts.parallel = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeling::run_pipeline(faults, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_PipelineDistributedDenseParallel)
    ->ArgsProduct({{100, 200, 400}, {5, 20}})
    ->Unit(benchmark::kMillisecond);

// Cost of building the CSR adjacency table itself (paid once per machine,
// amortized across both phases and all rounds).
void BM_AdjacencyTableBuild(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mesh::Mesh2D m = mesh::Mesh2D::square(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::AdjacencyTable(m));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_AdjacencyTableBuild)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineReference(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto faults = make_faults(n, state.range(1), 42);
  labeling::PipelineOptions opts;
  opts.engine = labeling::Engine::Reference;
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeling::run_pipeline(faults, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_PipelineReference)
    ->ArgsProduct({{32, 64, 100, 200}, {5, 20}})
    ->Unit(benchmark::kMillisecond);

void BM_SafetyPhaseOnly(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto faults = make_faults(n, 10, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        labeling::reference_safety(faults, labeling::SafeUnsafeDef::Def2b));
  }
}
BENCHMARK(BM_SafetyPhaseOnly)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
