// Latency vs offered load under continuous injection: the classic network
// evaluation, run over the rectangle model vs the orthogonal convex polygon
// model at network-study scale (mesh side 32, plus 64 in full runs). The
// paper's region refinement frees healthy nodes; this harness shows what
// that does to the network's load response, then bisects for the exact
// saturation onset of each configuration.
//
// Sweeps run through netsim::run_load_sweep: seeded trials per rate, OpenMP
// over the whole (rate x trial) grid, bit-identical for any thread count.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/load_sweep.hpp"

namespace {

using namespace ocp;

struct Scheme {
  const char* name;
  netsim::VcScheme scheme;
  std::uint8_t vcs;
};

struct Model {
  const char* name;
  grid::CellSet blocked;
};

double mflits_per_sec(std::int64_t flit_moves, double seconds) {
  return seconds > 0 ? static_cast<double>(flit_moves) / seconds / 1e6 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  if (opts.n == 100) opts.n = 32;

  std::vector<std::int32_t> sizes = {opts.n};
  if (!opts.quick && opts.n <= 32) sizes.push_back(opts.n * 2);

  const Scheme schemes[] = {
      {"2vc-escape", netsim::VcScheme::PhaseEscape, 2},
      {"4vc-class", netsim::VcScheme::MessageClass, 4},
  };
  const std::vector<double> rates = {0.001, 0.002, 0.004, 0.008, 0.016};
  const std::size_t trials = opts.quick ? 2 : 4;

  for (const std::int32_t n : sizes) {
    const mesh::Mesh2D m = mesh::Mesh2D::square(n);
    stats::Rng rng(opts.seed);
    const auto clusters =
        static_cast<std::size_t>(3 * std::max(1, n / 24));
    const auto faults = fault::clustered(m, clusters, 8, rng);
    const auto labeled = labeling::run_pipeline(
        faults, {.engine = labeling::Engine::Reference});

    std::cout << "Wormhole saturation sweep on a " << m.describe() << " with "
              << faults.size() << " clustered faults; ring routing, "
              << trials << " trials/rate, 4-flit worms\n\n";

    const Model models[] = {
        {"faulty-blocks", labeling::unsafe_cells(labeled.safety)},
        {"disabled-regions", labeling::disabled_cells(labeled.activation)},
    };

    stats::Table table({"model", "vc scheme", "offered (flits/node/cyc)",
                        "accepted", "mean latency", "p99 latency",
                        "hist overflow", "delivered", "offered#", "deadlocks",
                        "Mflit-moves/s"});
    stats::Table saturation({"model", "vc scheme", "saturation rate",
                             "bracket", "probes", "Mflit-moves/s"});
    for (const auto& model : models) {
      const routing::FaultRingRouter router(m, model.blocked);
      for (const auto& scheme : schemes) {
        netsim::LoadSweepConfig sweep;
        sweep.injection_rates = rates;
        sweep.trials = trials;
        sweep.base.packet_flits = 4;
        sweep.base.warm_cycles = opts.quick ? 256 : 1024;
        sweep.base.num_vcs = scheme.vcs;
        sweep.base.vc_scheme = scheme.scheme;
        sweep.seed = opts.seed + 3;

        const auto t0 = std::chrono::steady_clock::now();
        const auto result =
            netsim::run_load_sweep(m, model.blocked, router, sweep);
        const double sweep_sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::int64_t sweep_moves = 0;
        for (const auto& p : result.points) sweep_moves += p.flit_moves;

        for (const auto& p : result.points) {
          table.add_row(
              {model.name, scheme.name,
               stats::format_double(p.offered_flits_per_node_cycle(4), 4),
               stats::format_double(p.accepted.mean(), 4),
               stats::format_double(p.latency.mean(), 1),
               stats::format_double(p.latency_hist.p99(), 0),
               std::to_string(p.latency_overflow),
               std::to_string(p.delivered_packets),
               std::to_string(p.offered_packets),
               std::to_string(p.deadlocked_trials) + "/" +
                   std::to_string(p.trials),
               stats::format_double(mflits_per_sec(sweep_moves, sweep_sec),
                                    2)});
        }

        netsim::SaturationConfig sat;
        sat.lo = rates.front();
        sat.hi = 0.05;
        sat.latency_limit = 512.0;
        sat.trials = trials;
        sat.base = sweep.base;
        sat.seed = opts.seed + 5;
        const auto s0 = std::chrono::steady_clock::now();
        const auto onset =
            netsim::find_saturation_rate(m, model.blocked, router, sat);
        const double sat_sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          s0)
                .count();
        std::int64_t sat_moves = 0;
        for (const auto& p : onset.probes) sat_moves += p.flit_moves;
        saturation.add_row(
            {model.name, scheme.name,
             stats::format_double(onset.saturation_rate, 5),
             "[" + stats::format_double(onset.lo, 5) + ", " +
                 stats::format_double(onset.hi, 5) + "]",
             std::to_string(onset.probes.size()),
             stats::format_double(mflits_per_sec(sat_moves, sat_sec), 2)});
      }
    }
    bench::emit(opts, "netsim_saturation_" + std::to_string(n), table);
    bench::emit(opts, "netsim_saturation_onset_" + std::to_string(n),
                saturation);
  }

  std::cout
      << "Expected shape: accepted throughput tracks offered load until "
         "contention bites and latency grows with load; the bisected onset "
         "quantifies where. The naive 2-VC escape scheme deadlocks once "
         "loaded (cross-packet cycles on the shared escape channel); "
         "Boppana-Chalasani message-class separation (4 VCs) pushes the "
         "deadlock-free range higher — full immunity additionally needs "
         "their exact ring-traversal rules, which our generic wall-follower "
         "approximates but does not replicate (deep over-saturation can "
         "still cycle within a class). The disabled-regions model frees "
         "healthy nodes relative to faulty-blocks, so it sustains more "
         "injectors at the same rate.\n";
  return 0;
}
