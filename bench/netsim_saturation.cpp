// Latency vs offered load under continuous injection: the classic network
// evaluation, run over the rectangle model vs the orthogonal convex polygon
// model. The paper's region refinement frees healthy nodes; this harness
// shows what that does to the network's load response.
#include <iostream>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/traffic_sim.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  if (opts.n == 100) opts.n = 24;

  const mesh::Mesh2D m = mesh::Mesh2D::square(opts.n);
  stats::Rng rng(opts.seed);
  const auto faults = fault::clustered(m, 3, 8, rng);
  const auto labeled = labeling::run_pipeline(
      faults, {.engine = labeling::Engine::Reference});

  std::cout << "Wormhole saturation sweep on a " << m.describe() << " with "
            << faults.size() << " clustered faults; ring routing, 2 virtual "
            << "channels, 4-flit worms\n\n";

  struct Model {
    const char* name;
    grid::CellSet blocked;
  };
  const Model models[] = {
      {"faulty-blocks", labeling::unsafe_cells(labeled.safety)},
      {"disabled-regions", labeling::disabled_cells(labeled.activation)},
  };

  const double rates[] = {0.001, 0.002, 0.004, 0.008, 0.016};
  struct Scheme {
    const char* name;
    netsim::VcScheme scheme;
    std::uint8_t vcs;
  };
  const Scheme schemes[] = {
      {"2vc-escape", netsim::VcScheme::PhaseEscape, 2},
      {"4vc-class", netsim::VcScheme::MessageClass, 4},
  };

  stats::Table table({"model", "vc scheme", "offered (flits/node/cyc)",
                      "accepted", "mean latency", "p99 latency", "delivered",
                      "offered#", "deadlock"});
  for (const auto& model : models) {
    const routing::FaultRingRouter router(m, model.blocked);
    for (const auto& scheme : schemes) {
      for (double rate : rates) {
        netsim::TrafficSimConfig config;
        config.injection_rate = rate;
        config.packet_flits = 4;
        config.warm_cycles = opts.quick ? 256 : 1024;
        config.num_vcs = scheme.vcs;
        config.vc_scheme = scheme.scheme;
        config.seed = opts.seed + 3;
        const auto r =
            netsim::run_traffic_sim(m, model.blocked, router, config);
        table.add_row(
            {model.name, scheme.name, stats::format_double(rate * 4, 4),
             stats::format_double(r.accepted_flits_per_node_cycle, 4),
             stats::format_double(r.latency.mean(), 1),
             stats::format_double(r.latency_hist.p99(), 0),
             std::to_string(r.delivered_packets),
             std::to_string(r.offered_packets),
             r.deadlocked ? "yes" : "no"});
      }
    }
  }
  bench::emit(opts, "netsim_saturation", table);

  std::cout
      << "Expected shape: accepted throughput tracks offered load until "
         "contention bites and latency grows with load. The naive 2-VC "
         "escape scheme deadlocks once loaded (cross-packet cycles on the "
         "shared escape channel); Boppana-Chalasani message-class "
         "separation (4 VCs) pushes the deadlock-free range higher — full "
         "immunity additionally needs their exact ring-traversal rules, "
         "which our generic wall-follower approximates but does not "
         "replicate (deep over-saturation can still cycle within a "
         "class).\n";
  return 0;
}
