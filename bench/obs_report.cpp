// Summarizes an ocpmesh-trace-v1 JSON-lines trace (obs::TraceSink's
// write_jsonl output) into per-span / per-instant / counter tables.
//
// Usage:
//   obs_report trace.jsonl
//   obs_trace --out-dir . && obs_report trace.jsonl
//   cat trace.jsonl | obs_report
//
// Exit status: 0 when the trace contained at least one recognizable line,
// 1 on an unreadable file or a trace with nothing to summarize (so scripts
// piping a trace through this tool notice an empty or garbage capture).
#include <fstream>
#include <iostream>
#include <string>

#include "obs/report.hpp"

int main(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: obs_report [trace.jsonl]  (stdin when omitted)\n";
      return 0;
    }
    if (!path.empty()) {
      std::cerr << "obs_report: expected at most one trace file\n";
      return 2;
    }
    path = arg;
  }

  ocp::obs::TraceReport report;
  if (path.empty()) {
    report = ocp::obs::summarize_jsonl(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "obs_report: cannot open " << path << "\n";
      return 1;
    }
    report = ocp::obs::summarize_jsonl(in);
  }

  if (report.spans.empty() && report.instants.empty() &&
      report.counters.empty()) {
    std::cerr << "obs_report: no trace events found"
              << (report.malformed_lines > 0
                      ? " (input does not look like ocpmesh-trace-v1)"
                      : " (empty trace)")
              << "\n";
    return 1;
  }
  if (!report.schema.empty() && report.schema != "ocpmesh-trace-v1") {
    std::cerr << "obs_report: warning: unknown schema '" << report.schema
              << "', parsing as ocpmesh-trace-v1\n";
  }
  ocp::obs::print_report(report, std::cout);
  return 0;
}
