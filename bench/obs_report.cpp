// Summarizes an ocpmesh-trace-v1 JSON-lines trace (obs::TraceSink's
// write_jsonl output) into per-span / per-instant / counter tables.
//
// Usage:
//   obs_report trace.jsonl
//   obs_report --strict trace.jsonl
//   obs_trace --out-dir . && obs_report trace.jsonl
//   cat trace.jsonl | obs_report
//
// Exit status: 0 when the trace contained at least one recognizable line,
// 1 on an unreadable file or a trace with nothing to summarize (so scripts
// piping a trace through this tool notice an empty or garbage capture).
// With --strict, any malformed line — a record the v1 parser rejects OR a
// line that is not structurally valid JSON (truncated object, NaN, bare
// garbage) — also exits 1; exporters are regression-gated on producing a
// byte-clean capture, not just a salvageable one.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"

namespace {

/// Counts non-blank lines that are not one structurally valid JSON value.
/// The v1 line parser is deliberately lenient (it scans for known keys);
/// strict mode layers the full RFC 8259 check on top of it.
std::size_t invalid_json_lines(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t invalid = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (!ocp::obs::json_valid(line)) ++invalid;
  }
  return invalid;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: obs_report [--strict] [trace.jsonl]  (stdin when "
             "omitted)\n";
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
      continue;
    }
    if (!path.empty()) {
      std::cerr << "obs_report: expected at most one trace file\n";
      return 2;
    }
    path = arg;
  }

  // Buffer the whole input: strict mode walks the lines twice (structural
  // check, then the v1 summarizer), and stdin only reads once.
  std::string text;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "obs_report: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  std::istringstream stream(text);
  const ocp::obs::TraceReport report = ocp::obs::summarize_jsonl(stream);

  if (report.spans.empty() && report.instants.empty() &&
      report.counters.empty()) {
    std::cerr << "obs_report: no trace events found"
              << (report.malformed_lines > 0
                      ? " (input does not look like ocpmesh-trace-v1)"
                      : " (empty trace)")
              << "\n";
    return 1;
  }
  if (!report.schema.empty() && report.schema != "ocpmesh-trace-v1") {
    std::cerr << "obs_report: warning: unknown schema '" << report.schema
              << "', parsing as ocpmesh-trace-v1\n";
  }
  ocp::obs::print_report(report, std::cout);

  if (strict) {
    const std::size_t invalid = invalid_json_lines(text);
    if (invalid > 0 || report.malformed_lines > 0) {
      std::cerr << "obs_report: strict: " << report.malformed_lines
                << " malformed v1 record(s), " << invalid
                << " structurally invalid JSON line(s)\n";
      return 1;
    }
  }
  return 0;
}
