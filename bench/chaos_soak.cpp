// Chaos soak CLI for the serving runtime (run_bench.sh --chaos).
//
// Default run: a seed sweep of `chaos::run_chaos_load` — each seed replays
// one event stream through a Service twice, chaotic (kills + restarts,
// poisoned verdicts, denied admissions, duplicated/deferred/stalled
// batches, racing query threads) and clean, and demands digest-identical
// convergence — followed by a sweep of generated driver schedules through
// `chaos::run_schedule`. Any failing schedule is ddmin-shrunk and printed
// as a one-line repro. Exit status is nonzero iff any run violated a
// degraded-mode invariant.
//
//   chaos_soak --seeds 8 --schedules 8
//   chaos_soak --seed 3 --events 384 --threads 8
//   chaos_soak --replay "S8 P Q16 R F Y K" --seed 2
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/harness.hpp"
#include "chaos/schedule.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N        first seed of the sweep (default 1)\n"
      "  --seeds N       load-sweep runs (default 4, 0 = skip)\n"
      "  --schedules N   schedule-sweep runs (default 4, 0 = skip)\n"
      "  --events N      events per load run (default 192)\n"
      "  --threads N     query threads per load run (default 2)\n"
      "  --ops N         driver ops per schedule (default 56)\n"
      "  --no-shrink     report failing schedules without ddmin\n"
      "  --replay OPS    run one schedule repro (e.g. \"S8 P F K\") against\n"
      "                  --seed's config and exit\n",
      argv0);
}

/// The storm every sweep run injects: every point armed, capped so each
/// run terminates, two scheduled kills so crash recovery is always on the
/// path. Decisions are counter-hashed from (plan seed, point), so the
/// injection sequence is a pure function of the seed.
ocp::chaos::PlanSpec storm_plan(std::uint64_t seed) {
  return {.seed = seed,
          .deny_submit = 0.1,
          .max_denies = 16,
          .duplicate_batch = 0.2,
          .max_duplicates = 6,
          .defer_batch = 0.2,
          .max_defers = 6,
          .stall_batch = 0.2,
          .stall_max_us = 150,
          .max_stalls = 6,
          .poison_publish = 0.2,
          .max_poisons = 6,
          .kill_at_stamps = {2, 5}};
}

int replay(const std::string& ops_text, std::uint64_t seed,
           std::size_t events) {
  const auto schedule = ocp::chaos::parse_schedule(ops_text);
  if (!schedule) {
    std::fprintf(stderr, "error: malformed schedule repro '%s'\n",
                 ops_text.c_str());
    return 2;
  }
  ocp::chaos::ScheduleConfig config;
  config.seed = seed;
  config.events = events;
  config.plan = storm_plan(seed);
  const ocp::chaos::ScheduleResult result =
      ocp::chaos::run_schedule(config, *schedule);
  std::printf("replay seed=%llu: %s\n",
              static_cast<unsigned long long>(seed),
              ocp::chaos::to_string(*schedule).c_str());
  std::printf(
      "  epoch=%llu faults=%zu digest=%016llx expected=%016llx "
      "kills=%llu restarts=%llu\n",
      static_cast<unsigned long long>(result.final_epoch),
      result.final_faults,
      static_cast<unsigned long long>(result.final_digest),
      static_cast<unsigned long long>(result.expected_digest),
      static_cast<unsigned long long>(result.injected.kills),
      static_cast<unsigned long long>(result.restarts));
  for (const std::string& violation : result.violations) {
    std::printf("  VIOLATION %s\n", violation.c_str());
  }
  std::printf("  %s\n", result.ok() ? "ok" : "FAILED");
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t load_runs = 4;
  std::size_t schedule_runs = 4;
  std::size_t events = 192;
  std::size_t threads = 2;
  std::size_t ops = 56;
  bool shrink = true;
  std::string replay_ops;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      load_runs = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--schedules") == 0) {
      schedule_runs = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--events") == 0) {
      events = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      ops = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_ops = next();
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }

  if (!replay_ops.empty()) return replay(replay_ops, seed, events);

  std::size_t failures = 0;

  if (load_runs > 0) {
    std::printf("== chaos load sweep: %zu run(s), %zu events, %zu query "
                "thread(s)\n",
                load_runs, events, threads);
    std::printf("%-6s %-18s %6s %6s %8s %8s %8s %6s\n", "seed", "digest",
                "faults", "kills", "restarts", "poisons", "stale_q", "ok");
    for (std::size_t i = 0; i < load_runs; ++i) {
      ocp::chaos::ChaosLoadConfig config;
      config.seed = seed + i;
      config.events = events;
      config.query_threads = threads;
      config.service.max_batch = 8;  // many epochs: the kill stamps exist
      config.plan = storm_plan(seed + i);
      const ocp::chaos::ChaosLoadResult result =
          ocp::chaos::run_chaos_load(config);
      std::printf("%-6llu %016llx %6zu %6llu %8llu %8llu %8llu %6s\n",
                  static_cast<unsigned long long>(config.seed),
                  static_cast<unsigned long long>(result.chaos_digest),
                  result.final_faults,
                  static_cast<unsigned long long>(result.injected.kills),
                  static_cast<unsigned long long>(result.restarts),
                  static_cast<unsigned long long>(result.injected.poisons),
                  static_cast<unsigned long long>(result.stale_queries_served),
                  result.ok() ? "ok" : "FAIL");
      if (!result.ok()) {
        ++failures;
        std::printf("  FAIL seed=%llu: digest %016llx != clean %016llx, "
                    "monotone=%d, stale_pending=%llu\n",
                    static_cast<unsigned long long>(config.seed),
                    static_cast<unsigned long long>(result.chaos_digest),
                    static_cast<unsigned long long>(result.clean_digest),
                    result.epochs_monotone ? 1 : 0,
                    static_cast<unsigned long long>(
                        result.stale_epochs_pending));
      }
    }
  }

  if (schedule_runs > 0) {
    std::printf("== chaos schedule sweep: %zu run(s), %zu ops each\n",
                schedule_runs, ops);
    for (std::size_t i = 0; i < schedule_runs; ++i) {
      ocp::chaos::ScheduleConfig config;
      config.seed = seed + i;
      config.events = events / 2;
      config.plan = storm_plan(seed + i);
      const std::vector<ocp::chaos::Op> schedule =
          ocp::chaos::generate_schedule((seed + i) * 17, ops);
      const ocp::chaos::ScheduleResult result =
          ocp::chaos::run_schedule(config, schedule);
      if (result.ok()) {
        std::printf("seed %-4llu ok    epoch=%llu faults=%zu kills=%llu\n",
                    static_cast<unsigned long long>(config.seed),
                    static_cast<unsigned long long>(result.final_epoch),
                    result.final_faults,
                    static_cast<unsigned long long>(result.injected.kills));
        continue;
      }
      ++failures;
      std::printf("seed %-4llu FAIL  %s\n",
                  static_cast<unsigned long long>(config.seed),
                  result.violations.front().c_str());
      if (shrink) {
        std::size_t runs = 0;
        const std::vector<ocp::chaos::Op> minimal =
            ocp::chaos::shrink_schedule(config, schedule, &runs);
        std::printf(
            "  repro (%zu shrink runs): chaos_soak --replay \"%s\" "
            "--seed %llu --events %zu\n",
            runs, ocp::chaos::to_string(minimal).c_str(),
            static_cast<unsigned long long>(config.seed), config.events);
      } else {
        std::printf("  repro: chaos_soak --replay \"%s\" --seed %llu "
                    "--events %zu\n",
                    ocp::chaos::to_string(schedule).c_str(),
                    static_cast<unsigned long long>(config.seed),
                    config.events);
      }
    }
  }

  if (failures > 0) {
    std::printf("%zu soak run(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all soak runs converged\n");
  return 0;
}
