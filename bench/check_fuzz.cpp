// Seeded, time-boxed fuzzing front end for the ocp_check subsystem.
//
// Default run: 200 deterministic instances across mesh/torus topologies and
// Definitions 2a/2b, each checked by the invariant oracle, the reference
// engine cross-check, the metamorphic symmetry layer and the
// schedule-adversarial runners. Failures are shrunk to local-minimal
// counterexamples, written as replayable fault traces, and a one-line repro
// command is printed per failure. Exit status is nonzero iff any instance
// violated an invariant.
//
//   check_fuzz --seed 7 --instances 500 --time-box-ms 30000
//   check_fuzz --replay failure.trace --def 2b
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/fuzzer.hpp"
#include "check/shrink.hpp"
#include "fault/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N           master seed (default 1)\n"
      "  --instances N      instances to run (default 200)\n"
      "  --time-box-ms N    wall-clock budget, 0 = unbounded (default 0)\n"
      "  --min-size N       smallest machine extent (default 3)\n"
      "  --max-size N       largest machine extent (default 24)\n"
      "  --max-density X    fault density ceiling in [0,1] (default 0.2)\n"
      "  --no-mesh          skip mesh topologies\n"
      "  --no-torus         skip torus topologies\n"
      "  --no-2a            skip Definition 2a\n"
      "  --no-2b            skip Definition 2b\n"
      "  --no-cross-engine  skip reference-engine cross-validation\n"
      "  --no-metamorphic   skip the symmetry layer\n"
      "  --no-schedules     skip schedule-adversarial runners\n"
      "  --no-shrink        report failures without delta-debugging them\n"
      "  --trace-dir DIR    where failing traces are written (default .)\n"
      "  --replay FILE      check one saved fault trace and exit\n"
      "  --def 2a|2b        definition for --replay (default 2b)\n",
      argv0);
}

int replay(const std::string& path, const std::string& def_name,
           const ocp::check::FuzzConfig& config) try {
  const ocp::grid::CellSet faults = ocp::fault::load_trace(path);
  const auto def = def_name == "2a" ? ocp::labeling::SafeUnsafeDef::Def2a
                                    : ocp::labeling::SafeUnsafeDef::Def2b;
  const ocp::check::ViolationReport report =
      ocp::check::check_instance(faults, def, config);
  if (report.ok()) {
    std::printf("replay %s (Def %s): ok\n", path.c_str(), def_name.c_str());
    return 0;
  }
  std::printf("replay %s (Def %s): %zu violation(s)\n%s", path.c_str(),
              def_name.c_str(), report.size(), report.to_string().c_str());
  return 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ocp::check::FuzzConfig config;
  std::string replay_path;
  std::string def_name = "2b";
  std::string trace_dir = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--instances") {
      config.instances = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--time-box-ms") {
      config.time_box_ms = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--min-size") {
      config.min_size = static_cast<std::int32_t>(std::atoi(next()));
    } else if (arg == "--max-size") {
      config.max_size = static_cast<std::int32_t>(std::atoi(next()));
    } else if (arg == "--max-density") {
      config.max_density = std::atof(next());
    } else if (arg == "--no-mesh") {
      config.meshes = false;
    } else if (arg == "--no-torus") {
      config.tori = false;
    } else if (arg == "--no-2a") {
      config.def2a = false;
    } else if (arg == "--no-2b") {
      config.def2b = false;
    } else if (arg == "--no-cross-engine") {
      config.cross_engine = false;
    } else if (arg == "--no-metamorphic") {
      config.metamorphic = false;
    } else if (arg == "--no-schedules") {
      config.schedules = false;
    } else if (arg == "--no-shrink") {
      config.shrink = false;
    } else if (arg == "--trace-dir") {
      trace_dir = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--def") {
      def_name = next();
      if (def_name != "2a" && def_name != "2b") {
        std::fprintf(stderr, "--def must be 2a or 2b (got '%s')\n",
                     def_name.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (!replay_path.empty()) return replay(replay_path, def_name, config);

  const ocp::check::FuzzReport report = ocp::check::run_fuzz(config);
  std::printf("check_fuzz: seed=%llu instances=%zu failures=%zu%s\n",
              static_cast<unsigned long long>(config.seed),
              report.instances_run, report.failure_count,
              report.timed_out ? " (time box hit)" : "");

  std::size_t n = 0;
  for (const auto& failure : report.failures) {
    const std::string stem =
        trace_dir + "/check_fuzz_fail_" + std::to_string(n++);
    const std::string full_path = stem + ".trace";
    const std::string min_path = stem + ".min.trace";
    ocp::fault::save_trace(full_path,
                           ocp::fault::from_trace_string(failure.trace));
    std::printf("\nFAIL %s\n%s", failure.description.c_str(),
                failure.report.to_string().c_str());
    if (!failure.shrunk_trace.empty()) {
      ocp::fault::save_trace(
          min_path, ocp::fault::from_trace_string(failure.shrunk_trace));
      std::printf("shrunk to local-minimal counterexample (%zu evaluations):\n%s",
                  failure.shrink_evaluations, failure.shrunk_trace.c_str());
      std::printf("repro: %s\n",
                  ocp::check::repro_command(min_path, failure.definition)
                      .c_str());
    } else {
      std::printf("repro: %s\n",
                  ocp::check::repro_command(full_path, failure.definition)
                      .c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
