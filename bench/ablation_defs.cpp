// Ablation: Definition 2a vs Definition 2b. How many nonfaulty nodes does
// each safe/unsafe rule swallow into faulty blocks, how many remain disabled
// after phase two, and how do the block counts compare (the paper's section
// 3 argument for the enhanced definition).
#include <iostream>

#include "analysis/ablation.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "Ablation: Definition 2a vs 2b on a " << opts.n << "x"
            << opts.n << " mesh, " << opts.trials
            << " paired trials per point, seed " << opts.seed << "\n\n";

  analysis::DefinitionAblationConfig config;
  config.n = opts.n;
  config.fault_counts = bench::sweep(opts);
  config.trials = opts.trials;
  config.seed = opts.seed;
  const auto rows = analysis::run_definition_ablation(config);
  bench::emit(opts, "ablation_defs",
              analysis::definition_ablation_table(rows));

  std::cout << "Expected shape: Definition 2b swallows no more nonfaulty "
               "nodes than 2a on every instance (unsafe-nf(2b) <= "
               "unsafe-nf(2a)) and splits blocks (#FB(2b) >= #FB(2a)); after "
               "phase two both converge to similar disabled counts.\n";
  return 0;
}
