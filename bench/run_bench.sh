#!/usr/bin/env bash
# Benchmark-regression harness: runs the google-benchmark suites and writes
# the compact perf baselines BENCH_labeling.json / BENCH_netsim.json at the
# repo root. Future PRs rerun this and diff against the committed files to
# see the perf trajectory.
#
# Usage:
#   bench/run_bench.sh                  # both suites, default settings
#   bench/run_bench.sh --check          # correctness gate: seeded check_fuzz
#                                       # smoke before timing anything
#   BUILD_DIR=out bench/run_bench.sh    # non-default build tree
#   BENCH_MIN_TIME=0.5 bench/run_bench.sh   # steadier timings (slower)
#   BENCH_FILTER=Dense bench/run_bench.sh   # subset of benchmarks
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
MIN_TIME="${BENCH_MIN_TIME:-0.1}"
FILTER="${BENCH_FILTER:-}"
CHECK=0

for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    *)
      echo "error: unknown argument '$arg' (supported: --check)" >&2
      exit 2
      ;;
  esac
done

for bin in perf_labeling perf_netsim bench_to_json; do
  if [ ! -x "$BUILD/bench/$bin" ]; then
    echo "error: $BUILD/bench/$bin not built." >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

run_suite() {
  local bin="$1" out="$2"
  local full="$BUILD/bench/$bin.full.json"
  echo "== $bin -> $out"
  "$BUILD/bench/$bin" \
    --benchmark_out="$full" \
    --benchmark_out_format=json \
    --benchmark_min_time="$MIN_TIME" \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    >&2
  "$BUILD/bench/bench_to_json" "$full" > "$ROOT/$out"
}

# --check: vet the labeling engine against the invariant oracle before
# publishing perf numbers — a fast perf baseline from a miscomputing engine
# is worthless. Same seeded smoke configuration as the `smoke`-labeled ctest
# entry, so failures reproduce under either driver.
if [ "$CHECK" = 1 ]; then
  if [ ! -x "$BUILD/bench/check_fuzz" ]; then
    echo "error: $BUILD/bench/check_fuzz not built." >&2
    exit 1
  fi
  echo "== check_fuzz (seeded invariant smoke)"
  "$BUILD/bench/check_fuzz" --seed 1 --instances 200 --max-size 16 \
    --trace-dir "$BUILD/bench" >&2
fi

run_suite perf_labeling BENCH_labeling.json
run_suite perf_netsim BENCH_netsim.json

echo "wrote $ROOT/BENCH_labeling.json and $ROOT/BENCH_netsim.json"
