#!/usr/bin/env bash
# Benchmark-regression harness: runs the google-benchmark suites and writes
# the compact perf baselines BENCH_labeling.json / BENCH_netsim.json at the
# repo root. Future PRs rerun this and diff against the committed files to
# see the perf trajectory.
#
# Usage:
#   bench/run_bench.sh                  # both suites, refresh both baselines
#   bench/run_bench.sh --check          # correctness gate: seeded check_fuzz
#                                       # smoke + traced-run smoke before
#                                       # timing anything
#   bench/run_bench.sh --netsim         # netsim suite only, compared against
#                                       # the committed BENCH_netsim.json with
#                                       # a tolerance band; nonzero exit on
#                                       # regression; baseline NOT rewritten
#   bench/run_bench.sh --svc            # serving-runtime suite only, compared
#                                       # against the committed BENCH_svc.json
#                                       # the same way
#   bench/run_bench.sh --alloc          # allocation suite only, compared
#                                       # against the committed
#                                       # BENCH_alloc.json the same way
#   bench/run_bench.sh --svc-sweep      # closed-loop sweep: runs
#                                       # BM_SvcClosedLoop at 1/2/4/8 query
#                                       # threads plus the sharded fleet
#                                       # (BM_SvcShardedClosedLoop, 1/2/4
#                                       # shards x 1/2/4/8 query threads) and
#                                       # prints a qps table — the scaling
#                                       # evidence for the epoch-handle
#                                       # acquisition path and the
#                                       # tile-partitioned ingest; no
#                                       # baselines touched
#   bench/run_bench.sh --trace          # traced pipeline + netsim demo run:
#                                       # writes trace.jsonl / trace_chrome
#                                       # .json under $BUILD/bench/trace and
#                                       # prints the obs_report summary; no
#                                       # baselines touched
#   bench/run_bench.sh --chaos          # chaos soak: seed sweeps of the
#                                       # fault-injection load harness and
#                                       # the schedule explorer (ddmin repro
#                                       # one-liners on failure); no
#                                       # baselines touched
#   BUILD_DIR=out bench/run_bench.sh    # non-default build tree
#   BENCH_MIN_TIME=0.5 bench/run_bench.sh   # steadier timings (slower)
#   BENCH_FILTER=Dense bench/run_bench.sh   # subset of benchmarks
#   BENCH_TOLERANCE=0.5 bench/run_bench.sh --netsim   # wider band
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
FILTER="${BENCH_FILTER:-}"
# Generous default band: these runs share one core with whatever else the
# machine is doing, and short timings swing 30-50% run to run.
TOLERANCE="${BENCH_TOLERANCE:-0.50}"
CHECK=0
NETSIM_ONLY=0
SVC_ONLY=0
ALLOC_ONLY=0
SVC_SWEEP=0
TRACE=0
CHAOS=0

for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    --netsim) NETSIM_ONLY=1 ;;
    --svc) SVC_ONLY=1 ;;
    --alloc) ALLOC_ONLY=1 ;;
    --svc-sweep) SVC_SWEEP=1 ;;
    --trace) TRACE=1 ;;
    --chaos) CHAOS=1 ;;
    *)
      echo "error: unknown argument '$arg'" >&2
      echo "supported: --check --netsim --svc --alloc --svc-sweep --trace" \
           "--chaos" >&2
      exit 2
      ;;
  esac
done

# Stamped into compare-gate failure messages so a CI log names both sides:
# which code regressed against which committed baseline.
RUN_REF="$(git -C "$ROOT" rev-parse --short HEAD 2> /dev/null || echo unknown)"

# Runs the traced demo (pipeline + netsim at TraceLevel::Round) and
# summarizes the capture — the smoke that keeps the instrumentation, the
# exporters and the report parser agreeing with each other.
run_trace() {
  for bin in obs_trace obs_report; do
    if [ ! -x "$BUILD/bench/$bin" ]; then
      echo "error: $BUILD/bench/$bin not built." >&2
      exit 1
    fi
  done
  local out="$BUILD/bench/trace"
  echo "== obs_trace -> $out"
  "$BUILD/bench/obs_trace" --out-dir "$out" > /dev/null
  "$BUILD/bench/obs_report" "$out/trace.jsonl"
  echo "trace artifacts: $out/trace.jsonl, $out/trace_chrome.json"
  echo "(load trace_chrome.json in chrome://tracing or ui.perfetto.dev)"
}

if [ "$TRACE" = 1 ]; then
  run_trace
  exit 0
fi

# --chaos: the fault-injection soak (kill/restart digest convergence,
# staleness drain, schedule exploration with ddmin repros).
if [ "$CHAOS" = 1 ]; then
  if [ ! -x "$BUILD/bench/chaos_soak" ]; then
    echo "error: $BUILD/bench/chaos_soak not built." >&2
    exit 1
  fi
  echo "== chaos_soak (seeded degraded-mode sweep)"
  "$BUILD/bench/chaos_soak" --seeds 8 --schedules 8
  exit 0
fi

# Comparison runs default to longer timings: a regression verdict from a
# 0.1-second sample is mostly noise.
if [ "$NETSIM_ONLY" = 1 ] || [ "$SVC_ONLY" = 1 ] || [ "$ALLOC_ONLY" = 1 ] ||
   [ "$SVC_SWEEP" = 1 ]; then
  MIN_TIME="${BENCH_MIN_TIME:-0.3}"
else
  MIN_TIME="${BENCH_MIN_TIME:-0.1}"
fi

for bin in perf_labeling perf_netsim svc_load alloc_load bench_to_json; do
  if [ ! -x "$BUILD/bench/$bin" ]; then
    echo "error: $BUILD/bench/$bin not built." >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

# Runs one suite; compacts to $3 when given, else compares the fresh run
# against the committed baseline $4 (exit 1 past the tolerance band).
run_suite() {
  local bin="$1" mode="$2" target="$3"
  local full="$BUILD/bench/$bin.full.json"
  "$BUILD/bench/$bin" \
    --benchmark_out="$full" \
    --benchmark_out_format=json \
    --benchmark_min_time="$MIN_TIME" \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    >&2
  if [ "$mode" = write ]; then
    echo "== $bin -> $target"
    "$BUILD/bench/bench_to_json" "$full" > "$target"
  else
    echo "== $bin vs $target (tolerance +$TOLERANCE)"
    "$BUILD/bench/bench_to_json" "$full" \
      --compare "$target" --tolerance "$TOLERANCE" \
      --ref "$RUN_REF" > "$full.compact"
  fi
}

# --check: vet the labeling engine against the invariant oracle before
# publishing perf numbers — a fast perf baseline from a miscomputing engine
# is worthless. Same seeded smoke configuration as the `smoke`-labeled ctest
# entry, so failures reproduce under either driver.
if [ "$CHECK" = 1 ]; then
  if [ ! -x "$BUILD/bench/check_fuzz" ]; then
    echo "error: $BUILD/bench/check_fuzz not built." >&2
    exit 1
  fi
  echo "== check_fuzz (seeded invariant smoke)"
  "$BUILD/bench/check_fuzz" --seed 1 --instances 200 --max-size 16 \
    --trace-dir "$BUILD/bench" >&2
  # Chaos suite: the degraded-mode guarantees (kill/restart digest
  # convergence, bounded staleness, typed retries) must hold before timing
  # the serving runtime around them.
  echo "== ctest -L chaos (degraded-mode guarantees)"
  (cd "$BUILD" && ctest -L chaos --output-on-failure -j4) >&2
  # Allocation suite: overlap-freedom, index equivalence and eviction
  # completeness must hold before the placement numbers mean anything.
  echo "== ctest -L alloc (allocation invariants)"
  (cd "$BUILD" && ctest -L alloc --output-on-failure -j4) >&2
  # Traced-run smoke: the observability layer must keep producing parseable
  # traces before perf numbers recorded around it are trusted.
  run_trace >&2
fi

if [ "$NETSIM_ONLY" = 1 ]; then
  run_suite perf_netsim compare "$ROOT/BENCH_netsim.json"
  echo "netsim within tolerance of the committed baseline"
  echo "(fresh compact numbers: $BUILD/bench/perf_netsim.full.json.compact)"
  exit 0
fi

# --svc-sweep: the closed-loop generator at 1/2/4/8 query threads — single
# writer AND the sharded fleet at 1/2/4 shards (BM_SvcShardedClosedLoop's
# first arg) — printed as a qps table. Pulls items_per_second straight out
# of the full benchmark JSON (one field per line) — the number
# BENCH_svc.json commits for the same benchmarks.
if [ "$SVC_SWEEP" = 1 ]; then
  full="$BUILD/bench/svc_load.sweep.json"
  "$BUILD/bench/svc_load" \
    --benchmark_out="$full" \
    --benchmark_out_format=json \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_filter='BM_SvcClosedLoop/|BM_SvcShardedClosedLoop/' \
    >&2
  echo "== closed-loop sweep (answers/s, real time; sharded rows are"
  echo "   BM_SvcShardedClosedLoop/<shards>/<query_threads>)"
  printf '%-38s %14s %10s %10s\n' "benchmark" "qps" "p50_us" "p99_us"
  awk '
    /"name":/            { gsub(/[",]/, ""); name = $2 }
    /"items_per_second":/ { gsub(/,/, ""); qps = $2 }
    /"p50_us":/          { gsub(/,/, ""); p50 = $2 }
    /"p99_us":/          { gsub(/,/, ""); p99 = $2 }
    /^    }/ && name != "" {
      printf "%-38s %14.0f %10.2f %10.2f\n", name, qps, p50, p99
      name = ""
    }
  ' "$full"
  echo "(full numbers: $full)"
  exit 0
fi

if [ "$SVC_ONLY" = 1 ]; then
  run_suite svc_load compare "$ROOT/BENCH_svc.json"
  echo "svc within tolerance of the committed baseline"
  echo "(fresh compact numbers: $BUILD/bench/svc_load.full.json.compact)"
  exit 0
fi

if [ "$ALLOC_ONLY" = 1 ]; then
  run_suite alloc_load compare "$ROOT/BENCH_alloc.json"
  echo "alloc within tolerance of the committed baseline"
  echo "(fresh compact numbers: $BUILD/bench/alloc_load.full.json.compact)"
  exit 0
fi

run_suite perf_labeling write "$ROOT/BENCH_labeling.json"
run_suite perf_netsim write "$ROOT/BENCH_netsim.json"
run_suite svc_load write "$ROOT/BENCH_svc.json"
run_suite alloc_load write "$ROOT/BENCH_alloc.json"

echo "wrote $ROOT/BENCH_labeling.json, $ROOT/BENCH_netsim.json," \
     "$ROOT/BENCH_svc.json and $ROOT/BENCH_alloc.json"
