// Figure 5 (c)/(d): average percentage of enabled nodes among unsafe-but-
// nonfaulty nodes of each reducible faulty block, versus the number of
// random faults f — swept under both safe/unsafe definitions (the two
// columns of Figure 5).
#include <iostream>

#include "analysis/fig5.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  const bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "Reproduction of Wu (IPPS 2001), Figure 5 (c)/(d): enabled "
               "ratio on a "
            << opts.n << "x" << opts.n << " mesh, " << opts.trials
            << " trials per point, seed " << opts.seed << "\n\n";

  for (auto def :
       {labeling::SafeUnsafeDef::Def2a, labeling::SafeUnsafeDef::Def2b}) {
    analysis::Fig5Config config;
    config.n = opts.n;
    config.definition = def;
    config.fault_counts = bench::sweep(opts);
    config.trials = opts.trials;
    config.seed = opts.seed;
    const auto rows = analysis::run_fig5(config);

    stats::Table table({"f", "enabled/unsafe-nonfaulty % (per block)",
                        "pooled %", "#FB", "#DR"});
    for (const auto& row : rows) {
      table.add_row(
          {std::to_string(row.f),
           row.enabled_ratio_per_block.empty()
               ? "n/a (no reducible block)"
               : stats::format_mean_ci(row.enabled_ratio_per_block.mean(),
                                       row.enabled_ratio_per_block.ci95(), 2),
           row.enabled_ratio_pooled.empty()
               ? "n/a"
               : stats::format_double(row.enabled_ratio_pooled.mean(), 2),
           stats::format_double(row.block_count.mean(), 1),
           stats::format_double(row.region_count.mean(), 1)});
    }
    bench::emit(opts, std::string("fig5_ratio_") + labeling::to_string(def),
                table);
  }

  std::cout << "Expected shape (paper section 5): the percentage stays very "
               "high (near 100% at low f) and decays slowly as f grows.\n";
  return 0;
}
