// Synchrony ablation: lock-step rounds (the paper's model) vs randomized
// asynchronous sweeps, and broadcast vs event-driven message costs.
#include <iostream>

#include "analysis/async_study.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  if (!opts.quick) opts.trials = std::min<std::size_t>(opts.trials, 50);

  std::cout << "Synchrony ablation on a " << opts.n << "x" << opts.n
            << " mesh (phase one, Definition 2b), " << opts.trials
            << " trials per point\n\n";

  analysis::AsyncStudyConfig config;
  config.n = opts.n;
  config.fault_counts = bench::sweep(opts);
  config.trials = opts.trials;
  config.seed = opts.seed;
  const auto rows = analysis::run_async_study(config);
  bench::emit(opts, "ablation_async", analysis::async_study_table(rows));

  std::cout << "Expected shape: async sweeps track sync rounds closely (the "
               "monotone rules converge under any schedule; fixpoint match "
               "must be 100%), and event-driven messaging cuts the "
               "per-node message cost by roughly the round count.\n";
  return 0;
}
