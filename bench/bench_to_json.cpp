// Compacts google-benchmark JSON output into the stable BENCH_*.json format
// committed at the repo root.
//
// The full benchmark JSON embeds host details (CPU caches, load average,
// timestamps) that churn on every run and machine, which would make the
// committed baselines undiffable. This tool keeps only what the perf
// trajectory needs: benchmark name, real/cpu time in milliseconds, and
// throughput. Input is read from the file named by argv[1]; the compact JSON
// goes to stdout.
//
// Parsing note: google-benchmark emits one "key": value pair per line inside
// the "benchmarks" array, so a line-oriented scan is reliable here; this is
// not a general JSON parser and does not try to be one.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchEntry {
  std::string name;
  double real_time = 0;
  double cpu_time = 0;
  std::string time_unit = "ns";
  std::optional<double> items_per_second;
};

/// Value of `"key": <value>` on `line`, or nullopt when the key is absent.
std::optional<std::string> field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::string value = line.substr(pos + needle.size());
  // Trim whitespace, trailing comma, and surrounding quotes.
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.erase(value.begin());
  }
  while (!value.empty() &&
         (value.back() == ',' || value.back() == ' ' || value.back() == '\r')) {
    value.pop_back();
  }
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

double to_ms(double value, const std::string& unit) {
  if (unit == "ns") return value / 1e6;
  if (unit == "us") return value / 1e3;
  if (unit == "ms") return value;
  if (unit == "s") return value * 1e3;
  return value;
}

/// JSON-escape for benchmark names (they contain only [\w/:.<>,-] in
/// practice, but be safe about quotes and backslashes).
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: bench_to_json <google-benchmark-output.json>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "bench_to_json: cannot open " << argv[1] << "\n";
    return 1;
  }

  std::vector<BenchEntry> entries;
  BenchEntry current;
  bool in_benchmarks = false;
  bool in_entry = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!in_benchmarks) {
      if (line.find("\"benchmarks\"") != std::string::npos) {
        in_benchmarks = true;
      }
      continue;
    }
    if (!in_entry && line.find('{') != std::string::npos) {
      in_entry = true;
      current = BenchEntry{};
      continue;
    }
    if (!in_entry) continue;

    if (const auto v = field(line, "name")) {
      current.name = *v;
    } else if (const auto rt = field(line, "real_time")) {
      current.real_time = std::strtod(rt->c_str(), nullptr);
    } else if (const auto ct = field(line, "cpu_time")) {
      current.cpu_time = std::strtod(ct->c_str(), nullptr);
    } else if (const auto tu = field(line, "time_unit")) {
      current.time_unit = *tu;
    } else if (const auto ips = field(line, "items_per_second")) {
      current.items_per_second = std::strtod(ips->c_str(), nullptr);
    }

    if (line.find('}') != std::string::npos) {
      in_entry = false;
      // Skip aggregate/error rows without a name; keep real measurements.
      if (!current.name.empty()) entries.push_back(current);
    }
  }

  std::ostringstream out;
  out.precision(6);
  out << "{\n  \"schema\": \"ocpmesh-bench-v1\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    out << "    {\"name\": \"" << escape(e.name) << "\", \"real_time_ms\": "
        << to_ms(e.real_time, e.time_unit) << ", \"cpu_time_ms\": "
        << to_ms(e.cpu_time, e.time_unit);
    if (e.items_per_second) {
      out << ", \"items_per_second\": " << *e.items_per_second;
    }
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << out.str();
  return 0;
}
