// Compacts google-benchmark JSON output into the stable BENCH_*.json format
// committed at the repo root, and diffs fresh runs against those baselines.
//
// The full benchmark JSON embeds host details (CPU caches, load average,
// timestamps) that churn on every run and machine, which would make the
// committed baselines undiffable. This tool keeps only what the perf
// trajectory needs: benchmark name, real/cpu time in milliseconds, and
// throughput.
//
// Usage:
//   bench_to_json <google-benchmark-output.json>
//       Compact JSON to stdout.
//   bench_to_json <google-benchmark-output.json> --compare <BENCH_x.json>
//                 [--tolerance <frac>] [--allow-new] [--ref <str>]
//       Also diff against a committed compact baseline: per-benchmark
//       real-time ratios go to stderr, and the exit status is 1 when any
//       benchmark present in both files got slower by more than the
//       tolerance band (default 0.30 = 30%, generous because these runs
//       share the machine with the build). A benchmark present in the run
//       but absent from the baseline is an error unless --allow-new is
//       given — an unknown key usually means the baseline was not
//       refreshed after adding a benchmark, and silently skipping it would
//       let the new code ship ungated. Benchmarks missing from the run are
//       only reported: BENCH_FILTER subsets legitimately produce them.
//       The failure preamble names the baseline file and, when --ref is
//       given (run_bench.sh passes the current git commit), the ref the
//       fresh run was built from — a CI log line is then self-contained:
//       which code regressed against which committed baseline.
//
// Parsing note: google-benchmark emits one "key": value pair per line inside
// the "benchmarks" array, and the compact format keeps one entry per line,
// so a line-oriented scan is reliable for both; this is not a general JSON
// parser and does not try to be one.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchEntry {
  std::string name;
  double real_time = 0;
  double cpu_time = 0;
  std::string time_unit = "ns";
  std::optional<double> items_per_second;
};

/// Value of `"key": <value>` on `line`, or nullopt when the key is absent.
std::optional<std::string> field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::string value = line.substr(pos + needle.size());
  // Trim whitespace and a trailing comma; stop a one-line entry at the next
  // field or closing brace.
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.erase(value.begin());
  }
  const auto end = value.find_first_of(",}");
  if (end != std::string::npos) value = value.substr(0, end);
  while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
    value.pop_back();
  }
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

double to_ms(double value, const std::string& unit) {
  if (unit == "ns") return value / 1e6;
  if (unit == "us") return value / 1e3;
  if (unit == "ms") return value;
  if (unit == "s") return value * 1e3;
  return value;
}

/// JSON-escape for benchmark names (they contain only [\w/:.<>,-] in
/// practice, but be safe about quotes and backslashes).
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Parses the full google-benchmark JSON (one field per line).
std::vector<BenchEntry> parse_full(std::istream& in) {
  std::vector<BenchEntry> entries;
  BenchEntry current;
  bool in_benchmarks = false;
  bool in_entry = false;
  std::string line;
  while (std::getline(in, line)) {
    if (!in_benchmarks) {
      if (line.find("\"benchmarks\"") != std::string::npos) {
        in_benchmarks = true;
      }
      continue;
    }
    if (!in_entry && line.find('{') != std::string::npos) {
      in_entry = true;
      current = BenchEntry{};
      continue;
    }
    if (!in_entry) continue;

    if (const auto v = field(line, "name")) {
      current.name = *v;
    } else if (const auto rt = field(line, "real_time")) {
      current.real_time = std::strtod(rt->c_str(), nullptr);
    } else if (const auto ct = field(line, "cpu_time")) {
      current.cpu_time = std::strtod(ct->c_str(), nullptr);
    } else if (const auto tu = field(line, "time_unit")) {
      current.time_unit = *tu;
    } else if (const auto ips = field(line, "items_per_second")) {
      current.items_per_second = std::strtod(ips->c_str(), nullptr);
    }

    if (line.find('}') != std::string::npos) {
      in_entry = false;
      // Skip aggregate/error rows without a name; keep real measurements.
      if (!current.name.empty()) entries.push_back(current);
    }
  }
  return entries;
}

/// Parses the compact committed format (one entry per line, ms units).
std::vector<BenchEntry> parse_compact(std::istream& in) {
  std::vector<BenchEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    const auto name = field(line, "name");
    const auto rt = field(line, "real_time_ms");
    if (!name || !rt) continue;
    BenchEntry e;
    e.name = *name;
    e.real_time = std::strtod(rt->c_str(), nullptr);
    e.time_unit = "ms";
    if (const auto ct = field(line, "cpu_time_ms")) {
      e.cpu_time = std::strtod(ct->c_str(), nullptr);
    }
    entries.push_back(e);
  }
  return entries;
}

const BenchEntry* find(const std::vector<BenchEntry>& entries,
                       const std::string& name) {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

/// Reports per-benchmark real-time ratios; returns one summary line per
/// failure (a regression beyond the tolerance band, or — unless `allow_new`
/// — a benchmark the baseline has no entry for), so the caller's failure
/// message can name every offender with its delta instead of a bare count.
std::vector<std::string> compare(const std::vector<BenchEntry>& fresh,
                                 const std::vector<BenchEntry>& baseline,
                                 double tolerance, bool allow_new) {
  std::vector<std::string> failures;
  std::cerr << "== baseline comparison (tolerance +"
            << static_cast<int>(tolerance * 100) << "%)\n";
  for (const auto& base : baseline) {
    const BenchEntry* now = find(fresh, base.name);
    if (now == nullptr) {
      std::cerr << "  MISSING  " << base.name
                << " (in baseline, not in this run)\n";
      continue;
    }
    const double base_ms = to_ms(base.real_time, base.time_unit);
    const double now_ms = to_ms(now->real_time, now->time_unit);
    const double ratio = base_ms > 0 ? now_ms / base_ms : 1.0;
    const bool regressed = ratio > 1.0 + tolerance;
    if (regressed) {
      std::ostringstream line;
      line.precision(4);
      line << base.name << ": " << base_ms << " ms -> " << now_ms << " ms ("
           << (ratio >= 1.0 ? "+" : "") << (ratio - 1.0) * 100
           << "%, band +" << tolerance * 100 << "%)";
      failures.push_back(line.str());
    }
    std::cerr << (regressed ? "  REGRESSED " : "  ok        ") << base.name
              << ": " << base_ms << " ms -> " << now_ms << " ms ("
              << (ratio >= 1.0 ? "+" : "") << (ratio - 1.0) * 100 << "%)\n";
  }
  for (const auto& now : fresh) {
    if (find(baseline, now.name) == nullptr) {
      if (!allow_new) {
        failures.push_back(now.name +
                           ": not in baseline (refresh it or pass "
                           "--allow-new)");
      }
      std::cerr << (allow_new ? "  NEW      " : "  UNKNOWN  ") << now.name
                << ": " << to_ms(now.real_time, now.time_unit) << " ms"
                << (allow_new
                        ? "\n"
                        : " (not in baseline; refresh it or pass "
                          "--allow-new)\n");
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string baseline_path;
  std::string ref;
  double tolerance = 0.30;
  bool allow_new = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--allow-new") {
      allow_new = true;
    } else if (arg == "--ref" && i + 1 < argc) {
      ref = argv[++i];
    } else if (input.empty()) {
      input = arg;
    } else {
      input.clear();
      break;
    }
  }
  if (input.empty()) {
    std::cerr << "usage: bench_to_json <google-benchmark-output.json> "
                 "[--compare BENCH_x.json] [--tolerance frac] [--allow-new] "
                 "[--ref str]\n";
    return 2;
  }
  std::ifstream in(input);
  if (!in) {
    std::cerr << "bench_to_json: cannot open " << input << "\n";
    return 1;
  }
  const std::vector<BenchEntry> entries = parse_full(in);

  std::ostringstream out;
  out.precision(6);
  out << "{\n  \"schema\": \"ocpmesh-bench-v1\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    out << "    {\"name\": \"" << escape(e.name) << "\", \"real_time_ms\": "
        << to_ms(e.real_time, e.time_unit) << ", \"cpu_time_ms\": "
        << to_ms(e.cpu_time, e.time_unit);
    if (e.items_per_second) {
      out << ", \"items_per_second\": " << *e.items_per_second;
    }
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << out.str();

  if (!baseline_path.empty()) {
    std::ifstream base_in(baseline_path);
    if (!base_in) {
      std::cerr << "bench_to_json: cannot open baseline " << baseline_path
                << "\n";
      return 1;
    }
    const std::vector<BenchEntry> baseline = parse_compact(base_in);
    if (baseline.empty()) {
      std::cerr << "bench_to_json: no entries in baseline " << baseline_path
                << "\n";
      return 1;
    }
    const std::vector<std::string> failures =
        compare(entries, baseline, tolerance, allow_new);
    if (!failures.empty()) {
      // Self-contained failure preamble: which baseline, and which code.
      std::cerr << failures.size() << " benchmark(s) failed the gate\n"
                << "  baseline: " << baseline_path << "\n";
      if (!ref.empty()) std::cerr << "  run ref:  " << ref << "\n";
      for (const std::string& f : failures) std::cerr << "  - " << f << "\n";
      return 1;
    }
    std::cerr << "no regressions beyond the tolerance band\n";
  }
  return 0;
}
