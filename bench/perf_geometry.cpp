// Microbenchmarks of the rectilinear geometry kernels: convexity testing,
// convex closure and boundary tracing, across region sizes.
#include <benchmark/benchmark.h>

#include "fault/shapes.hpp"
#include "geometry/boundary.hpp"
#include "geometry/convexity.hpp"
#include "geometry/staircase.hpp"
#include "stats/rng.hpp"

namespace {

using namespace ocp;

geom::Region random_scatter(std::int32_t extent, std::size_t points,
                            std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<mesh::Coord> cells;
  cells.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    cells.push_back(
        {static_cast<std::int32_t>(rng.uniform_int(0, extent - 1)),
         static_cast<std::int32_t>(rng.uniform_int(0, extent - 1))});
  }
  return geom::Region(std::move(cells));
}

void BM_IsOrthogonalConvex(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const geom::Region r = fault::make_plus_shape({side, side}, side - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::is_orthogonal_convex(r));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(r.size()));
}
BENCHMARK(BM_IsOrthogonalConvex)->Arg(8)->Arg(32)->Arg(128);

void BM_ConvexClosureScatter(benchmark::State& state) {
  const auto extent = static_cast<std::int32_t>(state.range(0));
  const geom::Region seed = random_scatter(extent, 12, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::rectilinear_convex_closure(seed));
  }
}
BENCHMARK(BM_ConvexClosureScatter)->Arg(16)->Arg(64)->Arg(256);

void BM_ConvexClosureConcave(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const geom::Region u = fault::make_u_shape({0, 0}, side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::rectilinear_convex_closure(u));
  }
}
BENCHMARK(BM_ConvexClosureConcave)->Arg(8)->Arg(32)->Arg(128);

void BM_IsOrthogonalConvexPolygonFast(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const geom::Region r = fault::make_plus_shape({side, side}, side - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::is_orthogonal_convex_polygon_fast(r));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(r.size()));
}
BENCHMARK(BM_IsOrthogonalConvexPolygonFast)->Arg(8)->Arg(32)->Arg(128);

void BM_CornerNodes(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const geom::Region r = fault::make_l_shape({0, 0}, side, side / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::corner_nodes(r));
  }
}
BENCHMARK(BM_CornerNodes)->Arg(8)->Arg(64);

void BM_TraceOuterRing(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const geom::Region r = fault::make_plus_shape({side, side}, side - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::trace_outer_ring(r));
  }
}
BENCHMARK(BM_TraceOuterRing)->Arg(8)->Arg(32)->Arg(128);

void BM_RegionDiameter(benchmark::State& state) {
  const geom::Region r =
      random_scatter(static_cast<std::int32_t>(state.range(0)), 4000, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.diameter());
  }
}
BENCHMARK(BM_RegionDiameter)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
