// Extension: mesh vs torus. The torus has no ghost boundary (the paper's
// footnote 1) and wraparound links let blocks straddle the seams; rounds and
// enabled ratios should otherwise match the mesh closely.
#include <iostream>

#include "analysis/fig5.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ocp;
  const bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "Extension: labeling on mesh vs torus, " << opts.n << "x"
            << opts.n << ", Definition 2b, " << opts.trials
            << " trials per point\n\n";

  for (auto topology : {mesh::Topology::Mesh, mesh::Topology::Torus}) {
    analysis::Fig5Config config;
    config.n = opts.n;
    config.topology = topology;
    config.fault_counts = bench::sweep(opts);
    config.trials = opts.trials;
    config.seed = opts.seed;
    const auto rows = analysis::run_fig5(config);
    bench::emit(opts,
                std::string("ablation_torus_") + mesh::to_string(topology),
                analysis::fig5_table(rows));
  }

  std::cout << "Expected shape: per-point values match the mesh closely; "
               "small differences stem from boundary effects only (ghost "
               "support on the mesh edge vs wraparound neighbors).\n";
  return 0;
}
