// Wormhole load study: latency and completion of batches of worms routed
// around the labeled fault regions, under the rectangle model vs the
// orthogonal convex polygon model, plus the turn-cycle deadlock
// demonstration (1 virtual channel deadlocks, 2 deliver).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "fault/generators.hpp"
#include "netsim/wormhole.hpp"
#include "routing/router.hpp"

namespace {

using namespace ocp;

struct LoadPoint {
  std::size_t packets;
  double latency_mean;
  double latency_max;
  std::size_t delivered;
  bool deadlocked;
  std::int64_t cycles;
  std::int64_t flit_moves;
  double mflit_moves_per_sec;
};

LoadPoint run_load(const mesh::Mesh2D& m, const grid::CellSet& blocked,
                   std::size_t packets, std::uint64_t seed) {
  const routing::FaultRingRouter router(m, blocked);
  netsim::WormholeSim sim(m, {.num_vcs = 2, .vc_buffer_flits = 2});
  stats::Rng rng(seed);
  std::size_t submitted = 0;
  for (std::size_t i = 0; submitted < packets && i < packets * 20; ++i) {
    const auto src = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    const auto dst = m.coord(static_cast<std::size_t>(
        rng.uniform_int(0, m.node_count() - 1)));
    if (src == dst || blocked.contains(src) || blocked.contains(dst)) {
      continue;
    }
    const auto route = router.route(src, dst);
    if (!route.delivered()) continue;
    sim.submit(netsim::make_packet(
        route, 2, /*flits=*/8,
        rng.uniform_int(0, static_cast<std::int64_t>(packets))));
    ++submitted;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = sim.run();
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {submitted,
          result.latency.mean(),
          result.latency.max(),
          result.delivered,
          result.deadlocked,
          result.cycles,
          result.flit_moves,
          sec > 0 ? static_cast<double>(result.flit_moves) / sec / 1e6 : 0.0};
}

void deadlock_demo(ocp::bench::Options& opts) {
  // Four worms whose routes form a directed turn cycle around a square:
  // the canonical wormhole deadlock.
  const mesh::Mesh2D m(10, 10);
  const auto leg = [](mesh::Coord from, mesh::Coord to) {
    std::vector<mesh::Coord> cells{from};
    mesh::Coord cur = from;
    while (cur != to) {
      if (cur.x != to.x) cur.x += to.x > cur.x ? 1 : -1;
      else cur.y += to.y > cur.y ? 1 : -1;
      cells.push_back(cur);
    }
    return cells;
  };
  const mesh::Coord corners[] = {{2, 2}, {6, 2}, {6, 6}, {2, 6}};
  stats::Table table({"virtual channels", "outcome", "delivered", "cycles"});
  for (std::uint8_t vcs : {std::uint8_t{1}, std::uint8_t{2}}) {
    netsim::WormholeSim sim(
        m, {.num_vcs = vcs, .vc_buffer_flits = 1, .deadlock_threshold = 64});
    for (int w = 0; w < 4; ++w) {
      auto path = leg(corners[w], corners[(w + 1) % 4]);
      const auto second = leg(corners[(w + 1) % 4], corners[(w + 2) % 4]);
      path.insert(path.end(), second.begin() + 1, second.end());
      netsim::PacketSpec spec;
      spec.path = std::move(path);
      spec.vcs.assign(spec.path.size() - 1, 0);
      if (vcs == 2) {  // dateline: second leg on the escape channel
        for (std::size_t h = spec.vcs.size() / 2; h < spec.vcs.size(); ++h) {
          spec.vcs[h] = 1;
        }
      }
      spec.length_flits = 32;
      sim.submit(std::move(spec));
    }
    const auto result = sim.run();
    table.add_row({std::to_string(vcs),
                   result.deadlocked ? "DEADLOCK" : "drained",
                   std::to_string(result.delivered),
                   std::to_string(result.cycles)});
  }
  ocp::bench::emit(opts, "netsim_deadlock_demo", table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocp;
  bench::Options opts = bench::parse_options(argc, argv);
  if (opts.n == 100) opts.n = 32;  // wormhole sim scale

  std::cout << "Wormhole load study on a " << opts.n << "x" << opts.n
            << " mesh, ring routing with a detour virtual channel\n\n";

  deadlock_demo(opts);

  const mesh::Mesh2D m = mesh::Mesh2D::square(opts.n);
  stats::Rng rng(opts.seed);
  const auto faults = fault::clustered(m, 3, 8, rng);
  labeling::PipelineOptions lopts;
  lopts.engine = labeling::Engine::Reference;
  const auto labeled = labeling::run_pipeline(faults, lopts);

  struct Model {
    const char* name;
    grid::CellSet blocked;
  };
  const Model models[] = {
      {"faulty-blocks", labeling::unsafe_cells(labeled.safety)},
      {"disabled-regions", labeling::disabled_cells(labeled.activation)},
  };

  stats::Table table({"model", "packets", "delivered", "mean latency",
                      "max latency", "cycles", "deadlock", "flit moves",
                      "Mflit-moves/s"});
  const std::size_t loads[] = {32, 128, opts.quick ? 256u : 512u};
  for (const auto& model : models) {
    for (std::size_t packets : loads) {
      const LoadPoint p = run_load(m, model.blocked, packets, opts.seed + 1);
      table.add_row({model.name, std::to_string(p.packets),
                     std::to_string(p.delivered),
                     stats::format_double(p.latency_mean, 1),
                     stats::format_double(p.latency_max, 0),
                     std::to_string(p.cycles), p.deadlocked ? "yes" : "no",
                     std::to_string(p.flit_moves),
                     stats::format_double(p.mflit_moves_per_sec, 2)});
    }
  }
  bench::emit(opts, "netsim_load", table);

  std::cout << "Expected shape: the turn cycle deadlocks on one virtual "
               "channel and drains on two; under both region models the "
               "escape-channel traffic drains without deadlock, with "
               "latency growing with offered load.\n";
  return 0;
}
