#!/usr/bin/env bash
# Negative-path fixture test for obs_report's trace checker: adversarial
# captures that a crashing or misbehaving exporter would actually produce.
#
#   1. clean capture                      -> exit 0, no malformed note
#   2. truncated file (cut mid-object)    -> lenient: summarized with a
#      malformed-line note; --strict: exit 1
#   3. NaN in a numeric field             -> not JSON, not a v1 number:
#      lenient skips the line, --strict fails the capture
#   4. duplicate keys on one line         -> structurally valid JSON; the
#      v1 parser deterministically takes the FIRST occurrence
#   5. empty file / pure garbage / missing file -> exit 1 in any mode
#
# Usage: test_obs_report.sh <path-to-obs_report>
set -u

BIN="${1:?usage: test_obs_report.sh <obs_report>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

expect() {
  local label="$1" want="$2"
  shift 2
  "$@" > "$TMP/stdout.log" 2> "$TMP/stderr.log"
  local got=$?
  if [ "$got" != "$want" ]; then
    echo "FAIL $label: exit $got, expected $want" >&2
    sed 's/^/    /' "$TMP/stderr.log" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   $label"
  fi
}

# A minimal healthy v1 capture: meta, one completed span, one counter.
make_clean() {
  cat > "$1" <<'EOF'
{"ev":"meta","schema":"ocpmesh-trace-v1"}
{"ev":"b","name":"work","ts_ns":100}
{"ev":"e","name":"work","ts_ns":300,"dur_ns":200}
{"ev":"c","name":"events","value":3}
EOF
}

# 1. Clean capture passes in both modes with no malformed note.
make_clean "$TMP/clean.jsonl"
expect "clean capture" 0 "$BIN" "$TMP/clean.jsonl"
expect "clean capture --strict" 0 "$BIN" --strict "$TMP/clean.jsonl"
if grep -q "malformed" "$TMP/stdout.log"; then
  echo "FAIL clean capture: spurious malformed-line note" >&2
  FAILURES=$((FAILURES + 1))
fi

# 2. Truncated capture: the writer died mid-line (no trailing quote/brace).
make_clean "$TMP/truncated.jsonl"
printf '{"ev":"c","name":"cut","va' >> "$TMP/truncated.jsonl"
expect "truncated file (lenient)" 0 "$BIN" "$TMP/truncated.jsonl"
if ! grep -q "malformed line(s) skipped" "$TMP/stdout.log"; then
  echo "FAIL truncated file: malformed-line note missing" >&2
  FAILURES=$((FAILURES + 1))
fi
expect "truncated file --strict" 1 "$BIN" --strict "$TMP/truncated.jsonl"
if ! grep -q "structurally invalid JSON" "$TMP/stderr.log"; then
  echo "FAIL truncated --strict: structural diagnosis missing" >&2
  FAILURES=$((FAILURES + 1))
fi

# 3. NaN: JSON has no NaN literal, and the v1 integer parser must reject it
# rather than read 0.
make_clean "$TMP/nan.jsonl"
echo '{"ev":"c","name":"bad","value":NaN}' >> "$TMP/nan.jsonl"
expect "NaN value (lenient)" 0 "$BIN" "$TMP/nan.jsonl"
if ! grep -q "malformed line(s) skipped" "$TMP/stdout.log"; then
  echo "FAIL NaN: malformed-line note missing" >&2
  FAILURES=$((FAILURES + 1))
fi
if grep -Eq '^bad ' "$TMP/stdout.log"; then
  echo "FAIL NaN: counter 'bad' summarized despite unparseable value" >&2
  FAILURES=$((FAILURES + 1))
fi
expect "NaN value --strict" 1 "$BIN" --strict "$TMP/nan.jsonl"

# 4. Duplicate keys: valid JSON (RFC 8259 leaves it undefined), so strict
# mode accepts it — but the summary must be deterministic: the first
# occurrence wins, so the counter reads 1, not 7.
make_clean "$TMP/dup.jsonl"
echo '{"ev":"c","name":"twice","value":1,"value":7}' >> "$TMP/dup.jsonl"
expect "duplicate keys --strict" 0 "$BIN" --strict "$TMP/dup.jsonl"
if ! grep -Eq '^twice +1 *$' "$TMP/stdout.log"; then
  echo "FAIL duplicate keys: first-occurrence value not reported" >&2
  sed 's/^/    /' "$TMP/stdout.log" >&2
  FAILURES=$((FAILURES + 1))
fi

# 5. Nothing to summarize: empty, garbage, or unopenable input.
: > "$TMP/empty.jsonl"
expect "empty file" 1 "$BIN" "$TMP/empty.jsonl"
printf 'not json at all\nstill not\n' > "$TMP/garbage.jsonl"
expect "garbage file" 1 "$BIN" "$TMP/garbage.jsonl"
expect "missing file" 1 "$BIN" "$TMP/does_not_exist.jsonl"

if [ "$FAILURES" != 0 ]; then
  echo "$FAILURES case(s) failed" >&2
  exit 1
fi
echo "all obs_report negative-path cases passed"
